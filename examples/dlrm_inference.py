"""End-to-end DLRM inference (Fig 1) with the SLS phase timed on PIFS-Rec.

Builds a scaled-down RMC1 model, runs real inference (bottom MLP ->
embedding lookup -> feature interaction -> top MLP) to produce click-through
rates, then replays the same embedding lookups on the PIFS-Rec simulator and
on the Pond baseline — two ``Simulation`` sessions sharing one builder — to
estimate the end-to-end speedup (the Fig 14 methodology: SLS speedup
weighted by the operator profile).

Run with:  python examples/dlrm_inference.py
"""

from dataclasses import replace

import numpy as np

from repro import DLRM, QueryBatch, RMC1, Simulation
from repro.config import scaled_model
from repro.dlrm.model import operator_profile

BATCH = 16
POOLING = 8


def main() -> None:
    # A laptop-scale RMC1: same shape, fewer embedding rows.
    model_config = replace(scaled_model(RMC1, 0.25), num_tables=8)
    model = DLRM(model_config, seed=3)

    batch = QueryBatch.random(
        batch_size=BATCH,
        num_tables=model_config.num_tables,
        num_embeddings=model_config.num_embeddings,
        pooling_factor=POOLING,
        seed=11,
    )
    ctr = model(batch)
    print(f"model: {model_config.name} ({model_config.num_embeddings} rows x "
          f"{model_config.embedding_dim} dims x {model_config.num_tables} tables)")
    print(f"predicted CTR for the first 4 queries: {np.round(ctr[:4, 0], 4)}")

    # Replay the embedding-lookup phase on the memory-system simulators: one
    # session builder, local DRAM sized to hold ~20% of the embedding space.
    session = (
        Simulation()
        .model(model_config)
        .batch_size(BATCH)
        .pooling(POOLING)
        .num_batches(2)
    )
    session.local_capacity(session.build_workload().working_set_bytes // 5)

    pond = session.clone().system("pond").run()
    pifs = session.clone().system("pifs-rec").run()
    sls_speedup = pifs.speedup_over(pond)

    profile = operator_profile(model_config, BATCH, POOLING)
    print(f"SLS latency   Pond     : {pond.total_ns:,.0f} ns")
    print(f"SLS latency   PIFS-Rec : {pifs.total_ns:,.0f} ns  ({sls_speedup:.2f}x faster)")
    print(f"SLS share of inference : {profile.sls_fraction:.1%}")
    print(f"end-to-end speedup     : {profile.end_to_end_speedup(sls_speedup):.2f}x")


if __name__ == "__main__":
    main()
