"""Quickstart: the PIFS-Rec user-space SLS API (§IV-D).

Registers two embedding tables with the runtime, runs a pooled lookup
(SparseLengthsSum) through the simulated PIFS-Rec fabric, verifies the
numerical result against a plain numpy reference, and prints the simulated
latency breakdown.  Closes with the fluent ``Simulation`` façade comparing
PIFS-Rec against the Pond baseline on the standard evaluation workload.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import PIFSRuntime, Simulation

NUM_EMBEDDINGS = 4096
EMBEDDING_DIM = 64
BATCH = 8
POOLING = 12


def main() -> None:
    rng = np.random.default_rng(7)
    runtime = PIFSRuntime()

    # 1. Allocate embedding tables (the user supplies the table data, the
    #    number of embeddings and the vector size).
    table_a = runtime.allocate_embedding_table(
        rng.standard_normal((NUM_EMBEDDINGS, EMBEDDING_DIM)).astype(np.float32)
    )
    table_b = runtime.allocate_embedding_table(
        num_embeddings=NUM_EMBEDDINGS, embedding_dim=EMBEDDING_DIM
    )

    # 2. Build one batch of bags (indices + offsets per table).
    lengths = rng.integers(1, POOLING, size=BATCH)
    offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    indices_a = rng.integers(0, NUM_EMBEDDINGS, size=int(lengths.sum()))
    indices_b = rng.integers(0, NUM_EMBEDDINGS, size=int(lengths.sum()))

    # 3. Run the SLS call through PIFS-Rec.
    result = runtime.sls_multi([table_a, table_b], [indices_a, indices_b], [offsets, offsets])

    # 4. Verify numerics against a numpy reference for table A, bag 0.
    reference = runtime.table(table_a).weights[indices_a[: lengths[0]]].sum(axis=0)
    np.testing.assert_allclose(result.values[0, 0], reference, rtol=1e-5)
    print("numerical check vs numpy reference: OK")

    sim = result.sim
    print(f"pooled output shape        : {result.values.shape}")
    print(f"simulated SLS latency      : {sim.total_ns:,.0f} ns for {sim.lookups} row lookups")
    print(f"rows served from local DRAM: {sim.local_rows}")
    print(f"rows served from CXL pool  : {sim.cxl_rows}")
    print(f"on-switch buffer hit ratio : {sim.buffer_hit_ratio:.1%}")

    # 5. The same experiment through the fluent simulation façade: one
    #    session builder, cloned per system, on the quick evaluation scale.
    session = Simulation().quick().model("RMC1").batch_size(BATCH)
    pond = session.clone().system("pond").run()
    pifs = session.clone().system("pifs-rec").run()
    print()
    print("fluent-session comparison on the evaluation workload (RMC1, quick):")
    print(f"Pond    : {pond.total_ns:,.0f} ns")
    print(f"PIFS-Rec: {pifs.total_ns:,.0f} ns  ({pifs.speedup_over(pond):.2f}x faster)")


if __name__ == "__main__":
    main()
