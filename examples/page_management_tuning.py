"""Tuning the page-management thresholds (the Fig 13 (a)/(d) studies).

Sweeps the embedding-migration threshold and the cold-age threshold of
PIFS-Rec's software architecture on a fixed workload, printing the latency
and migration-cost trade-off for both the OS page-block and the PIFS
cache-line-block migration mechanisms.  Both grids are the declarative
``Sweep``-backed drivers from ``repro.experiments.fig13``, run through the
parallel engine.

Run with:  python examples/page_management_tuning.py
"""

from dataclasses import replace

from repro.analysis.report import format_table
from repro.experiments.common import DEFAULT_SCALE
from repro.experiments.fig13 import run_fig13a, run_fig13d

#: The default evaluation scale with a shorter maintenance epoch, so the
#: online policies act several times within the example's short run.
SCALE = replace(DEFAULT_SCALE, migration_epoch_accesses=512)


def main() -> None:
    print("Embedding-migration threshold sweep (Fig 13a):")
    data = run_fig13a(SCALE, thresholds=(0.10, 0.20, 0.35, 0.50), parallel=True)
    rows = []
    for threshold, metrics in data.items():
        rows.append([
            f"{threshold:.0%}",
            metrics["latency_cacheline_block"],
            f"{metrics['migration_cost_cacheline_block']:.2%}",
            metrics["latency_page_block"],
            f"{metrics['migration_cost_page_block']:.2%}",
        ])
    print(format_table(
        ["threshold", "latency (cacheline)", "mig cost", "latency (page block)", "mig cost"],
        rows, float_format="{:,.0f}",
    ))

    print()
    print("Cold-age threshold sweep vs TPP (Fig 13d):")
    data = run_fig13d(SCALE, thresholds=(0.04, 0.08, 0.16, 0.20), parallel=True)
    rows = [
        [name, metrics["latency"], f"{metrics['migration_cost']:.2%}"]
        for name, metrics in data.items()
    ]
    print(format_table(["config", "latency_ns", "migration cost"], rows, float_format="{:,.0f}"))


if __name__ == "__main__":
    main()
