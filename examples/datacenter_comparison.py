"""Datacenter-scale comparison: every evaluated system plus the TCO analysis.

Reproduces a mini version of Fig 12(a) (latency of Pond, Pond+PM, BEACON,
RecNMP and PIFS-Rec on an RMC workload) and of Fig 16 (TCO of PIFS-Rec vs
GPU parameter servers), printing the same rows the paper reports.  The
system grid is a single declarative sweep on the ``repro.api`` façade.

Run with:  python examples/datacenter_comparison.py
"""

from repro import MODEL_CONFIGS, Simulation, Sweep
from repro.analysis.report import format_table
from repro.analysis.stats import min_max_normalize
from repro.cost.tco import TCOModel

SYSTEMS = ("pond", "pond+pm", "beacon", "recnmp", "pifs-rec")
MODEL = "RMC2"


def main() -> None:
    sweep = Sweep(over={"system": list(SYSTEMS)}, base=Simulation(model=MODEL))
    results = sweep.run(parallel=True)

    latencies = {run.params["system"]: run.total_ns for run in results}
    normalized = min_max_normalize(latencies)
    pifs = results.only(system="pifs-rec")

    rows = [
        [
            run.params["system"],
            run.total_ns,
            normalized[run.params["system"]],
            run.total_ns / pifs.total_ns,
            run.sim.local_rows,
            run.sim.cxl_rows,
        ]
        for run in results
    ]
    print(f"SLS latency on {MODEL} ({results[0].sim.lookups} lookups):")
    print(format_table(
        ["system", "latency_ns", "normalized", "slowdown vs PIFS-Rec", "local rows", "CXL rows"],
        rows,
        float_format="{:.2f}",
    ))

    print()
    print("Deployment TCO (Fig 16):")
    tco = TCOModel(MODEL_CONFIGS["RMC4"])
    rows = []
    for name, report in tco.comparison().items():
        rows.append([name, report.capex_usd, report.opex_usd, report.total_usd])
    print(format_table(["config", "CAPEX $", "OPEX $ (3y)", "total $"], rows, float_format="{:,.0f}"))
    print(f"PIFS-Rec is {tco.cost_advantage(num_gpus=1):.2f}x cheaper than a 1-GPU parameter server")


if __name__ == "__main__":
    main()
