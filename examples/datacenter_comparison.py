"""Datacenter-scale comparison: every evaluated system plus the TCO analysis.

Reproduces a mini version of Fig 12(a) (latency of Pond, Pond+PM, BEACON,
RecNMP and PIFS-Rec on an RMC workload) and of Fig 16 (TCO of PIFS-Rec vs
GPU parameter servers), printing the same rows the paper reports.

Run with:  python examples/datacenter_comparison.py
"""

from repro import MODEL_CONFIGS, create_system
from repro.analysis.report import format_table
from repro.analysis.stats import min_max_normalize
from repro.cost.tco import TCOModel
from repro.experiments.common import DEFAULT_SCALE, evaluation_system, evaluation_workload

SYSTEMS = ("pond", "pond+pm", "beacon", "recnmp", "pifs-rec")
MODEL = "RMC2"


def main() -> None:
    workload = evaluation_workload(MODEL, DEFAULT_SCALE)
    system_config = evaluation_system(DEFAULT_SCALE)

    latencies = {}
    details = {}
    for name in SYSTEMS:
        result = create_system(name, system_config).run(workload)
        latencies[name] = result.total_ns
        details[name] = result
    normalized = min_max_normalize(latencies)

    rows = [
        [
            name,
            latencies[name],
            normalized[name],
            latencies[name] / latencies["pifs-rec"],
            details[name].local_rows,
            details[name].cxl_rows,
        ]
        for name in SYSTEMS
    ]
    print(f"SLS latency on {MODEL} ({workload.total_lookups} lookups):")
    print(format_table(
        ["system", "latency_ns", "normalized", "slowdown vs PIFS-Rec", "local rows", "CXL rows"],
        rows,
        float_format="{:.2f}",
    ))

    print()
    print("Deployment TCO (Fig 16):")
    tco = TCOModel(MODEL_CONFIGS["RMC4"])
    rows = []
    for name, report in tco.comparison().items():
        rows.append([name, report.capex_usd, report.opex_usd, report.total_usd])
    print(format_table(["config", "CAPEX $", "OPEX $ (3y)", "total $"], rows, float_format="{:,.0f}"))
    print(f"PIFS-Rec is {tco.cost_advantage(num_gpus=1):.2f}x cheaper than a 1-GPU parameter server")


if __name__ == "__main__":
    main()
