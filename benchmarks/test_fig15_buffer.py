"""Fig 15: on-switch buffer capacity and replacement-policy comparison."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.config import KIB
from repro.experiments import fig15


def test_fig15_buffer_sweep(benchmark, scale):
    data = run_once(
        benchmark,
        fig15.run_fig15,
        scale,
        buffer_sizes=(64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, 1024 * KIB),
        policies=("htr", "lru", "fifo"),
    )
    rows = []
    for policy, by_size in data.items():
        for size, metrics in by_size.items():
            rows.append([policy, size // KIB, metrics["speedup"], metrics["hit_ratio"]])
    print()
    print(format_table(["policy", "size_kib", "speedup_vs_no_buffer", "hit_ratio"], rows))

    for policy, by_size in data.items():
        # Caching never hurts, and the hit ratio grows with capacity.
        for metrics in by_size.values():
            assert metrics["speedup"] >= 0.98
            assert 0.0 <= metrics["hit_ratio"] <= 1.0
        assert by_size[512 * KIB]["hit_ratio"] >= by_size[64 * KIB]["hit_ratio"]
        assert by_size[512 * KIB]["speedup"] >= by_size[64 * KIB]["speedup"] * 0.98
    # HTR at the paper's 512 KB sweet spot is competitive with the best
    # alternative policy at the same capacity.
    htr = data["htr"][512 * KIB]["speedup"]
    best_other = max(data["lru"][512 * KIB]["speedup"], data["fifo"][512 * KIB]["speedup"])
    assert htr >= best_other * 0.95
