"""Engine vectorization benchmark: scalar oracle vs. the batched engine.

Replays the Fig 12 evaluation workload (the default evaluation scale, RMC2,
meta trace) on every Fig 12 scheme with both engines, asserts the results
are numerically identical, pins the speedup floors, and records the first
``BENCH_engine_vectorization.json`` baseline so later PRs can track the
performance trajectory.

Two floors are pinned:

* the **host-centric** schemes (Pond, Pond+PM, BEACON) — whose replay loop
  was pure per-lookup Python overhead — must aggregate to >= 5x;
* the **full Fig 12 grid** (adding RecNMP and PIFS-Rec, whose scalar paths
  are structurally leaner, so their headroom is smaller) must aggregate to
  >= 3x.

Set ``REPRO_BENCH_SMOKE=1`` (the CI docs job does) for a shorter replay
with relaxed floors and no baseline file.
"""

import json
import os
import pathlib
import time

from conftest import bench_environment, run_once

from repro.analysis.report import format_table
from repro.api.session import Simulation, clear_cache
from repro.experiments.common import DEFAULT_SCALE
from repro.experiments.fig12 import FIG12_SYSTEMS

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
#: More batches than the figure sweeps so per-session fixed costs (kernel
#: construction, placement profiling) amortize the way long replays do.
NUM_BATCHES = 4 if SMOKE else 16
MODEL = "RMC2"
HOST_CENTRIC = ("pond", "pond+pm", "beacon")
HOST_CENTRIC_FLOOR = 3.0 if SMOKE else 5.0
FULL_GRID_FLOOR = 2.0 if SMOKE else 3.0
REPEATS = 2 if SMOKE else 3

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_engine_vectorization.json"
FABRIC_BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fabric_kernels.json"

#: The systems whose replay is dominated by the switch/fabric kernels (the
#: in-switch accumulation path or, for RecNMP, per-row fabric commands).
FABRIC_SYSTEMS = ("recnmp", "pifs-rec", "pifs-rec-nopm", "beacon")
FABRIC_MODEL = "RMC1"
#: Aggregate floor over every fabric-kernel system.
FABRIC_FLOOR = 2.5 if SMOKE else 4.0
#: Floor for PIFS-Rec alone (the paper's system).
FABRIC_PIFS_FLOOR = 2.0 if SMOKE else 3.0
#: Floor for the recnmp+pifs-rec pair the PR-4 rewrite targeted.  RecNMP's
#: scalar path is structurally lean (no object-stack walk per lookup), so
#: its own ceiling is ~2x and the pair lands lower than the full set.
FABRIC_PAIR_FLOOR = 1.5 if SMOKE else 2.4


def _session(name, engine, model=MODEL):
    sim = Simulation(name).model(model).scale(DEFAULT_SCALE).num_batches(NUM_BATCHES)
    if engine != "scalar":
        sim.engine(engine)
    return sim


def _best_of(repeats, system, workload):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = system.run(workload)
        best = min(best, time.perf_counter() - started)
    return best, result


def _replay_grid():
    rows = []
    for name in FIG12_SYSTEMS:
        clear_cache()
        workload = _session(name, "scalar").build_workload()
        scalar_system = _session(name, "scalar").build_system()
        vector_system = _session(name, "vector").build_system()
        scalar_s, scalar_result = _best_of(REPEATS, scalar_system, workload)
        vector_s, vector_result = _best_of(REPEATS, vector_system, workload)
        assert vector_system._vector is not None, f"{name}: vector context missing"
        assert scalar_result.to_dict() == vector_result.to_dict(), (
            f"{name}: vector engine diverged from the scalar oracle"
        )
        rows.append(
            {
                "system": name,
                "lookups": scalar_result.lookups,
                "scalar_ms": scalar_s * 1e3,
                "vector_ms": vector_s * 1e3,
                "speedup": scalar_s / vector_s,
            }
        )
    return rows


def test_engine_vectorization(benchmark):
    rows = run_once(benchmark, _replay_grid)

    scalar_total = sum(row["scalar_ms"] for row in rows)
    vector_total = sum(row["vector_ms"] for row in rows)
    host_scalar = sum(r["scalar_ms"] for r in rows if r["system"] in HOST_CENTRIC)
    host_vector = sum(r["vector_ms"] for r in rows if r["system"] in HOST_CENTRIC)
    full_speedup = scalar_total / vector_total
    host_speedup = host_scalar / host_vector

    print()
    print(format_table(
        ["system", "lookups", "scalar_ms", "vector_ms", "speedup"],
        [[r["system"], r["lookups"], r["scalar_ms"], r["vector_ms"], r["speedup"]] for r in rows],
        float_format="{:,.2f}",
    ))
    print(f"host-centric aggregate ({', '.join(HOST_CENTRIC)}): {host_speedup:.2f}x")
    print(f"full fig12 grid aggregate: {full_speedup:.2f}x")

    if not SMOKE:
        BASELINE_PATH.write_text(json.dumps(
            {
                "benchmark": "engine_vectorization",
                "description": "fig12-scale replay (model RMC2, meta trace, "
                f"{NUM_BATCHES} batches at the default evaluation scale), "
                "scalar vs vector engine, best of "
                f"{REPEATS} runs each",
                "recorded_unix": int(time.time()),
                "host": bench_environment(),
                "entries": rows,
                "aggregate": {
                    "host_centric_systems": list(HOST_CENTRIC),
                    "host_centric_speedup": host_speedup,
                    "full_grid_speedup": full_speedup,
                },
                "floors": {
                    "host_centric": HOST_CENTRIC_FLOOR,
                    "full_grid": FULL_GRID_FLOOR,
                },
            },
            indent=2,
        ) + "\n")

    # The host-centric replay loop was pure interpreter overhead: the batched
    # engine must clear 5x there.  RecNMP/PIFS-Rec spend real work in shared
    # policy/buffer code, so the full-grid floor is lower.
    assert host_speedup >= HOST_CENTRIC_FLOOR, (
        f"host-centric replay speedup {host_speedup:.2f}x below the "
        f"{HOST_CENTRIC_FLOOR}x floor"
    )
    assert full_speedup >= FULL_GRID_FLOOR, (
        f"full-grid replay speedup {full_speedup:.2f}x below the {FULL_GRID_FLOOR}x floor"
    )


def _fabric_grid():
    rows = []
    for name in FABRIC_SYSTEMS:
        clear_cache()
        workload = _session(name, "scalar", FABRIC_MODEL).build_workload()
        scalar_system = _session(name, "scalar", FABRIC_MODEL).build_system()
        vector_system = _session(name, "vector", FABRIC_MODEL).build_system()
        scalar_s, scalar_result = _best_of(REPEATS, scalar_system, workload)
        vector_s, vector_result = _best_of(REPEATS, vector_system, workload)
        assert vector_system._vector is not None, f"{name}: vector context missing"
        assert scalar_result.to_dict() == vector_result.to_dict(), (
            f"{name}: vector engine diverged from the scalar oracle"
        )
        rows.append(
            {
                "system": name,
                "lookups": scalar_result.lookups,
                "scalar_ms": scalar_s * 1e3,
                "vector_ms": vector_s * 1e3,
                "speedup": scalar_s / vector_s,
            }
        )
    return rows


def test_fabric_kernels(benchmark):
    """The PR-4 fabric-kernel front: in-switch/fabric systems, fig12 scale.

    Replays the fig12-scale workload (model RMC1) on every system whose
    vector path runs through the rewritten switch/fabric kernels, pins the
    per-system and aggregate speedup floors, and records the
    ``BENCH_fabric_kernels.json`` baseline.
    """
    rows = run_once(benchmark, _fabric_grid)
    by_name = {row["system"]: row for row in rows}

    fabric_speedup = sum(r["scalar_ms"] for r in rows) / sum(r["vector_ms"] for r in rows)
    pair = [by_name["recnmp"], by_name["pifs-rec"]]
    pair_speedup = sum(r["scalar_ms"] for r in pair) / sum(r["vector_ms"] for r in pair)
    pifs_speedup = by_name["pifs-rec"]["speedup"]

    print()
    print(format_table(
        ["system", "lookups", "scalar_ms", "vector_ms", "speedup"],
        [[r["system"], r["lookups"], r["scalar_ms"], r["vector_ms"], r["speedup"]] for r in rows],
        float_format="{:,.2f}",
    ))
    print(f"fabric-kernel aggregate ({', '.join(FABRIC_SYSTEMS)}): {fabric_speedup:.2f}x")
    print(f"recnmp+pifs-rec pair: {pair_speedup:.2f}x")

    if not SMOKE:
        FABRIC_BASELINE_PATH.write_text(json.dumps(
            {
                "benchmark": "fabric_kernels",
                "description": "fig12-scale replay (model "
                f"{FABRIC_MODEL}, meta trace, {NUM_BATCHES} batches at the "
                "default evaluation scale) of the fabric/in-switch systems, "
                f"scalar vs vector engine, best of {REPEATS} runs each",
                "recorded_unix": int(time.time()),
                "host": bench_environment(),
                "entries": rows,
                "aggregate": {
                    "fabric_systems": list(FABRIC_SYSTEMS),
                    "fabric_speedup": fabric_speedup,
                    "recnmp_pifs_pair_speedup": pair_speedup,
                    "pifs_rec_speedup": pifs_speedup,
                },
                "floors": {
                    "fabric_aggregate": FABRIC_FLOOR,
                    "pifs_rec": FABRIC_PIFS_FLOOR,
                    "recnmp_pifs_pair": FABRIC_PAIR_FLOOR,
                },
            },
            indent=2,
        ) + "\n")

    assert fabric_speedup >= FABRIC_FLOOR, (
        f"fabric-kernel aggregate {fabric_speedup:.2f}x below the {FABRIC_FLOOR}x floor"
    )
    assert pifs_speedup >= FABRIC_PIFS_FLOOR, (
        f"pifs-rec speedup {pifs_speedup:.2f}x below the {FABRIC_PIFS_FLOOR}x floor"
    )
    assert pair_speedup >= FABRIC_PAIR_FLOOR, (
        f"recnmp+pifs-rec pair {pair_speedup:.2f}x below the {FABRIC_PAIR_FLOOR}x floor"
    )
