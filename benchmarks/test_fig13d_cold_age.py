"""Fig 13 (d): cold-age-threshold sweep for hot/cold page swapping vs TPP."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig13


def test_fig13d_cold_age_threshold(benchmark, scale):
    data = run_once(benchmark, fig13.run_fig13d, scale, thresholds=(0.04, 0.08, 0.16, 0.20))
    rows = [[name, m["latency"], m["migration_cost"]] for name, m in data.items()]
    print()
    print(format_table(["config", "latency_ns", "migration_cost_fraction"], rows))

    tuned = data["0.16"]
    tpp = data["TPP"]
    # The tuned swapping policy is at least as fast as TPP's eager promotion
    # (the paper reports ~12% lower latency) and migrates far less.
    assert tuned["latency"] <= tpp["latency"] * 1.02
    assert tuned["migration_cost"] <= tpp["migration_cost"]
    for metrics in data.values():
        assert metrics["latency"] > 0
