"""Fig 17: normalized throughput of GPU parameter servers vs PIFS-Rec."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig16_17


def test_fig17_throughput(benchmark):
    data = run_once(benchmark, fig16_17.run_fig17)
    rows = []
    for model, configs in data.items():
        for config, value in configs.items():
            rows.append([model, config, value])
    print()
    print(format_table(["model", "config", "normalized throughput"], rows))

    # Small model: GPUs win (the embedding tables fit in HBM).
    assert data["RMC1"]["GPUX4"] > data["RMC1"]["PIFS-Rec"]
    # Large models: memory bandwidth on the parameter server becomes the
    # bottleneck and PIFS-Rec overtakes even the 4-GPU cluster (paper: 1.6x).
    for model in ("RMC3", "RMC4"):
        assert data[model]["PIFS-Rec"] > data[model]["GPUX4"]
    ratio = data["RMC4"]["PIFS-Rec"] / data["RMC4"]["GPUX4"]
    assert ratio > 1.3


def test_fig17_performance_per_watt(benchmark):
    ppw = run_once(benchmark, fig16_17.run_performance_per_watt)
    print()
    print(format_table(["model", "PIFS-Rec PPW vs 4-GPU"], list(ppw.items())))
    # The paper reports PPW improving from 1.22x to 1.61x as models grow.
    assert ppw["RMC4"] > ppw["RMC1"]
    assert ppw["RMC4"] > 1.0
