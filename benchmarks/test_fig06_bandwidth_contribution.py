"""Fig 6: CXL bandwidth contribution under different workload configurations."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import characterization

CONFIGS = ((16, 32), (16, 64), (16, 128), (32, 32), (32, 64))


def test_fig06_cxl_contribution(benchmark):
    data = run_once(benchmark, characterization.run_fig6, configs=CONFIGS, lookups_per_thread=64)
    print()
    print(format_table(
        ["threads&dim", "dimm_share", "cxl_share", "app_bandwidth (B/ns)"],
        [[cfg, v["dimm"], v["cxl"], v["bandwidth"]] for cfg, v in data.items()],
    ))
    for cfg, values in data.items():
        # Under the 4:1 interleave policy CXL carries a visible minority share
        # of the traffic and the local DIMMs carry the rest.
        assert 0.05 < values["cxl"] < 0.5
        assert values["dimm"] > values["cxl"]
        assert abs(values["dimm"] + values["cxl"] - 1.0) < 1e-6
    # Larger embedding dimensions move more bytes per lookup, so the absolute
    # application bandwidth grows with the dimension (Fig 6's trend).
    assert data["16&128"]["bandwidth"] > data["16&32"]["bandwidth"]
