"""Fig 13 (a): embedding-migration threshold sweep and migration mechanisms."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig13


def test_fig13a_migration_threshold(benchmark, scale):
    data = run_once(benchmark, fig13.run_fig13a, scale, thresholds=(0.10, 0.20, 0.35, 0.50))
    rows = []
    for threshold, metrics in data.items():
        rows.append([
            f"{threshold:.0%}",
            metrics["latency_cacheline_block"],
            metrics["migration_cost_cacheline_block"],
            metrics["latency_page_block"],
            metrics["migration_cost_page_block"],
        ])
    print()
    print(format_table(
        ["threshold", "latency(cacheline)", "mig_cost(cacheline)", "latency(page)", "mig_cost(page)"],
        rows,
    ))

    for metrics in data.values():
        assert metrics["latency_cacheline_block"] > 0
        # The cache-line-block mechanism never costs more than page-block
        # migration and its query-visible latency is no worse.
        assert metrics["migration_cost_cacheline_block"] <= metrics["migration_cost_page_block"] + 1e-9
        assert metrics["latency_cacheline_block"] <= metrics["latency_page_block"] * 1.02
