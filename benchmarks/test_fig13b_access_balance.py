"""Fig 13 (b): per-device access-frequency balance before/after page management."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig13


def test_fig13b_device_balance(benchmark, scale):
    data = run_once(benchmark, fig13.run_fig13b, scale, num_devices=8)
    rows = [
        [device, data["before"].get(device, 0.0), data["after"].get(device, 0.0)]
        for device in sorted(data["before"])
    ]
    print()
    print(format_table(["device", "rel. freq before (%)", "rel. freq after (%)"], rows))
    print(f"std-dev before: {data['std'][0]:.2f}   after: {data['std'][1]:.2f}")

    # The spreading policy must not worsen the balance (the paper reports the
    # standard deviation dropping from 20.6 to 7.8).
    assert data["std"][1] <= data["std"][0] * 1.05
    assert len(data["before"]) == len(data["after"]) == 8
