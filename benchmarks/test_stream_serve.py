"""Streaming serve benchmark: out-of-core replay at eager speed.

Drives one open-loop serving session per system twice — once with the
whole workload materialized, once streamed out-of-core
(:class:`~repro.traces.workload.StreamingWorkload`, lazy arrivals,
bounded-lookahead dispatch) — and pins the streaming promise from both
sides: the serving metrics (latency percentiles, per-request records,
goodput, backend counters) are bit-identical, and the streaming session
costs at most ``STREAM_CEILING`` of the eager wall-clock.  The closed-loop
replay path is pinned the same way.  Records the
``BENCH_stream_serve.json`` trajectory baseline.

Set ``REPRO_BENCH_SMOKE=1`` for a shorter session with a relaxed ceiling
and no baseline file.
"""

import json
import os
import pathlib
import time

from conftest import bench_environment, run_once

from repro.analysis.report import format_table
from repro.api.session import Simulation, clear_cache
from repro.experiments.common import DEFAULT_SCALE
from repro.serve.server import ServeConfig, serve

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NUM_BATCHES = 4 if SMOKE else 16
MODEL = "RMC1"
SYSTEMS = ("pifs-rec", "pond", "beacon")
#: Streaming wall-clock ceiling relative to eager (the ISSUE's 1.2x bound;
#: smoke sessions are too short to time stably, so the ceiling relaxes).
STREAM_CEILING = 1.5 if SMOKE else 1.2
REPEATS = 2 if SMOKE else 3
CONFIG = ServeConfig(qps=3e5, arrival="poisson", max_batch_size=8, seed=7)

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_stream_serve.json"


def _session(name, stream):
    sim = Simulation(name).model(MODEL).scale(DEFAULT_SCALE).num_batches(NUM_BATCHES)
    if stream:
        sim.stream()
    return sim


def _best(repeats, run):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def _serve_once(name, stream):
    # Cold session each repeat: the eager path must pay workload
    # construction just as the streaming path regenerates the trace during
    # replay — that is the wall-clock a fresh serving session actually costs.
    clear_cache()
    session = _session(name, stream)
    system = session.build_system()
    workload = session.build_workload()
    return serve(system, workload, CONFIG)


def _run_once(name, stream):
    clear_cache()
    session = _session(name, stream)
    system = session.build_system()
    return system.run(session.build_workload())


def _stream_grid():
    rows = []
    for name in SYSTEMS:
        eager_s, eager_serve = _best(REPEATS, lambda: _serve_once(name, False))
        stream_s, stream_serve = _best(REPEATS, lambda: _serve_once(name, True))
        # Out-of-core replay must not change a single serving metric.
        assert eager_serve.latency.to_dict() == stream_serve.latency.to_dict(), (
            f"{name}: streaming serve latency percentiles diverged"
        )
        assert eager_serve.sim.to_dict() == stream_serve.sim.to_dict(), (
            f"{name}: streaming serve backend counters diverged"
        )
        assert eager_serve.records == stream_serve.records, (
            f"{name}: streaming serve per-request records diverged"
        )
        assert eager_serve.goodput_qps == stream_serve.goodput_qps

        eager_run_s, eager_run = _best(REPEATS, lambda: _run_once(name, False))
        stream_run_s, stream_run = _best(REPEATS, lambda: _run_once(name, True))
        assert eager_run.to_dict() == stream_run.to_dict(), (
            f"{name}: streaming closed-loop replay diverged"
        )
        rows.append(
            {
                "system": name,
                "requests": eager_serve.requests,
                "eager_serve_ms": eager_s * 1e3,
                "stream_serve_ms": stream_s * 1e3,
                "serve_ratio": stream_s / eager_s,
                "eager_run_ms": eager_run_s * 1e3,
                "stream_run_ms": stream_run_s * 1e3,
                "run_ratio": stream_run_s / eager_run_s,
            }
        )
    return rows


def test_stream_serve(benchmark):
    rows = run_once(benchmark, _stream_grid)

    serve_ratio = sum(r["stream_serve_ms"] for r in rows) / sum(
        r["eager_serve_ms"] for r in rows
    )
    run_ratio = sum(r["stream_run_ms"] for r in rows) / sum(
        r["eager_run_ms"] for r in rows
    )

    print()
    print(format_table(
        ["system", "requests", "eager_serve_ms", "stream_serve_ms", "serve_ratio",
         "eager_run_ms", "stream_run_ms", "run_ratio"],
        [[r["system"], r["requests"], r["eager_serve_ms"], r["stream_serve_ms"],
          r["serve_ratio"], r["eager_run_ms"], r["stream_run_ms"], r["run_ratio"]]
         for r in rows],
        float_format="{:,.2f}",
    ))
    print(
        f"streaming/eager aggregate ({', '.join(SYSTEMS)}): "
        f"serve {serve_ratio:.2f}x, closed-loop {run_ratio:.2f}x "
        f"(ceiling {STREAM_CEILING}x)"
    )

    if not SMOKE:
        BASELINE_PATH.write_text(json.dumps(
            {
                "benchmark": "stream_serve",
                "description": "open-loop serving + closed-loop replay "
                f"(model {MODEL}, {NUM_BATCHES} batches, poisson arrivals "
                f"at {CONFIG.qps:,.0f} qps, batch<= {CONFIG.max_batch_size}), "
                "eager vs out-of-core streaming workload, best of "
                f"{REPEATS} runs each; metrics asserted bit-identical",
                "recorded_unix": int(time.time()),
                "host": bench_environment(),
                "entries": rows,
                "aggregate": {
                    "systems": list(SYSTEMS),
                    "serve_ratio": serve_ratio,
                    "run_ratio": run_ratio,
                },
                "ceilings": {"stream_over_eager": STREAM_CEILING},
            },
            indent=2,
        ) + "\n")

    assert serve_ratio <= STREAM_CEILING, (
        f"streaming serve costs {serve_ratio:.2f}x eager "
        f"(ceiling {STREAM_CEILING}x)"
    )
    assert run_ratio <= STREAM_CEILING, (
        f"streaming closed-loop replay costs {run_ratio:.2f}x eager "
        f"(ceiling {STREAM_CEILING}x)"
    )
