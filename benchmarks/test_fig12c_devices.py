"""Fig 12 (c): scaling with the number of CXL memory devices (RMC4)."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig12


def test_fig12c_memory_device_scaling(benchmark, scale):
    data = run_once(benchmark, fig12.run_fig12c, scale, device_counts=(2, 4, 8, 16))
    rows = []
    for count, by_system in data.items():
        for system, value in by_system.items():
            rows.append([count, system, value])
    print()
    print(format_table(["devices", "system", "latency_ns"], rows))

    # PIFS-Rec wins at every device count and its advantage over the
    # host-centric baseline grows as devices (and thus device-level
    # parallelism) are added.
    for count, by_system in data.items():
        assert by_system["pifs-rec"] < by_system["pond"]
    assert data[16]["pifs-rec"] <= data[2]["pifs-rec"] * 1.05
    gain_2 = data[2]["pond"] / data[2]["pifs-rec"]
    gain_16 = data[16]["pond"] / data[16]["pifs-rec"]
    assert gain_16 > gain_2 * 0.9
