"""Fleet scaling benchmark: 8-shard pooled vs serial execution.

A ~1M-request streamed trace (vector engine, table-affinity router) is
replayed across 8 fleet shards twice: serially in-process
(``Fleet.run(workers=0)``) and across the persistent worker pool
(``workers=8``, each shard shipped as a small stream-handle view — the
parent never materializes the trace).  The benchmark asserts the two
paths return byte-identical fleet results, reports the fleet goodput and
(from a pooled open-loop session) the fleet tail latency, and records
the ``BENCH_fleet_scaling.json`` baseline.

The pinned floor is parallel speedup, so it is conditioned on the host
actually having cores to scale onto:

* ``cpus >= 2``: pooled must beat serial by ``POOLED_FLOOR`` (1.5x full,
  1.1x relaxed under ``REPRO_BENCH_SMOKE=1`` — the CI floor).
* ``cpus == 1``: parallel speedup is physically impossible, so the bench
  degrades to pinning the orchestration overhead instead — pooled
  wall-clock must stay within ``OVERHEAD_CEILING`` of serial.  The
  recorded baseline keeps the multi-core CI floor and notes which bound
  was applied (the host's CPU count is in the environment block).
"""

import json
import os
import pathlib
import time

from conftest import bench_environment, run_once

from repro.api.session import Simulation, clear_cache
from repro.api.sweep import shutdown_worker_pool, worker_pool
from repro.experiments.common import DEFAULT_SCALE
from repro.fleet import Fleet
from repro.serve.server import ServeConfig

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
SHARDS = 8
WORKERS = 8
ROUTER = "table-affinity"
BATCH_SIZE = 64
#: 2048 batches x 8 tables x 64 queries ~= 1.05M requests (the ISSUE's
#: ~1M-request trace); smoke sessions replay a 32k-request slice.
NUM_BATCHES = 64 if SMOKE else 2048
SERVE_BATCHES = 16 if SMOKE else 64
REPEATS = 2

POOLED_FLOOR = 1.1 if SMOKE else 1.5
#: Single-core fallback: pooled execution may pay IPC/scheduling overhead
#: but must stay within this ceiling of the serial wall-clock.
OVERHEAD_CEILING = 1.6
PARALLEL_HOST = (os.cpu_count() or 1) >= 2

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_fleet_scaling.json"


def _fleet_spec(num_batches=None):
    return (
        Simulation()
        .scale(DEFAULT_SCALE)
        .engine("vector")
        .batch_size(BATCH_SIZE)
        .num_batches(num_batches or NUM_BATCHES)
        .stream()
        .fleet(SHARDS, router=ROUTER)
        .spec()
    )


def _best(repeats, run):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = run()
        best = min(best, time.perf_counter() - started)
    return best, result


def _compare_modes():
    clear_cache()
    shutdown_worker_pool()
    fleet = Fleet(_fleet_spec())

    # The parent holds the trace as a handle, never as materialized
    # requests: every shard ships as a small path+range+router view.
    import pickle

    for view in fleet.shard_workloads():
        payload = pickle.dumps(view)
        assert len(payload) < 4096, (
            f"shard view pickled to {len(payload)} bytes — not a handle"
        )

    # Warm what both modes share: the counted stream handle and the pool
    # (the persistent-pool regime every chained fleet session runs in).
    # The tiny pooled fleet run pays the workers' first-task imports so the
    # timed comparison measures shard execution, not interpreter startup.
    fleet._shared_workload()
    worker_pool().get(WORKERS)
    Fleet(_fleet_spec(2)).run(workers=WORKERS)

    serial_s, serial = _best(REPEATS, lambda: Fleet(_fleet_spec()).run(workers=0))
    pooled_s, pooled = _best(REPEATS, lambda: Fleet(_fleet_spec()).run(workers=WORKERS))

    # Pooled execution must not change a single number.
    assert serial.to_dict() == pooled.to_dict(), (
        "pooled fleet execution diverged from the serial path"
    )

    # Fleet tail latency from a pooled open-loop session on a shorter
    # slice of the same trace (serving is per-request work; the scaling
    # measurement above stays closed-loop).
    serve_result = Fleet(_fleet_spec(SERVE_BATCHES)).serve(
        ServeConfig(qps=3e5, arrival="poisson", seed=7, sla_ns=5e6),
        workers=WORKERS,
    )
    assert serve_result.latency.is_finite(), "fleet serve latency not finite"

    shutdown_worker_pool()
    return {
        "shards": SHARDS,
        "workers": WORKERS,
        "router": ROUTER,
        "requests": serial.requests,
        "lookups": serial.lookups,
        "serial_ms": serial_s * 1e3,
        "pooled_ms": pooled_s * 1e3,
        "speedup": serial_s / pooled_s,
        "goodput_lookups_per_us": serial.goodput_lookups_per_us,
        "serve_requests": serve_result.requests,
        "serve_p99_ns": serve_result.latency.p99_ns,
        "serve_goodput_qps": serve_result.goodput_qps,
    }


def test_fleet_scaling(benchmark):
    row = run_once(benchmark, _compare_modes)

    print()
    print(
        f"{row['requests']:,}-request streamed trace across {SHARDS} shards "
        f"({ROUTER} router): serial {row['serial_ms']:,.0f} ms, "
        f"pooled x{WORKERS} {row['pooled_ms']:,.0f} ms "
        f"({row['speedup']:.2f}x), fleet goodput "
        f"{row['goodput_lookups_per_us']:,.1f} lookups/us"
    )
    print(
        f"fleet serve ({row['serve_requests']:,} requests): "
        f"p99 {row['serve_p99_ns']:,.0f} ns, "
        f"goodput {row['serve_goodput_qps']:,.0f} qps"
    )
    applied = (
        {"fleet_pooled_speedup": POOLED_FLOOR}
        if PARALLEL_HOST
        else {"fleet_pooled_overhead_ceiling": OVERHEAD_CEILING}
    )
    if not PARALLEL_HOST:
        print(
            "single-CPU host: parallel speedup impossible, pinning the "
            f"pooled overhead ceiling ({OVERHEAD_CEILING}x) instead of the "
            f"{POOLED_FLOOR}x CI floor"
        )

    if not SMOKE:
        BASELINE_PATH.write_text(json.dumps(
            {
                "benchmark": "fleet_scaling",
                "description": f"{row['requests']:,}-request streamed trace "
                f"({NUM_BATCHES} batches x {BATCH_SIZE} queries, vector "
                f"engine) replayed across {SHARDS} fleet shards behind the "
                f"{ROUTER} router: in-process serial vs the persistent "
                f"{WORKERS}-worker pool (results asserted byte-identical), "
                f"best of {REPEATS}; plus a pooled open-loop session for "
                "the fleet tail latency",
                "recorded_unix": int(time.time()),
                "host": bench_environment(),
                "entry": row,
                "floors": {"fleet_pooled_speedup": 1.5, "applied": applied},
            },
            indent=2,
        ) + "\n")

    if PARALLEL_HOST:
        assert row["speedup"] >= POOLED_FLOOR, (
            f"pooled fleet execution {row['speedup']:.2f}x below the "
            f"{POOLED_FLOOR}x floor"
        )
    else:
        assert row["pooled_ms"] <= row["serial_ms"] * OVERHEAD_CEILING, (
            f"pooled fleet overhead {row['pooled_ms'] / row['serial_ms']:.2f}x "
            f"exceeds the single-core {OVERHEAD_CEILING}x ceiling"
        )
