"""Fig 12 (b): sensitivity to the trace distribution (RMC4)."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.stats import min_max_normalize
from repro.experiments import fig12


def test_fig12b_trace_distributions(benchmark, scale):
    data = run_once(benchmark, fig12.run_fig12b, scale)
    rows = []
    for trace, by_system in data.items():
        normalized = min_max_normalize(by_system)
        for system in fig12.FIG12_SYSTEMS:
            rows.append([trace, system, by_system[system], normalized[system]])
    print()
    print(format_table(["trace", "system", "latency_ns", "normalized"], rows))

    for trace, by_system in data.items():
        assert by_system["pifs-rec"] < by_system["pond"]
        assert by_system["pifs-rec"] < by_system["beacon"]
    # Pond suffers most under the skewed (Zipfian) trace, where congestion on
    # the hot devices is worst; PIFS-Rec's advantage there is the largest.
    zipf_gain = data["zipfian"]["pond"] / data["zipfian"]["pifs-rec"]
    uniform_gain = data["uniform"]["pond"] / data["uniform"]["pifs-rec"]
    assert zipf_gain > 1.5
    assert uniform_gain > 1.0
