"""Packet-tier benchmark: fidelity contract, overhead ceiling, divergence.

Two fronts, both recorded into ``BENCH_packet_tier.json``:

* **overhead** — replays the fig12-scale workload on fabric-bound systems
  with the scalar engine and with ``fidelity="packet"`` (unbounded
  buffers).  The results must be bit-identical (the tier's fidelity
  contract) and the slowdown must stay under a pinned ceiling: the tier
  is two list-appends per transfer plus one vectorized replay at session
  end, not a second simulator.
* **congestion evidence** — replays the catalog congestion scenarios
  (`flash-crowd-incast`, `priority-inversion`, `hot-table-nmp-storm`)
  against their analytic twins and asserts each shows queueing effects
  the analytic tier cannot price: diverging completion time, nonzero
  credit backpressure or drop/retry counts, and nonzero queue-depth
  timelines.

Set ``REPRO_BENCH_SMOKE=1`` (the CI docs job does) for a shorter replay
with a relaxed ceiling and no baseline file.
"""

import json
import os
import pathlib
import time

from conftest import bench_environment, run_once

from repro.analysis.report import format_table
from repro.api.session import Simulation, clear_cache
from repro.experiments.common import DEFAULT_SCALE

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NUM_BATCHES = 4 if SMOKE else 16
MODEL = "RMC2"
#: Fabric-bound systems: every lookup crosses links the tier instruments.
OVERHEAD_SYSTEMS = ("pond", "recnmp", "pifs-rec")
#: Aggregate packet/scalar wall-clock ceiling (the tier is an observer,
#: not a second simulator).  Measured ~1.4-1.9x per system.
OVERHEAD_CEILING = 3.5 if SMOKE else 2.5
REPEATS = 2 if SMOKE else 3

CONGESTION_SCENARIOS = ("flash-crowd-incast", "priority-inversion", "hot-table-nmp-storm")

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_packet_tier.json"


def _merge_baseline(section: str, payload: dict) -> None:
    """Update one section of the baseline file, preserving the other."""
    data = {}
    if BASELINE_PATH.exists():
        try:
            data = json.loads(BASELINE_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data.setdefault("benchmark", "packet_tier")
    data["recorded_unix"] = int(time.time())
    data["host"] = bench_environment()
    data[section] = payload
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _session(name, engine):
    sim = Simulation(name).model(MODEL).scale(DEFAULT_SCALE).num_batches(NUM_BATCHES)
    if engine != "scalar":
        sim.engine(engine)
    return sim


def _best_of(repeats, system, workload):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = system.run(workload)
        best = min(best, time.perf_counter() - started)
    return best, result


def _strip_net(result) -> dict:
    data = result.to_dict()
    data.pop("net", None)
    return data


def _overhead_grid():
    rows = []
    for name in OVERHEAD_SYSTEMS:
        clear_cache()
        workload = _session(name, "scalar").build_workload()
        scalar_system = _session(name, "scalar").build_system()
        packet_system = _session(name, "packet").build_system()
        scalar_s, scalar_result = _best_of(REPEATS, scalar_system, workload)
        packet_s, packet_result = _best_of(REPEATS, packet_system, workload)
        assert _strip_net(scalar_result) == _strip_net(packet_result), (
            f"{name}: uncongested packet tier diverged from the scalar oracle"
        )
        net = packet_result.net
        assert net is not None and net.packets > 0
        assert not net.congested, f"{name}: unbounded buffers reported congestion"
        rows.append(
            {
                "system": name,
                "lookups": scalar_result.lookups,
                "packets": net.packets,
                "scalar_ms": scalar_s * 1e3,
                "packet_ms": packet_s * 1e3,
                "overhead": packet_s / scalar_s,
            }
        )
    return rows


def test_packet_overhead(benchmark):
    """Bit-identity + the overhead ceiling of the uncongested packet tier."""
    rows = run_once(benchmark, _overhead_grid)

    aggregate = sum(r["packet_ms"] for r in rows) / sum(r["scalar_ms"] for r in rows)

    print()
    print(format_table(
        ["system", "lookups", "packets", "scalar_ms", "packet_ms", "overhead"],
        [
            [r["system"], r["lookups"], r["packets"], r["scalar_ms"], r["packet_ms"], r["overhead"]]
            for r in rows
        ],
        float_format="{:,.2f}",
    ))
    print(f"aggregate packet-tier overhead: {aggregate:.2f}x (ceiling {OVERHEAD_CEILING}x)")

    if not SMOKE:
        _merge_baseline("overhead", {
            "description": "fig12-scale replay (model "
            f"{MODEL}, meta trace, {NUM_BATCHES} batches at the default "
            "evaluation scale), scalar engine vs fidelity='packet' with "
            f"unbounded buffers, best of {REPEATS} runs each",
            "entries": rows,
            "aggregate_overhead": aggregate,
            "ceiling": OVERHEAD_CEILING,
        })

    assert aggregate <= OVERHEAD_CEILING, (
        f"packet-tier overhead {aggregate:.2f}x above the {OVERHEAD_CEILING}x ceiling"
    )


def _congestion_grid():
    from repro.scenarios import catalog  # noqa: F401  (registers the catalog)
    from repro.scenarios.registry import scenario

    rows = []
    for name in CONGESTION_SCENARIOS:
        entry = scenario(name)
        analytic = entry.simulation(quick=True).engine("scalar").packet(None).run(cache=False)
        packet = entry.run(quick=True, cache=False)
        net = packet.net
        timeline_points = sum(
            1 for port in net.ports.values() for _t, depth in port.timeline if depth > 0
        )
        rows.append(
            {
                "scenario": name,
                "analytic_total_ns": analytic.total_ns,
                "packet_total_ns": packet.total_ns,
                "divergence_pct": 100.0 * (packet.total_ns / analytic.total_ns - 1.0),
                "backpressure_ns": net.backpressure_ns,
                "drops": net.drops,
                "retries": net.retries,
                "max_queue_depth": net.max_queue_depth,
                "congested_ports": sorted(net.congested_ports()),
                "nonzero_timeline_points": timeline_points,
            }
        )
    return rows


def test_congestion_divergence(benchmark):
    """Every catalog congestion scenario shows effects analytic tiers cannot."""
    rows = run_once(benchmark, _congestion_grid)

    print()
    print(format_table(
        ["scenario", "divergence_pct", "backpressure_ns", "drops", "max_depth"],
        [
            [r["scenario"], r["divergence_pct"], r["backpressure_ns"], r["drops"],
             r["max_queue_depth"]]
            for r in rows
        ],
        float_format="{:,.2f}",
    ))

    if not SMOKE:
        _merge_baseline("congestion", {
            "description": "catalog congestion scenarios (quick scale) vs "
            "their analytic twins: completion-time divergence and the "
            "queueing counters behind it",
            "entries": rows,
        })

    for row in rows:
        name = row["scenario"]
        # Queueing left visible marks: stalls or drop/retries, congested
        # ports, and nonzero queue-depth timelines.
        assert row["backpressure_ns"] > 0.0 or row["drops"] > 0, (
            f"{name}: no backpressure and no drops — not a congestion scenario"
        )
        assert row["congested_ports"], f"{name}: no port reported congestion"
        assert row["nonzero_timeline_points"] > 0, f"{name}: empty queue-depth timelines"
        # And completion time genuinely diverged from the analytic answer.
        assert row["divergence_pct"] > 0.1, (
            f"{name}: packet tier within 0.1% of the analytic tier "
            f"({row['divergence_pct']:.3f}%)"
        )
