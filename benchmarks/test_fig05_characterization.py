"""Fig 5: characterization of remote-socket vs CXL vs interleaved placement."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import characterization

TABLE_SIZES = (16 * 1024, 64 * 1024, 256 * 1024)
DIMS = (16, 64, 128)


def test_fig05_placement_and_threading(benchmark):
    data = run_once(
        benchmark,
        characterization.run_fig5,
        table_sizes=TABLE_SIZES,
        embedding_dims=DIMS,
        lookups_per_thread=64,
    )
    rows = []
    for placement, by_threading in data.items():
        for threading, by_dim in by_threading.items():
            for dim, by_size in by_dim.items():
                for size, value in by_size.items():
                    rows.append([placement, threading, dim, size, value])
    print()
    print(format_table(["placement", "threading", "emb_dim", "table_size", "norm_bandwidth"], rows))

    for threading in ("batch", "table"):
        for dim in DIMS:
            for size in TABLE_SIZES:
                remote = data["remote"][threading][dim][size]
                cxl = data["cxl"][threading][dim][size]
                interleave = data["interleave"][threading][dim][size]
                # (a)-(d): spilling 20% of the working set costs bandwidth.
                assert remote < 1.0
                assert cxl < 1.0
                # (e)-(f): interleaving beats allocating everything on CXL.
                assert interleave > 1.0
