"""Micro-benchmark: vectorized workload construction vs. the scalar loops.

``build_workload`` used to compute every row address with a per-row Python
call to ``space.row_address`` and ``unique_pages`` built a Python set one
request at a time.  Both are now single ``np.ndarray`` operations; this
benchmark pins the equivalence and the speedup.
"""

import time

import numpy as np
from conftest import run_once

from repro.analysis.report import format_table
from repro.config import WorkloadConfig
from repro.traces.meta import generate_meta_like_trace
from repro.traces.synthetic import TraceDistribution
from repro.traces.workload import build_workload


def _bench_config(scale):
    return WorkloadConfig(
        model=scale.model("RMC2"),
        batch_size=64,
        pooling_factor=32,
        num_batches=2,
        distribution="meta",
        seed=scale.seed,
    )


def _scalar_addresses(config):
    """The pre-vectorization reference: one ``row_address`` call per row."""
    from repro.memsys.address_space import AddressSpace

    space = AddressSpace.for_model(config.model)
    dist = TraceDistribution.from_name(config.distribution)
    per_bag = []
    for batch in generate_meta_like_trace(config, distribution=dist):
        for table in range(batch.num_tables):
            indices = batch.indices_per_table[table]
            offsets = batch.offsets_per_table[table]
            bounds = np.concatenate([offsets, [len(indices)]])
            for sample in range(batch.batch_size):
                start, end = int(bounds[sample]), int(bounds[sample + 1])
                rows = indices[start:end]
                if len(rows) == 0:
                    continue
                per_bag.append(
                    np.array([space.row_address(table, int(r)) for r in rows], dtype=np.int64)
                )
    return per_bag


def _best_of(repeats, func, *args):
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = func(*args)
        best = min(best, time.perf_counter() - started)
    return best, result


def test_workload_build_vectorization(benchmark, scale):
    config = _bench_config(scale)
    workload = run_once(benchmark, build_workload, config)
    vector_s, _ = _best_of(3, build_workload, config)
    scalar_s, reference = _best_of(3, _scalar_addresses, config)

    # Bit-identical addresses, bag by bag.
    assert len(reference) == len(workload.requests)
    for request, expected in zip(workload.requests, reference):
        assert np.array_equal(request.addresses, expected)

    # unique_pages: vectorized count equals the old set-building loop.
    pages = set()
    page_size = workload.address_space.page_size
    for request in workload.requests:
        pages.update((request.addresses // page_size).tolist())
    unique_s, unique = _best_of(3, workload.unique_pages)
    assert unique == len(pages)

    print()
    print(format_table(
        ["path", "scalar_ms", "vectorized_ms", "speedup"],
        [["build_workload", scalar_s * 1e3, vector_s * 1e3, scalar_s / vector_s]],
        float_format="{:,.2f}",
    ))
    print(f"unique_pages: {unique} pages in {unique_s * 1e3:.2f} ms")

    # The vectorized builder does strictly more work than the scalar
    # reference (it also assembles the request objects), yet must still win
    # clearly; 2x is a conservative floor for the observed ~5-10x.
    assert scalar_s / vector_s > 2.0
