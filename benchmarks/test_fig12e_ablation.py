"""Fig 12 (e): ablation study of the PIFS-Rec optimizations."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig12


def test_fig12e_ablation(benchmark, scale):
    data = run_once(benchmark, fig12.run_fig12e, scale, models=("RMC1", "RMC4"))
    rows = []
    for model, steps in data.items():
        for step, value in steps.items():
            rows.append([model, step, value])
    print()
    print(format_table(["model", "step", "latency_ns"], rows))

    for model, steps in data.items():
        # Adding the process core is the single biggest step over Pond.
        assert steps["PC"] < steps["Baseline"]
        # Each further optimization never hurts, and the full design wins.
        assert steps["PC/OoO"] <= steps["PC"] * 1.02
        assert steps["PC/OoO/PM"] <= steps["PC/OoO"] * 1.05
        assert steps["PC/OoO/PM/OSB"] <= steps["PC/OoO/PM"] * 1.02
        assert steps["PC/OoO/PM/OSB"] < steps["Baseline"]
