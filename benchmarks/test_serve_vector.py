"""Serve-path vectorization benchmark: scalar serve vs. vector serve.

Drives the open-loop serving pipeline (seeded Poisson arrivals, per-host
admission queues, dynamic batching, lane scheduling) end to end with both
engines: with ``engine="vector"`` the dispatch loop routes every dynamic
batch through :meth:`SLSSystem.service_batch_vector`, so the batch is
timed on the numpy-resolved fast path and the per-request cursors are
recovered from the batch result.  The benchmark asserts the two paths
produce identical serving metrics (percentiles, goodput, backend
counters), pins the serve-path throughput floor, and records the
``BENCH_serve_vector.json`` baseline.

Set ``REPRO_BENCH_SMOKE=1`` for a shorter session with relaxed floors and
no baseline file.
"""

import json
import os
import pathlib
import time

from conftest import bench_environment, run_once

from repro.analysis.report import format_table
from repro.api.session import Simulation, clear_cache
from repro.experiments.common import DEFAULT_SCALE
from repro.serve.server import ServeConfig, serve

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NUM_BATCHES = 4 if SMOKE else 16
MODEL = "RMC1"
#: The CLI's default serving comparison set.
SYSTEMS = ("pifs-rec", "pond", "beacon")
SERVE_FLOOR = 1.3 if SMOKE else 2.0
REPEATS = 2 if SMOKE else 3
CONFIG = ServeConfig(qps=3e5, arrival="poisson", max_batch_size=8, seed=7)

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_serve_vector.json"


def _session(name, engine):
    sim = Simulation(name).model(MODEL).scale(DEFAULT_SCALE).num_batches(NUM_BATCHES)
    if engine != "scalar":
        sim.engine(engine)
    return sim


def _best_serve(repeats, name, engine, workload):
    best, result = float("inf"), None
    for _ in range(repeats):
        system = _session(name, engine).build_system()
        started = time.perf_counter()
        result = serve(system, workload, CONFIG)
        best = min(best, time.perf_counter() - started)
    return best, result


def _serve_grid():
    rows = []
    for name in SYSTEMS:
        clear_cache()
        workload = _session(name, "scalar").build_workload()
        scalar_s, scalar_result = _best_serve(REPEATS, name, "scalar", workload)
        vector_s, vector_result = _best_serve(REPEATS, name, "vector", workload)
        # The vector serve path must not change a single serving metric.
        assert scalar_result.latency.to_dict() == vector_result.latency.to_dict(), (
            f"{name}: vector serve latency percentiles diverged"
        )
        assert scalar_result.sim.to_dict() == vector_result.sim.to_dict(), (
            f"{name}: vector serve backend counters diverged"
        )
        assert scalar_result.goodput_qps == vector_result.goodput_qps
        rows.append(
            {
                "system": name,
                "requests": scalar_result.requests,
                "scalar_ms": scalar_s * 1e3,
                "vector_ms": vector_s * 1e3,
                "speedup": scalar_s / vector_s,
            }
        )
    return rows


def test_serve_vectorization(benchmark):
    rows = run_once(benchmark, _serve_grid)

    aggregate = sum(r["scalar_ms"] for r in rows) / sum(r["vector_ms"] for r in rows)

    print()
    print(format_table(
        ["system", "requests", "scalar_ms", "vector_ms", "speedup"],
        [[r["system"], r["requests"], r["scalar_ms"], r["vector_ms"], r["speedup"]] for r in rows],
        float_format="{:,.2f}",
    ))
    print(f"serve-path aggregate ({', '.join(SYSTEMS)}): {aggregate:.2f}x")

    if not SMOKE:
        BASELINE_PATH.write_text(json.dumps(
            {
                "benchmark": "serve_vector",
                "description": "open-loop serving session (model "
                f"{MODEL}, {NUM_BATCHES} batches, poisson arrivals at "
                f"{CONFIG.qps:,.0f} qps, batch<= {CONFIG.max_batch_size}), "
                f"scalar vs vector serve path, best of {REPEATS} runs each",
                "recorded_unix": int(time.time()),
                "host": bench_environment(),
                "entries": rows,
                "aggregate": {
                    "systems": list(SYSTEMS),
                    "serve_speedup": aggregate,
                },
                "floors": {"serve_aggregate": SERVE_FLOOR},
            },
            indent=2,
        ) + "\n")

    assert aggregate >= SERVE_FLOOR, (
        f"serve-path vector speedup {aggregate:.2f}x below the {SERVE_FLOOR}x floor"
    )
