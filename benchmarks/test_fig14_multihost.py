"""Fig 14: end-to-end speedup with multiple hosts and batch sizes."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig14


def test_fig14_multihost_speedup(benchmark, scale):
    data = run_once(
        benchmark,
        fig14.run_fig14,
        scale,
        models=("RMC1", "RMC2"),
        host_counts=(1, 2, 4, 8),
        batch_sizes=(8, 64),
    )
    rows = []
    for model, by_batch in data.items():
        for batch, by_hosts in by_batch.items():
            for hosts, speedup in by_hosts.items():
                rows.append([model, batch, hosts, speedup])
    print()
    print(format_table(["model", "batch", "hosts", "end_to_end_speedup"], rows))

    for model, by_batch in data.items():
        for batch, by_hosts in by_batch.items():
            # Speedup over the Pond host baseline is >= 1 and grows with the
            # number of concurrent hosts.
            assert all(v >= 1.0 for v in by_hosts.values())
            assert by_hosts[8] >= by_hosts[1]
        # Larger batches spend a larger share of time in SLS, so the
        # end-to-end benefit is larger (the paper's main Fig 14 trend).
        assert max(by_batch[64].values()) >= max(by_batch[8].values()) * 0.95
