"""Fig 18 / §VI-D: hardware power & area overheads and energy consumption."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig18


def test_fig18_power_area(benchmark):
    data = run_once(benchmark, fig18.run_fig18)
    rows = []
    for name, values in data.items():
        if name == "reductions":
            continue
        rows.append([name, values["power_mw"], values["area_um2"]])
    print()
    print(format_table(["component", "power_mw", "area_um2"], rows))
    reductions = data["reductions"]
    print(f"power reduction vs RecNMP x8: {reductions['power_reduction_x']:.2f}x")
    print(f"area  reduction vs RecNMP x8: {reductions['area_reduction_x']:.2f}x")

    # Paper: 2.7x lower power and 2.02x less area than RecNMP x8.
    assert 2.3 < reductions["power_reduction_x"] < 3.2
    assert 1.7 < reductions["area_reduction_x"] < 2.4
    assert data["Process Core"]["power_mw"] == 9.3


def test_energy_savings(benchmark, scale):
    data = run_once(benchmark, fig18.run_energy_comparison, scale, model="RMC2")
    print()
    print(format_table(["metric", "value"], list(data.items()), float_format="{:.4f}"))
    # The paper reports ~15% average energy reduction over the conventional
    # DIMM+CPU solution; require a clearly positive saving.
    assert data["saving_fraction"] > 0.05
