"""Observability benchmark: tracing cost and the NullRecorder's non-cost.

Two fronts, both recorded into ``BENCH_obs_overhead.json``:

* **trace overhead** — one cell per fidelity tier (scalar, vector, packet)
  timed unobserved and with a :class:`~repro.obs.recorder.TraceRecorder`
  attached.  The observed run must stay bit-identical (recording receives
  timestamps the engines already computed) and the traced/null wall-clock
  ratio must stay under a pinned ceiling.
* **null overhead** — the default :class:`~repro.obs.recorder.NullRecorder`
  must cost the vector engine ≤ 3% in aggregate.  A differential timing of
  two full runs cannot resolve 3% reliably, so the pin is computed from
  first principles: microbenchmark the ``obs.enabled`` attribute check,
  bound the checks per request from the traced run's own event volume,
  and divide by the measured per-request wall time.

Set ``REPRO_BENCH_SMOKE=1`` (the CI docs job does) for a shorter replay
with relaxed ceilings and no baseline file.
"""

import json
import os
import pathlib
import time

from conftest import bench_environment, run_once

from repro.analysis.report import format_table
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale
from repro.experiments.obs_overhead import OVERHEAD_CELLS, run_obs_overhead
from repro.obs.recorder import NULL_RECORDER, TraceRecorder

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
NUM_BATCHES = 4 if SMOKE else 16
REPEATS = 2 if SMOKE else 3
#: Traced/null wall-clock ceiling per tier aggregate (measured ~1.0-1.1x;
#: the packet cell pays the most — its bridge replays every transfer).
TRACE_CEILING = 2.5 if SMOKE else 1.75
#: The paper-facing pin: recording *off* must cost the vector engine ≤ 3%.
NULL_CEILING = 0.03
#: Vector-engine cells the null pin aggregates over.
VECTOR_SYSTEMS = ("pond", "pifs-rec")

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_obs_overhead.json"


def _merge_baseline(section: str, payload: dict) -> None:
    """Update one section of the baseline file, preserving the others."""
    data = {}
    if BASELINE_PATH.exists():
        try:
            data = json.loads(BASELINE_PATH.read_text())
        except (ValueError, OSError):
            data = {}
    data.setdefault("benchmark", "obs_overhead")
    data["recorded_unix"] = int(time.time())
    data["host"] = bench_environment()
    data[section] = payload
    BASELINE_PATH.write_text(json.dumps(data, indent=2) + "\n")


def _bench_scale() -> EvaluationScale:
    from dataclasses import replace

    return replace(DEFAULT_SCALE, num_batches=NUM_BATCHES)


def test_trace_overhead(benchmark):
    """Bit-identity + the wall-clock ceiling of an attached TraceRecorder."""
    report = run_once(
        benchmark, run_obs_overhead, _bench_scale(), OVERHEAD_CELLS, REPEATS
    )

    aggregate = sum(r["traced_ms"] for r in report.values()) / sum(
        r["null_ms"] for r in report.values()
    )

    print()
    print(format_table(
        ["cell", "null_ms", "traced_ms", "ratio", "events", "identical"],
        [
            [cell, r["null_ms"], r["traced_ms"], r["ratio"], r["events"], str(r["identical"])]
            for cell, r in report.items()
        ],
        float_format="{:,.3f}",
    ))
    print(f"aggregate trace overhead: {aggregate:.3f}x (ceiling {TRACE_CEILING}x)")

    for cell, row in report.items():
        assert row["identical"], f"{cell}: recording perturbed the simulated total"
        assert row["events"] > 0, f"{cell}: the traced run recorded nothing"

    if not SMOKE:
        _merge_baseline("trace", {
            "description": "one cell per fidelity tier (scalar/vector/packet) "
            f"at the default evaluation scale with {NUM_BATCHES} batches, "
            f"unobserved vs TraceRecorder attached, best of {REPEATS} runs each",
            "entries": report,
            "aggregate_ratio": aggregate,
            "ceiling": TRACE_CEILING,
        })

    assert aggregate <= TRACE_CEILING, (
        f"trace overhead {aggregate:.3f}x above the {TRACE_CEILING}x ceiling"
    )


def _null_check_cost_ns(iterations: int = 1_000_000) -> float:
    """Wall cost of one ``obs.enabled`` check on the NullRecorder, in ns.

    Differences out the bare loop so only the attribute access is priced.
    """
    obs = NULL_RECORDER
    hits = 0
    start = time.perf_counter_ns()
    for _ in range(iterations):
        if obs.enabled:
            hits += 1
    checked = time.perf_counter_ns() - start
    start = time.perf_counter_ns()
    for _ in range(iterations):
        pass
    bare = time.perf_counter_ns() - start
    assert hits == 0
    return max(0.0, (checked - bare) / iterations)


def _vector_cell(system: str, scale: EvaluationScale):
    """(wall_ns, requests, events) of one vector-engine session."""
    from repro.api.session import Simulation

    sim = Simulation(system, scale=scale).engine("vector")
    best_ns, requests = float("inf"), 0
    for _ in range(REPEATS):
        sim.observe(None)
        start = time.perf_counter_ns()
        run = sim.run(cache=False)
        best_ns = min(best_ns, time.perf_counter_ns() - start)
        requests = run.sim.requests
    recorder = TraceRecorder(label=f"null-pin:{system}")
    traced = sim.observe(recorder).run(cache=False)
    assert traced.total_ns == run.total_ns
    return best_ns, requests, len(recorder) + sum(1 for _ in recorder.metrics())


def test_null_overhead(benchmark):
    """NullRecorder (recording off) costs the vector engine ≤ 3% aggregate.

    Every gated emission site executes at most one ``obs.enabled`` check
    per event it *would* record, so the traced run's event+metric volume
    bounds the checks the unobserved run paid.  That count times the
    microbenchmarked per-check cost, over the measured wall time, is the
    overhead fraction — resolvable well below the 3% pin, unlike a
    differential timing of two noisy full runs.
    """
    def grid():
        scale = _bench_scale()
        per_check_ns = _null_check_cost_ns()
        rows = []
        for system in VECTOR_SYSTEMS:
            wall_ns, requests, checks = _vector_cell(system, scale)
            overhead = checks * per_check_ns / wall_ns if wall_ns else 0.0
            rows.append({
                "system": system,
                "wall_ms": wall_ns / 1e6,
                "requests": requests,
                "bound_checks": checks,
                "per_check_ns": per_check_ns,
                "overhead_fraction": overhead,
            })
        return rows

    rows = run_once(benchmark, grid)
    aggregate = sum(r["overhead_fraction"] * r["wall_ms"] for r in rows) / sum(
        r["wall_ms"] for r in rows
    )

    print()
    print(format_table(
        ["system", "wall_ms", "requests", "bound_checks", "per_check_ns", "overhead_pct"],
        [
            [r["system"], r["wall_ms"], r["requests"], r["bound_checks"],
             r["per_check_ns"], 100.0 * r["overhead_fraction"]]
            for r in rows
        ],
        float_format="{:,.3f}",
    ))
    print(f"aggregate NullRecorder overhead: {100.0 * aggregate:.3f}% "
          f"(ceiling {100.0 * NULL_CEILING:.0f}%)")

    if not SMOKE:
        _merge_baseline("null", {
            "description": "vector-engine sessions at the default evaluation "
            f"scale with {NUM_BATCHES} batches: per-check cost of the "
            "NullRecorder attribute test times the traced event volume "
            "(an upper bound on checks paid), over the measured wall time",
            "entries": rows,
            "aggregate_overhead_fraction": aggregate,
            "ceiling": NULL_CEILING,
        })

    assert aggregate <= NULL_CEILING, (
        f"NullRecorder overhead {100.0 * aggregate:.3f}% above the "
        f"{100.0 * NULL_CEILING:.0f}% ceiling"
    )
