"""Shared configuration for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
("laptop") scale, prints the same rows/series the paper reports, and asserts
the qualitative shape (who wins, roughly by how much, where crossovers
fall).  Absolute numbers are not expected to match the paper — the substrate
is a functional simulator, not the authors' testbed.
"""

import os
import platform

import pytest

from repro.experiments.common import EvaluationScale

#: The scale used by the benchmark suite: the default evaluation scale with
#: fewer batches so the whole suite finishes in a few minutes.
BENCH_SCALE = EvaluationScale(num_batches=2)


@pytest.fixture(scope="session")
def scale():
    return BENCH_SCALE


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


def bench_environment() -> dict:
    """Environment metadata stamped into every ``BENCH_*.json`` baseline.

    Makes trajectory files self-describing: two baselines recorded on
    different interpreters/numpy builds/machines are tellable apart
    without digging through CI logs.
    """
    try:
        import numpy

        numpy_version = numpy.__version__
    except ImportError:  # pragma: no cover - numpy ships with the toolchain
        numpy_version = None
    return {
        "python": platform.python_version(),
        "numpy": numpy_version,
        "machine": platform.machine(),
        "system": platform.system(),
        "cpus": os.cpu_count(),
        "smoke": os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0"),
    }
