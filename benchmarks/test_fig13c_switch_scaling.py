"""Fig 13 (c): latency vs fabric-switch count (multi-layer forwarding)."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig13


def test_fig13c_fabric_switch_scaling(benchmark, scale):
    data = run_once(
        benchmark, fig13.run_fig13c, scale, switch_counts=(1, 2, 4, 8), batch_sizes=(8, 64)
    )
    rows = []
    for batch, by_count in data.items():
        for count, value in by_count.items():
            rows.append([batch, count, value])
    print()
    print(format_table(["batch", "switches", "latency_ns"], rows))

    for batch, by_count in data.items():
        # More fabric switches (each with its own host and local CXL memory)
        # reduce the latency; the effect is strongest for the larger batch.
        assert by_count[8] < by_count[1]
    gain_small = data[8][1] / data[8][8]
    gain_large = data[64][1] / data[64][8]
    assert gain_large > gain_small
    assert gain_large > 2.0
