"""Fig 16: normalized TCO of PIFS-Rec vs GPU parameter servers."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig16_17


def test_fig16_tco(benchmark):
    data = run_once(benchmark, fig16_17.run_fig16)
    rows = []
    for model, configs in data.items():
        for config, values in configs.items():
            rows.append([model, config, values["capex"], values["opex"], values["total"], values["total_usd"]])
    print()
    print(format_table(["model", "config", "capex(norm)", "opex(norm)", "total(norm)", "total_usd"], rows))

    for model, configs in data.items():
        # PIFS-Rec is the cheapest deployment for every model, and CAPEX
        # dominates the cost structure.
        assert configs["Ours"]["total"] < min(configs[f"X{n}"]["total"] for n in (2, 3, 4))
        assert configs["Ours"]["capex"] > configs["Ours"]["opex"]
    # Cost advantage is larger for the smaller models (paper: 3.38x for RMC1
    # vs 2.53x for RMC4 against a single-GPU server).
    rmc1_adv = data["RMC1"]["X2"]["total"] / data["RMC1"]["Ours"]["total"]
    rmc4_adv = data["RMC4"]["X2"]["total"] / data["RMC4"]["Ours"]["total"]
    assert rmc1_adv > 1.5
    assert rmc4_adv > 1.5
