"""Sweep-engine scaling benchmark: persistent pool vs. the legacy pool.

A multi-point parallel sweep (4 systems x 4-6 batch sizes, vector
engine; 16+ grid points) is executed through each engine mode, mimicking
how the experiment drivers chain sweeps: a warm-up sweep sharing the
measured grid's workloads, then the timed grid.

* ``reuse_pool=False`` (the PR-3 engine): a fresh fork pool per ``run()``
  call, one task per IPC round trip, every worker re-deriving the traces
  it touches — and everything torn down with the grid.
* ``reuse_pool=True`` (the persistent engine): the pool survives between
  sweeps, grid points are scheduled as chunks grouped by workload key,
  and each chunk ships its trace from the parent's cross-run cache.

The benchmark asserts the persistent engine returns results identical to
the serial path, pins the wall-clock floor, and records the
``BENCH_sweep_scaling.json`` baseline.  Set ``REPRO_BENCH_SMOKE=1`` for
fewer repetitions, a relaxed floor and no baseline file.
"""

import json
import os
import pathlib
import time

from conftest import bench_environment, run_once

from repro.api.session import Simulation, clear_cache
from repro.api.sweep import Sweep, shutdown_worker_pool

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")
REPEATS = 2 if SMOKE else 5
SWEEP_FLOOR = 1.1 if SMOKE else 1.5
PROCESSES = 4

#: Many cheap grid points: the regime where engine overhead (pool
#: startup, per-task IPC, per-worker trace re-derivation) is what a sweep
#: actually pays for, and exactly how the figure drivers use sweeps.
MEASURED_GRID = {
    "system": ["beacon", "recnmp", "pifs-rec", "tpp"],
    "batch_size": [4, 8, 16, 32],
}
#: Two systems per workload so the warm-up's chunks are multi-task — the
#: parent builds (and caches) each trace once, exactly like the figure
#: drivers' comparison sweeps.
WARMUP_GRID = {
    "system": ["pond", "pond+pm"],
    "batch_size": MEASURED_GRID["batch_size"],
}

BASELINE_PATH = pathlib.Path(__file__).resolve().parent.parent / "BENCH_sweep_scaling.json"


def _base():
    return Simulation().quick().num_batches(1).engine("vector")


def _measured_sweep():
    return Sweep(MEASURED_GRID, base=_base())


def _timed_sequence(reuse_pool):
    """Warm-up sweep then the timed 16-point grid, from a cold engine."""
    clear_cache()
    shutdown_worker_pool()
    Sweep(WARMUP_GRID, base=_base()).run(
        parallel=True, processes=PROCESSES, reuse_pool=reuse_pool, cache=False
    )
    started = time.perf_counter()
    result = _measured_sweep().run(
        parallel=True, processes=PROCESSES, reuse_pool=reuse_pool, cache=False
    )
    return time.perf_counter() - started, result


def _compare_engines():
    clear_cache()
    serial = _measured_sweep().run(parallel=False, cache=False)

    legacy_s = float("inf")
    persistent_s = float("inf")
    persistent = None
    for _ in range(REPEATS):
        elapsed, _result = _timed_sequence(reuse_pool=False)
        legacy_s = min(legacy_s, elapsed)
        elapsed, persistent = _timed_sequence(reuse_pool=True)
        persistent_s = min(persistent_s, elapsed)
    shutdown_worker_pool()

    # Parallel execution on the persistent pool is byte-identical to serial.
    assert [r.params for r in persistent] == [r.params for r in serial]
    assert [r.total_ns for r in persistent] == [r.total_ns for r in serial], (
        "persistent-pool sweep diverged from the serial path"
    )
    return {
        "points": len(serial),
        "legacy_ms": legacy_s * 1e3,
        "persistent_ms": persistent_s * 1e3,
        "speedup": legacy_s / persistent_s,
    }


def test_sweep_scaling(benchmark):
    row = run_once(benchmark, _compare_engines)

    print()
    print(
        f"{row['points']}-point parallel sweep ({PROCESSES} workers): "
        f"legacy fork-per-run pool {row['legacy_ms']:,.0f} ms, "
        f"persistent+chunked pool {row['persistent_ms']:,.0f} ms "
        f"({row['speedup']:.2f}x)"
    )

    if not SMOKE:
        BASELINE_PATH.write_text(json.dumps(
            {
                "benchmark": "sweep_scaling",
                "description": f"{row['points']}-point parallel sweep "
                f"({len(MEASURED_GRID['system'])} systems x "
                f"{len(MEASURED_GRID['batch_size'])} batch sizes, quick "
                "scale, vector engine) after a workload-sharing warm-up "
                "sweep: legacy fork-per-run pool vs the persistent chunked "
                f"pool, {PROCESSES} workers, best of {REPEATS} sequences "
                "each",
                "recorded_unix": int(time.time()),
                "host": bench_environment(),
                "entry": row,
                "floors": {"sweep_speedup": SWEEP_FLOOR},
            },
            indent=2,
        ) + "\n")

    assert row["speedup"] >= SWEEP_FLOOR, (
        f"persistent sweep engine {row['speedup']:.2f}x below the {SWEEP_FLOOR}x floor"
    )
