"""Fig 12 (a): normalized latency of every scheme across RMC1-RMC4."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.analysis.stats import min_max_normalize
from repro.experiments import fig12


def test_fig12a_models_vs_systems(benchmark, scale):
    data = run_once(benchmark, fig12.run_fig12a, scale)
    rows = []
    for model, by_system in data.items():
        normalized = min_max_normalize(by_system)
        for system in fig12.FIG12_SYSTEMS:
            rows.append([model, system, by_system[system], normalized[system]])
    print()
    print(format_table(["model", "system", "latency_ns", "normalized"], rows))

    for model, by_system in data.items():
        # PIFS-Rec beats Pond, Pond+PM and BEACON on every model.
        assert by_system["pifs-rec"] < by_system["pond"]
        assert by_system["pifs-rec"] < by_system["pond+pm"]
        assert by_system["pifs-rec"] < by_system["beacon"]
        # RecNMP is the closest competitor (paper: within ~10%).
        assert by_system["recnmp"] < by_system["beacon"]

    # Headline claim: a multi-x advantage over Pond on the large models.
    assert data["RMC4"]["pond"] / data["RMC4"]["pifs-rec"] > 2.0
    # Latency grows with the model footprint for the Pond baseline.
    assert data["RMC4"]["pond"] > data["RMC1"]["pond"]
