"""Extra ablation (§IV-C2 "Versatility"): fabric switches without process cores.

Not a paper figure, but a design choice DESIGN.md calls out: when a remote
fabric switch reports CNV = 0 (no compute capability), the local switch must
stream its raw rows across the inter-switch link and accumulate them itself.
The benchmark quantifies how much of the scale-out benefit depends on every
switch carrying a process core.
"""

from conftest import run_once

from repro.analysis.report import format_table
from repro.config import CXLConfig
from repro.cxl.topology import FabricTopology
from repro.pifs.forwarding import MultiSwitchCoordinator

ROWS_PER_REQUEST = 32
ROW_BYTES = 512
PER_ROW_FETCH_NS = 180.0


def _remote_time(compute_capable: bool) -> float:
    cxl = CXLConfig()
    topology = FabricTopology(2, cxl)
    coordinator = MultiSwitchCoordinator(topology, cxl, compute_capable=[True, compute_capable])
    return coordinator.remote_accumulation_time(
        local_switch=0,
        remote_switch=1,
        rows=ROWS_PER_REQUEST,
        row_bytes=ROW_BYTES,
        per_row_fetch_ns=PER_ROW_FETCH_NS,
        issue_ns=0.0,
    )


def test_cnv_ablation(benchmark):
    def run():
        return {"CNV=1 (remote process core)": _remote_time(True),
                "CNV=0 (raw row streaming)": _remote_time(False)}

    data = run_once(benchmark, run)
    print()
    print(format_table(["configuration", "remote accumulation time (ns)"], list(data.items())))

    smart = data["CNV=1 (remote process core)"]
    dumb = data["CNV=0 (raw row streaming)"]
    # Remote in-switch accumulation avoids streaming every raw row over the
    # inter-switch link, so it must be clearly faster.
    assert smart < dumb
    assert dumb / smart > 1.05
