"""Fig 12 (d): sensitivity to the local DRAM capacity (RMC4)."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import fig12


def test_fig12d_dram_capacity(benchmark, scale):
    data = run_once(benchmark, fig12.run_fig12d, scale, multipliers=(1, 2, 4))
    rows = []
    for multiplier, by_system in data.items():
        for system, value in by_system.items():
            rows.append([f"x{multiplier}", system, value])
    print()
    print(format_table(["dram", "system", "latency_ns"], rows))

    # PIFS-Rec remains the best at every DRAM budget, and extra DRAM plays a
    # comparatively minor role for it (the paper reports only 4-6%
    # improvement going from 128 GB to 512 GB).
    for multiplier, by_system in data.items():
        assert by_system["pifs-rec"] < by_system["pond"]
    assert data[4]["pifs-rec"] <= data[1]["pifs-rec"]
    pifs_gain = data[1]["pifs-rec"] / data[4]["pifs-rec"]
    pond_gain = data[1]["pond"] / data[4]["pond"]
    assert pifs_gain < pond_gain * 1.2
