"""Tables I-III: model parameters, hardware configuration, hardware specs."""

from conftest import run_once

from repro.analysis.report import format_table
from repro.experiments import tables


def test_table1_models(benchmark):
    rows = run_once(benchmark, tables.table1_models)
    print()
    print(format_table(
        ["name", "emb_num", "emb_dim", "bottom_mlp", "top_mlp"],
        [[r["name"], r["emb_num"], r["emb_dim"], r["bottom_mlp"], r["top_mlp"]] for r in rows],
    ))
    by_name = {r["name"]: r for r in rows}
    assert by_name["RMC1"]["emb_num"] == 16384
    assert by_name["RMC4"]["emb_dim"] == 128
    assert by_name["RMC3"]["bottom_mlp"] == "2048-1024-256"


def test_table2_hardware_configuration(benchmark):
    data = run_once(benchmark, tables.table2_hardware)
    print()
    print(format_table(["key", "value"], [[k, str(v)] for k, v in data["dram"].items()]))
    print(format_table(["key", "value"], [[k, str(v)] for k, v in data["cxl"].items()]))
    assert data["dram"]["cl_rcd_rp_ras"] == (28, 28, 28, 52)
    assert data["cxl"]["downstream_port_gbps"] == 64.0
    assert data["cxl"]["access_penalty_ns"] == 100.0


def test_table3_hardware_specs(benchmark):
    rows = run_once(benchmark, tables.table3_specs)
    print()
    print(format_table(
        ["name", "tdp_w", "price_usd"],
        [[r["name"], r["tdp_watts"], r["price_usd"]] for r in rows],
    ))
    prices = {r["key"]: r["price_usd"] for r in rows}
    assert prices["gpu"] == 18900.0
    assert prices["server_cpu"] == 4695.0
