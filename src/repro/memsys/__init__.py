"""Tiered-memory substrate: pages, memory nodes, placement, hotness tracking.

The package models the machine of the characterization study (§III): a
local-DRAM tier, an optional remote-CPU-socket tier, and one or more CXL
memory nodes.  Placement is page granular (4 KB), matching the paper's
software architecture; hotness tracking and the migration engine are the
mechanisms the page-management policies in :mod:`repro.pagemgmt` build on.
"""

from repro.memsys.address_space import AddressSpace
from repro.memsys.allocator import InterleaveAllocator, PlacementPolicy
from repro.memsys.hotness import AccessTracker
from repro.memsys.node import MemoryNode, MemoryTier
from repro.memsys.page import Page, page_id_of
from repro.memsys.tiered import TieredMemorySystem

__all__ = [
    "AddressSpace",
    "InterleaveAllocator",
    "PlacementPolicy",
    "AccessTracker",
    "MemoryNode",
    "MemoryTier",
    "Page",
    "page_id_of",
    "TieredMemorySystem",
]
