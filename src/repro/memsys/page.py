"""Page abstraction used by the tiered memory system."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import PAGE_SIZE_BYTES


def page_id_of(address: int, page_size: int = PAGE_SIZE_BYTES) -> int:
    """Return the page id containing byte ``address``."""
    if address < 0:
        raise ValueError("address must be non-negative")
    return address // page_size


@dataclass
class Page:
    """A 4 KB page tracked by the tiered memory system."""

    page_id: int
    node_id: int
    access_count: int = 0
    last_access_ns: float = 0.0
    is_private_hot: bool = False
    owner_host: int | None = None
    migrations: int = 0

    def record_access(self, now_ns: float) -> None:
        """Record one access to this page."""
        self.access_count += 1
        self.last_access_ns = now_ns

    def decay(self, factor: float = 0.5) -> None:
        """Exponentially decay the access count (used between epochs)."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        self.access_count = int(self.access_count * factor)


__all__ = ["Page", "page_id_of"]
