"""Flat embedding address space shared by hosts, switches and devices.

Embedding tables are laid out contiguously: table ``t`` starts at
``t * table_stride``.  The address of a row is then
``table_base + row_index * row_bytes``.  The same addresses index the page
table of the tiered memory system and, after placement, are translated to a
device-local physical address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config import PAGE_SIZE_BYTES, ModelConfig
from repro.memsys.page import page_id_of


@dataclass(frozen=True)
class AddressSpace:
    """Address arithmetic for a model's embedding tables."""

    num_tables: int
    num_embeddings: int
    row_bytes: int
    page_size: int = PAGE_SIZE_BYTES

    @classmethod
    def for_model(cls, model: ModelConfig) -> "AddressSpace":
        return cls(
            num_tables=model.num_tables,
            num_embeddings=model.num_embeddings,
            row_bytes=model.embedding_row_bytes,
        )

    @property
    def table_bytes(self) -> int:
        return self.num_embeddings * self.row_bytes

    @property
    def table_stride(self) -> int:
        """Table stride, aligned up to a page boundary."""
        stride = self.table_bytes
        remainder = stride % self.page_size
        if remainder:
            stride += self.page_size - remainder
        return stride

    @property
    def total_bytes(self) -> int:
        return self.table_stride * self.num_tables

    @property
    def total_pages(self) -> int:
        return self.total_bytes // self.page_size

    @property
    def rows_per_page(self) -> int:
        return max(1, self.page_size // self.row_bytes)

    def row_address(self, table: int, row: int) -> int:
        """Byte address of ``row`` in ``table``."""
        if not 0 <= table < self.num_tables:
            raise ValueError(f"table {table} out of range [0, {self.num_tables})")
        if not 0 <= row < self.num_embeddings:
            raise ValueError(f"row {row} out of range [0, {self.num_embeddings})")
        return table * self.table_stride + row * self.row_bytes

    def row_addresses(self, table: int, rows: np.ndarray) -> np.ndarray:
        """Byte addresses of every row in ``rows`` (vectorized ``row_address``).

        One bounds check over the whole array replaces the per-row Python
        loop; the hot workload builder calls this once per (batch, table).
        """
        if not 0 <= table < self.num_tables:
            raise ValueError(f"table {table} out of range [0, {self.num_tables})")
        rows = np.asarray(rows, dtype=np.int64)
        if rows.size and (int(rows.min()) < 0 or int(rows.max()) >= self.num_embeddings):
            raise ValueError(f"row index out of range [0, {self.num_embeddings})")
        return table * self.table_stride + rows * self.row_bytes

    def page_of_row(self, table: int, row: int) -> int:
        """Page id containing ``row`` of ``table``."""
        return page_id_of(self.row_address(table, row), self.page_size)

    def locate(self, address: int) -> Tuple[int, int]:
        """Inverse mapping: return (table, row) for a row-aligned address."""
        if address < 0 or address >= self.total_bytes:
            raise ValueError(f"address {address} outside the embedding space")
        table = address // self.table_stride
        offset = address - table * self.table_stride
        row = offset // self.row_bytes
        if row >= self.num_embeddings:
            raise ValueError(f"address {address} falls in table padding")
        return table, row


__all__ = ["AddressSpace"]
