"""Initial page-placement policies.

The characterization study compares four placements of the embedding
working set (Fig 5):

* ``LOCAL_ONLY``       — everything in CPU-attached local DRAM,
* ``REMOTE_FRACTION``  — a fraction spills to the remote CPU socket,
* ``CXL_FRACTION``     — the same fraction spills to CXL memory,
* ``INTERLEAVE``       — software interleaving: the spill fraction is
  round-robined across all CXL nodes while the rest stays local (the 4:1
  policy the paper found optimal),
* ``CXL_ONLY``         — everything on CXL (the BEACON placement).
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, List, Sequence

from repro.memsys.node import MemoryNode, MemoryTier


class PlacementPolicy(Enum):
    LOCAL_ONLY = "local_only"
    REMOTE_FRACTION = "remote_fraction"
    CXL_FRACTION = "cxl_fraction"
    INTERLEAVE = "interleave"
    CXL_ONLY = "cxl_only"


class InterleaveAllocator:
    """Maps page ids to memory nodes according to a placement policy."""

    def __init__(
        self,
        nodes: Sequence[MemoryNode],
        policy: PlacementPolicy = PlacementPolicy.INTERLEAVE,
        spill_fraction: float = 0.2,
    ) -> None:
        if not nodes:
            raise ValueError("at least one memory node is required")
        if not 0.0 <= spill_fraction <= 1.0:
            raise ValueError("spill_fraction must be in [0, 1]")
        self._nodes = list(nodes)
        self._policy = policy
        self._spill_fraction = spill_fraction
        self._local = [n for n in self._nodes if n.tier is MemoryTier.LOCAL_DRAM]
        self._remote = [n for n in self._nodes if n.tier is MemoryTier.REMOTE_SOCKET]
        self._cxl = [n for n in self._nodes if n.tier is MemoryTier.CXL]

    @property
    def policy(self) -> PlacementPolicy:
        return self._policy

    @property
    def spill_fraction(self) -> float:
        return self._spill_fraction

    def _require(self, nodes: List[MemoryNode], tier: str) -> List[MemoryNode]:
        if not nodes:
            raise ValueError(f"placement policy {self._policy.value} needs a {tier} node")
        return nodes

    def place_pages(self, num_pages: int) -> Dict[int, int]:
        """Return a mapping page_id -> node_id for ``num_pages`` pages.

        Pages are placed deterministically: page ids are striped so that the
        spill fraction is spread uniformly over the whole address range
        (every k-th page spills), which mirrors interleaved allocation rather
        than allocating a contiguous cold region.
        """
        if num_pages <= 0:
            raise ValueError("num_pages must be positive")
        placement: Dict[int, int] = {}
        if self._policy is PlacementPolicy.LOCAL_ONLY:
            local = self._require(self._local, "local DRAM")
            for page in range(num_pages):
                placement[page] = local[page % len(local)].node_id
            return placement
        if self._policy is PlacementPolicy.CXL_ONLY:
            # Everything lives on a single CXL expander (the configuration the
            # characterization study compares the interleave policy against).
            cxl = self._require(self._cxl, "CXL")
            for page in range(num_pages):
                placement[page] = cxl[0].node_id
            return placement

        if self._policy is PlacementPolicy.REMOTE_FRACTION:
            spill_nodes = self._require(self._remote, "remote socket")
        elif self._policy is PlacementPolicy.CXL_FRACTION:
            # A single CXL expander absorbs the spill (no software
            # interleaving) — the configuration of Fig 5 (c)-(d).
            spill_nodes = self._require(self._cxl, "CXL")[:1]
        else:  # INTERLEAVE spreads the spill across every CXL node
            spill_nodes = self._require(self._cxl, "CXL")
        local = self._require(self._local, "local DRAM")

        if self._spill_fraction <= 0.0:
            period, spill_per_period = 1, 0
        else:
            period = max(1, round(1.0 / self._spill_fraction))
            spill_per_period = 1
        spill_counter = 0
        for page in range(num_pages):
            spills = period > 0 and (page % period) < spill_per_period and self._spill_fraction > 0
            if spills:
                node = spill_nodes[spill_counter % len(spill_nodes)]
                spill_counter += 1
            else:
                node = local[page % len(local)]
            placement[page] = node.node_id
        return placement

    def spill_nodes(self) -> List[MemoryNode]:
        """The nodes receiving spilled (non-local) pages under this policy."""
        if self._policy is PlacementPolicy.REMOTE_FRACTION:
            return list(self._remote)
        if self._policy in (PlacementPolicy.CXL_FRACTION, PlacementPolicy.INTERLEAVE, PlacementPolicy.CXL_ONLY):
            return list(self._cxl)
        return []


__all__ = ["InterleaveAllocator", "PlacementPolicy"]
