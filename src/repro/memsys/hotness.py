"""Access-frequency tracking ("page heatmaps", §IV-B2)."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Tuple


class AccessTracker:
    """Counts accesses per key (page id, row address, device id, ...).

    Hosts use one tracker per device to build page heatmaps; the on-switch
    address profiler uses a tracker over row addresses to rank HTR buffer
    candidates.
    """

    def __init__(self) -> None:
        self._counts: Counter = Counter()
        self._total = 0

    @property
    def total(self) -> int:
        return self._total

    def record(self, key: int, weight: int = 1) -> None:
        """Record ``weight`` accesses to ``key``."""
        self._counts[key] += weight
        self._total += weight

    def record_many(self, keys: Iterable[int]) -> None:
        """Record one access per key in ``keys`` (the batched :meth:`record`).

        Exactly equivalent to ``for key in keys: self.record(key)`` — counts,
        totals and the counter's insertion order (which breaks ties in
        :meth:`hottest`/:meth:`coldest`) all match the scalar loop — but the
        counting happens in C via ``Counter.update``.
        """
        if not isinstance(keys, (list, tuple)):
            keys = list(keys)
        self._counts.update(keys)
        self._total += len(keys)

    def record_counts(self, counts: Dict[int, int]) -> None:
        """Merge pre-aggregated ``{key: count}`` pairs into the tracker.

        Used by the vectorized engine to flush access counts buffered over a
        batch; equivalent to ``record(key, count)`` per pair.
        """
        self._counts.update(counts)
        self._total += sum(counts.values())

    def count(self, key: int) -> int:
        return self._counts.get(key, 0)

    def hottest(self, k: int) -> List[Tuple[int, int]]:
        """The ``k`` most accessed keys as (key, count), hottest first."""
        return self._counts.most_common(k)

    def coldest(self, k: int) -> List[Tuple[int, int]]:
        """The ``k`` least accessed tracked keys as (key, count)."""
        items = sorted(self._counts.items(), key=lambda kv: (kv[1], kv[0]))
        return items[:k]

    def frequency(self, key: int) -> float:
        """Relative access frequency of ``key`` in [0, 1]."""
        if self._total == 0:
            return 0.0
        return self._counts.get(key, 0) / self._total

    def keys(self) -> Iterable[int]:
        return self._counts.keys()

    def as_dict(self) -> Dict[int, int]:
        return dict(self._counts)

    def decay(self, factor: float = 0.5) -> None:
        """Decay all counts; drops keys that reach zero."""
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        decayed: Counter = Counter()
        total = 0
        for key, value in self._counts.items():
            new_value = int(value * factor)
            if new_value > 0:
                decayed[key] = new_value
                total += new_value
        self._counts = decayed
        self._total = total

    def merge(self, other: "AccessTracker") -> None:
        """Merge another tracker's counts into this one."""
        self._counts.update(other._counts)
        self._total += other._total

    def reset(self) -> None:
        self._counts.clear()
        self._total = 0


__all__ = ["AccessTracker"]
