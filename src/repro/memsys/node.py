"""Memory nodes (tiers) of the simulated machine."""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Sequence, Tuple

import numpy as np

from repro.config import CACHE_LINE_BYTES, PAGE_SIZE_BYTES


class MemoryTier(Enum):
    """The three memory tiers of the characterization platform (Fig 3)."""

    LOCAL_DRAM = "local_dram"
    REMOTE_SOCKET = "remote_socket"
    CXL = "cxl"


@dataclass
class MemoryNode:
    """One memory node: a pool of pages with a latency/bandwidth envelope.

    The node-level envelope is used by placement policies and by the
    characterization experiments (Fig 5/6); detailed per-access timing for
    the evaluation figures is produced by the DRAM/CXL device models, which
    the SLS systems associate with nodes via ``node_id``.
    """

    node_id: int
    tier: MemoryTier
    capacity_bytes: int
    base_latency_ns: float
    bandwidth_gbps: float
    name: str = ""
    used_bytes: int = 0
    access_count: int = 0
    bytes_served: int = 0
    busy_until_ns: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            self.name = f"{self.tier.value}{self.node_id}"
        if self.capacity_bytes <= 0:
            raise ValueError("capacity must be positive")
        if self.bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")

    @property
    def page_capacity(self) -> int:
        """Number of 4 KB pages the node can hold."""
        return self.capacity_bytes // PAGE_SIZE_BYTES

    @property
    def free_bytes(self) -> int:
        return max(0, self.capacity_bytes - self.used_bytes)

    def can_fit(self, num_bytes: int) -> bool:
        return self.free_bytes >= num_bytes

    def allocate(self, num_bytes: int) -> None:
        """Reserve ``num_bytes`` on the node."""
        if not self.can_fit(num_bytes):
            raise MemoryError(
                f"node {self.name} cannot fit {num_bytes} bytes "
                f"({self.free_bytes} free)"
            )
        self.used_bytes += num_bytes

    def release(self, num_bytes: int) -> None:
        """Release previously reserved bytes."""
        self.used_bytes = max(0, self.used_bytes - num_bytes)

    def serve(self, start_ns: float, bytes_requested: int = CACHE_LINE_BYTES) -> float:
        """Serve an access with the node-level envelope; returns finish time.

        The envelope serializes transfers on the node's aggregate bandwidth
        and adds the tier's base latency — this is the coarse model used by
        the characterization study where only relative tier behaviour
        matters.
        """
        self.access_count += 1
        self.bytes_served += bytes_requested
        serialization = bytes_requested / self.bandwidth_gbps
        begin = max(start_ns, self.busy_until_ns)
        self.busy_until_ns = begin + serialization
        return begin + serialization + self.base_latency_ns

    def serve_batch(self, start_ns: Sequence[float], bytes_requested: int = CACHE_LINE_BYTES) -> np.ndarray:
        """Serve a batch of accesses; returns the per-access finish times.

        Semantically identical to calling :meth:`serve` once per entry of
        ``start_ns`` in order (the shared-bandwidth serialization chains
        through the batch), with the per-call overhead paid once.
        """
        starts = [float(s) for s in np.asarray(start_ns, dtype=np.float64)]
        serialization = bytes_requested / self.bandwidth_gbps
        base = self.base_latency_ns
        busy = self.busy_until_ns
        finishes = []
        append = finishes.append
        for start in starts:
            begin = start if start > busy else busy
            busy = begin + serialization
            append(busy + base)
        self.access_count += len(starts)
        self.bytes_served += bytes_requested * len(starts)
        self.busy_until_ns = busy
        return np.asarray(finishes, dtype=np.float64)

    def reset_counters(self) -> None:
        self.access_count = 0
        self.bytes_served = 0
        self.busy_until_ns = 0.0


def placement_arrays(
    nodes: Sequence[MemoryNode], device_of=None
) -> Tuple[np.ndarray, np.ndarray]:
    """Batched placement-resolution tables for a node set.

    Returns ``(is_local, device_id)`` arrays indexed by node id:
    ``is_local[node]`` is True for the local-DRAM tier, and
    ``device_id[node]`` holds the CXL device behind a CXL node or ``-1``
    for non-CXL tiers.  ``device_of`` maps a CXL node id to its device id —
    pass the owning engine's mapping (``SLSSystem.node_to_device``) so the
    convention stays defined in one place; the default is that mapping's
    ``node_id - 1`` layout.  Combined with
    :meth:`TieredMemorySystem.node_id_table` this resolves whole lookup
    batches to (tier, device) with two numpy gathers.
    """
    size = max(node.node_id for node in nodes) + 1 if nodes else 0
    is_local = np.zeros(size, dtype=bool)
    device_id = np.full(size, -1, dtype=np.int64)
    for node in nodes:
        is_local[node.node_id] = node.tier is MemoryTier.LOCAL_DRAM
        if node.tier is MemoryTier.CXL:
            device_id[node.node_id] = (
                device_of(node.node_id) if device_of is not None else node.node_id - 1
            )
    return is_local, device_id


__all__ = ["MemoryNode", "MemoryTier", "placement_arrays"]
