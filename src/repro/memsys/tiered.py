"""Tiered memory system: page table, per-node accounting, migration engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import CACHE_LINE_BYTES, PAGE_SIZE_BYTES
from repro.memsys.hotness import AccessTracker
from repro.memsys.node import MemoryNode, MemoryTier
from repro.memsys.page import Page, page_id_of


@dataclass
class MigrationRecord:
    """One page migration event."""

    page_id: int
    src_node: int
    dst_node: int
    cost_ns: float
    mode: str  # "page_block" | "cacheline_block"


@dataclass
class MigrationStats:
    """Aggregate migration accounting."""

    migrations: int = 0
    total_cost_ns: float = 0.0
    blocked_row_accesses: int = 0

    def record(self, cost_ns: float, blocked_rows: int) -> None:
        self.migrations += 1
        self.total_cost_ns += cost_ns
        self.blocked_row_accesses += blocked_rows


class TieredMemorySystem:
    """Page-granular placement over a set of memory nodes.

    The tiered system owns the page table (page id -> node), per-page and
    per-node access counters, and the migration engine that models the cost
    of page-block vs cache-line-block migration (§IV-B4).
    """

    #: Cost to move one cache line between nodes (ns): the copy is pipelined
    #: over the CXL link, so the per-line cost is close to its serialization
    #: time; used by both migration modes.
    CACHELINE_COPY_NS = 5.0
    #: Extra fixed software overhead of an OS page-granular migration
    #: (unmap/TLB-shootdown/remap) in ns.
    PAGE_BLOCK_OVERHEAD_NS = 1500.0
    #: Extra fixed overhead of the cache-line-granular migration controller.
    CACHELINE_BLOCK_OVERHEAD_NS = 100.0

    def __init__(
        self,
        nodes: Sequence[MemoryNode],
        page_size: int = PAGE_SIZE_BYTES,
        migration_mode: str = "cacheline_block",
    ) -> None:
        if not nodes:
            raise ValueError("at least one node is required")
        if migration_mode not in ("page_block", "cacheline_block"):
            raise ValueError(f"unknown migration mode {migration_mode!r}")
        self._nodes: Dict[int, MemoryNode] = {node.node_id: node for node in nodes}
        if len(self._nodes) != len(nodes):
            raise ValueError("node ids must be unique")
        self._page_size = page_size
        self._migration_mode = migration_mode
        self._pages: Dict[int, Page] = {}
        self._node_access: Dict[int, AccessTracker] = {
            node_id: AccessTracker() for node_id in self._nodes
        }
        self._migration_stats = MigrationStats()
        self._migration_log: List[MigrationRecord] = []
        # Placement generation: bumped whenever any page changes node, so
        # batched resolvers can cache the dense page table and invalidate it
        # only when a migration/placement actually happened.
        self._generation = 0
        self._table_cache: Optional[np.ndarray] = None
        self._table_cache_generation = -1

    # ------------------------------------------------------------------
    # Construction / placement
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def migration_mode(self) -> str:
        return self._migration_mode

    @property
    def migration_stats(self) -> MigrationStats:
        return self._migration_stats

    @property
    def migration_log(self) -> List[MigrationRecord]:
        return list(self._migration_log)

    def nodes(self) -> List[MemoryNode]:
        return [self._nodes[k] for k in sorted(self._nodes)]

    def node(self, node_id: int) -> MemoryNode:
        return self._nodes[node_id]

    def nodes_by_tier(self, tier: MemoryTier) -> List[MemoryNode]:
        return [n for n in self.nodes() if n.tier is tier]

    def pages(self) -> List[Page]:
        return [self._pages[k] for k in sorted(self._pages)]

    def num_pages(self) -> int:
        return len(self._pages)

    def install_placement(self, placement: Dict[int, int]) -> None:
        """Install an initial page placement (page id -> node id)."""
        for page_id, node_id in placement.items():
            if node_id not in self._nodes:
                raise KeyError(f"unknown node id {node_id}")
            if page_id in self._pages:
                raise ValueError(f"page {page_id} already placed")
            self._nodes[node_id].allocate(self._page_size)
            self._pages[page_id] = Page(page_id=page_id, node_id=node_id)
        self._generation += 1

    def place_page(self, page_id: int, node_id: int) -> Page:
        """Place a single page (used by tests and incremental allocation)."""
        self.install_placement({page_id: node_id})
        return self._pages[page_id]

    # ------------------------------------------------------------------
    # Lookup / access recording
    # ------------------------------------------------------------------
    def page(self, page_id: int) -> Page:
        return self._pages[page_id]

    def node_of_address(self, address: int) -> MemoryNode:
        """The node currently holding ``address``."""
        page = self._pages[page_id_of(address, self._page_size)]
        return self._nodes[page.node_id]

    def node_of_page(self, page_id: int) -> MemoryNode:
        return self._nodes[self._pages[page_id].node_id]

    def record_access(self, address: int, now_ns: float = 0.0) -> Page:
        """Record an access to ``address`` in page and node counters."""
        page_id = page_id_of(address, self._page_size)
        page = self._pages[page_id]
        page.record_access(now_ns)
        self._node_access[page.node_id].record(page_id)
        self._nodes[page.node_id].access_count += 1
        return page

    def node_access_tracker(self, node_id: int) -> AccessTracker:
        return self._node_access[node_id]

    def node_access_counts(self) -> Dict[int, int]:
        """Access counts per node since the last counter reset."""
        return {node_id: node.access_count for node_id, node in self._nodes.items()}

    # ------------------------------------------------------------------
    # Batched lookup / access recording (the vectorized-engine fast path)
    # ------------------------------------------------------------------
    @property
    def generation(self) -> int:
        """Monotonic placement version; changes iff some page changed node."""
        return self._generation

    def node_id_table(self) -> np.ndarray:
        """Dense ``page id -> node id`` array (int64; ``-1`` for unplaced).

        The array is cached and rebuilt only when the placement
        :attr:`generation` changes, so batched resolvers can gather node ids
        for whole address batches with one numpy indexing operation instead
        of a dict lookup per access.
        """
        if self._table_cache is None or self._table_cache_generation != self._generation:
            size = (max(self._pages) + 1) if self._pages else 0
            table = np.full(size, -1, dtype=np.int64)
            if size:
                page_ids = np.fromiter(self._pages.keys(), dtype=np.int64, count=len(self._pages))
                node_ids = np.fromiter(
                    (page.node_id for page in self._pages.values()),
                    dtype=np.int64,
                    count=len(self._pages),
                )
                table[page_ids] = node_ids
            self._table_cache = table
            self._table_cache_generation = self._generation
        return self._table_cache

    def node_ids_of_pages(self, page_ids: np.ndarray) -> np.ndarray:
        """Node ids currently holding each page of ``page_ids`` (vectorized).

        Raises :class:`KeyError` for unplaced pages, like the scalar
        :meth:`node_of_page` dict lookup would.
        """
        table = self.node_id_table()
        page_ids = np.asarray(page_ids)
        if page_ids.size and (
            int(page_ids.min()) < 0 or int(page_ids.max()) >= table.shape[0]
        ):
            out_of_range = page_ids[(page_ids < 0) | (page_ids >= table.shape[0])]
            raise KeyError(int(out_of_range[0]))
        resolved = table[page_ids]
        if resolved.size and resolved.min() < 0:
            missing = int(page_ids[np.argmin(resolved)])
            raise KeyError(missing)
        return resolved

    def node_ids_of_addresses(self, addresses: np.ndarray) -> np.ndarray:
        """Node ids currently holding each byte address (vectorized)."""
        return self.node_ids_of_pages(np.asarray(addresses) // self._page_size)

    def record_accesses(self, addresses: np.ndarray, now_ns: float = 0.0) -> None:
        """Record one access per address, all timestamped ``now_ns``.

        Equivalent to ``for a in addresses: self.record_access(a, now_ns)``
        (per-page counts, per-node trackers and node counters all match the
        scalar loop exactly), with the aggregation done by numpy.
        """
        page_ids = np.asarray(addresses) // self._page_size
        unique, counts = np.unique(page_ids, return_counts=True)
        page_counts = dict(zip(unique.tolist(), counts.tolist()))
        self.apply_access_counts(page_counts, dict.fromkeys(page_counts, now_ns))

    def apply_access_counts(
        self, page_counts: Dict[int, int], last_access_ns: Dict[int, float]
    ) -> None:
        """Flush pre-aggregated access counts into pages/trackers/nodes.

        ``page_counts`` maps page id to the number of accesses recorded since
        the last flush and ``last_access_ns`` to the timestamp of the most
        recent one.  The counts must have been gathered under the *current*
        placement (no migration between gather and flush) — the vectorized
        engine guarantees this by flushing before every maintenance pass.
        """
        nodes = self._nodes
        trackers = self._node_access
        per_node: Dict[int, Dict[int, int]] = {}
        for page_id, count in page_counts.items():
            page = self._pages[page_id]
            page.access_count += count
            page.last_access_ns = last_access_ns[page_id]
            per_node.setdefault(page.node_id, {})[page_id] = count
        for node_id, counts in per_node.items():
            trackers[node_id].record_counts(counts)
            nodes[node_id].access_count += sum(counts.values())

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migration_cost_ns(self, mode: Optional[str] = None) -> float:
        """Cost of migrating one page under ``mode`` (default: configured)."""
        mode = mode or self._migration_mode
        lines = self._page_size // CACHE_LINE_BYTES
        copy_cost = lines * self.CACHELINE_COPY_NS
        if mode == "page_block":
            return copy_cost + self.PAGE_BLOCK_OVERHEAD_NS
        return copy_cost + self.CACHELINE_BLOCK_OVERHEAD_NS

    def blocked_rows_per_migration(self, row_bytes: int, mode: Optional[str] = None) -> int:
        """How many row vectors are made inaccessible during one migration.

        With OS page-block migration every row in the page is blocked; with
        the cache-line-block mechanism only the rows sharing the in-flight
        cache line are blocked.
        """
        mode = mode or self._migration_mode
        rows_per_page = max(1, self._page_size // row_bytes)
        if mode == "page_block":
            return rows_per_page
        rows_per_line = max(1, CACHE_LINE_BYTES // row_bytes)
        return min(rows_per_page, rows_per_line)

    def migrate_page(
        self,
        page_id: int,
        dst_node_id: int,
        row_bytes: int = 64,
        mode: Optional[str] = None,
    ) -> MigrationRecord:
        """Migrate ``page_id`` to ``dst_node_id``; returns the event record."""
        if dst_node_id not in self._nodes:
            raise KeyError(f"unknown node id {dst_node_id}")
        page = self._pages[page_id]
        src_node_id = page.node_id
        if src_node_id == dst_node_id:
            record = MigrationRecord(page_id, src_node_id, dst_node_id, 0.0, mode or self._migration_mode)
            return record
        dst = self._nodes[dst_node_id]
        src = self._nodes[src_node_id]
        if not dst.can_fit(self._page_size):
            raise MemoryError(f"node {dst.name} has no room for page {page_id}")
        mode = mode or self._migration_mode
        cost = self.migration_cost_ns(mode)
        blocked = self.blocked_rows_per_migration(row_bytes, mode)
        dst.allocate(self._page_size)
        src.release(self._page_size)
        page.node_id = dst_node_id
        page.migrations += 1
        self._generation += 1
        self._migration_stats.record(cost, blocked)
        record = MigrationRecord(page_id, src_node_id, dst_node_id, cost, mode)
        self._migration_log.append(record)
        return record

    def swap_pages(self, page_a: int, page_b: int, row_bytes: int = 64) -> List[MigrationRecord]:
        """Swap the placements of two pages (claim & swap, Fig 10a)."""
        a = self._pages[page_a]
        b = self._pages[page_b]
        if a.node_id == b.node_id:
            return []
        node_a, node_b = a.node_id, b.node_id
        # Perform the swap without requiring slack capacity on either node:
        # the exchange is modelled as two migrations whose capacity effects
        # cancel out.
        a.node_id, b.node_id = node_b, node_a
        a.migrations += 1
        b.migrations += 1
        self._generation += 1
        cost = self.migration_cost_ns()
        blocked = self.blocked_rows_per_migration(row_bytes)
        records = [
            MigrationRecord(page_a, node_a, node_b, cost, self._migration_mode),
            MigrationRecord(page_b, node_b, node_a, cost, self._migration_mode),
        ]
        for record in records:
            self._migration_stats.record(record.cost_ns, blocked)
            self._migration_log.append(record)
        return records

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def reset_access_counters(self) -> None:
        for node in self._nodes.values():
            node.reset_counters()
        for tracker in self._node_access.values():
            tracker.reset()
        for page in self._pages.values():
            page.access_count = 0

    def decay_hotness(self, factor: float = 0.5) -> None:
        # Inline Page.decay (validating the factor once, not per page): the
        # epoch decay walks every page and the per-page method call was a
        # measurable slice of maintenance on both engines.
        if not 0.0 <= factor <= 1.0:
            raise ValueError("decay factor must be in [0, 1]")
        for page in self._pages.values():
            page.access_count = int(page.access_count * factor)
        for tracker in self._node_access.values():
            tracker.decay(factor)


__all__ = ["TieredMemorySystem", "MigrationRecord", "MigrationStats"]
