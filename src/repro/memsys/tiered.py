"""Tiered memory system: page table, per-node accounting, migration engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import CACHE_LINE_BYTES, PAGE_SIZE_BYTES
from repro.memsys.hotness import AccessTracker
from repro.memsys.node import MemoryNode, MemoryTier
from repro.memsys.page import Page, page_id_of


@dataclass
class MigrationRecord:
    """One page migration event."""

    page_id: int
    src_node: int
    dst_node: int
    cost_ns: float
    mode: str  # "page_block" | "cacheline_block"


@dataclass
class MigrationStats:
    """Aggregate migration accounting."""

    migrations: int = 0
    total_cost_ns: float = 0.0
    blocked_row_accesses: int = 0

    def record(self, cost_ns: float, blocked_rows: int) -> None:
        self.migrations += 1
        self.total_cost_ns += cost_ns
        self.blocked_row_accesses += blocked_rows


class TieredMemorySystem:
    """Page-granular placement over a set of memory nodes.

    The tiered system owns the page table (page id -> node), per-page and
    per-node access counters, and the migration engine that models the cost
    of page-block vs cache-line-block migration (§IV-B4).
    """

    #: Cost to move one cache line between nodes (ns): the copy is pipelined
    #: over the CXL link, so the per-line cost is close to its serialization
    #: time; used by both migration modes.
    CACHELINE_COPY_NS = 5.0
    #: Extra fixed software overhead of an OS page-granular migration
    #: (unmap/TLB-shootdown/remap) in ns.
    PAGE_BLOCK_OVERHEAD_NS = 1500.0
    #: Extra fixed overhead of the cache-line-granular migration controller.
    CACHELINE_BLOCK_OVERHEAD_NS = 100.0

    def __init__(
        self,
        nodes: Sequence[MemoryNode],
        page_size: int = PAGE_SIZE_BYTES,
        migration_mode: str = "cacheline_block",
    ) -> None:
        if not nodes:
            raise ValueError("at least one node is required")
        if migration_mode not in ("page_block", "cacheline_block"):
            raise ValueError(f"unknown migration mode {migration_mode!r}")
        self._nodes: Dict[int, MemoryNode] = {node.node_id: node for node in nodes}
        if len(self._nodes) != len(nodes):
            raise ValueError("node ids must be unique")
        self._page_size = page_size
        self._migration_mode = migration_mode
        self._pages: Dict[int, Page] = {}
        self._node_access: Dict[int, AccessTracker] = {
            node_id: AccessTracker() for node_id in self._nodes
        }
        self._migration_stats = MigrationStats()
        self._migration_log: List[MigrationRecord] = []

    # ------------------------------------------------------------------
    # Construction / placement
    # ------------------------------------------------------------------
    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def migration_mode(self) -> str:
        return self._migration_mode

    @property
    def migration_stats(self) -> MigrationStats:
        return self._migration_stats

    @property
    def migration_log(self) -> List[MigrationRecord]:
        return list(self._migration_log)

    def nodes(self) -> List[MemoryNode]:
        return [self._nodes[k] for k in sorted(self._nodes)]

    def node(self, node_id: int) -> MemoryNode:
        return self._nodes[node_id]

    def nodes_by_tier(self, tier: MemoryTier) -> List[MemoryNode]:
        return [n for n in self.nodes() if n.tier is tier]

    def pages(self) -> List[Page]:
        return [self._pages[k] for k in sorted(self._pages)]

    def num_pages(self) -> int:
        return len(self._pages)

    def install_placement(self, placement: Dict[int, int]) -> None:
        """Install an initial page placement (page id -> node id)."""
        for page_id, node_id in placement.items():
            if node_id not in self._nodes:
                raise KeyError(f"unknown node id {node_id}")
            if page_id in self._pages:
                raise ValueError(f"page {page_id} already placed")
            self._nodes[node_id].allocate(self._page_size)
            self._pages[page_id] = Page(page_id=page_id, node_id=node_id)

    def place_page(self, page_id: int, node_id: int) -> Page:
        """Place a single page (used by tests and incremental allocation)."""
        self.install_placement({page_id: node_id})
        return self._pages[page_id]

    # ------------------------------------------------------------------
    # Lookup / access recording
    # ------------------------------------------------------------------
    def page(self, page_id: int) -> Page:
        return self._pages[page_id]

    def node_of_address(self, address: int) -> MemoryNode:
        """The node currently holding ``address``."""
        page = self._pages[page_id_of(address, self._page_size)]
        return self._nodes[page.node_id]

    def node_of_page(self, page_id: int) -> MemoryNode:
        return self._nodes[self._pages[page_id].node_id]

    def record_access(self, address: int, now_ns: float = 0.0) -> Page:
        """Record an access to ``address`` in page and node counters."""
        page_id = page_id_of(address, self._page_size)
        page = self._pages[page_id]
        page.record_access(now_ns)
        self._node_access[page.node_id].record(page_id)
        self._nodes[page.node_id].access_count += 1
        return page

    def node_access_tracker(self, node_id: int) -> AccessTracker:
        return self._node_access[node_id]

    def node_access_counts(self) -> Dict[int, int]:
        """Access counts per node since the last counter reset."""
        return {node_id: node.access_count for node_id, node in self._nodes.items()}

    # ------------------------------------------------------------------
    # Migration
    # ------------------------------------------------------------------
    def migration_cost_ns(self, mode: Optional[str] = None) -> float:
        """Cost of migrating one page under ``mode`` (default: configured)."""
        mode = mode or self._migration_mode
        lines = self._page_size // CACHE_LINE_BYTES
        copy_cost = lines * self.CACHELINE_COPY_NS
        if mode == "page_block":
            return copy_cost + self.PAGE_BLOCK_OVERHEAD_NS
        return copy_cost + self.CACHELINE_BLOCK_OVERHEAD_NS

    def blocked_rows_per_migration(self, row_bytes: int, mode: Optional[str] = None) -> int:
        """How many row vectors are made inaccessible during one migration.

        With OS page-block migration every row in the page is blocked; with
        the cache-line-block mechanism only the rows sharing the in-flight
        cache line are blocked.
        """
        mode = mode or self._migration_mode
        rows_per_page = max(1, self._page_size // row_bytes)
        if mode == "page_block":
            return rows_per_page
        rows_per_line = max(1, CACHE_LINE_BYTES // row_bytes)
        return min(rows_per_page, rows_per_line)

    def migrate_page(
        self,
        page_id: int,
        dst_node_id: int,
        row_bytes: int = 64,
        mode: Optional[str] = None,
    ) -> MigrationRecord:
        """Migrate ``page_id`` to ``dst_node_id``; returns the event record."""
        if dst_node_id not in self._nodes:
            raise KeyError(f"unknown node id {dst_node_id}")
        page = self._pages[page_id]
        src_node_id = page.node_id
        if src_node_id == dst_node_id:
            record = MigrationRecord(page_id, src_node_id, dst_node_id, 0.0, mode or self._migration_mode)
            return record
        dst = self._nodes[dst_node_id]
        src = self._nodes[src_node_id]
        if not dst.can_fit(self._page_size):
            raise MemoryError(f"node {dst.name} has no room for page {page_id}")
        mode = mode or self._migration_mode
        cost = self.migration_cost_ns(mode)
        blocked = self.blocked_rows_per_migration(row_bytes, mode)
        dst.allocate(self._page_size)
        src.release(self._page_size)
        page.node_id = dst_node_id
        page.migrations += 1
        self._migration_stats.record(cost, blocked)
        record = MigrationRecord(page_id, src_node_id, dst_node_id, cost, mode)
        self._migration_log.append(record)
        return record

    def swap_pages(self, page_a: int, page_b: int, row_bytes: int = 64) -> List[MigrationRecord]:
        """Swap the placements of two pages (claim & swap, Fig 10a)."""
        a = self._pages[page_a]
        b = self._pages[page_b]
        if a.node_id == b.node_id:
            return []
        node_a, node_b = a.node_id, b.node_id
        # Perform the swap without requiring slack capacity on either node:
        # the exchange is modelled as two migrations whose capacity effects
        # cancel out.
        a.node_id, b.node_id = node_b, node_a
        a.migrations += 1
        b.migrations += 1
        cost = self.migration_cost_ns()
        blocked = self.blocked_rows_per_migration(row_bytes)
        records = [
            MigrationRecord(page_a, node_a, node_b, cost, self._migration_mode),
            MigrationRecord(page_b, node_b, node_a, cost, self._migration_mode),
        ]
        for record in records:
            self._migration_stats.record(record.cost_ns, blocked)
            self._migration_log.append(record)
        return records

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def reset_access_counters(self) -> None:
        for node in self._nodes.values():
            node.reset_counters()
        for tracker in self._node_access.values():
            tracker.reset()
        for page in self._pages.values():
            page.access_count = 0

    def decay_hotness(self, factor: float = 0.5) -> None:
        for page in self._pages.values():
            page.decay(factor)
        for tracker in self._node_access.values():
            tracker.decay(factor)


__all__ = ["TieredMemorySystem", "MigrationRecord", "MigrationStats"]
