"""Per-host admission queue for the online serving loop.

Requests wait here between arrival and batch dispatch.  The queue records a
depth timeline — one ``(time_ns, depth)`` sample per transition — which is
how the serving metrics expose queueing behaviour (queue growth under
overload is the leading indicator of a saturated host).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.traces.workload import SLSRequest


@dataclass(frozen=True)
class QueuedRequest:
    """One admitted request plus its arrival stamp."""

    request: SLSRequest
    arrival_ns: int


class AdmissionQueue:
    """FIFO admission queue of one serving host."""

    def __init__(self, host_id: int) -> None:
        self.host_id = host_id
        self._pending: Deque[QueuedRequest] = deque()
        #: ``(time_ns, depth)`` after every push/pop transition.
        self.timeline: List[Tuple[int, int]] = []
        self.max_depth = 0
        self.admitted = 0

    def __len__(self) -> int:
        return len(self._pending)

    @property
    def depth(self) -> int:
        return len(self._pending)

    @property
    def oldest_arrival_ns(self) -> Optional[int]:
        return self._pending[0].arrival_ns if self._pending else None

    def deadline_ns(self, max_wait_ns: float) -> Optional[float]:
        """When the batcher's timer fires for the oldest queued request."""
        oldest = self.oldest_arrival_ns
        return None if oldest is None else oldest + max_wait_ns

    def push(self, request: SLSRequest, now_ns: int) -> None:
        self._pending.append(QueuedRequest(request, now_ns))
        self.admitted += 1
        self.max_depth = max(self.max_depth, len(self._pending))
        self._sample(now_ns)

    def pop_batch(self, count: int, now_ns: float) -> List[QueuedRequest]:
        """Dequeue up to ``count`` requests in FIFO order."""
        taken = [self._pending.popleft() for _ in range(min(count, len(self._pending)))]
        if taken:
            self._sample(int(now_ns))
        return taken

    def _sample(self, now_ns: int) -> None:
        depth = len(self._pending)
        if self.timeline and self.timeline[-1][0] == now_ns:
            self.timeline[-1] = (now_ns, depth)
        else:
            self.timeline.append((now_ns, depth))

    def mean_depth(self) -> float:
        """Time-weighted mean queue depth over the recorded timeline."""
        if len(self.timeline) < 2:
            return float(self.timeline[0][1]) if self.timeline else 0.0
        weighted = 0.0
        for (t0, depth), (t1, _) in zip(self.timeline, self.timeline[1:]):
            weighted += depth * (t1 - t0)
        span = self.timeline[-1][0] - self.timeline[0][0]
        return weighted / span if span > 0 else float(self.timeline[-1][1])


__all__ = ["AdmissionQueue", "QueuedRequest"]
