"""Serving metrics: tail latency, goodput, queue depth, SLA sweeps.

The serving loop records an enqueue → dispatch → complete timestamp triple
per request; this module turns those records into the quantities online
systems are judged by — latency percentiles up to p99.9, goodput under a
latency SLA, and queue-depth behaviour — and provides the SLA sweep that
binary-searches the maximum sustainable QPS under a latency budget.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, fields
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.serve.arrivals import NS_PER_S
from repro.sls.result import LatencyStats, SimResult


@dataclass(frozen=True)
class RequestRecord:
    """Lifecycle timestamps of one served request (all ns)."""

    request_id: int
    host_id: int
    lane: int
    arrival_ns: int
    dispatch_ns: float
    start_ns: float
    complete_ns: float
    lookups: int

    @property
    def latency_ns(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.complete_ns - self.arrival_ns

    @property
    def queue_wait_ns(self) -> float:
        """Time spent in the admission queue before batch dispatch."""
        return self.dispatch_ns - self.arrival_ns

    @property
    def service_ns(self) -> float:
        """Pure service time on the lane (excludes queueing and dispatch)."""
        return self.complete_ns - self.start_ns


@dataclass
class ServeResult:
    """Outcome of one open-loop serving session.

    ``records`` carries the raw per-request timeline for analysis but is
    deliberately excluded from the JSON round trip (it scales with the
    workload; the summary statistics do not).
    """

    system: str
    qps: float
    arrival: str
    max_batch_size: int
    max_wait_ns: float
    seed: int
    requests: int
    duration_ns: float
    latency: LatencyStats
    queue_wait: LatencyStats
    service: LatencyStats
    achieved_qps: float
    goodput_qps: float
    sla_attainment: float
    batches: int
    mean_batch_size: float
    max_queue_depth: int
    mean_queue_depth: float
    queue_depth_timelines: Dict[int, List[Tuple[int, int]]] = field(default_factory=dict)
    sla_ns: Optional[float] = None
    sim: Optional[SimResult] = None
    records: Optional[List[RequestRecord]] = None

    # ------------------------------------------------------------------
    # JSON round trip (records excluded, see class docstring)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        data = {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if f.name not in ("records", "sim", "latency", "queue_wait", "service")
        }
        data["latency"] = self.latency.to_dict()
        data["queue_wait"] = self.queue_wait.to_dict()
        data["service"] = self.service.to_dict()
        data["sim"] = self.sim.to_dict() if self.sim is not None else None
        data["queue_depth_timelines"] = {
            str(host): [[int(t), int(d)] for t, d in timeline]
            for host, timeline in self.queue_depth_timelines.items()
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ServeResult":
        known = {f.name for f in fields(cls)}
        payload = {key: value for key, value in data.items() if key in known}
        for stats_field in ("latency", "queue_wait", "service"):
            value = payload.get(stats_field)
            if value is not None and not isinstance(value, LatencyStats):
                payload[stats_field] = LatencyStats.from_dict(value)
        sim = payload.get("sim")
        if sim is not None and not isinstance(sim, SimResult):
            payload["sim"] = SimResult.from_dict(sim)
        payload["queue_depth_timelines"] = {
            int(host): [(int(t), int(d)) for t, d in timeline]
            for host, timeline in dict(payload.get("queue_depth_timelines") or {}).items()
        }
        payload.pop("records", None)
        return cls(**payload)

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "ServeResult":
        return cls.from_dict(json.loads(payload))


def summarize(
    system: str,
    records: Sequence[RequestRecord],
    *,
    qps: float,
    arrival: str,
    max_batch_size: int,
    max_wait_ns: float,
    seed: int,
    sla_ns: Optional[float],
    batches: int,
    queue_depth_timelines: Mapping[int, Sequence[Tuple[int, int]]],
    mean_queue_depth: float,
    max_queue_depth: Optional[int] = None,
    sim: Optional[SimResult] = None,
) -> ServeResult:
    """Fold per-request records into a :class:`ServeResult`.

    ``max_queue_depth`` must come from the queues' own ``max_depth``
    tracking when available: timeline entries sharing a timestamp collapse
    to the final state, so a size-triggered dispatch (which pops at the
    exact ns of the arrival that filled the batch) erases the peak from
    the timeline.
    """
    latencies = [record.latency_ns for record in records]
    stats = LatencyStats.from_samples(latencies)
    first_arrival = min((record.arrival_ns for record in records), default=0)
    last_complete = max((record.complete_ns for record in records), default=0.0)
    duration_ns = max(0.0, last_complete - first_arrival)
    duration_s = duration_ns / NS_PER_S
    achieved = len(records) / duration_s if duration_s > 0 else 0.0
    if sla_ns is None:
        met = len(records)
    else:
        met = sum(1 for latency in latencies if latency <= sla_ns)
    attainment = met / len(records) if records else 0.0
    if sim is not None:
        sim.latency = stats
    timelines = {int(host): list(timeline) for host, timeline in queue_depth_timelines.items()}
    if max_queue_depth is None:
        max_queue_depth = max(
            (depth for timeline in timelines.values() for _, depth in timeline), default=0
        )
    return ServeResult(
        system=system,
        qps=qps,
        arrival=arrival,
        max_batch_size=max_batch_size,
        max_wait_ns=max_wait_ns,
        seed=seed,
        sla_ns=sla_ns,
        requests=len(records),
        duration_ns=duration_ns,
        latency=stats,
        queue_wait=LatencyStats.from_samples([r.queue_wait_ns for r in records]),
        service=LatencyStats.from_samples([r.service_ns for r in records]),
        achieved_qps=achieved,
        goodput_qps=met / duration_s if duration_s > 0 else 0.0,
        sla_attainment=attainment,
        batches=batches,
        mean_batch_size=len(records) / batches if batches else 0.0,
        max_queue_depth=max_queue_depth,
        mean_queue_depth=mean_queue_depth,
        queue_depth_timelines=timelines,
        sim=sim,
        records=list(records),
    )


# ---------------------------------------------------------------------------
# SLA sweep: max sustainable QPS under a latency budget
# ---------------------------------------------------------------------------
@dataclass(frozen=True)
class SLAProbe:
    """One evaluated QPS point of an SLA sweep."""

    qps: float
    latency_ns: float
    meets_sla: bool


@dataclass
class SLASweepResult:
    """Outcome of :func:`sla_sweep`."""

    sla_ns: float
    percentile: str
    max_sustainable_qps: float
    probes: List[SLAProbe] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sla_ns": self.sla_ns,
            "percentile": self.percentile,
            "max_sustainable_qps": self.max_sustainable_qps,
            "probes": [asdict(probe) for probe in self.probes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SLASweepResult":
        return cls(
            sla_ns=float(data["sla_ns"]),
            percentile=str(data.get("percentile", "p99")),
            max_sustainable_qps=float(data["max_sustainable_qps"]),
            probes=[SLAProbe(**probe) for probe in data.get("probes") or []],
        )


def _geometric_grid(lo: float, hi: float, points: int) -> List[float]:
    if points < 2:
        return [hi]
    ratio = (hi / lo) ** (1.0 / (points - 1))
    return [lo * ratio**i for i in range(points)]


def sla_sweep(
    evaluate: Callable[[float], ServeResult],
    sla_ns: float,
    qps_bounds: Tuple[float, float],
    *,
    percentile: str = "p99",
    grid_points: int = 4,
    refine_iters: int = 8,
    map_fn: Callable[[Callable[[float], ServeResult], Iterable[float]], Iterable[ServeResult]] = map,
) -> SLASweepResult:
    """Find the maximum QPS whose ``percentile`` latency meets ``sla_ns``.

    Two stages: a geometric QPS grid brackets the saturation point (its
    evaluations are independent, so ``map_fn`` may be a process pool's
    ``map`` — serial and parallel execution produce identical results),
    then a serial binary search refines inside the bracket.  The result is
    monotone non-increasing as the budget tightens: any probe that meets a
    tight budget also meets every looser one, so a tighter budget's search
    path can never overtake a looser one's.
    """
    lo, hi = qps_bounds
    if lo <= 0 or hi <= 0 or lo > hi:
        raise ValueError("qps_bounds must satisfy 0 < lo <= hi")
    if sla_ns <= 0:
        raise ValueError("sla_ns must be positive")

    probes: List[SLAProbe] = []

    def probe_of(qps: float, result: ServeResult) -> SLAProbe:
        latency = result.latency.quantile(percentile)
        probe = SLAProbe(qps=qps, latency_ns=latency, meets_sla=latency <= sla_ns)
        probes.append(probe)
        return probe

    grid = _geometric_grid(lo, hi, grid_points)
    graded = [
        probe_of(qps, result) for qps, result in zip(grid, map_fn(evaluate, grid))
    ]

    best_ok: Optional[float] = None
    first_fail: Optional[float] = None
    for probe in graded:  # grid is ascending; keep the last passing point
        if probe.meets_sla:
            best_ok = probe.qps
            first_fail = None
        elif first_fail is None:
            first_fail = probe.qps
    if best_ok is None:
        return SLASweepResult(sla_ns, percentile, 0.0, probes)
    if first_fail is None:  # even the top of the range meets the budget
        return SLASweepResult(sla_ns, percentile, best_ok, probes)

    search_lo, search_hi = best_ok, first_fail
    for _ in range(max(0, refine_iters)):
        mid = (search_lo + search_hi) / 2.0
        if probe_of(mid, evaluate(mid)).meets_sla:
            search_lo = mid
        else:
            search_hi = mid
    return SLASweepResult(sla_ns, percentile, search_lo, probes)


__all__ = [
    "RequestRecord",
    "SLAProbe",
    "SLASweepResult",
    "ServeResult",
    "sla_sweep",
    "summarize",
]
