"""Online request serving: open-loop arrivals, batching, tail-latency SLAs.

The paper's closed-loop replay answers "how long does this trace take";
this subsystem answers the question production serving is judged on —
"what latency distribution does the system deliver at a target QPS":

* :mod:`repro.serve.arrivals` — seeded open-loop arrival processes
  (constant, Poisson, bursty MMPP, diurnal);
* :mod:`repro.serve.queue` / :mod:`repro.serve.batcher` — per-host
  admission queues and the max-size/max-wait dynamic batcher;
* :mod:`repro.serve.server` — the event-driven serving loop driving any
  registered :class:`~repro.sls.engine.SLSSystem`;
* :mod:`repro.serve.metrics` — latency percentiles, goodput, queue-depth
  timelines, and the SLA sweep (max sustainable QPS under a budget).

Entry points: ``Simulation(...).serve(qps=2e5, arrival="poisson")`` from
the api façade, or ``python -m repro serve`` on the command line.
"""

from repro.serve.arrivals import (
    ArrivalProcess,
    BurstyArrivals,
    ConstantArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    UnknownArrivalError,
    arrival_process,
    available_arrivals,
)
from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.metrics import (
    RequestRecord,
    SLAProbe,
    SLASweepResult,
    ServeResult,
    sla_sweep,
    summarize,
)
from repro.serve.queue import AdmissionQueue, QueuedRequest
from repro.serve.server import ServeConfig, serve

__all__ = [
    "AdmissionQueue",
    "ArrivalProcess",
    "Batch",
    "BatchPolicy",
    "BurstyArrivals",
    "ConstantArrivals",
    "DiurnalArrivals",
    "DynamicBatcher",
    "PoissonArrivals",
    "QueuedRequest",
    "RequestRecord",
    "SLAProbe",
    "SLASweepResult",
    "ServeConfig",
    "ServeResult",
    "UnknownArrivalError",
    "arrival_process",
    "available_arrivals",
    "serve",
    "sla_sweep",
    "summarize",
]
