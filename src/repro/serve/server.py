"""Event-driven open-loop serving of an SLS workload.

The serving loop stands between the arrival processes and the simulated
systems: requests arrive open-loop (the arrival process does not wait for
completions), wait in per-host admission queues, are grouped by the dynamic
batcher, and are then serviced on the host's thread lanes by any registered
:class:`~repro.sls.engine.SLSSystem` through the engine's per-request
``service_request`` hook.  Every request's enqueue → dispatch → complete
timestamps are recorded and folded into a :class:`ServeResult`.

The whole pipeline is deterministic: arrivals are seeded, batching is a
pure function of the arrival schedule, and batches are serviced in global
``(dispatch, host, sequence)`` order so the shared device models see one
well-defined access order regardless of Python iteration details.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.serve.arrivals import arrival_process
from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.metrics import RequestRecord, ServeResult, summarize
from repro.serve.queue import AdmissionQueue
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSWorkload


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving session (picklable, usable as a sweep unit)."""

    qps: float
    arrival: str = "poisson"
    max_batch_size: int = 8
    max_wait_ns: float = 100_000.0
    seed: int = 2024
    sla_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.sla_ns is not None and self.sla_ns <= 0:
            raise ValueError("sla_ns must be positive")

    @property
    def policy(self) -> BatchPolicy:
        return BatchPolicy(max_batch_size=self.max_batch_size, max_wait_ns=self.max_wait_ns)


def serve(system: SLSSystem, workload: SLSWorkload, config: ServeConfig) -> ServeResult:
    """Serve ``workload`` on ``system`` under ``config`` and return metrics.

    The workload's requests arrive in order at the times stamped by the
    configured arrival process; each request is admitted to its host's
    queue, batched, and serviced on that host's earliest-free thread lane
    (requests within a batch run back-to-back on one lane, matching the
    closed-loop engine's one-bag-per-thread model).
    """
    process = arrival_process(config.arrival)
    arrivals = process.arrival_times_ns(len(workload.requests), config.qps, config.seed)

    num_hosts = max(1, system.system.num_hosts)
    threads_per_host = max(1, system.system.host_threads)

    system.begin_session(workload)
    obs = system.obs
    record_obs = obs.enabled

    # Admission: per-host queue + batcher, fed in global arrival order
    # (the schedule is sorted, so each host sees its own arrivals in order).
    queues = {host: AdmissionQueue(host) for host in range(num_hosts)}
    batchers = {
        host: DynamicBatcher(config.policy, queues[host]) for host in range(num_hosts)
    }
    all_batches: List[Batch] = []
    with obs.phase("serve.admit"):
        for request, arrival_ns in zip(workload.requests, arrivals):
            host = request.host_id % num_hosts
            all_batches.extend(batchers[host].offer(request, int(arrival_ns)))
        for host in range(num_hosts):
            all_batches.extend(batchers[host].close())

    # Service: globally ordered by dispatch time so the shared backend
    # models (DRAM banks, switch ports) see a deterministic access order.
    all_batches.sort(key=lambda batch: (batch.dispatch_ns, batch.host_id, batch.index))
    lanes: Dict[int, List[float]] = {
        host: [0.0] * threads_per_host for host in range(num_hosts)
    }
    # With an active vector context the whole dynamic batch is timed as one
    # numpy-backed batch call; the per-request cursors are recovered from
    # the returned completion times (request i starts where i-1 finished),
    # so the records — and the backend state evolution — are identical to
    # the per-request dispatch below.
    batch_service = (
        system.service_batch_vector
        if getattr(system, "_vector", None) is not None
        and hasattr(system, "service_batch_vector")
        else None
    )
    records: List[RequestRecord] = []
    with obs.phase("serve.dispatch"):
        for batch in all_batches:
            lane_times = lanes[batch.host_id]
            lane = min(range(threads_per_host), key=lambda i: (lane_times[i], i))
            dispatched = max(batch.dispatch_ns, lane_times[lane])
            cursor = dispatched
            if batch_service is not None:
                completions = batch_service(
                    [entry.request for entry in batch.entries], cursor, batch.host_id
                )
                started = cursor
                for entry, complete_ns in zip(batch.entries, completions):
                    records.append(
                        RequestRecord(
                            request_id=entry.request.request_id,
                            host_id=batch.host_id,
                            lane=lane,
                            arrival_ns=entry.arrival_ns,
                            dispatch_ns=batch.dispatch_ns,
                            start_ns=started,
                            complete_ns=complete_ns,
                            lookups=entry.request.num_candidates,
                        )
                    )
                    started = complete_ns
                if completions:
                    cursor = completions[-1]
            else:
                for entry in batch.entries:
                    started = cursor
                    cursor = system.service_request(entry.request, started, batch.host_id)
                    records.append(
                        RequestRecord(
                            request_id=entry.request.request_id,
                            host_id=batch.host_id,
                            lane=lane,
                            arrival_ns=entry.arrival_ns,
                            dispatch_ns=batch.dispatch_ns,
                            start_ns=started,
                            complete_ns=cursor,
                            lookups=entry.request.num_candidates,
                        )
                    )
            lane_times[lane] = cursor
            if record_obs:
                obs.span(
                    "batch", dispatched, cursor,
                    track=f"host{batch.host_id}.lane{lane}", cat="serve",
                    args={"size": len(batch.entries), "index": batch.index},
                )
                obs.count("serve.batches")
                for record in records[len(records) - len(batch.entries):]:
                    if record.start_ns > record.arrival_ns:
                        obs.span(
                            "wait", record.arrival_ns, record.start_ns,
                            track=f"host{batch.host_id}.queue", cat="serve",
                            args={"id": record.request_id},
                        )

    with obs.phase("serve.summarize"):
        records.sort(key=lambda record: record.request_id)
        total_ns = max((record.complete_ns for record in records), default=0.0)
        if record_obs:
            for host, queue in queues.items():
                if not queue.admitted:
                    continue
                for time_ns, depth in queue.timeline:
                    obs.counter(f"queue.host{host}", time_ns, depth)
    sim = system.finish_session(total_ns)

    # Mean queue depth averages over hosts that actually admitted work: a
    # host whose queue stayed empty must not drag the mean toward zero, and
    # a session where *no* host admitted anything (empty workload) reports
    # 0.0 instead of dividing by zero.
    active_queues = {h: q for h, q in queues.items() if q.admitted}
    mean_depth = (
        sum(queue.mean_depth() for queue in active_queues.values()) / len(active_queues)
        if active_queues
        else 0.0
    )
    return summarize(
        system.name,
        records,
        qps=config.qps,
        arrival=config.arrival,
        max_batch_size=config.max_batch_size,
        max_wait_ns=config.max_wait_ns,
        seed=config.seed,
        sla_ns=config.sla_ns,
        batches=len(all_batches),
        queue_depth_timelines={h: q.timeline for h, q in active_queues.items()},
        mean_queue_depth=mean_depth,
        max_queue_depth=max((q.max_depth for q in active_queues.values()), default=0),
        sim=sim,
    )


__all__ = ["ServeConfig", "serve"]
