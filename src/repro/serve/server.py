"""Event-driven open-loop serving of an SLS workload.

The serving loop stands between the arrival processes and the simulated
systems: requests arrive open-loop (the arrival process does not wait for
completions), wait in per-host admission queues, are grouped by the dynamic
batcher, and are then serviced on the host's thread lanes by any registered
:class:`~repro.sls.engine.SLSSystem` through the engine's per-request
``service_request`` hook.  Every request's enqueue → dispatch → complete
timestamps are recorded and folded into a :class:`ServeResult`.

The whole pipeline is deterministic: arrivals are seeded, batching is a
pure function of the arrival schedule, and batches are serviced in global
``(dispatch, host, sequence)`` order so the shared device models see one
well-defined access order regardless of Python iteration details.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.serve.arrivals import arrival_process
from repro.serve.batcher import Batch, BatchPolicy, DynamicBatcher
from repro.serve.metrics import RequestRecord, ServeResult, summarize
from repro.serve.queue import AdmissionQueue
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSWorkload


@dataclass(frozen=True)
class ServeConfig:
    """Knobs of one serving session (picklable, usable as a sweep unit)."""

    qps: float
    arrival: str = "poisson"
    max_batch_size: int = 8
    max_wait_ns: float = 100_000.0
    seed: int = 2024
    sla_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.sla_ns is not None and self.sla_ns <= 0:
            raise ValueError("sla_ns must be positive")

    @property
    def policy(self) -> BatchPolicy:
        return BatchPolicy(max_batch_size=self.max_batch_size, max_wait_ns=self.max_wait_ns)


def serve(system: SLSSystem, workload: SLSWorkload, config: ServeConfig) -> ServeResult:
    """Serve ``workload`` on ``system`` under ``config`` and return metrics.

    The workload's requests arrive in order at the times stamped by the
    configured arrival process; each request is admitted to its host's
    queue, batched, and serviced on that host's earliest-free thread lane
    (requests within a batch run back-to-back on one lane, matching the
    closed-loop engine's one-bag-per-thread model).

    A :class:`~repro.traces.workload.StreamingWorkload` is served by the
    streaming loop (:func:`_serve_streaming`): arrivals are generated
    lazily, requests stay resident only for their active batch window, and
    batches dispatch from a bounded lookahead heap in the exact global
    ``(dispatch, host, sequence)`` order of this eager path — metrics and
    backend state are bit-identical.
    """
    if getattr(workload, "streaming", False):
        return _serve_streaming(system, workload, config)
    process = arrival_process(config.arrival)
    arrivals = process.arrival_times_ns(len(workload.requests), config.qps, config.seed)

    num_hosts = max(1, system.system.num_hosts)
    threads_per_host = max(1, system.system.host_threads)

    system.begin_session(workload)
    obs = system.obs
    record_obs = obs.enabled

    # Admission: per-host queue + batcher, fed in global arrival order
    # (the schedule is sorted, so each host sees its own arrivals in order).
    queues = {host: AdmissionQueue(host) for host in range(num_hosts)}
    batchers = {
        host: DynamicBatcher(config.policy, queues[host]) for host in range(num_hosts)
    }
    all_batches: List[Batch] = []
    with obs.phase("serve.admit"):
        for request, arrival_ns in zip(workload.requests, arrivals):
            host = request.host_id % num_hosts
            all_batches.extend(batchers[host].offer(request, int(arrival_ns)))
        for host in range(num_hosts):
            all_batches.extend(batchers[host].close())

    # Service: globally ordered by dispatch time so the shared backend
    # models (DRAM banks, switch ports) see a deterministic access order.
    all_batches.sort(key=lambda batch: (batch.dispatch_ns, batch.host_id, batch.index))
    lanes: Dict[int, List[float]] = {
        host: [0.0] * threads_per_host for host in range(num_hosts)
    }
    # With an active vector context the whole dynamic batch is timed as one
    # numpy-backed batch call; the per-request cursors are recovered from
    # the returned completion times (request i starts where i-1 finished),
    # so the records — and the backend state evolution — are identical to
    # the per-request dispatch below.
    batch_service = (
        system.service_batch_vector
        if getattr(system, "_vector", None) is not None
        and hasattr(system, "service_batch_vector")
        else None
    )
    records: List[RequestRecord] = []
    with obs.phase("serve.dispatch"):
        for batch in all_batches:
            lane_times = lanes[batch.host_id]
            lane = min(range(threads_per_host), key=lambda i: (lane_times[i], i))
            dispatched = max(batch.dispatch_ns, lane_times[lane])
            cursor = dispatched
            if batch_service is not None:
                completions = batch_service(
                    [entry.request for entry in batch.entries], cursor, batch.host_id
                )
                started = cursor
                for entry, complete_ns in zip(batch.entries, completions):
                    records.append(
                        RequestRecord(
                            request_id=entry.request.request_id,
                            host_id=batch.host_id,
                            lane=lane,
                            arrival_ns=entry.arrival_ns,
                            dispatch_ns=batch.dispatch_ns,
                            start_ns=started,
                            complete_ns=complete_ns,
                            lookups=entry.request.num_candidates,
                        )
                    )
                    started = complete_ns
                if completions:
                    cursor = completions[-1]
            else:
                for entry in batch.entries:
                    started = cursor
                    cursor = system.service_request(entry.request, started, batch.host_id)
                    records.append(
                        RequestRecord(
                            request_id=entry.request.request_id,
                            host_id=batch.host_id,
                            lane=lane,
                            arrival_ns=entry.arrival_ns,
                            dispatch_ns=batch.dispatch_ns,
                            start_ns=started,
                            complete_ns=cursor,
                            lookups=entry.request.num_candidates,
                        )
                    )
            lane_times[lane] = cursor
            if record_obs:
                obs.span(
                    "batch", dispatched, cursor,
                    track=f"host{batch.host_id}.lane{lane}", cat="serve",
                    args={"size": len(batch.entries), "index": batch.index},
                )
                obs.count("serve.batches")
                for record in records[len(records) - len(batch.entries):]:
                    if record.start_ns > record.arrival_ns:
                        obs.span(
                            "wait", record.arrival_ns, record.start_ns,
                            track=f"host{batch.host_id}.queue", cat="serve",
                            args={"id": record.request_id},
                        )

    with obs.phase("serve.summarize"):
        records.sort(key=lambda record: record.request_id)
        total_ns = max((record.complete_ns for record in records), default=0.0)
        if record_obs:
            for host, queue in queues.items():
                if not queue.admitted:
                    continue
                for time_ns, depth in queue.timeline:
                    obs.counter(f"queue.host{host}", time_ns, depth)
    sim = system.finish_session(total_ns)

    # Mean queue depth averages over hosts that actually admitted work: a
    # host whose queue stayed empty must not drag the mean toward zero, and
    # a session where *no* host admitted anything (empty workload) reports
    # 0.0 instead of dividing by zero.
    active_queues = {h: q for h, q in queues.items() if q.admitted}
    mean_depth = (
        sum(queue.mean_depth() for queue in active_queues.values()) / len(active_queues)
        if active_queues
        else 0.0
    )
    return summarize(
        system.name,
        records,
        qps=config.qps,
        arrival=config.arrival,
        max_batch_size=config.max_batch_size,
        max_wait_ns=config.max_wait_ns,
        seed=config.seed,
        sla_ns=config.sla_ns,
        batches=len(all_batches),
        queue_depth_timelines={h: q.timeline for h, q in active_queues.items()},
        mean_queue_depth=mean_depth,
        max_queue_depth=max((q.max_depth for q in active_queues.values()), default=0),
        sim=sim,
    )


def _serve_streaming(system: SLSSystem, workload, config: ServeConfig) -> ServeResult:
    """Streaming twin of :func:`serve`: O(window) trace residency.

    Three things distinguish it from the eager loop, none of which change
    a single output value:

    * arrivals come from the lazy generator
      (:meth:`~repro.serve.arrivals.ArrivalProcess.iter_arrival_times_ns`),
      which reproduces the eager ``int64`` schedule exactly;
    * requests are flattened window by window, so only the active batch
      window of the trace is resident;
    * emitted batches wait in a min-heap keyed ``(dispatch, host, index)``
      and dispatch once sim-time provably passes them.  The watermark is
      ``min(T, earliest open-batch deadline across hosts)`` for the
      current arrival time ``T``: a future batch either fills on an
      arrival (dispatch ≥ T), times out (dispatch = its host's deadline,
      and per-host deadlines only move forward as entries drain), or
      flushes at close (again at its deadline) — so nothing can ever
      enter the heap below the watermark, and popping strictly below it
      replays the eager loop's *globally sorted* dispatch order with a
      lookahead bounded by ``max_wait_ns`` worth of batches instead of
      the whole timeline.

    Dispatch runs on the scalar request path (the oracle): a vector
    context resolves whole sessions up front, which is exactly what
    streaming avoids — and scalar/vector results are pinned bit-identical,
    so serving metrics do not depend on the engine either way.
    """
    process = arrival_process(config.arrival)
    arrivals = process.iter_arrival_times_ns(None, config.qps, config.seed)

    num_hosts = max(1, system.system.num_hosts)
    threads_per_host = max(1, system.system.host_threads)

    system.begin_session(workload)
    if getattr(system, "_vector", None) is not None:
        # Discard the (unused, empty-window) vector context before any
        # request runs: its kernels snapshot the fresh machine, and syncing
        # them at finish would overwrite the scalar path's evolved state.
        system._vector = None
        system._vector_fallback_reason = "streaming serve dispatches on the scalar path"
    obs = system.obs
    record_obs = obs.enabled

    queues = {host: AdmissionQueue(host) for host in range(num_hosts)}
    batchers = {
        host: DynamicBatcher(config.policy, queues[host]) for host in range(num_hosts)
    }
    lanes: Dict[int, List[float]] = {
        host: [0.0] * threads_per_host for host in range(num_hosts)
    }
    pending: List = []  # heap of (dispatch_ns, host_id, index, batch)
    records: List[RequestRecord] = []
    num_batches = 0

    def dispatch(batch: Batch) -> None:
        lane_times = lanes[batch.host_id]
        lane = min(range(threads_per_host), key=lambda i: (lane_times[i], i))
        dispatched = max(batch.dispatch_ns, lane_times[lane])
        cursor = dispatched
        for entry in batch.entries:
            started = cursor
            cursor = system.service_request(entry.request, started, batch.host_id)
            records.append(
                RequestRecord(
                    request_id=entry.request.request_id,
                    host_id=batch.host_id,
                    lane=lane,
                    arrival_ns=entry.arrival_ns,
                    dispatch_ns=batch.dispatch_ns,
                    start_ns=started,
                    complete_ns=cursor,
                    lookups=entry.request.num_candidates,
                )
            )
        lane_times[lane] = cursor
        if record_obs:
            obs.span(
                "batch", dispatched, cursor,
                track=f"host{batch.host_id}.lane{lane}", cat="serve",
                args={"size": len(batch.entries), "index": batch.index},
            )
            obs.count("serve.batches")
            for record in records[len(records) - len(batch.entries):]:
                if record.start_ns > record.arrival_ns:
                    obs.span(
                        "wait", record.arrival_ns, record.start_ns,
                        track=f"host{batch.host_id}.queue", cat="serve",
                        args={"id": record.request_id},
                    )

    with obs.phase("serve.stream"):
        for request in workload:
            arrival_ns = int(next(arrivals))
            host = request.host_id % num_hosts
            for batch in batchers[host].offer(request, arrival_ns):
                heapq.heappush(pending, (batch.dispatch_ns, batch.host_id, batch.index, batch))
                num_batches += 1
            # Everything dispatching strictly below the watermark is final:
            # another host may still hold an open batch whose wait timer
            # already expired (it flushes at that deadline on its *next*
            # arrival or at close), so the safe horizon is the earliest
            # open deadline anywhere, not this arrival time (see docstring).
            watermark = arrival_ns
            for batcher in batchers.values():
                deadline = batcher.queue.deadline_ns(config.max_wait_ns)
                if deadline is not None and deadline < watermark:
                    watermark = deadline
            while pending and pending[0][0] < watermark:
                dispatch(heapq.heappop(pending)[3])
        for host in range(num_hosts):
            for batch in batchers[host].close():
                heapq.heappush(pending, (batch.dispatch_ns, batch.host_id, batch.index, batch))
                num_batches += 1
        while pending:
            dispatch(heapq.heappop(pending)[3])

    with obs.phase("serve.summarize"):
        records.sort(key=lambda record: record.request_id)
        total_ns = max((record.complete_ns for record in records), default=0.0)
        if record_obs:
            for host, queue in queues.items():
                if not queue.admitted:
                    continue
                for time_ns, depth in queue.timeline:
                    obs.counter(f"queue.host{host}", time_ns, depth)
    sim = system.finish_session(total_ns)

    active_queues = {h: q for h, q in queues.items() if q.admitted}
    mean_depth = (
        sum(queue.mean_depth() for queue in active_queues.values()) / len(active_queues)
        if active_queues
        else 0.0
    )
    return summarize(
        system.name,
        records,
        qps=config.qps,
        arrival=config.arrival,
        max_batch_size=config.max_batch_size,
        max_wait_ns=config.max_wait_ns,
        seed=config.seed,
        sla_ns=config.sla_ns,
        batches=num_batches,
        queue_depth_timelines={h: q.timeline for h, q in active_queues.items()},
        mean_queue_depth=mean_depth,
        max_queue_depth=max((q.max_depth for q in active_queues.values()), default=0),
        sim=sim,
    )


__all__ = ["ServeConfig", "serve"]
