"""Dynamic batching of queued requests before dispatch.

The batcher implements the standard serving trade-off between batch
efficiency and queueing delay with two knobs:

* ``max_batch_size`` — a batch dispatches the moment it fills;
* ``max_wait_ns`` — a partial batch dispatches when its *oldest* request
  has waited this long (the timer fires at ``arrival + max_wait_ns``).

Boundary semantics (pinned by tests): an arrival at exactly the timer
deadline is admitted into the waiting batch; the timer only fires strictly
after the deadline has passed.  ``max_wait_ns = 0`` therefore batches only
simultaneous arrivals (identical nanosecond stamps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.serve.queue import AdmissionQueue, QueuedRequest
from repro.traces.workload import SLSRequest


@dataclass(frozen=True)
class BatchPolicy:
    """The two dispatch triggers of the dynamic batcher."""

    max_batch_size: int = 8
    max_wait_ns: float = 100_000.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError("max_batch_size must be at least 1")
        if self.max_wait_ns < 0:
            raise ValueError("max_wait_ns must be non-negative")


@dataclass
class Batch:
    """One dispatched batch: the requests and their admission stamps."""

    host_id: int
    index: int
    dispatch_ns: float
    entries: List[QueuedRequest] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def requests(self) -> List[SLSRequest]:
        return [entry.request for entry in self.entries]

    @property
    def queue_wait_ns(self) -> List[float]:
        """Admission-to-dispatch wait of every request in the batch."""
        return [self.dispatch_ns - entry.arrival_ns for entry in self.entries]


class DynamicBatcher:
    """Groups one host's queued requests into batches (see module docs).

    Drive it with the host's arrivals in time order: :meth:`poll` first (it
    fires any timer that expired strictly before the new arrival), then
    :meth:`offer`; finish the stream with :meth:`close`.
    """

    def __init__(self, policy: BatchPolicy, queue: AdmissionQueue) -> None:
        self.policy = policy
        self.queue = queue
        self.dispatched = 0

    def _dispatch(self, dispatch_ns: float) -> Batch:
        entries = self.queue.pop_batch(self.policy.max_batch_size, dispatch_ns)
        batch = Batch(
            host_id=self.queue.host_id,
            index=self.dispatched,
            dispatch_ns=dispatch_ns,
            entries=entries,
        )
        self.dispatched += 1
        return batch

    def poll(self, now_ns: float) -> List[Batch]:
        """Dispatch every batch whose wait timer expired before ``now_ns``."""
        batches: List[Batch] = []
        while True:
            deadline = self.queue.deadline_ns(self.policy.max_wait_ns)
            if deadline is None or deadline >= now_ns:
                return batches
            batches.append(self._dispatch(deadline))

    def offer(self, request: SLSRequest, now_ns: int) -> List[Batch]:
        """Admit one arrival; returns the batch it completed, if any."""
        batches = self.poll(now_ns)
        self.queue.push(request, now_ns)
        if self.queue.depth >= self.policy.max_batch_size:
            batches.append(self._dispatch(now_ns))
        return batches

    def close(self) -> List[Batch]:
        """End of the arrival stream: flush the remainder at its deadline."""
        batches: List[Batch] = []
        while self.queue.depth:
            deadline = self.queue.deadline_ns(self.policy.max_wait_ns)
            batches.append(self._dispatch(deadline))
        return batches


__all__ = ["Batch", "BatchPolicy", "DynamicBatcher"]
