"""Deterministic open-loop arrival processes.

An arrival process stamps every request of a workload with an arrival time
in nanoseconds.  All processes are seeded and fully deterministic: the same
``(process, num_requests, qps, seed)`` tuple produces a byte-identical
``int64`` schedule, which is what makes serving experiments reproducible
and lets the SLA sweep compare runs across QPS points.

Four shapes cover the serving scenarios of the paper's setting:

* ``constant`` — one request every ``1/qps`` seconds (ignores the seed);
* ``poisson`` — memoryless arrivals, the standard open-loop load model;
* ``bursty`` — a two-state Markov-modulated Poisson process (MMPP-2)
  alternating between a high-rate burst state and a quiet state while
  keeping the long-run average at the target QPS;
* ``diurnal`` — a non-homogeneous Poisson process whose rate follows a
  sinusoidal day/night cycle around the target QPS (thinning method).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from itertools import islice
from typing import Dict, Iterator, Optional, Tuple, Type

import numpy as np

NS_PER_S = 1_000_000_000.0

#: Gap chunk drawn per step of the lazy schedule generator.  Chunking is
#: purely an amortization knob: gap draws and the running cumulative sum are
#: sequential, so every chunk size yields the identical schedule.
ARRIVAL_CHUNK = 4096


class UnknownArrivalError(ValueError):
    """Raised when an arrival-process name is not registered."""

    def __init__(self, name: str, known: Tuple[str, ...]) -> None:
        self.name = name
        self.known = known
        super().__init__(
            f"unknown arrival process {name!r}; expected one of: {', '.join(known)}"
        )


@dataclass(frozen=True)
class ArrivalProcess(ABC):
    """Base class: generates monotone non-decreasing arrival stamps (ns)."""

    name = "base"

    def arrival_times_ns(self, num_requests: int, qps: float, seed: int) -> np.ndarray:
        """Arrival time of each of ``num_requests`` requests, in ns.

        The schedule starts at the first inter-arrival gap (not 0), is
        monotone non-decreasing, and is returned as ``int64`` so equality
        across runs is exact.
        """
        if num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if qps <= 0:
            raise ValueError("qps must be positive")
        if num_requests == 0:
            return np.zeros(0, dtype=np.int64)
        gaps_ns = self._gaps_ns(num_requests, qps, np.random.default_rng(seed))
        times = np.cumsum(np.maximum(gaps_ns, 0.0))
        return np.rint(times).astype(np.int64)

    def iter_arrival_times_ns(
        self,
        num_requests: Optional[int],
        qps: float,
        seed: int,
        chunk: int = ARRIVAL_CHUNK,
    ) -> Iterator[int]:
        """Lazily yield the schedule :meth:`arrival_times_ns` would return.

        The streaming twin: stamps are produced ``chunk`` gaps at a time
        instead of materializing the whole timeline, so a serving loop can
        extend the schedule as simulation time advances.  The gap draws and
        the cumulative sum are both strictly sequential — each chunk's
        running sum is seeded with the exact float carry of the previous
        chunk — so for any chunk size the yielded stamps equal the eager
        ``int64`` schedule element for element.  ``num_requests=None``
        yields an unbounded schedule (the caller stops consuming when its
        request stream ends).
        """
        if num_requests is not None and num_requests < 0:
            raise ValueError("num_requests must be non-negative")
        if qps <= 0:
            raise ValueError("qps must be positive")
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        if num_requests == 0:
            return
        rng = np.random.default_rng(seed)
        carry = 0.0
        produced = 0
        for gaps_ns in self._iter_gaps_ns(qps, rng, chunk):
            block = np.maximum(gaps_ns, 0.0)
            # Seeding the cumulative sum with the carried float preserves
            # the eager path's exact sequential additions (s_i = s_{i-1} +
            # g_i), so rounding never diverges at chunk boundaries.
            times = np.cumsum(np.concatenate(([carry], block)))
            carry = float(times[-1])
            for stamp in np.rint(times[1:]).astype(np.int64).tolist():
                yield stamp
                produced += 1
                if num_requests is not None and produced >= num_requests:
                    return

    def _iter_gaps_ns(
        self, qps: float, rng: np.random.Generator, chunk: int
    ) -> Iterator[np.ndarray]:
        """Unbounded stream of gap chunks.

        The default repeatedly draws ``chunk``-sized arrays through
        :meth:`_gaps_ns`, which is exact for the processes whose draws are
        chunk-invariant (constant, poisson); the stateful processes
        (bursty, diurnal) override this with their scalar gap generators.
        """
        while True:
            yield self._gaps_ns(chunk, qps, rng)

    @abstractmethod
    def _gaps_ns(self, count: int, qps: float, rng: np.random.Generator) -> np.ndarray:
        """Inter-arrival gaps in ns (float; clipped and rounded by the base)."""


@dataclass(frozen=True)
class ConstantArrivals(ArrivalProcess):
    """Perfectly paced arrivals: one request every ``1/qps`` seconds."""

    name = "constant"

    def _gaps_ns(self, count: int, qps: float, rng: np.random.Generator) -> np.ndarray:
        return np.full(count, NS_PER_S / qps)


@dataclass(frozen=True)
class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals: i.i.d. exponential inter-arrival gaps."""

    name = "poisson"

    def _gaps_ns(self, count: int, qps: float, rng: np.random.Generator) -> np.ndarray:
        return rng.exponential(scale=NS_PER_S / qps, size=count)


@dataclass(frozen=True)
class BurstyArrivals(ArrivalProcess):
    """MMPP-2: bursts at ``burst_ratio``× the base rate, quiet phases below it.

    The fraction of time spent bursting (``burst_fraction``) and the quiet
    rate are balanced so the long-run average rate stays at the target QPS:
    ``f * burst + (1 - f) * quiet = 1``.  State holding times are
    exponential with mean ``mean_state_requests`` arrivals per visit.
    """

    name = "bursty"
    burst_ratio: float = 4.0
    burst_fraction: float = 0.2
    mean_state_requests: float = 32.0

    def __post_init__(self) -> None:
        if self.burst_ratio <= 1.0:
            raise ValueError("burst_ratio must exceed 1")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        quiet = (1.0 - self.burst_fraction * self.burst_ratio) / (1.0 - self.burst_fraction)
        if quiet <= 0.0:
            raise ValueError("burst_ratio * burst_fraction must stay below 1")

    def _gap_scalars(self, qps: float, rng: np.random.Generator) -> Iterator[float]:
        """Unbounded MMPP-2 gap generator (the state machine itself).

        One RNG drives the state walk sequentially, so taking the first
        ``n`` gaps here is draw-for-draw identical to the eager array path
        — which is built on this generator.
        """
        quiet_ratio = (1.0 - self.burst_fraction * self.burst_ratio) / (1.0 - self.burst_fraction)
        # Holding times are exponential in *time* and sized so a burst visit
        # carries ~mean_state_requests arrivals and the expected time share
        # in the burst state is exactly burst_fraction — which pins the
        # long-run average rate at the target QPS.
        burst_hold_ns = self.mean_state_requests * NS_PER_S / (qps * self.burst_ratio)
        quiet_hold_ns = burst_hold_ns * (1.0 - self.burst_fraction) / self.burst_fraction

        bursting = rng.random() < self.burst_fraction
        remaining_ns = rng.exponential(burst_hold_ns if bursting else quiet_hold_ns)
        carried_ns = 0.0  # time since the last arrival, across state switches
        while True:
            rate = qps * (self.burst_ratio if bursting else quiet_ratio)
            gap = rng.exponential(NS_PER_S / rate)
            if gap <= remaining_ns:
                remaining_ns -= gap
                yield carried_ns + gap
                carried_ns = 0.0
            else:
                # State switches mid-gap; the exponential is memoryless, so
                # the residual is redrawn at the new state's rate.
                carried_ns += remaining_ns
                bursting = not bursting
                remaining_ns = rng.exponential(burst_hold_ns if bursting else quiet_hold_ns)

    def _gaps_ns(self, count: int, qps: float, rng: np.random.Generator) -> np.ndarray:
        return np.fromiter(
            islice(self._gap_scalars(qps, rng), count), dtype=np.float64, count=count
        )

    def _iter_gaps_ns(
        self, qps: float, rng: np.random.Generator, chunk: int
    ) -> Iterator[np.ndarray]:
        # The state machine persists across chunks: chunk boundaries never
        # reset the modulating Markov chain.
        scalars = self._gap_scalars(qps, rng)
        while True:
            yield np.fromiter(islice(scalars, chunk), dtype=np.float64, count=chunk)


@dataclass(frozen=True)
class DiurnalArrivals(ArrivalProcess):
    """Sinusoidal day/night load: rate ``qps * (1 + amplitude*sin(2πt/T))``.

    Implemented by thinning a homogeneous Poisson process at the peak rate,
    so the schedule is exact (no rate-function discretization) yet fully
    deterministic under the seed.
    """

    name = "diurnal"
    amplitude: float = 0.5
    period_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.amplitude < 1.0:
            raise ValueError("amplitude must be in [0, 1)")
        if self.period_s <= 0.0:
            raise ValueError("period_s must be positive")

    def _gap_scalars(self, qps: float, rng: np.random.Generator) -> Iterator[float]:
        """Unbounded thinned-NHPP gap generator (shared eager/streaming core)."""
        peak = qps * (1.0 + self.amplitude)
        period_ns = self.period_s * NS_PER_S
        now_ns = 0.0
        last_ns = 0.0
        while True:
            now_ns += rng.exponential(NS_PER_S / peak)
            rate = qps * (1.0 + self.amplitude * math.sin(2.0 * math.pi * now_ns / period_ns))
            if rng.random() * peak <= rate:
                yield now_ns - last_ns
                last_ns = now_ns

    def _gaps_ns(self, count: int, qps: float, rng: np.random.Generator) -> np.ndarray:
        return np.fromiter(
            islice(self._gap_scalars(qps, rng), count), dtype=np.float64, count=count
        )

    def _iter_gaps_ns(
        self, qps: float, rng: np.random.Generator, chunk: int
    ) -> Iterator[np.ndarray]:
        # The wall-clock phase of the sinusoid persists across chunks.
        scalars = self._gap_scalars(qps, rng)
        while True:
            yield np.fromiter(islice(scalars, chunk), dtype=np.float64, count=chunk)


_PROCESSES: Dict[str, Type[ArrivalProcess]] = {
    cls.name: cls
    for cls in (ConstantArrivals, PoissonArrivals, BurstyArrivals, DiurnalArrivals)
}
#: MMPP is the textbook name for the bursty process.
_PROCESSES["mmpp"] = BurstyArrivals


def available_arrivals() -> Tuple[str, ...]:
    """Sorted names of every registered arrival process."""
    return tuple(sorted(_PROCESSES))


def arrival_process(name: str, **options: float) -> ArrivalProcess:
    """Build an arrival process by (case-insensitive) name."""
    try:
        cls = _PROCESSES[str(name).lower()]
    except KeyError:
        raise UnknownArrivalError(name, available_arrivals()) from None
    return cls(**options)


__all__ = [
    "NS_PER_S",
    "ArrivalProcess",
    "BurstyArrivals",
    "ConstantArrivals",
    "DiurnalArrivals",
    "PoissonArrivals",
    "UnknownArrivalError",
    "arrival_process",
    "available_arrivals",
]
