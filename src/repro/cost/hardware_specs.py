"""Hardware specifications and prices (Table III)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class HardwareSpec:
    """One line of Table III."""

    name: str
    description: str
    tdp_watts: float
    price_usd: float
    #: For per-GB priced items (DIMMs), the price refers to one GB and the
    #: TDP to one 64 GB module.
    per_gb: bool = False


HARDWARE_SPECS: Dict[str, HardwareSpec] = {
    "server_cpu": HardwareSpec(
        name="Server CPU",
        description="AMD EPYC 9654 96C @ 2.4 GHz",
        tdp_watts=360.0,
        price_usd=4695.0,
    ),
    "ddr4_dimm": HardwareSpec(
        name="DIMM & CXL mem (DDR4)",
        description="per GB, DDR4 (64 GB module TDP)",
        tdp_watts=21.6,
        price_usd=4.90,
        per_gb=True,
    ),
    "ddr5_dimm": HardwareSpec(
        name="DIMM (DDR5)",
        description="per GB, DDR5 (64 GB module TDP)",
        tdp_watts=24.0,
        price_usd=11.25,
        per_gb=True,
    ),
    "nic": HardwareSpec(
        name="NIC",
        description="NVIDIA ConnectX-6 @ 200 Gbps IB",
        tdp_watts=23.6,
        price_usd=1900.0,
    ),
    "switch": HardwareSpec(
        name="Network switch",
        description="Juniper QFX10002-36Q @ 100 Gbps",
        tdp_watts=360.0,
        price_usd=11899.0,
    ),
    "switch_pu": HardwareSpec(
        name="Switch + PUs",
        description="3.2 Tbps, 2 pipelines (ASIC, Tofino-class)",
        tdp_watts=400.0,
        price_usd=13039.0,
    ),
    "gpu": HardwareSpec(
        name="GPU",
        description="NVIDIA A100 80 GB PCIe HBM2e",
        tdp_watts=300.0,
        price_usd=18900.0,
    ),
}


def spec(name: str) -> HardwareSpec:
    """Look up a hardware spec by key."""
    if name not in HARDWARE_SPECS:
        valid = ", ".join(sorted(HARDWARE_SPECS))
        raise KeyError(f"unknown hardware spec {name!r}; expected one of: {valid}")
    return HARDWARE_SPECS[name]


__all__ = ["HardwareSpec", "HARDWARE_SPECS", "spec"]
