"""Power and area overheads of the PIFS-Rec hardware (Fig 18, §VI-D)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class ComponentOverhead:
    """Synthesized power/area of one hardware component (45 nm, 1 GHz)."""

    name: str
    power_mw: float
    area_um2: float

    @property
    def area_mm2(self) -> float:
        return self.area_um2 / 1e6


#: Fig 18 component breakdown.
PIFS_BREAKDOWN: Dict[str, ComponentOverhead] = {
    "process_core": ComponentOverhead("Process Core", power_mw=9.3, area_um2=33709.0),
    "control_logic": ComponentOverhead(
        "Control Logic + Registers", power_mw=3.2, area_um2=73114.0
    ),
    "on_switch_buffer": ComponentOverhead(
        "On Switch Buffer", power_mw=15.2, area_um2=2.38e6
    ),
}

#: RecNMP-base (x8) reference point from Fig 18.
RECNMP_X8 = ComponentOverhead("RecNMP-base (x8)", power_mw=75.4, area_um2=215984.0)


class PowerAreaModel:
    """Aggregate power/area comparison between PIFS-Rec and RecNMP."""

    def __init__(self, breakdown: Dict[str, ComponentOverhead] = PIFS_BREAKDOWN) -> None:
        self._breakdown = dict(breakdown)

    def components(self) -> Dict[str, ComponentOverhead]:
        return dict(self._breakdown)

    def total_power_mw(self, include_buffer: bool = True) -> float:
        return sum(
            c.power_mw
            for key, c in self._breakdown.items()
            if include_buffer or key != "on_switch_buffer"
        )

    def total_area_um2(self, include_buffer: bool = True) -> float:
        return sum(
            c.area_um2
            for key, c in self._breakdown.items()
            if include_buffer or key != "on_switch_buffer"
        )

    def power_reduction_vs_recnmp(self, reference: ComponentOverhead = RECNMP_X8) -> float:
        """Power reduction factor vs RecNMP x8 (paper reports ~2.7x).

        The power comparison includes the full PIFS switch logic (process
        core, control and the on-switch buffer), matching the ~2.7x the
        paper derives from the Fig 18 numbers.
        """
        own = self.total_power_mw(include_buffer=True)
        if own <= 0:
            raise ZeroDivisionError("PIFS power must be positive")
        return reference.power_mw / own

    def area_reduction_vs_recnmp(self, reference: ComponentOverhead = RECNMP_X8) -> float:
        """Area reduction factor vs RecNMP x8 (paper reports ~2.02x).

        The area comparison excludes the SRAM buffer on both sides ("an
        equivalent RecNMP (x8) configuration with the same cache buffer").
        """
        own = self.total_area_um2(include_buffer=False)
        if own <= 0:
            raise ZeroDivisionError("PIFS area must be positive")
        return reference.area_um2 / own


__all__ = ["ComponentOverhead", "PIFS_BREAKDOWN", "RECNMP_X8", "PowerAreaModel"]
