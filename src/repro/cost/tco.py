"""Total cost of ownership model (Fig 16, §VI-E)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import GIB, ModelConfig
from repro.baselines.gpu_ps import DEPLOYMENT_FOOTPRINT_BYTES, GPUParameterServer
from repro.cost.hardware_specs import HARDWARE_SPECS, spec

#: Electricity price used by the paper ($ per kWh).
ENERGY_COST_PER_KWH = 0.05
#: OPEX horizon in years.
OPEX_YEARS = 3.0
HOURS_PER_YEAR = 24 * 365


@dataclass(frozen=True)
class TCOReport:
    """CAPEX/OPEX breakdown of one deployment."""

    name: str
    capex_usd: float
    opex_usd: float

    @property
    def total_usd(self) -> float:
        return self.capex_usd + self.opex_usd


def _opex_usd(power_watts: float, years: float = OPEX_YEARS) -> float:
    kwh = power_watts / 1000.0 * HOURS_PER_YEAR * years
    return kwh * ENERGY_COST_PER_KWH


class TCOModel:
    """CAPEX + 3-year OPEX for PIFS-Rec and GPU parameter-server deployments."""

    def __init__(self, model: ModelConfig) -> None:
        self.model = model

    @property
    def memory_footprint_bytes(self) -> int:
        return DEPLOYMENT_FOOTPRINT_BYTES.get(self.model.name, self.model.total_embedding_bytes)

    @property
    def memory_footprint_gb(self) -> float:
        return self.memory_footprint_bytes / GIB

    # ------------------------------------------------------------------
    def pifs_rec(self, cxl_fraction: float = 0.8) -> TCOReport:
        """A PIFS-Rec deployment: one CPU server, DDR5 + CXL DDR4, fabric switch.

        ``cxl_fraction`` is the share of the embedding footprint placed in
        re-purposed DDR4 behind the fabric switch; the rest is CPU-attached
        DDR5.
        """
        if not 0.0 <= cxl_fraction <= 1.0:
            raise ValueError("cxl_fraction must be in [0, 1]")
        gb = self.memory_footprint_gb
        ddr4_gb = gb * cxl_fraction
        ddr5_gb = gb * (1.0 - cxl_fraction)
        cpu = spec("server_cpu")
        ddr4 = spec("ddr4_dimm")
        ddr5 = spec("ddr5_dimm")
        fabric_switch = spec("switch_pu")

        capex = (
            cpu.price_usd
            + ddr4_gb * ddr4.price_usd
            + ddr5_gb * ddr5.price_usd
            + fabric_switch.price_usd
        )
        # DIMM TDP figures are per 64 GB module; CXL memory draws ~90 % of
        # the equivalent local DRAM power (§VI-E).
        ddr4_power = (ddr4_gb / 64.0) * ddr4.tdp_watts * 0.9
        ddr5_power = (ddr5_gb / 64.0) * ddr5.tdp_watts
        power = cpu.tdp_watts + ddr4_power + ddr5_power + fabric_switch.tdp_watts
        return TCOReport(name="PIFS-Rec", capex_usd=capex, opex_usd=_opex_usd(power))

    def gpu_parameter_server(self, num_gpus: int) -> TCOReport:
        """A parameter-server deployment: CPU host, DDR5, NICs, switch, GPUs."""
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        gb = self.memory_footprint_gb
        cpu = spec("server_cpu")
        ddr5 = spec("ddr5_dimm")
        nic = spec("nic")
        net_switch = spec("switch")
        gpu = spec("gpu")

        capex = (
            cpu.price_usd
            + gb * ddr5.price_usd
            + num_gpus * gpu.price_usd
            + num_gpus * nic.price_usd
            + net_switch.price_usd
        )
        ps = GPUParameterServer(num_gpus, self.model)
        ddr5_power = (gb / 64.0) * ddr5.tdp_watts
        power = (
            ps.power_watts(cpu_tdp_watts=cpu.tdp_watts)
            + ddr5_power
            + num_gpus * nic.tdp_watts
            + net_switch.tdp_watts
        )
        return TCOReport(name=f"GPU x{num_gpus}", capex_usd=capex, opex_usd=_opex_usd(power))

    # ------------------------------------------------------------------
    def comparison(self, gpu_counts=(2, 3, 4)) -> Dict[str, TCOReport]:
        """Fig 16: TCO of GPU deployments and PIFS-Rec for this model."""
        reports = {f"X{count}": self.gpu_parameter_server(count) for count in gpu_counts}
        reports["Ours"] = self.pifs_rec()
        return reports

    def cost_advantage(self, num_gpus: int = 1) -> float:
        """How many times cheaper PIFS-Rec is than a ``num_gpus`` deployment."""
        ours = self.pifs_rec().total_usd
        theirs = self.gpu_parameter_server(num_gpus).total_usd
        if ours <= 0:
            raise ZeroDivisionError("PIFS-Rec TCO must be positive")
        return theirs / ours


__all__ = ["TCOModel", "TCOReport", "ENERGY_COST_PER_KWH", "OPEX_YEARS"]
