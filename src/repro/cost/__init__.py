"""Cost, power, area and energy models (§VI-D, §VI-E)."""

from repro.cost.energy import EnergyModel
from repro.cost.hardware_specs import HARDWARE_SPECS, HardwareSpec
from repro.cost.power_area import PIFS_BREAKDOWN, ComponentOverhead, PowerAreaModel
from repro.cost.tco import TCOModel, TCOReport

__all__ = [
    "EnergyModel",
    "HARDWARE_SPECS",
    "HardwareSpec",
    "PIFS_BREAKDOWN",
    "ComponentOverhead",
    "PowerAreaModel",
    "TCOModel",
    "TCOReport",
]
