"""Energy accounting for simulated runs (§VI-D, §VI-E)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.power_area import PIFS_BREAKDOWN, PowerAreaModel
from repro.sls.result import SimResult


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one simulated run, in millijoules."""

    dram_mj: float
    cxl_mj: float
    switch_logic_mj: float
    host_mj: float

    @property
    def total_mj(self) -> float:
        return self.dram_mj + self.cxl_mj + self.switch_logic_mj + self.host_mj


class EnergyModel:
    """Per-access energy model.

    Per-access DRAM/CXL energies follow the usual CACTI-class figures
    (tens of nJ per 64 B access including I/O); the switch logic draws the
    synthesized power of Fig 18 for the duration of the run; host energy is
    charged per row accumulated by the CPU.
    """

    DRAM_ACCESS_NJ = 20.0
    CXL_ACCESS_NJ = 35.0  # DDR4 media + CXL controller + SerDes
    #: Extra energy when the row additionally travels through the switch and
    #: upstream FlexBus into the host cache hierarchy (host-centric systems).
    CXL_HOST_TRANSFER_NJ = 25.0
    HOST_ROW_NJ = 4.0
    CPU_IDLE_W_PER_THREAD = 2.5

    def __init__(self, power_area: PowerAreaModel | None = None) -> None:
        self._power_area = power_area or PowerAreaModel(PIFS_BREAKDOWN)

    def breakdown(self, result: SimResult, in_switch: bool = True) -> EnergyBreakdown:
        """Energy of ``result``; ``in_switch`` selects who accumulates rows."""
        dram_mj = result.local_rows * self.DRAM_ACCESS_NJ * 1e-6
        cxl_nj_per_row = self.CXL_ACCESS_NJ + (0.0 if in_switch else self.CXL_HOST_TRANSFER_NJ)
        cxl_mj = result.cxl_rows * cxl_nj_per_row * 1e-6
        switch_power_w = self._power_area.total_power_mw() / 1000.0
        switch_logic_mj = switch_power_w * result.total_ns * 1e-6 if in_switch else 0.0
        host_rows = result.lookups if not in_switch else result.local_rows
        host_mj = host_rows * self.HOST_ROW_NJ * 1e-6
        return EnergyBreakdown(
            dram_mj=dram_mj, cxl_mj=cxl_mj, switch_logic_mj=switch_logic_mj, host_mj=host_mj
        )

    def total_mj(self, result: SimResult, in_switch: bool = True) -> float:
        return self.breakdown(result, in_switch=in_switch).total_mj

    def savings_vs(self, ours: SimResult, baseline: SimResult) -> float:
        """Fractional energy saving of ``ours`` vs ``baseline`` (paper: ~15 %)."""
        ours_mj = self.total_mj(ours, in_switch=True)
        base_mj = self.total_mj(baseline, in_switch=False)
        if base_mj <= 0:
            raise ZeroDivisionError("baseline energy must be positive")
        return 1.0 - ours_mj / base_mj


__all__ = ["EnergyModel", "EnergyBreakdown"]
