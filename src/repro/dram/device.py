"""A complete DRAM device (one memory node's media).

Besides the scalar :meth:`DRAMDevice.access` path, this module provides the
batched timing kernel of the vectorized engine (:class:`DRAMKernel`): the
device's bank/bus/controller state is flattened into plain lists once, a
closure services accesses with pure local-variable arithmetic, and
:meth:`DRAMKernel.sync` writes the evolved state and statistics back into
the ``Bank``/``Channel``/``DRAMController`` objects.  The kernel performs
exactly the arithmetic of the scalar path in the same order, so finish
times are bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.config import CACHE_LINE_BYTES, DRAMConfig
from repro.dram.controller import DRAMController


@dataclass
class DRAMStats:
    """Summary statistics of a DRAM device."""

    requests: int
    bytes_transferred: int
    average_latency_ns: float
    row_buffer_hit_rate: float
    busy_ns: float

    def bandwidth_gbps(self, elapsed_ns: float) -> float:
        """Achieved bandwidth over ``elapsed_ns`` in GB/s (bytes per ns)."""
        if elapsed_ns <= 0:
            return 0.0
        return self.bytes_transferred / elapsed_ns


class DRAMDevice:
    """The DRAM media of one memory node (local DDR5, CXL DDR4, ...)."""

    def __init__(self, config: DRAMConfig, name: str = "dram") -> None:
        self._config = config
        self._name = name
        self._controller = DRAMController(config)

    @property
    def name(self) -> str:
        return self._name

    @property
    def config(self) -> DRAMConfig:
        return self._config

    @property
    def controller(self) -> DRAMController:
        return self._controller

    @property
    def capacity_bytes(self) -> int:
        return self._config.capacity_bytes

    def access(
        self,
        address: int,
        arrival_ns: float,
        is_write: bool = False,
        bytes_requested: int = CACHE_LINE_BYTES,
    ) -> float:
        """Access the media; return the completion time in ns."""
        return self._controller.access(
            address=address,
            arrival_ns=arrival_ns,
            is_write=is_write,
            bytes_requested=bytes_requested,
        )

    def batch_kernel(self, bytes_requested: int = CACHE_LINE_BYTES) -> "DRAMKernel":
        """A flattened read-timing kernel over this device's state.

        The kernel owns the state until :meth:`DRAMKernel.sync` is called;
        interleaving scalar :meth:`access` calls with kernel accesses before
        the sync is unsupported.
        """
        return DRAMKernel(self, bytes_requested)

    def stats(self) -> DRAMStats:
        """Return aggregate statistics since the last reset."""
        busy = sum(channel.busy_ns for channel in self._controller.channels)
        transferred = sum(channel.bytes_transferred for channel in self._controller.channels)
        return DRAMStats(
            requests=self._controller.requests,
            bytes_transferred=transferred,
            average_latency_ns=self._controller.average_latency_ns(),
            row_buffer_hit_rate=self._controller.row_buffer_hit_rate(),
            busy_ns=busy,
        )

    def reset(self) -> None:
        self._controller.reset()


class DRAMKernel:
    """Flattened read-path timing kernel over one :class:`DRAMDevice`.

    ``access(channel, flat_bank, row, arrival_ns)`` is a closure bound to
    plain list state (open row / next-ready per bank, bus-free per channel)
    and to timing constants precomputed with the exact scalar expressions,
    so each call is a handful of local float operations instead of the
    controller → channel → bank object walk.  Coordinates come from
    :meth:`~repro.dram.address_mapping.AddressMapping.decode_flat_batch`.
    """

    def __init__(self, device: DRAMDevice, bytes_requested: int = CACHE_LINE_BYTES) -> None:
        self._device = device
        self._controller = device.controller
        self._channels = self._controller.channels
        config = self._controller.config
        timings = config.timings
        self._banks_per_channel = config.ranks_per_channel * config.banks_per_rank
        self._bytes_requested = bytes_requested
        self._bursts = max(1, (bytes_requested + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES)
        # Flattened state, exposed so composing kernels (the CXL device
        # kernel) can inline the read arithmetic without a call per access.
        self._banks = []
        self.bank_open: list = []
        self.bank_ready: list = []
        self.bank_hits: list = []
        self.bank_misses: list = []
        self.bank_conflicts: list = []
        for channel in self._channels:
            for bank in channel.banks:
                self._banks.append(bank)
                self.bank_open.append(-1 if bank.open_row is None else bank.open_row)
                self.bank_ready.append(bank.next_ready_ns)
                self.bank_hits.append(0)
                self.bank_misses.append(0)
                self.bank_conflicts.append(0)
        self.bus_free = [channel.bus_free_ns for channel in self._channels]
        self.busy_ns = [0.0 for _ in self._channels]
        self.accesses = [0 for _ in self._channels]
        #: [requests, total latency, last finish] — a mutable box so fused
        #: closures in other kernels can update the controller aggregates.
        self.controller_box = [0, 0.0, self._controller.last_finish_ns]
        # Constants, computed with the scalar path's own expressions so the
        # floating-point values are identical.
        self.hit_ns = timings.cycles_to_ns(timings.row_hit_cycles)
        self.miss_ns = timings.cycles_to_ns(timings.row_closed_cycles)
        self.conflict_ns = timings.cycles_to_ns(timings.row_conflict_cycles)
        self.recovery_ns = timings.cycles_to_ns(timings.trtp) * 0.25
        self.burst_time = self._channels[0].burst_ns * self._bursts
        self.overhead_ns = type(self._controller).CONTROLLER_OVERHEAD_NS
        self.access = self._build()

    @property
    def mapping(self):
        return self._controller.mapping

    def _build(self):
        bank_open = self.bank_open
        bank_ready = self.bank_ready
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        bank_conflicts = self.bank_conflicts
        bus_free = self.bus_free
        busy_ns = self.busy_ns
        accesses = self.accesses
        box = self.controller_box
        hit_ns = self.hit_ns
        miss_ns = self.miss_ns
        conflict_ns = self.conflict_ns
        recovery_ns = self.recovery_ns
        burst_time = self.burst_time
        overhead = self.overhead_ns

        def access(channel_index: int, flat_bank: int, row: int, arrival_ns: float) -> float:
            """Read ``bytes_requested`` at (channel, bank, row); returns finish."""
            ready_at = bank_ready[flat_bank]
            start = arrival_ns if arrival_ns > ready_at else ready_at
            open_row = bank_open[flat_bank]
            if open_row == row:
                latency = hit_ns
                bank_hits[flat_bank] += 1
            elif open_row < 0:
                latency = miss_ns
                bank_misses[flat_bank] += 1
            else:
                latency = conflict_ns
                bank_conflicts[flat_bank] += 1
            data_ready = start + latency
            bank_open[flat_bank] = row
            bank_ready[flat_bank] = data_ready + recovery_ns
            bus = bus_free[channel_index]
            start_burst = data_ready if data_ready > bus else bus
            finish = start_burst + burst_time
            bus_free[channel_index] = finish
            busy_ns[channel_index] += burst_time
            accesses[channel_index] += 1
            finish += overhead
            box[0] += 1
            box[1] += finish - arrival_ns
            if finish > box[2]:
                box[2] = finish
            return finish

        return access

    def mlp_bag(self, mlp: int, overhead_ns: float, accumulate_ns: float):
        """Fused MLP-grouped bag accumulation over this device (one call/bag).

        Returns ``bag(ks, lch, lfb, lrow, start_ns, page, page_last)``: the
        exact per-row loop of the PIFS local accumulation — rows issued in
        ``mlp``-sized groups, each group's finish is the max over its
        per-row DRAM accesses plus ``overhead_ns``, the group then pays the
        SIMD ``accumulate_ns`` per row, and every row stamps its page's
        last-access time at the group cursor — with the DRAM bank/bus state
        *and* the loop in one closure, so a whole bag costs one Python
        call.  Built once per session; arithmetic and iteration order are
        identical to calling :attr:`access` per row.
        """
        bank_open = self.bank_open
        bank_ready = self.bank_ready
        bank_hits = self.bank_hits
        bank_misses = self.bank_misses
        bank_conflicts = self.bank_conflicts
        bus_free = self.bus_free
        busy_ns = self.busy_ns
        accesses = self.accesses
        box = self.controller_box
        hit_ns = self.hit_ns
        miss_ns = self.miss_ns
        conflict_ns = self.conflict_ns
        recovery_ns = self.recovery_ns
        burst_time = self.burst_time
        dram_overhead = self.overhead_ns

        def bag(ks, lch, lfb, lrow, start_ns, page, page_last):
            count = len(ks)
            cursor = start_ns
            finish = start_ns
            index = 0
            while index < count:
                group_end = index + mlp
                if group_end > count:
                    group_end = count
                group_finish = cursor
                for position in range(index, group_end):
                    k = ks[position]
                    page_last[page[k]] = cursor
                    flat_bank = lfb[k]
                    # --- inlined DRAMKernel.access ---
                    ready_at = bank_ready[flat_bank]
                    start = cursor if cursor > ready_at else ready_at
                    open_row = bank_open[flat_bank]
                    row = lrow[k]
                    if open_row == row:
                        latency = hit_ns
                        bank_hits[flat_bank] += 1
                    elif open_row < 0:
                        latency = miss_ns
                        bank_misses[flat_bank] += 1
                    else:
                        latency = conflict_ns
                        bank_conflicts[flat_bank] += 1
                    data_ready = start + latency
                    bank_open[flat_bank] = row
                    bank_ready[flat_bank] = data_ready + recovery_ns
                    channel = lch[k]
                    bus = bus_free[channel]
                    start_burst = data_ready if data_ready > bus else bus
                    media_done = start_burst + burst_time
                    bus_free[channel] = media_done
                    busy_ns[channel] += burst_time
                    accesses[channel] += 1
                    media_done += dram_overhead
                    box[0] += 1
                    box[1] += media_done - cursor
                    if media_done > box[2]:
                        box[2] = media_done
                    # --- end inlined block ---
                    done = media_done + overhead_ns
                    if done > group_finish:
                        group_finish = done
                cursor = group_finish
                finish = group_finish + (group_end - index) * accumulate_ns
                index = group_end
            return finish

        return bag

    def access_batch(self, addresses: np.ndarray, arrival_ns) -> np.ndarray:
        """Service a batch of reads in order; returns per-access finish times.

        ``arrival_ns`` is a scalar (all requests arrive together) or one
        arrival per address.  Equivalent to the scalar
        ``DRAMDevice.access`` loop, with the decode done as one numpy pass.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        channel, flat_bank, row = self.mapping.decode_flat_batch(addresses)
        arrivals = np.broadcast_to(
            np.asarray(arrival_ns, dtype=np.float64), addresses.shape
        )
        access = self.access
        finishes = [
            access(ch, fb, rw, at)
            for ch, fb, rw, at in zip(
                channel.tolist(), flat_bank.tolist(), row.tolist(), arrivals.tolist()
            )
        ]
        return np.asarray(finishes, dtype=np.float64)

    def sync(self) -> None:
        """Write the kernel's evolved state and statistics back to the device."""
        for i, bank in enumerate(self._banks):
            bank._open_row = None if self.bank_open[i] < 0 else self.bank_open[i]
            bank._next_ready_ns = self.bank_ready[i]
            bank._hits += self.bank_hits[i]
            bank._misses += self.bank_misses[i]
            bank._conflicts += self.bank_conflicts[i]
            self.bank_hits[i] = 0
            self.bank_misses[i] = 0
            self.bank_conflicts[i] = 0
        bytes_per_access = self._bursts * CACHE_LINE_BYTES
        for i, channel in enumerate(self._channels):
            channel._bus_free_ns = self.bus_free[i]
            channel._busy_ns += self.busy_ns[i]
            channel._bytes_transferred += self.accesses[i] * bytes_per_access
            self.busy_ns[i] = 0.0
            self.accesses[i] = 0
        controller = self._controller
        box = self.controller_box
        controller._requests += box[0]
        controller._total_latency_ns += box[1]
        if box[2] > controller._last_finish_ns:
            controller._last_finish_ns = box[2]
        # Zero the deltas (state lists stay live — fused closures in other
        # kernels hold references to them) so a later sync cannot
        # double-count the statistics flushed above.
        box[0] = 0
        box[1] = 0.0


__all__ = ["DRAMDevice", "DRAMKernel", "DRAMStats"]
