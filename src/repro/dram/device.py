"""A complete DRAM device (one memory node's media)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CACHE_LINE_BYTES, DRAMConfig
from repro.dram.controller import DRAMController


@dataclass
class DRAMStats:
    """Summary statistics of a DRAM device."""

    requests: int
    bytes_transferred: int
    average_latency_ns: float
    row_buffer_hit_rate: float
    busy_ns: float

    def bandwidth_gbps(self, elapsed_ns: float) -> float:
        """Achieved bandwidth over ``elapsed_ns`` in GB/s (bytes per ns)."""
        if elapsed_ns <= 0:
            return 0.0
        return self.bytes_transferred / elapsed_ns


class DRAMDevice:
    """The DRAM media of one memory node (local DDR5, CXL DDR4, ...)."""

    def __init__(self, config: DRAMConfig, name: str = "dram") -> None:
        self._config = config
        self._name = name
        self._controller = DRAMController(config)

    @property
    def name(self) -> str:
        return self._name

    @property
    def config(self) -> DRAMConfig:
        return self._config

    @property
    def controller(self) -> DRAMController:
        return self._controller

    @property
    def capacity_bytes(self) -> int:
        return self._config.capacity_bytes

    def access(
        self,
        address: int,
        arrival_ns: float,
        is_write: bool = False,
        bytes_requested: int = CACHE_LINE_BYTES,
    ) -> float:
        """Access the media; return the completion time in ns."""
        return self._controller.access(
            address=address,
            arrival_ns=arrival_ns,
            is_write=is_write,
            bytes_requested=bytes_requested,
        )

    def stats(self) -> DRAMStats:
        """Return aggregate statistics since the last reset."""
        busy = sum(channel.busy_ns for channel in self._controller.channels)
        transferred = sum(channel.bytes_transferred for channel in self._controller.channels)
        return DRAMStats(
            requests=self._controller.requests,
            bytes_transferred=transferred,
            average_latency_ns=self._controller.average_latency_ns(),
            row_buffer_hit_rate=self._controller.row_buffer_hit_rate(),
            busy_ns=busy,
        )

    def reset(self) -> None:
        self._controller.reset()


__all__ = ["DRAMDevice", "DRAMStats"]
