"""Per-bank row-buffer state machine.

Each bank tracks its open row and next-ready time; accesses are classified
as row hits, misses (closed bank) or conflicts (other row open) and timed
from the :class:`~repro.config.DRAMTimings` cycle counts.  The vectorized
engine flattens this state into :class:`~repro.dram.device.DRAMKernel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro.config import DRAMTimings


class RowBufferResult(Enum):
    """Outcome of an access with respect to the bank's row buffer."""

    HIT = "hit"
    MISS = "miss"  # bank precharged; activate then read
    CONFLICT = "conflict"  # different row open; precharge, activate, read


@dataclass
class BankAccess:
    """Timing outcome of a single bank access."""

    start_ns: float
    ready_ns: float
    result: RowBufferResult


class Bank:
    """A single DRAM bank.

    The bank tracks the currently open row and the earliest time at which it
    can begin servicing the next command.  Latencies are derived from the
    :class:`~repro.config.DRAMTimings` row hit / closed / conflict cycle
    counts.
    """

    def __init__(self, timings: DRAMTimings) -> None:
        self._timings = timings
        self._open_row: int | None = None
        self._next_ready_ns = 0.0
        self._hits = 0
        self._misses = 0
        self._conflicts = 0

    @property
    def open_row(self) -> int | None:
        return self._open_row

    @property
    def next_ready_ns(self) -> float:
        return self._next_ready_ns

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def conflicts(self) -> int:
        return self._conflicts

    def classify(self, row: int) -> RowBufferResult:
        """Classify an access to ``row`` without changing bank state."""
        if self._open_row is None:
            return RowBufferResult.MISS
        if self._open_row == row:
            return RowBufferResult.HIT
        return RowBufferResult.CONFLICT

    def access(self, row: int, arrival_ns: float, is_write: bool = False) -> BankAccess:
        """Service an access to ``row`` arriving at ``arrival_ns``.

        Returns the time at which data is available on the bank's output
        (reads) or the write is committed (writes).
        """
        timings = self._timings
        result = self.classify(row)
        if result is RowBufferResult.HIT:
            cycles = timings.row_hit_cycles
            self._hits += 1
        elif result is RowBufferResult.MISS:
            cycles = timings.row_closed_cycles
            self._misses += 1
        else:
            cycles = timings.row_conflict_cycles
            self._conflicts += 1
        if is_write:
            cycles += max(0, timings.tcwl - timings.cl)

        start = max(arrival_ns, self._next_ready_ns)
        ready = start + timings.cycles_to_ns(cycles)
        self._open_row = row
        # The bank can accept the next column command once this one completes;
        # writes additionally hold the bank for the write-recovery time.
        recovery_cycles = timings.twr if is_write else timings.trtp
        self._next_ready_ns = ready + timings.cycles_to_ns(recovery_cycles) * 0.25
        return BankAccess(start_ns=start, ready_ns=ready, result=result)

    def precharge(self) -> None:
        """Close the currently open row."""
        self._open_row = None

    def reset(self) -> None:
        """Reset state and statistics."""
        self._open_row = None
        self._next_ready_ns = 0.0
        self._hits = 0
        self._misses = 0
        self._conflicts = 0


__all__ = ["Bank", "BankAccess", "RowBufferResult"]
