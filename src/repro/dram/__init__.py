"""Cycle-approximate DRAM substrate.

This package replaces the Ramulator 2.0 dependency of the paper with a
self-contained DRAM model: per-bank row-buffer state machines driven by the
DDR timing parameters of Table II, a FR-FCFS-flavoured controller that
serializes requests on bank readiness and channel data-bus occupancy, and a
configurable physical address mapping.
"""

from repro.dram.address_mapping import AddressMapping, DecodedAddress
from repro.dram.bank import Bank, RowBufferResult
from repro.dram.channel import Channel
from repro.dram.controller import DRAMController
from repro.dram.device import DRAMDevice, DRAMStats

__all__ = [
    "AddressMapping",
    "DecodedAddress",
    "Bank",
    "RowBufferResult",
    "Channel",
    "DRAMController",
    "DRAMDevice",
    "DRAMStats",
]
