"""Memory controller front-end for a DRAM device."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CACHE_LINE_BYTES, DRAMConfig
from repro.dram.address_mapping import AddressMapping
from repro.dram.channel import Channel


@dataclass
class MemoryRequest:
    """A single memory request presented to the controller."""

    address: int
    arrival_ns: float
    is_write: bool = False
    bytes_requested: int = CACHE_LINE_BYTES


@dataclass
class MemoryResponse:
    """Completion record for a serviced request."""

    address: int
    arrival_ns: float
    finish_ns: float

    @property
    def latency_ns(self) -> float:
        return self.finish_ns - self.arrival_ns


class DRAMController:
    """A simple open-page controller.

    Requests are serviced in arrival order per channel (FR-FCFS reordering is
    approximated by the row-buffer state retained between accesses: streams
    with locality naturally see row hits).  The controller adds a fixed
    queueing/command overhead per request to account for the on-chip
    controller pipeline.
    """

    #: Fixed controller pipeline overhead per request (ns).
    CONTROLLER_OVERHEAD_NS = 10.0

    def __init__(self, config: DRAMConfig) -> None:
        self._config = config
        self._mapping = AddressMapping(config)
        self._channels = [Channel(config, index=i) for i in range(config.channels)]
        self._requests = 0
        self._total_latency_ns = 0.0
        self._last_finish_ns = 0.0

    @property
    def config(self) -> DRAMConfig:
        return self._config

    @property
    def channels(self) -> list:
        return list(self._channels)

    @property
    def mapping(self) -> AddressMapping:
        return self._mapping

    @property
    def requests(self) -> int:
        return self._requests

    @property
    def last_finish_ns(self) -> float:
        return self._last_finish_ns

    def average_latency_ns(self) -> float:
        """Mean request latency since the last reset."""
        if self._requests == 0:
            return 0.0
        return self._total_latency_ns / self._requests

    def service(self, request: MemoryRequest) -> MemoryResponse:
        """Service a request and return its completion record."""
        decoded = self._mapping.decode(request.address)
        channel = self._channels[decoded.channel]
        finish = channel.access(
            rank=decoded.rank,
            bank=decoded.bank,
            row=decoded.row,
            arrival_ns=request.arrival_ns,
            is_write=request.is_write,
            bytes_requested=request.bytes_requested,
        )
        finish += self.CONTROLLER_OVERHEAD_NS
        self._requests += 1
        self._total_latency_ns += finish - request.arrival_ns
        self._last_finish_ns = max(self._last_finish_ns, finish)
        return MemoryResponse(address=request.address, arrival_ns=request.arrival_ns, finish_ns=finish)

    def access(
        self,
        address: int,
        arrival_ns: float,
        is_write: bool = False,
        bytes_requested: int = CACHE_LINE_BYTES,
    ) -> float:
        """Convenience wrapper returning only the completion time."""
        response = self.service(
            MemoryRequest(
                address=address,
                arrival_ns=arrival_ns,
                is_write=is_write,
                bytes_requested=bytes_requested,
            )
        )
        return response.finish_ns

    def row_buffer_hit_rate(self) -> float:
        """Aggregate row-buffer hit rate across all banks."""
        hits = 0
        total = 0
        for channel in self._channels:
            for bank in channel.banks:
                hits += bank.hits
                total += bank.hits + bank.misses + bank.conflicts
        if total == 0:
            return 0.0
        return hits / total

    def reset(self) -> None:
        for channel in self._channels:
            channel.reset()
        self._requests = 0
        self._total_latency_ns = 0.0
        self._last_finish_ns = 0.0


__all__ = ["DRAMController", "MemoryRequest", "MemoryResponse"]
