"""DRAM channel: a shared data bus in front of a set of ranks and banks."""

from __future__ import annotations

from repro.config import CACHE_LINE_BYTES, DRAMConfig
from repro.dram.bank import Bank, BankAccess


class Channel:
    """One DRAM channel.

    The channel owns its banks (``ranks_per_channel`` x ``banks_per_rank``)
    and models the shared data bus as a busy-until timestamp: each cache-line
    burst occupies the bus for ``CACHE_LINE_BYTES / bandwidth`` nanoseconds.
    """

    def __init__(self, config: DRAMConfig, index: int = 0) -> None:
        self._config = config
        self._index = index
        self._banks = [
            Bank(config.timings)
            for _ in range(config.ranks_per_channel * config.banks_per_rank)
        ]
        self._bus_free_ns = 0.0
        self._burst_ns = CACHE_LINE_BYTES / config.channel_bandwidth_gbps
        self._bytes_transferred = 0
        self._busy_ns = 0.0

    @property
    def index(self) -> int:
        return self._index

    @property
    def banks(self) -> list:
        return list(self._banks)

    @property
    def bytes_transferred(self) -> int:
        return self._bytes_transferred

    @property
    def busy_ns(self) -> float:
        return self._busy_ns

    @property
    def bus_free_ns(self) -> float:
        return self._bus_free_ns

    @property
    def burst_ns(self) -> float:
        """Bus occupancy of one cache-line burst (used by the batch kernel)."""
        return self._burst_ns

    def _bank(self, rank: int, bank: int) -> Bank:
        return self._banks[rank * self._config.banks_per_rank + bank]

    def access(
        self,
        rank: int,
        bank: int,
        row: int,
        arrival_ns: float,
        is_write: bool = False,
        bytes_requested: int = CACHE_LINE_BYTES,
    ) -> float:
        """Service one access; return the time the data burst completes."""
        bank_obj = self._bank(rank, bank)
        bank_access: BankAccess = bank_obj.access(row, arrival_ns, is_write=is_write)
        bursts = max(1, (bytes_requested + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES)
        burst_time = self._burst_ns * bursts
        start_burst = max(bank_access.ready_ns, self._bus_free_ns)
        finish = start_burst + burst_time
        self._bus_free_ns = finish
        self._bytes_transferred += bursts * CACHE_LINE_BYTES
        self._busy_ns += burst_time
        return finish

    def utilization(self, elapsed_ns: float) -> float:
        """Fraction of ``elapsed_ns`` during which the data bus was busy."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, self._busy_ns / elapsed_ns)

    def reset(self) -> None:
        for bank in self._banks:
            bank.reset()
        self._bus_free_ns = 0.0
        self._bytes_transferred = 0
        self._busy_ns = 0.0


__all__ = ["Channel"]
