"""Physical address decomposition for the DRAM model.

The mapping follows the common "row : bank : rank : channel : column" layout
(channel bits in the low-order positions after the cache-line offset) so that
consecutive cache lines are striped across channels — the layout that
maximizes channel-level parallelism, which both the baselines and PIFS-Rec
assume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.config import CACHE_LINE_BYTES, DRAMConfig


@dataclass(frozen=True)
class DecodedAddress:
    """The DRAM coordinates of a physical address."""

    channel: int
    rank: int
    bank: int
    row: int
    column: int

    @property
    def bank_key(self) -> tuple:
        """A hashable key identifying the (channel, rank, bank) triple."""
        return (self.channel, self.rank, self.bank)


class AddressMapping:
    """Decode physical addresses into channel/rank/bank/row/column tuples."""

    def __init__(self, config: DRAMConfig) -> None:
        self._config = config
        self._lines_per_row = max(1, config.row_size_bytes // CACHE_LINE_BYTES)

    @property
    def config(self) -> DRAMConfig:
        return self._config

    def decode(self, address: int) -> DecodedAddress:
        """Decode ``address`` (a byte address) into DRAM coordinates."""
        if address < 0:
            raise ValueError(f"address must be non-negative, got {address}")
        cfg = self._config
        line = address // CACHE_LINE_BYTES
        channel = line % cfg.channels
        line //= cfg.channels
        column = line % self._lines_per_row
        line //= self._lines_per_row
        bank = line % cfg.banks_per_rank
        line //= cfg.banks_per_rank
        rank = line % cfg.ranks_per_channel
        line //= cfg.ranks_per_channel
        row = line
        return DecodedAddress(channel=channel, rank=rank, bank=bank, row=row, column=column)

    def lines_per_row(self) -> int:
        """Number of cache lines that fit in one DRAM row."""
        return self._lines_per_row

    def decode_batch(
        self, addresses: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Vectorized :meth:`decode`: five arrays (channel, rank, bank, row,
        column) for a whole batch of byte addresses.

        Integer-exact against the scalar path; this is the resolution stage
        of the vectorized engine (one numpy pass instead of one
        :class:`DecodedAddress` object per access).
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.size and int(addresses.min()) < 0:
            raise ValueError("addresses must be non-negative")
        cfg = self._config
        line = addresses // CACHE_LINE_BYTES
        channel = line % cfg.channels
        line = line // cfg.channels
        column = line % self._lines_per_row
        line = line // self._lines_per_row
        bank = line % cfg.banks_per_rank
        line = line // cfg.banks_per_rank
        rank = line % cfg.ranks_per_channel
        row = line // cfg.ranks_per_channel
        return channel, rank, bank, row, column

    def decode_flat_batch(self, addresses: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch-decode to the flattened coordinates of the timing kernels.

        Returns ``(channel, flat_bank, row)`` where ``flat_bank`` indexes the
        kernel's single bank-state array:
        ``channel * (ranks_per_channel * banks_per_rank) + rank * banks_per_rank + bank``.
        """
        cfg = self._config
        channel, rank, bank, row, _ = self.decode_batch(addresses)
        banks_per_channel = cfg.ranks_per_channel * cfg.banks_per_rank
        flat_bank = channel * banks_per_channel + rank * cfg.banks_per_rank + bank
        return channel, flat_bank, row


__all__ = ["AddressMapping", "DecodedAddress"]
