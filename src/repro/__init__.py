"""PIFS-Rec reproduction library.

A from-scratch Python reproduction of *PIFS-Rec: Process-In-Fabric-Switch
for Large-Scale Recommendation System Inferences* (MICRO 2024): a functional
simulator of CXL fabric switches with near-data processing for DLRM
embedding (SLS) operations, the baselines the paper compares against, the
page-management software architecture, and the cost/power models behind the
paper's evaluation figures.

Typical entry points — the legacy explicit pipeline:

>>> from repro import WorkloadConfig, RMC1, build_workload, PIFSRecSystem, DEFAULT_SYSTEM
>>> workload = build_workload(WorkloadConfig(model=RMC1, batch_size=4, num_batches=1))
>>> result = PIFSRecSystem(DEFAULT_SYSTEM).run(workload)
>>> result.total_ns > 0
True

and the fluent :mod:`repro.api` session façade, which owns config
derivation, system construction and workload building (``Sweep`` runs whole
parameter grids, optionally in parallel; ``python -m repro`` is the CLI):

>>> from repro import Simulation
>>> run = Simulation("pifs-rec").model("RMC1").quick().batch_size(4).run()
>>> run.total_ns > 0
True
>>> run.system
'pifs-rec'
"""

from repro.config import (
    DEFAULT_SYSTEM,
    DEFAULT_WORKLOAD,
    MODEL_CONFIGS,
    RMC1,
    RMC2,
    RMC3,
    RMC4,
    BufferConfig,
    CXLConfig,
    DRAMConfig,
    DRAMTimings,
    ModelConfig,
    PageManagementConfig,
    PIFSConfig,
    SystemConfig,
    WorkloadConfig,
    scaled_model,
)
from repro.baselines import (
    BeaconSystem,
    GPUParameterServer,
    PondPMSystem,
    PondSystem,
    RecNMPSystem,
    TPPSystem,
    create_system,
)
from repro.dlrm import DLRM, EmbeddingBagCollection, EmbeddingTable, QueryBatch
from repro.pifs import PIFSRuntime, PIFSSwitch
from repro.pifs.system import PIFSRecNoPM, PIFSRecSystem
from repro.sls import LatencyStats, SimResult
from repro.traces import SLSWorkload, build_workload
from repro.serve import ServeConfig, ServeResult

# Imported last: the façade's session layer builds on everything above.
from repro.api import (
    RunResult,
    Simulation,
    Sweep,
    SweepResult,
    UnknownSystemError,
    available_systems,
    register_system,
)
from repro.scenarios import (
    Scenario,
    TrafficSpec,
    UnknownScenarioError,
    available_scenarios,
    register_scenario,
    scenario,
)

__version__ = "1.1.0"

__all__ = [
    "DEFAULT_SYSTEM",
    "DEFAULT_WORKLOAD",
    "MODEL_CONFIGS",
    "RMC1",
    "RMC2",
    "RMC3",
    "RMC4",
    "BufferConfig",
    "CXLConfig",
    "DRAMConfig",
    "DRAMTimings",
    "ModelConfig",
    "PageManagementConfig",
    "PIFSConfig",
    "SystemConfig",
    "WorkloadConfig",
    "scaled_model",
    "BeaconSystem",
    "GPUParameterServer",
    "PondPMSystem",
    "PondSystem",
    "RecNMPSystem",
    "TPPSystem",
    "create_system",
    "RunResult",
    "Simulation",
    "Sweep",
    "SweepResult",
    "UnknownSystemError",
    "available_systems",
    "register_system",
    "DLRM",
    "EmbeddingBagCollection",
    "EmbeddingTable",
    "QueryBatch",
    "PIFSRuntime",
    "PIFSSwitch",
    "PIFSRecSystem",
    "PIFSRecNoPM",
    "LatencyStats",
    "ServeConfig",
    "ServeResult",
    "SimResult",
    "SLSWorkload",
    "build_workload",
    "Scenario",
    "TrafficSpec",
    "UnknownScenarioError",
    "available_scenarios",
    "register_scenario",
    "scenario",
    "__version__",
]
