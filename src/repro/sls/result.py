"""Simulation result records."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Mapping


@dataclass
class SimResult:
    """Outcome of running one SLS workload on one system.

    ``total_ns`` is the wall-clock completion time of the workload ("total
    ticks used to process the traces", §VI-C); the remaining fields are the
    counters the evaluation figures are built from.
    """

    system: str
    total_ns: float
    requests: int
    lookups: int
    local_rows: int = 0
    cxl_rows: int = 0
    remote_socket_rows: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    migrations: int = 0
    migration_cost_ns: float = 0.0
    stall_cycles: float = 0.0
    backpressure_ns: float = 0.0
    bytes_to_host: int = 0
    device_access_counts: Dict[int, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.total_ns < 0:
            raise ValueError("total_ns must be non-negative")
        if self.requests < 0 or self.lookups < 0:
            raise ValueError("counters must be non-negative")

    @property
    def latency_per_request_ns(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_ns / self.requests

    @property
    def latency_per_lookup_ns(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.total_ns / self.lookups

    @property
    def throughput_lookups_per_us(self) -> float:
        if self.total_ns == 0:
            return 0.0
        return self.lookups / (self.total_ns / 1000.0)

    @property
    def buffer_hit_ratio(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        if total == 0:
            return 0.0
        return self.buffer_hits / total

    @property
    def migration_cost_fraction(self) -> float:
        """Migration cost relative to total latency (Fig 13 a/d right axis)."""
        if self.total_ns == 0:
            return 0.0
        return self.migration_cost_ns / self.total_ns

    def speedup_over(self, other: "SimResult") -> float:
        """How much faster this result is than ``other`` (latency ratio)."""
        if self.total_ns == 0:
            raise ZeroDivisionError("cannot compute speedup of a zero-latency result")
        return other.total_ns / self.total_ns

    def copy(self) -> "SimResult":
        """An independent copy (fresh counter dicts)."""
        return replace(
            self,
            device_access_counts=dict(self.device_access_counts),
            extra=dict(self.extra),
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (``json.dumps``-safe)."""
        data = asdict(self)
        # JSON object keys are strings; stringify so dumps/loads round-trips.
        data["device_access_counts"] = {
            str(device): count for device, count in self.device_access_counts.items()
        }
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimResult":
        """Rebuild a :class:`SimResult` from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        payload = {key: value for key, value in data.items() if key in known}
        payload["device_access_counts"] = {
            int(device): int(count)
            for device, count in dict(payload.get("device_access_counts") or {}).items()
        }
        return cls(**payload)


__all__ = ["SimResult"]
