"""Simulation result records.

:class:`SimResult` is the canonical outcome of one replayed workload —
total latency, per-tier row counts, buffer/migration/stall accounting and
derived metrics — with dict/JSON round-tripping so sweeps and the CLI can
serialize results losslessly.  Both execution engines (scalar and vector)
produce numerically identical instances for the same run.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Dict, Mapping, Optional, Sequence

from repro.net.stats import NetStats


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile of ``samples`` (linear interpolation).

    Implements the same estimator as ``numpy.percentile``'s default
    (``linear`` / Hyndman-Fan type 7): rank ``(n - 1) * q / 100``
    interpolated between the two nearest order statistics.  Kept dependency
    -light here so :class:`LatencyStats` does not pull numpy into the
    result layer.
    """
    return _percentile_of_sorted(sorted(float(value) for value in samples), q)


def _percentile_of_sorted(ordered: Sequence[float], q: float) -> float:
    """:func:`percentile` for already-sorted samples (no re-sort per call)."""
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile {q} out of range [0, 100]")
    if not ordered:
        raise ValueError("cannot take a percentile of zero samples")
    rank = (len(ordered) - 1) * (q / 100.0)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1.0 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class LatencyStats:
    """Distribution summary of per-request latencies (online serving).

    All values are nanoseconds.  ``count == 0`` means "no samples" and all
    summary fields are zero; every constructor keeps the fields finite so a
    non-finite percentile always indicates a real serving-path bug (the CI
    smoke job checks :meth:`is_finite` for every registered system).
    """

    count: int = 0
    mean_ns: float = 0.0
    min_ns: float = 0.0
    max_ns: float = 0.0
    p50_ns: float = 0.0
    p90_ns: float = 0.0
    p95_ns: float = 0.0
    p99_ns: float = 0.0
    p999_ns: float = 0.0

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        ordered = sorted(float(value) for value in samples)
        if not ordered:
            return cls()
        return cls(
            count=len(ordered),
            mean_ns=sum(ordered) / len(ordered),
            min_ns=ordered[0],
            max_ns=ordered[-1],
            p50_ns=_percentile_of_sorted(ordered, 50.0),
            p90_ns=_percentile_of_sorted(ordered, 90.0),
            p95_ns=_percentile_of_sorted(ordered, 95.0),
            p99_ns=_percentile_of_sorted(ordered, 99.0),
            p999_ns=_percentile_of_sorted(ordered, 99.9),
        )

    def quantile(self, label: str) -> float:
        """Look up a summary field by short label (``"p99"``, ``"mean"``...)."""
        name = label if label.endswith("_ns") else f"{label}_ns"
        if name not in {f.name for f in fields(self)}:
            raise ValueError(f"unknown latency quantile {label!r}")
        return getattr(self, name)

    def is_finite(self) -> bool:
        return all(
            math.isfinite(getattr(self, f.name)) for f in fields(self) if f.name != "count"
        )

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LatencyStats":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


@dataclass
class SimResult:
    """Outcome of running one SLS workload on one system.

    ``total_ns`` is the wall-clock completion time of the workload ("total
    ticks used to process the traces", §VI-C); the remaining fields are the
    counters the evaluation figures are built from.
    """

    system: str
    total_ns: float
    requests: int
    lookups: int
    local_rows: int = 0
    cxl_rows: int = 0
    remote_socket_rows: int = 0
    buffer_hits: int = 0
    buffer_misses: int = 0
    migrations: int = 0
    migration_cost_ns: float = 0.0
    stall_cycles: float = 0.0
    backpressure_ns: float = 0.0
    bytes_to_host: int = 0
    device_access_counts: Dict[int, int] = field(default_factory=dict)
    extra: Dict[str, float] = field(default_factory=dict)
    #: Per-request latency distribution; populated by the online serving
    #: loop (closed-loop replay reports only the aggregate ``total_ns``).
    latency: Optional[LatencyStats] = None
    #: Packet-tier observations (queue depths, drops, backpressure);
    #: populated only under ``fidelity="packet"``.
    net: Optional[NetStats] = None

    def __post_init__(self) -> None:
        if self.total_ns < 0:
            raise ValueError("total_ns must be non-negative")
        if self.requests < 0 or self.lookups < 0:
            raise ValueError("counters must be non-negative")

    @property
    def latency_per_request_ns(self) -> float:
        if self.requests == 0:
            return 0.0
        return self.total_ns / self.requests

    @property
    def latency_per_lookup_ns(self) -> float:
        if self.lookups == 0:
            return 0.0
        return self.total_ns / self.lookups

    @property
    def throughput_lookups_per_us(self) -> float:
        if self.total_ns == 0:
            return 0.0
        return self.lookups / (self.total_ns / 1000.0)

    @property
    def buffer_hit_ratio(self) -> float:
        total = self.buffer_hits + self.buffer_misses
        if total == 0:
            return 0.0
        return self.buffer_hits / total

    @property
    def migration_cost_fraction(self) -> float:
        """Migration cost relative to total latency (Fig 13 a/d right axis)."""
        if self.total_ns == 0:
            return 0.0
        return self.migration_cost_ns / self.total_ns

    def speedup_over(self, other: "SimResult") -> float:
        """How much faster this result is than ``other`` (latency ratio)."""
        if self.total_ns == 0:
            raise ZeroDivisionError("cannot compute speedup of a zero-latency result")
        return other.total_ns / self.total_ns

    def copy(self) -> "SimResult":
        """An independent copy (fresh counter dicts)."""
        return replace(
            self,
            device_access_counts=dict(self.device_access_counts),
            extra=dict(self.extra),
        )

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable representation (``json.dumps``-safe)."""
        data = asdict(self)
        # JSON object keys are strings; stringify so dumps/loads round-trips.
        data["device_access_counts"] = {
            str(device): count for device, count in self.device_access_counts.items()
        }
        # asdict already flattened the LatencyStats dataclass into a dict
        # (or left None); the same holds for ``net`` and its nested
        # PortStats values.
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SimResult":
        """Rebuild a :class:`SimResult` from :meth:`to_dict` output."""
        known = {f.name for f in fields(cls)}
        payload = {key: value for key, value in data.items() if key in known}
        payload["device_access_counts"] = {
            int(device): int(count)
            for device, count in dict(payload.get("device_access_counts") or {}).items()
        }
        latency = payload.get("latency")
        if latency is not None and not isinstance(latency, LatencyStats):
            payload["latency"] = LatencyStats.from_dict(latency)
        net = payload.get("net")
        if net is not None and not isinstance(net, NetStats):
            payload["net"] = NetStats.from_dict(net)
        return cls(**payload)


__all__ = ["LatencyStats", "SimResult", "percentile"]
