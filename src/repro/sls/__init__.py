"""Common SLS-system machinery: result records and the simulation engine.

Every evaluated system — Pond, Pond+PM, BEACON-S, RecNMP, TPP and PIFS-Rec —
implements the :class:`~repro.sls.engine.SLSSystem` interface: it prepares a
page placement for a workload, then processes each row-accumulation request
and returns a :class:`~repro.sls.result.SimResult` with total latency and
detailed counters.  Workloads replay on one of two engines
(:data:`~repro.sls.engine.ENGINES`): the scalar oracle, or the vectorized
fast path of :mod:`repro.sls.vector` — numerically identical, several times
faster.
"""

from repro.sls.engine import ENGINES, MemoryBackends, SLSSystem
from repro.sls.result import LatencyStats, SimResult, percentile

__all__ = ["ENGINES", "MemoryBackends", "SLSSystem", "LatencyStats", "SimResult", "percentile"]
