"""Vectorized session context for the batch simulation engine.

The scalar engine resolves and times every lookup through the full object
stack (tiered page table → device models → switch/link objects), costing
dozens of Python calls per row.  The vectorized engine keeps the *scalar
path as the oracle* and restructures the work in two stages:

1. **Batched resolution** — at session start every request's addresses are
   concatenated and resolved with a handful of numpy passes: page ids,
   DRAM coordinates under both the local-DDR5 and the CXL-DDR4 mappings
   (placement-independent, computed once), and — per placement generation —
   the page → node gather through
   :meth:`~repro.memsys.tiered.TieredMemorySystem.node_id_table`.
2. **Flattened timing kernels** — the stateful per-access arithmetic runs
   through the layer kernels (:class:`~repro.dram.device.DRAMKernel`,
   :class:`~repro.cxl.device.CXLDeviceKernel`,
   :class:`~repro.cxl.switch.SwitchPortKernel`,
   :class:`~repro.pifs.switch.PIFSSwitchKernel`), closures over plain local
   state that perform exactly the scalar arithmetic in the same order, so
   every finish time is bit-identical to the scalar engine.

Access-counter side effects (page/node hotness feeding the page-management
policies) are buffered in plain dicts and flushed through
:meth:`~repro.memsys.tiered.TieredMemorySystem.apply_access_counts` before
every maintenance pass and at session end, preserving every placement
decision the scalar engine would make.
"""

from __future__ import annotations

from bisect import bisect_left
from collections import Counter
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.memsys.node import placement_arrays


class VectorUnsupportedError(RuntimeError):
    """The session's configuration has no vectorized fast path.

    Raised during :class:`VectorContext` construction (e.g. a row size the
    enhanced-instruction format cannot encode); the engine falls back to the
    scalar path, which supports everything.
    """


class _OffsetBounds:
    """Request-id-indexed view over window-local ``(begin, end)`` bounds.

    Streaming windows keep the workload's global request ids, but the
    context's resolution arrays are window-local; this shim lets every
    request path keep indexing ``ctx.bounds[request.request_id]`` verbatim
    while the window's bounds list stays O(window).
    """

    __slots__ = ("_bounds", "_base")

    def __init__(self, bounds: List[Tuple[int, int]], base: int) -> None:
        self._bounds = bounds
        self._base = base

    def __getitem__(self, request_id: int) -> Tuple[int, int]:
        return self._bounds[request_id - self._base]

    def __len__(self) -> int:
        return len(self._bounds)


class _MappedBounds:
    """Bounds view for windows whose request ids are not contiguous.

    Fleet shard views (:class:`repro.fleet.shard.ShardWorkload`) filter a
    shared trace but keep the global request ids, so a shard's window has
    id gaps where requests were routed to other shards.  A per-window
    id -> position dict keeps ``ctx.bounds[request.request_id]`` exact
    while staying O(window).
    """

    __slots__ = ("_bounds", "_positions")

    def __init__(self, bounds: List[Tuple[int, int]], request_ids: List[int]) -> None:
        self._bounds = bounds
        self._positions = {request_id: index for index, request_id in enumerate(request_ids)}

    def __getitem__(self, request_id: int) -> Tuple[int, int]:
        return self._bounds[self._positions[request_id]]

    def __len__(self) -> int:
        return len(self._bounds)


class VectorContext:
    """Per-session resolution arrays and timing kernels for one system."""

    def __init__(self, system, workload) -> None:
        self.system = system
        self.workload = workload
        self.tiered = system.tiered
        backends = system.backends
        self.backends = backends
        self.row_bytes = backends.row_bytes

        # Placement tables (node id -> tier / device) and the lazily
        # re-gathered page -> node window with its precomputed splits.
        is_local, node_device = placement_arrays(self.tiered.nodes(), system.node_to_device)
        self._node_is_local_np = is_local
        self._node_device_np = node_device
        self.node_is_local: List[bool] = is_local.tolist()
        self.node_device: List[int] = node_device.tolist()

        # ------------------------------------------------------------------
        # Stage 2: flattened timing kernels over the backend state.
        # ------------------------------------------------------------------
        row_bytes = self.row_bytes
        try:
            self.local_dram_kernels = [
                dram.batch_kernel(row_bytes) for dram in backends.local_dram_per_host
            ]
            self.device_kernels = [
                device.batch_kernel(row_bytes) for device in backends.devices
            ]
            # PIFSSwitch.batch_kernel returns the accumulate-capable kernel;
            # the base FabricSwitch kernel only forwards host reads.
            self.switch_kernels = [
                switch.batch_kernel(row_bytes) for switch in backends.switches
            ]
        except (ValueError, RuntimeError) as error:
            raise VectorUnsupportedError(str(error)) from error

        num_hosts = max(1, system.system.num_hosts)
        self.num_hosts = num_hosts
        self.num_local_drams = len(self.local_dram_kernels)
        self.device_switch: List[int] = [
            backends.device_switch[device_id] for device_id in range(len(backends.devices))
        ]
        self._device_switch_np = np.asarray(self.device_switch, dtype=np.int64)
        #: True when the fabric has exactly one switch — the request paths
        #: then skip per-row switch bucketing entirely.
        self.single_switch = len(backends.switches) == 1
        self.home_switch: List[int] = [
            backends.host_home_switch[host_id] for host_id in range(num_hosts)
        ]
        self.forward_ns: List[float] = [
            type(switch).FORWARD_LATENCY_NS for switch in backends.switches
        ]
        self._port_kernels = [
            [
                self.switch_kernels[switch_id].port_kernel(
                    backends.host_ports[(host_id, switch_id)]
                )
                for switch_id in range(len(backends.switches))
            ]
            for host_id in range(num_hosts)
        ]
        #: Extra per-system kernels registered via ``prepare_vector`` (e.g.
        #: RecNMP's rank cache); synced together with the layer kernels.
        self.extra_kernels: List = []

        # Buffered access-recording side effects (flushed before maintenance).
        # A Counter so uniform-timestamp paths can record whole requests with
        # one C-level ``update`` instead of per-row dict arithmetic; counts
        # are only ever read at flush time, so the request paths merely
        # ``extend`` page-id slices onto ``pending_pages`` (a C-level list
        # append) and the Counter is built once per flush.
        self.page_counts: Counter = Counter()
        self.pending_pages: List[int] = []
        self.page_last: Dict[int, float] = {}

        self._bind_closures()
        system.prepare_vector(self)

        # ------------------------------------------------------------------
        # Stage 1: batched address resolution.  Eager workloads resolve the
        # whole request list once; streaming workloads start empty and the
        # engine re-resolves per window via :meth:`load_window` (the kernels
        # above persist across windows, so the timing-state stream — and
        # therefore every finish time — is identical to one whole-workload
        # resolution).
        # ------------------------------------------------------------------
        initial = [] if getattr(workload, "streaming", False) else workload.requests
        self.load_window(initial)

    # ------------------------------------------------------------------
    # Stage-1 resolution (whole workload, or one streaming window)
    # ------------------------------------------------------------------
    def load_window(self, requests: List) -> None:
        """(Re)resolve the context's stage-1 arrays over ``requests``.

        ``requests`` must carry strictly increasing request ids (whole
        eager lists, streaming windows, and fleet shard views all do —
        shard views leave id gaps, covered by a mapped bounds view);
        resolution arrays become O(len(requests)) and
        ``bounds`` stays indexable by global request id.  Kernel state and
        the buffered access counters are left untouched — they are
        cumulative across windows, exactly like the scalar engine's device
        state.
        """
        self.requests = requests
        self._base = requests[0].request_id if requests else 0
        if requests:
            addresses = np.concatenate([request.addresses for request in requests])
        else:
            addresses = np.zeros(0, dtype=np.int64)
        addresses = addresses.astype(np.int64, copy=False)
        lengths = [len(request.addresses) for request in requests]
        ends = np.cumsum(lengths) if lengths else np.zeros(0, dtype=np.int64)
        starts = ends - np.asarray(lengths, dtype=np.int64) if lengths else ends
        bounds: List[Tuple[int, int]] = list(zip(starts.tolist(), ends.tolist()))
        request_ids = [request.request_id for request in requests]
        if not requests or request_ids[-1] - self._base + 1 == len(requests):
            # Contiguous ids (whole eager lists and plain streaming windows).
            self.bounds = bounds if self._base == 0 else _OffsetBounds(bounds, self._base)
        else:
            # Id gaps: a fleet shard view routed the missing requests to
            # other shards (ids stay global so fleet results line up with
            # the unsharded replay).
            self.bounds = _MappedBounds(bounds, request_ids)

        self.addr: List[int] = addresses.tolist()
        self._page_np = addresses // self.tiered.page_size
        self.page: List[int] = self._page_np.tolist()

        backends = self.backends
        local_mapping = backends.local_dram.controller.mapping
        lch, lfb, lrow = local_mapping.decode_flat_batch(addresses)
        self.lch, self.lfb, self.lrow = lch.tolist(), lfb.tolist(), lrow.tolist()
        cxl_mapping = backends.devices[0].dram.controller.mapping
        cch, cfb, crow = cxl_mapping.decode_flat_batch(addresses)
        self.cch, self.cfb, self.crow = cch.tolist(), cfb.tolist(), crow.tolist()

        # Invalidate the node-window gather cache: positions are relative
        # to this window's arrays.
        self._window: List[int] = []
        self._window_local: List[bool] = []
        self._window_device: List[int] = []
        self._local_pos: List[int] = []
        self._remote_pos: List[int] = []
        self._remote_dev: List[int] = []
        self._remote_sw: List[int] = []
        self._window_start = 0
        self._window_end = 0
        self._node_generation = -1

    # ------------------------------------------------------------------
    # Resolution accessors
    # ------------------------------------------------------------------
    def owns(self, request) -> bool:
        """True when ``request`` is in the currently resolved window."""
        index = request.request_id - self._base
        return 0 <= index < len(self.requests) and self.requests[index] is request

    #: Gather granularity of the node window (lookups, not bytes): large
    #: enough to amortize the numpy gather, small enough that the frequent
    #: migration epochs of the page-managed systems do not re-gather the
    #: whole remaining workload every epoch.
    NODE_WINDOW = 8192

    def _ensure_window(self, begin: int, end: int) -> None:
        """Make the cached window cover positions ``[begin, end)``.

        The window is re-gathered through the dense page table when the
        placement generation changes or the request leaves the cached range;
        the closed-loop replay consumes positions in order, so each epoch
        re-gathers one window rather than the full workload.  One rebuild
        derives, with a handful of numpy passes, everything the request
        paths consume per row: the node ids, the local/CXL flags, the
        owning device per position, and the position-sorted local/remote
        split with its device and switch columns (so per-request splits are
        C-level list slices instead of per-row Python branching).
        """
        if (
            self.tiered.generation == self._node_generation
            and begin >= self._window_start
            and end <= self._window_end
        ):
            return
        span = end - begin
        block = span if span > self.NODE_WINDOW else self.NODE_WINDOW
        stop = begin + block
        total = len(self.page)
        if stop > total:
            stop = total
        table = self.tiered.node_id_table()
        window_np = table[self._page_np[begin:stop]]
        self._window = window_np.tolist()
        local_mask = self._node_is_local_np[window_np]
        self._window_local = local_mask.tolist()
        device_np = self._node_device_np[window_np]
        self._window_device = device_np.tolist()
        local_idx = np.nonzero(local_mask)[0]
        remote_idx = np.nonzero(~local_mask)[0]
        self._local_pos = (local_idx + begin).tolist()
        self._remote_pos = (remote_idx + begin).tolist()
        remote_devs = device_np[remote_idx]
        self._remote_dev = remote_devs.tolist()
        self._remote_sw = self._device_switch_np[remote_devs].tolist()
        self._window_start = begin
        self._window_end = stop
        self._node_generation = self.tiered.generation

    def nodes_window(self, begin: int, end: int) -> Tuple[List[int], int]:
        """Node ids for resolved positions ``[begin, end)`` as ``(list, offset)``.

        Returns a window list whose index ``k - offset`` holds the node id
        of resolved position ``k``.
        """
        self._ensure_window(begin, end)
        return self._window, self._window_start

    def window_flags(self, begin: int, end: int) -> Tuple[List[bool], List[int], int]:
        """Per-position ``(local_flags, device_ids, offset)`` for ``[begin, end)``.

        ``local_flags[k - offset]`` is True when position ``k`` resolves to
        local DRAM; ``device_ids[k - offset]`` is the owning CXL device id
        (-1 for local rows).  For request paths that walk rows in original
        order (the MLP-grouped host accumulation).
        """
        self._ensure_window(begin, end)
        return self._window_local, self._window_device, self._window_start

    def split(self, begin: int, end: int) -> Tuple[List[int], List[int], List[int], List[int]]:
        """Local/remote split of positions ``[begin, end)``.

        Returns ``(local_ks, remote_ks, remote_devices, remote_switches)``:
        the resolved positions that live in local DRAM, those that live in
        the CXL pool, and — aligned with ``remote_ks`` — the owning device
        and switch ids.  All four are slices of window-level arrays computed
        with numpy at the last re-gather, so a request's split costs two
        binary searches and four list slices.
        """
        self._ensure_window(begin, end)
        local_pos = self._local_pos
        remote_pos = self._remote_pos
        i0 = bisect_left(local_pos, begin)
        i1 = bisect_left(local_pos, end, i0)
        j0 = bisect_left(remote_pos, begin)
        j1 = bisect_left(remote_pos, end, j0)
        return (
            local_pos[i0:i1],
            remote_pos[j0:j1],
            self._remote_dev[j0:j1],
            self._remote_sw[j0:j1],
        )

    def nodes(self) -> List[int]:
        """Current node id for every resolved address (full gather).

        Convenience/testing accessor; the request paths use the windowed
        :meth:`nodes_window`.
        """
        table = self.tiered.node_id_table()
        return table[self._page_np].tolist()

    # ------------------------------------------------------------------
    # Closure binding / state flushing
    # ------------------------------------------------------------------
    def _bind_closures(self) -> None:
        """(Re)export the kernels' bound closures as flat lists.

        Kernels re-arm their closures on :meth:`sync`, so the exported lists
        are refreshed after every full flush.
        """
        self.local_access = [kernel.access for kernel in self.local_dram_kernels]
        self.dev_access_host = [kernel.access_host for kernel in self.device_kernels]
        self.dev_access_switch = [kernel.access_switch for kernel in self.device_kernels]
        self.port_host_read = [
            [port.host_read for port in ports] for ports in self._port_kernels
        ]
        self.port_transfer = [
            [port.transfer for port in ports] for ports in self._port_kernels
        ]
        self.port_stream = [
            [port.transfer_stream for port in ports] for ports in self._port_kernels
        ]

    def flush_tiered(self) -> None:
        """Flush buffered access counts into the tiered memory system.

        Must run before anything reads page/node hotness — the engine calls
        it ahead of every maintenance pass and at session end.
        """
        obs = self.system.obs
        if obs.enabled:
            obs.count("vector.flush.calls")
            obs.add("vector.flush.pages", len(self.pending_pages))
        if self.pending_pages:
            self.page_counts.update(self.pending_pages)
            self.pending_pages = []
        if self.page_counts:
            self.tiered.apply_access_counts(self.page_counts, self.page_last)
            self.page_counts = Counter()
            self.page_last = {}

    def flush_all(self) -> None:
        """Flush counters and write every kernel's state back to the models."""
        self.flush_tiered()
        for kernel in self.local_dram_kernels:
            kernel.sync()
        for kernel in self.device_kernels:
            kernel.sync()
        for kernel in self.switch_kernels:
            kernel.sync()
        for kernel in self.extra_kernels:
            kernel.sync()
        self._bind_closures()


__all__ = ["VectorContext", "VectorUnsupportedError"]
