"""Shared simulation engine for all SLS systems.

The engine provides:

* :class:`MemoryBackends` — constructs the detailed device models (local
  DDR5, CXL Type 3 expanders, fabric switches, host ports) for a
  :class:`~repro.config.SystemConfig`;
* :class:`SLSSystem` — the abstract base every evaluated system extends.  It
  owns the thread-lane scheduler that replays a workload, the page placement
  helpers (capacity-order, hotness-based, CXL-only), the timing helpers for
  host-side local and CXL accesses, and the page-management maintenance hook
  invoked every ``migration_epoch_accesses`` lookups.

Two execution engines replay a workload (:meth:`SLSSystem.set_engine`):

* ``"scalar"`` (default) — every lookup walks the full object stack; this
  is the reference implementation and the oracle.
* ``"vector"`` — lookups are resolved as numpy batches and timed through
  the flattened layer kernels (:mod:`repro.sls.vector`), producing
  numerically identical results several times faster.  Built-in systems
  implement :meth:`SLSSystem.process_request_vector`; systems that do not
  opt in (``supports_vector_engine`` stays False) silently keep the scalar
  path.
"""

from __future__ import annotations

import numpy as np

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import PAGE_SIZE_BYTES, SystemConfig
from repro.cxl.device import CXLType3Device
from repro.cxl.switch import FabricSwitch, SwitchPort
from repro.dram.device import DRAMDevice
from repro.memsys.hotness import AccessTracker
from repro.memsys.node import MemoryNode, MemoryTier
from repro.memsys.page import page_id_of
from repro.memsys.tiered import TieredMemorySystem
from repro.obs.log import get_logger
from repro.obs.recorder import NULL_RECORDER
from repro.pifs.switch import PIFSSwitch
from repro.sls.result import SimResult
from repro.traces.workload import SLSRequest, SLSWorkload

LOG = get_logger("sls.engine")


class MemoryBackends:
    """The detailed device models behind one simulated machine."""

    def __init__(
        self,
        system: SystemConfig,
        row_bytes: int,
        use_pifs_switch: bool = False,
        compute_enabled: bool = True,
    ) -> None:
        self.system = system
        self.row_bytes = row_bytes
        # One local DRAM per host: in a multi-host deployment every host is a
        # separate server with its own CPU-attached DIMMs; only the CXL pool
        # behind the fabric switches is shared.
        self.local_dram_per_host = [
            DRAMDevice(system.local_dram, name=f"local_ddr5_h{host}")
            for host in range(max(1, system.num_hosts))
        ]
        self.local_dram = self.local_dram_per_host[0]

        num_switches = max(1, system.num_fabric_switches)
        num_devices = max(1, system.num_cxl_devices)
        self.switches: List[FabricSwitch] = []
        for switch_id in range(num_switches):
            if use_pifs_switch:
                switch: FabricSwitch = PIFSSwitch(
                    system.cxl,
                    system.pifs,
                    row_bytes=row_bytes,
                    switch_id=switch_id,
                    compute_enabled=compute_enabled,
                )
            else:
                switch = FabricSwitch(system.cxl, switch_id=switch_id)
            self.switches.append(switch)

        # Devices are distributed round-robin across switches.
        self.devices: List[CXLType3Device] = []
        self.device_switch: Dict[int, int] = {}
        for device_id in range(num_devices):
            device = CXLType3Device(device_id, system.cxl_dram, system.cxl)
            switch_id = device_id % num_switches
            self.switches[switch_id].attach_device(device)
            self.devices.append(device)
            self.device_switch[device_id] = switch_id

        # Each host gets one upstream port per switch it talks to; hosts are
        # assigned a "home" switch round-robin.
        self.host_ports: Dict[Tuple[int, int], SwitchPort] = {}
        self.host_home_switch: Dict[int, int] = {}
        for host_id in range(max(1, system.num_hosts)):
            self.host_home_switch[host_id] = host_id % num_switches
            for switch_id, switch in enumerate(self.switches):
                port = switch.attach_host(f"host{host_id}@sw{switch_id}")
                self.host_ports[(host_id, switch_id)] = port

    def host_port(self, host_id: int, switch_id: Optional[int] = None) -> SwitchPort:
        if switch_id is None:
            switch_id = self.host_home_switch[host_id]
        return self.host_ports[(host_id, switch_id)]

    def local_dram_of_host(self, host_id: int) -> DRAMDevice:
        return self.local_dram_per_host[host_id % len(self.local_dram_per_host)]

    def switch_of_device(self, device_id: int) -> FabricSwitch:
        return self.switches[self.device_switch[device_id]]

    def reset(self) -> None:
        for dram in self.local_dram_per_host:
            dram.reset()
        for switch in self.switches:
            switch.reset()


#: The recognised execution engines (see :meth:`SLSSystem.set_engine`).
#: ``"packet"`` is the congestion-fidelity tier: the scalar request flow
#: with ``repro.net`` port queues attached to every fabric link.
ENGINES = ("scalar", "vector", "packet")


class SLSSystem(ABC):
    """Base class for every evaluated SLS system."""

    name = "base"
    #: Host-side overhead of a load serviced by local DRAM (core + caches).
    HOST_LOCAL_OVERHEAD_NS = 30.0
    #: Host-side overhead of handling a CXL load response (demotion into the
    #: cache hierarchy, poll completion).
    HOST_CXL_OVERHEAD_NS = 60.0
    #: Latency to accumulate one row on the host.
    HOST_ACCUMULATE_NS_PER_ROW = 1.0
    #: Outstanding-miss capacity of one host thread (limits host-side MLP).
    HOST_MLP = 4

    #: Whether this system implements :meth:`process_request_vector`.  A
    #: subclass that overrides :meth:`process_request` must either provide a
    #: matching vector twin or reset this to False — otherwise the vector
    #: engine would replay the parent's request flow.
    supports_vector_engine = False

    def __init__(self, system: SystemConfig, use_pifs_switch: bool = False) -> None:
        self.system = system
        self.use_pifs_switch = use_pifs_switch
        self.backends: Optional[MemoryBackends] = None
        self.tiered: Optional[TieredMemorySystem] = None
        self.workload: Optional[SLSWorkload] = None
        self._page_device: Dict[int, int] = {}
        self._counters: Dict[str, float] = {}
        self._migration_cost_ns = 0.0
        self._lookups_since_maintenance = 0
        self.engine = "scalar"
        self._vector = None
        self._vector_fallback_reason: Optional[str] = None
        self._session_mutators: Tuple = ()
        self._packet_config = None
        self._net_fabric = None
        #: Observability sink; the shared NullRecorder unless
        #: :meth:`set_recorder` installs a TraceRecorder.  Hot paths gate on
        #: ``self.obs.enabled`` (one attribute check) and never call into
        #: the recorder when recording is off.
        self.obs = NULL_RECORDER

    # ------------------------------------------------------------------
    # Session mutation (fault injection)
    # ------------------------------------------------------------------
    def set_session_mutators(self, mutators: Sequence) -> "SLSSystem":
        """Install callables applied to the system at every session setup.

        Each mutator is called with the system after the backends,
        placement and :meth:`prepare` exist but *before* the vector
        context builds its flattened kernels — so a mutation of the device
        models (a degraded link, a slower device, a smaller on-switch
        buffer) is baked into both the scalar and the vector engine
        identically.  The scenario layer's fault injection is implemented
        on this hook.
        """
        self._session_mutators = tuple(mutators)
        return self

    # ------------------------------------------------------------------
    # Engine selection
    # ------------------------------------------------------------------
    def set_engine(self, engine: str) -> "SLSSystem":
        """Select the replay fidelity: ``"scalar"``, ``"vector"`` or ``"packet"``.

        Takes effect at the next :meth:`begin_session`/:meth:`run`.  The
        vector engine produces numerically identical results for every
        system that opts in via ``supports_vector_engine``; systems that do
        not are executed on the scalar path regardless of the knob.  The
        packet engine runs the scalar request flow with ``repro.net`` port
        queues attached to every fabric link — bit-identical to scalar in
        the uncongested limit, and additionally reporting queue-depth
        timelines, drops/retries and backpressure via ``SimResult.net``.
        """
        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of: {', '.join(ENGINES)}")
        self.engine = engine
        return self

    def set_packet_config(self, config) -> "SLSSystem":
        """Install the packet-tier configuration (``None`` restores defaults).

        Only consulted when the engine is ``"packet"``; the default
        :class:`~repro.net.fabric.PacketConfig` is the uncongested limit
        (unbounded buffers).
        """
        self._packet_config = config
        return self

    def set_recorder(self, recorder) -> "SLSSystem":
        """Install an observability recorder (``None`` restores the no-op).

        Recording is strictly observational: the recorder only receives
        timestamps the engine already computed, so results are bit-identical
        with recording off and on.
        """
        self.obs = NULL_RECORDER if recorder is None else recorder
        return self

    # ------------------------------------------------------------------
    # Workload execution
    # ------------------------------------------------------------------
    def begin_session(self, workload: SLSWorkload) -> None:
        """Reset state and build backends/placement for ``workload``.

        Factored out of :meth:`run` so an online serving loop can drive the
        system request by request (:meth:`service_request`) instead of
        replaying the whole workload closed-loop.
        """
        with self.obs.phase("session.begin"):
            self._begin_session(workload)

    def _begin_session(self, workload: SLSWorkload) -> None:
        self.workload = workload
        self._counters = {
            "local_rows": 0,
            "cxl_rows": 0,
            "remote_rows": 0,
            "buffer_hits": 0,
            "buffer_misses": 0,
            "bytes_to_host": 0,
        }
        self._migration_cost_ns = 0.0
        self._lookups_since_maintenance = 0
        self.backends = MemoryBackends(
            self.system, workload.model.embedding_row_bytes, use_pifs_switch=self.use_pifs_switch
        )
        self.tiered = self.build_placement(workload)
        self.prepare(workload)
        # Fault-injection mutations run after the machine fully exists and
        # before the vector kernels snapshot its parameters, so both
        # engines observe an identical (degraded) machine.
        for mutator in self._session_mutators:
            mutator(self)
        self._vector = None
        self._vector_fallback_reason = None
        if self.engine == "vector" and self.supports_vector_engine:
            from repro.sls.vector import VectorContext, VectorUnsupportedError

            try:
                self._vector = VectorContext(self, workload)
            except VectorUnsupportedError as error:
                # The scalar path supports everything; remember why the fast
                # path was unavailable for introspection.
                self._vector_fallback_reason = str(error)
                LOG.info(
                    "%s: vector engine unavailable, scalar fallback (%s)",
                    self.name, error,
                )
        self._net_fabric = None
        if self.engine == "packet":
            from repro.net.fabric import PacketFabric

            # Attached after the session mutators so a degraded link/hop is
            # what the port queues observe: fault injection changes service
            # rates *and* queue occupancy under packet fidelity.
            fabric = PacketFabric(self._packet_config)
            fabric.attach(self)
            self._net_fabric = fabric

    def service_request(
        self, request: SLSRequest, start_ns: float, host_id: Optional[int] = None
    ) -> float:
        """Serve one request at ``start_ns``; return its completion time (ns).

        The per-request counterpart of :meth:`run`: callers own the clock
        (arrival/queueing/batching policy) and get back the finish time of
        this request alone instead of only workload aggregates.  Page-
        management maintenance triggered by the epoch counter lands on the
        serving lane — the caller's next dispatch on this lane starts after
        the stall — rather than stalling every lane the way the closed-loop
        replay does.  :meth:`begin_session` must have been called.
        """
        num_hosts = max(1, self.system.num_hosts)
        host = request.host_id % num_hosts if host_id is None else host_id
        vector = self._vector
        if vector is not None and vector.owns(request):
            finish_ns = self.process_request_vector(request, start_ns, host)
        else:
            finish_ns = self.process_request(request, start_ns, host)
        obs = self.obs
        if obs.enabled:
            obs.span(
                "request", start_ns, finish_ns, track=f"host{host}",
                args={"id": request.request_id, "lookups": request.num_candidates},
            )
            obs.count("engine.requests")
        self._lookups_since_maintenance += request.num_candidates
        epoch = max(1, self.system.page_mgmt.migration_epoch_accesses)
        if self._lookups_since_maintenance >= epoch:
            self._lookups_since_maintenance = 0
            if vector is not None:
                vector.flush_tiered()
            stall_ns = self.maintenance(finish_ns)
            if stall_ns > 0 and obs.enabled:
                obs.span(
                    "maintenance", finish_ns, finish_ns + stall_ns,
                    track=f"host{host}", cat="maintenance",
                )
            finish_ns += stall_ns
        return finish_ns

    def service_batch_vector(
        self, requests: Sequence[SLSRequest], start_ns: float, host_id: int
    ) -> List[float]:
        """Serve a dispatched batch back-to-back on one lane (vector engine).

        Batched twin of calling :meth:`service_request` once per request
        with each start at the previous completion: returns the per-request
        completion times, from which the caller recovers every request's
        cursor (request ``i`` starts at ``result[i - 1]``).  Maintenance
        triggered by the epoch counter lands on the serving lane between
        requests exactly as in the sequential path.  Requires an active
        vector context (``engine="vector"`` and :meth:`begin_session`
        succeeded building one); the epoch counter, flush points and
        per-request arithmetic are identical to the scalar-serve dispatch,
        so percentiles, queue timelines and backend state do not change.
        """
        vector = self._vector
        if vector is None:
            raise RuntimeError("service_batch_vector requires an active vector context")
        owns = vector.owns
        process_vector = self.process_request_vector
        process_scalar = self.process_request
        flush = vector.flush_tiered
        maintenance = self.maintenance
        epoch = max(1, self.system.page_mgmt.migration_epoch_accesses)
        counter = self._lookups_since_maintenance
        obs = self.obs
        record = obs.enabled
        track = f"host{host_id}"
        cursor = start_ns
        completions: List[float] = []
        append = completions.append
        for request in requests:
            begin_ns = cursor
            if owns(request):
                cursor = process_vector(request, cursor, host_id)
            else:
                cursor = process_scalar(request, cursor, host_id)
            if record:
                obs.span(
                    "request", begin_ns, cursor, track=track,
                    args={"id": request.request_id, "lookups": request.num_candidates},
                )
                obs.count("engine.requests")
            counter += request.num_candidates
            if counter >= epoch:
                counter = 0
                flush()
                stall_ns = maintenance(cursor)
                if stall_ns > 0 and record:
                    obs.span(
                        "maintenance", cursor, cursor + stall_ns,
                        track=track, cat="maintenance",
                    )
                cursor += stall_ns
            append(cursor)
        self._lookups_since_maintenance = counter
        return completions

    def finish_session(self, total_ns: float) -> SimResult:
        """Assemble the :class:`SimResult` for the session ended at ``total_ns``."""
        if self._vector is not None:
            self._vector.flush_all()
        result = self._build_result(self.workload, total_ns)
        obs = self.obs
        if obs.enabled:
            with obs.phase("session.finish"):
                obs.span(
                    "session", 0.0, total_ns, track="session",
                    args={
                        "system": self.name,
                        "engine": self.engine,
                        "requests": result.requests,
                        "lookups": result.lookups,
                    },
                )
                obs.add("engine.local_rows", result.local_rows)
                obs.add("engine.cxl_rows", result.cxl_rows)
                obs.add("engine.bytes_to_host", result.bytes_to_host)
                if result.buffer_hits or result.buffer_misses:
                    obs.add("cache.switch_buffer.hits", result.buffer_hits)
                    obs.add("cache.switch_buffer.misses", result.buffer_misses)
                if result.migrations:
                    obs.add("engine.migrations", result.migrations)
                if self._net_fabric is not None:
                    from repro.obs.bridge import bridge_net_events

                    bridge_net_events(obs, self._net_fabric, result.net)
        return result

    def run(self, workload: SLSWorkload) -> SimResult:
        """Replay ``workload`` on this system and return the result."""
        self.begin_session(workload)

        num_hosts = max(1, self.system.num_hosts)
        threads_per_host = max(1, self.system.host_threads)
        lanes = [0.0] * (num_hosts * threads_per_host)
        epoch = max(1, self.system.page_mgmt.migration_epoch_accesses)
        # Per-host round-robin so every host spreads its own requests over its
        # own threads (lanes) independently of the global request order.
        host_cursor = [0] * num_hosts

        vector = self._vector
        process = self.process_request if vector is None else self.process_request_vector
        obs = self.obs
        record = obs.enabled
        # Streaming workloads are replayed window by window: only the active
        # window's requests (and, under the vector engine, its resolution
        # arrays) are resident.  The per-request arithmetic, lane assignment
        # and maintenance epochs are byte-for-byte the eager loop's, and the
        # vector kernels persist across windows, so results are bit-identical
        # to replaying the materialized workload.
        streaming = getattr(workload, "streaming", False)
        windows = workload.iter_windows() if streaming else (workload.requests,)
        with obs.phase("engine.execute"):
            for window in windows:
                if streaming and vector is not None:
                    vector.load_window(window)
                for request in window:
                    host_id = request.host_id % num_hosts
                    lane_index = host_id * threads_per_host + (host_cursor[host_id] % threads_per_host)
                    host_cursor[host_id] += 1
                    start_ns = lanes[lane_index]
                    finish_ns = process(request, start_ns, host_id)
                    lanes[lane_index] = finish_ns
                    if record:
                        thread = lane_index - host_id * threads_per_host
                        obs.span(
                            "request", start_ns, finish_ns,
                            track=f"h{host_id}.t{thread}"
                            if threads_per_host > 1 else f"host{host_id}",
                            args={"id": request.request_id, "lookups": request.num_candidates},
                        )
                        obs.count("engine.requests")
                    self._lookups_since_maintenance += request.num_candidates
                    if self._lookups_since_maintenance >= epoch:
                        self._lookups_since_maintenance = 0
                        if vector is not None:
                            vector.flush_tiered()
                        pause_ns = max(lanes)
                        stall_ns = self.maintenance(pause_ns)
                        if stall_ns > 0:
                            lanes = [lane + stall_ns for lane in lanes]
                            if record:
                                obs.span(
                                    "maintenance", pause_ns, pause_ns + stall_ns,
                                    track="maintenance", cat="maintenance",
                                )

        total_ns = max(lanes) if lanes else 0.0
        return self.finish_session(total_ns)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @abstractmethod
    def build_placement(self, workload: SLSWorkload) -> TieredMemorySystem:
        """Create the tiered memory system and install the initial placement."""

    def prepare(self, workload: SLSWorkload) -> None:
        """Optional extra preparation after placement (default: none)."""

    @abstractmethod
    def process_request(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        """Process one row-accumulation request; return its finish time."""

    def process_request_vector(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        """Vector-engine twin of :meth:`process_request`.

        Only invoked when a :class:`~repro.sls.vector.VectorContext` is
        active (``supports_vector_engine`` and ``engine="vector"``).  The
        default delegates to the scalar path so partial overrides stay
        correct.
        """
        return self.process_request(request, start_ns, host_id)

    def prepare_vector(self, ctx) -> None:
        """Hook: register system-specific kernels on a fresh vector context.

        Called at the end of :class:`~repro.sls.vector.VectorContext`
        construction; systems with private caches (e.g. RecNMP's rank
        cache) build their flattened kernels here and append them to
        ``ctx.extra_kernels`` so they are synced with the rest.
        """

    def maintenance(self, now_ns: float) -> float:
        """Periodic page-management work; returns the stall imposed on lanes."""
        return 0.0

    # ------------------------------------------------------------------
    # Placement helpers
    # ------------------------------------------------------------------
    def _make_nodes(self) -> List[MemoryNode]:
        system = self.system
        nodes = [
            MemoryNode(
                node_id=0,
                tier=MemoryTier.LOCAL_DRAM,
                capacity_bytes=system.local_dram_capacity_bytes,
                base_latency_ns=system.local_dram_base_latency_ns,
                bandwidth_gbps=system.local_dram.peak_bandwidth_gbps,
                name="local_dram",
            )
        ]
        for device_id in range(max(1, system.num_cxl_devices)):
            nodes.append(
                MemoryNode(
                    node_id=device_id + 1,
                    tier=MemoryTier.CXL,
                    capacity_bytes=system.cxl_dram.capacity_bytes,
                    base_latency_ns=system.local_dram_base_latency_ns + system.cxl.access_penalty_ns,
                    bandwidth_gbps=min(
                        system.cxl.downstream_port_bandwidth_gbps,
                        system.cxl_dram.peak_bandwidth_gbps,
                    ),
                    name=f"cxl{device_id}",
                )
            )
        return nodes

    def node_to_device(self, node_id: int) -> int:
        """Map a CXL node id to its device id (node 0 is local DRAM)."""
        if node_id <= 0:
            raise ValueError("node 0 is local DRAM, not a CXL device")
        return node_id - 1

    def device_to_node(self, device_id: int) -> int:
        return device_id + 1

    def _local_page_budget(self) -> int:
        return max(0, self.system.local_dram_capacity_bytes // PAGE_SIZE_BYTES)

    def _profile_page_hotness(self, workload: SLSWorkload) -> AccessTracker:
        """Count page accesses across the whole workload (profiling pass).

        Vectorized: one numpy pass over the concatenated addresses and one
        C-level counter update, preserving the scalar loop's counts *and*
        first-occurrence insertion order (the tie-breaker of
        ``AccessTracker.hottest``), so placements are unchanged.
        """
        tracker = AccessTracker()
        if getattr(workload, "streaming", False):
            # One window of addresses at a time; chunked ``record_many``
            # calls produce the same counts *and* the same first-occurrence
            # insertion order as one concatenated pass, so the resulting
            # placement is unchanged.
            for addresses in workload.iter_address_arrays():
                tracker.record_many((addresses // PAGE_SIZE_BYTES).tolist())
            return tracker
        if workload.requests:
            addresses = np.concatenate([request.addresses for request in workload.requests])
            tracker.record_many((addresses // PAGE_SIZE_BYTES).tolist())
        return tracker

    def place_capacity_order(
        self, workload: SLSWorkload, interleave_spill: bool = True
    ) -> TieredMemorySystem:
        """Pond-style placement: fill local DRAM in address order, spill to CXL.

        With ``interleave_spill`` the spilled pages are striped across the CXL
        devices; without it they are assigned in contiguous blocks (whole
        tables land on single devices), which is the unbalanced starting point
        the embedding-spreading policy fixes (Fig 13 b).
        """
        tiered = TieredMemorySystem(self._make_nodes(), migration_mode=self.system.page_mgmt.migration_mode)
        budget = self._local_page_budget()
        num_cxl = max(1, self.system.num_cxl_devices)
        total_pages = workload.address_space.total_pages
        spill_pages = max(1, total_pages - budget)
        block = (spill_pages + num_cxl - 1) // num_cxl
        placement: Dict[int, int] = {}
        spill_index = 0
        for page in range(total_pages):
            if page < budget:
                placement[page] = 0
            elif interleave_spill:
                placement[page] = 1 + (page % num_cxl)
            else:
                placement[page] = 1 + min(num_cxl - 1, spill_index // block)
                spill_index += 1
        tiered.install_placement(placement)
        return tiered

    def place_hotness_order(self, workload: SLSWorkload) -> TieredMemorySystem:
        """PM placement: hottest pages local, cold pages interleaved over CXL."""
        tiered = TieredMemorySystem(self._make_nodes(), migration_mode=self.system.page_mgmt.migration_mode)
        budget = self._local_page_budget()
        num_cxl = max(1, self.system.num_cxl_devices)
        hotness = self._profile_page_hotness(workload)
        ranked = [page for page, _ in hotness.hottest(workload.address_space.total_pages)]
        hot_set = set(ranked[:budget])
        placement: Dict[int, int] = {}
        spill_index = 0
        for page in range(workload.address_space.total_pages):
            if page in hot_set:
                placement[page] = 0
            else:
                placement[page] = 1 + (spill_index % num_cxl)
                spill_index += 1
        tiered.install_placement(placement)
        return tiered

    def place_cxl_only(self, workload: SLSWorkload) -> TieredMemorySystem:
        """BEACON-style placement: everything lives in CXL memory."""
        tiered = TieredMemorySystem(self._make_nodes(), migration_mode=self.system.page_mgmt.migration_mode)
        num_cxl = max(1, self.system.num_cxl_devices)
        placement = {
            page: 1 + (page % num_cxl) for page in range(workload.address_space.total_pages)
        }
        tiered.install_placement(placement)
        return tiered

    # ------------------------------------------------------------------
    # Timing helpers (host-centric paths)
    # ------------------------------------------------------------------
    def device_of_address(self, address: int) -> int:
        """CXL device id holding ``address`` (placement must be non-local)."""
        node = self.tiered.node_of_address(address)
        if node.tier is MemoryTier.LOCAL_DRAM:
            raise ValueError("address is in local DRAM")
        return self.node_to_device(node.node_id)

    def is_local(self, address: int) -> bool:
        return self.tiered.node_of_address(address).tier is MemoryTier.LOCAL_DRAM

    def host_local_access(self, address: int, start_ns: float, host_id: int = 0) -> float:
        """A host load served by that host's local DRAM."""
        self._counters["local_rows"] += 1
        self.tiered.record_access(address, start_ns)
        dram = self.backends.local_dram_of_host(host_id)
        finish = dram.access(address, start_ns, bytes_requested=self.backends.row_bytes)
        return finish + self.HOST_LOCAL_OVERHEAD_NS

    def host_cxl_access(self, address: int, start_ns: float, host_id: int) -> float:
        """A host load served by a CXL device through the fabric switch."""
        self._counters["cxl_rows"] += 1
        self._counters["bytes_to_host"] += self.backends.row_bytes
        self.tiered.record_access(address, start_ns)
        device_id = self.device_of_address(address)
        switch = self.backends.switch_of_device(device_id)
        port = self.backends.host_port(host_id, switch.switch_id)
        finish = switch.host_read(
            port, device_id, address, start_ns, bytes_requested=self.backends.row_bytes
        )
        return finish + self.HOST_CXL_OVERHEAD_NS

    def host_accumulate_bag(
        self, addresses: Sequence[int], start_ns: float, host_id: int
    ) -> float:
        """Host-centric SLS for one bag: grouped loads plus SIMD accumulation."""
        cursor = start_ns
        for group_start in range(0, len(addresses), self.HOST_MLP):
            group = addresses[group_start : group_start + self.HOST_MLP]
            group_finish = cursor
            for address in group:
                address = int(address)
                if self.is_local(address):
                    finish = self.host_local_access(address, cursor, host_id)
                else:
                    finish = self.host_cxl_access(address, cursor, host_id)
                group_finish = max(group_finish, finish)
            cursor = group_finish + len(group) * self.HOST_ACCUMULATE_NS_PER_ROW
        return cursor

    def host_accumulate_bag_vector(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        """Vector-engine twin of :meth:`host_accumulate_bag`.

        The request's addresses were resolved to (page, node, DRAM
        coordinates) at session start; the MLP-group timing below runs on
        the flattened kernels with the exact scalar arithmetic, and the
        page/node access-recording side effects are buffered on the context
        for the pre-maintenance flush.
        """
        ctx = self._vector
        begin, end = ctx.bounds[request.request_id]
        local_flags, row_device, offset = ctx.window_flags(begin, end)
        page = ctx.page
        lch, lfb, lrow = ctx.lch, ctx.lfb, ctx.lrow
        cch, cfb, crow = ctx.cch, ctx.cfb, ctx.crow
        dram_access = ctx.local_access[host_id % ctx.num_local_drams]
        host_reads = ctx.port_host_read[host_id]
        dev_access = ctx.dev_access_host
        device_switch = ctx.device_switch
        page_last = ctx.page_last
        local_overhead = self.HOST_LOCAL_OVERHEAD_NS
        cxl_overhead = self.HOST_CXL_OVERHEAD_NS
        accumulate_ns = self.HOST_ACCUMULATE_NS_PER_ROW
        mlp = self.HOST_MLP

        # Counts are timestamp-free: one C-level bulk append for the bag
        # (the Counter is built once at flush time).
        ctx.pending_pages.extend(page[begin:end])
        local_rows = 0
        cxl_rows = 0
        cursor = start_ns
        index = begin
        while index < end:
            group_end = index + mlp
            if group_end > end:
                group_end = end
            group_finish = cursor
            for k in range(index, group_end):
                page_last[page[k]] = cursor
                if local_flags[k - offset]:
                    local_rows += 1
                    finish = dram_access(lch[k], lfb[k], lrow[k], cursor) + local_overhead
                else:
                    cxl_rows += 1
                    device_id = row_device[k - offset]
                    finish = (
                        host_reads[device_switch[device_id]](
                            dev_access[device_id], cch[k], cfb[k], crow[k], cursor
                        )
                        + cxl_overhead
                    )
                if finish > group_finish:
                    group_finish = finish
            cursor = group_finish + (group_end - index) * accumulate_ns
            index = group_end

        counters = self._counters
        counters["local_rows"] += local_rows
        counters["cxl_rows"] += cxl_rows
        counters["bytes_to_host"] += cxl_rows * ctx.row_bytes
        obs = self.obs
        if obs.enabled:
            obs.add("kernel.local_dram.invocations", local_rows)
            obs.add("kernel.switch_host_read.invocations", cxl_rows)
            obs.add("kernel.elements", end - begin)
        return cursor

    # ------------------------------------------------------------------
    # Result assembly
    # ------------------------------------------------------------------
    def add_migration_cost(self, cost_ns: float, migrations: int = 0) -> None:
        self._migration_cost_ns += cost_ns

    def _build_result(self, workload: SLSWorkload, total_ns: float) -> SimResult:
        device_counts = {
            device.device_id: device.reads + device.writes for device in self.backends.devices
        }
        stall_cycles = 0.0
        backpressure = 0.0
        buffer_hits = int(self._counters.get("buffer_hits", 0))
        buffer_misses = int(self._counters.get("buffer_misses", 0))
        for switch in self.backends.switches:
            if isinstance(switch, PIFSSwitch):
                stall_cycles += switch.process_core.accumulator.stats.stall_cycles
                backpressure += switch.process_core.stats.backpressure_ns
                buffer_hits += switch.buffer.hits
                buffer_misses += switch.buffer.misses
        migration_stats = self.tiered.migration_stats if self.tiered else None
        net = self._net_fabric.finalize() if self._net_fabric is not None else None
        return SimResult(
            system=self.name,
            total_ns=total_ns,
            requests=len(workload),
            lookups=workload.total_lookups,
            local_rows=int(self._counters.get("local_rows", 0)),
            cxl_rows=int(self._counters.get("cxl_rows", 0)),
            remote_socket_rows=int(self._counters.get("remote_rows", 0)),
            buffer_hits=buffer_hits,
            buffer_misses=buffer_misses,
            migrations=migration_stats.migrations if migration_stats else 0,
            migration_cost_ns=self._migration_cost_ns,
            stall_cycles=stall_cycles,
            backpressure_ns=backpressure,
            bytes_to_host=int(self._counters.get("bytes_to_host", 0)),
            device_access_counts=device_counts,
            net=net,
        )


__all__ = ["ENGINES", "MemoryBackends", "SLSSystem"]
