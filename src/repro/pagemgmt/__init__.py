"""Software page management (§IV-B).

* :mod:`repro.pagemgmt.regions` — private hot region / public cold region
  bookkeeping (§IV-B2, Fig 10a).
* :mod:`repro.pagemgmt.global_hotness` — global hotness detection and the
  cold-age-threshold swap policy between local DRAM and CXL (§IV-B2).
* :mod:`repro.pagemgmt.spreading` — embedding spreading across CXL nodes
  driven by the migrate threshold (§IV-B3).
* :mod:`repro.pagemgmt.migration` — page-block vs cache-line-block migration
  cost model (§IV-B4).
"""

from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pagemgmt.migration import MigrationCostModel
from repro.pagemgmt.regions import HostRegions
from repro.pagemgmt.spreading import SpreadingPolicy

__all__ = ["GlobalHotnessPolicy", "MigrationCostModel", "HostRegions", "SpreadingPolicy"]
