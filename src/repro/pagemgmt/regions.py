"""Private-hot / public-cold region bookkeeping (§IV-B2)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Set


@dataclass
class HostRegions:
    """The page regions visible to one host.

    * the *private hot region* lives in the host's local DRAM and holds the
      pages this host accesses most frequently;
    * the *public cold region* is the CXL memory address space shared by all
      hosts.

    The class tracks which pages each host has claimed so that two hosts do
    not both designate the same page as private hot (the paper's rule: if a
    page is already another host's private hot page, the host picks its next
    most frequently accessed page instead).
    """

    host_id: int
    private_hot: Set[int] = field(default_factory=set)
    #: Shared map page -> owning host, passed in by the coordinator so that
    #: claims are visible across hosts.
    global_claims: Dict[int, int] = field(default_factory=dict)

    def is_claimed_by_other(self, page_id: int) -> bool:
        owner = self.global_claims.get(page_id)
        return owner is not None and owner != self.host_id

    def claim(self, page_id: int) -> bool:
        """Claim ``page_id`` as private hot; returns False if another host owns it."""
        if self.is_claimed_by_other(page_id):
            return False
        self.private_hot.add(page_id)
        self.global_claims[page_id] = self.host_id
        return True

    def release(self, page_id: int) -> None:
        """Release a page back to the public cold region."""
        self.private_hot.discard(page_id)
        if self.global_claims.get(page_id) == self.host_id:
            del self.global_claims[page_id]

    def owns(self, page_id: int) -> bool:
        return page_id in self.private_hot

    @property
    def num_private_pages(self) -> int:
        return len(self.private_hot)


__all__ = ["HostRegions"]
