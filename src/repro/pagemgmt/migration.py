"""Page-block vs cache-line-block migration cost model (§IV-B4)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import CACHE_LINE_BYTES, PAGE_SIZE_BYTES
from repro.memsys.tiered import TieredMemorySystem


@dataclass(frozen=True)
class MigrationCostModel:
    """Analytic comparison of the two migration mechanisms.

    With OS page-granular migration ("page block") the whole page is marked
    non-accessible for the duration of the copy, so every row in the page is
    blocked and queries touching them stall.  The PIFS migration controller
    copies cache-line by cache-line and stages the in-flight line in the
    switch ("cache-line block"), so only rows sharing that line are blocked.
    """

    page_size: int = PAGE_SIZE_BYTES
    cacheline_bytes: int = CACHE_LINE_BYTES
    cacheline_copy_ns: float = TieredMemorySystem.CACHELINE_COPY_NS
    page_block_overhead_ns: float = TieredMemorySystem.PAGE_BLOCK_OVERHEAD_NS
    cacheline_block_overhead_ns: float = TieredMemorySystem.CACHELINE_BLOCK_OVERHEAD_NS
    #: Stall seen by a query that touches a blocked row.
    blocked_access_stall_ns: float = 200.0

    @property
    def lines_per_page(self) -> int:
        return self.page_size // self.cacheline_bytes

    def copy_cost_ns(self) -> float:
        """Raw data-copy cost of moving one page (same for both modes)."""
        return self.lines_per_page * self.cacheline_copy_ns

    def migration_cost_ns(self, mode: str) -> float:
        """Total cost of one page migration under ``mode``."""
        if mode == "page_block":
            return self.copy_cost_ns() + self.page_block_overhead_ns
        if mode == "cacheline_block":
            return self.copy_cost_ns() + self.cacheline_block_overhead_ns
        raise ValueError(f"unknown migration mode {mode!r}")

    def blocked_rows(self, row_bytes: int, mode: str) -> int:
        """Rows made inaccessible while one migration is in flight."""
        rows_per_page = max(1, self.page_size // row_bytes)
        if mode == "page_block":
            return rows_per_page
        if mode == "cacheline_block":
            return min(rows_per_page, max(1, self.cacheline_bytes // row_bytes))
        raise ValueError(f"unknown migration mode {mode!r}")

    def query_visible_overhead_ns(
        self, row_bytes: int, mode: str, access_probability: float = 1.0
    ) -> float:
        """Expected query-visible stall contributed by one migration.

        ``access_probability`` is the likelihood that a blocked row is
        touched while the migration is in flight (hot pages are migrated, so
        the default assumes every blocked row is touched once).
        """
        if not 0.0 <= access_probability <= 1.0:
            raise ValueError("access_probability must be in [0, 1]")
        blocked = self.blocked_rows(row_bytes, mode)
        fixed = (
            self.page_block_overhead_ns
            if mode == "page_block"
            else self.cacheline_block_overhead_ns
        )
        return fixed + blocked * access_probability * self.blocked_access_stall_ns

    def overhead_ratio(self, row_bytes: int, access_probability: float = 1.0) -> float:
        """Ratio of page-block to cache-line-block query-visible overhead.

        The paper reports up to 5.1x (§IV-B4); the ratio grows as the row
        vector shrinks because more independent rows share one page.
        """
        page = self.query_visible_overhead_ns(row_bytes, "page_block", access_probability)
        line = self.query_visible_overhead_ns(row_bytes, "cacheline_block", access_probability)
        if line == 0:
            return float("inf")
        return page / line


__all__ = ["MigrationCostModel"]
