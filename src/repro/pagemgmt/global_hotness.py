"""Global hotness detection and hot/cold page swapping (§IV-B2).

Each host builds per-device page heatmaps, identifies the globally hottest
pages and keeps them in its private hot region (local DRAM).  Periodically,
pages whose access frequency has aged are reclassified as public cold pages
and demoted to CXL, while hotter CXL pages are promoted in their place
("claim & swap", Fig 10a).  The aggressiveness of the exchange is governed
by the *cold age threshold*: a CXL page replaces the coldest private hot
page only when its access count exceeds the resident page's count by more
than the threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.memsys.node import MemoryTier
from repro.memsys.tiered import TieredMemorySystem
from repro.pagemgmt.regions import HostRegions


@dataclass
class SwapOutcome:
    """Result of one global-hotness maintenance pass."""

    promotions: int
    demotions: int
    cost_ns: float


class GlobalHotnessPolicy:
    """Hot/cold page exchange between local DRAM and CXL memory."""

    def __init__(
        self,
        cold_age_threshold: float = 0.16,
        max_swaps_per_epoch: int = 4,
        host_regions: Optional[HostRegions] = None,
    ) -> None:
        if not 0.0 <= cold_age_threshold <= 1.0:
            raise ValueError("cold_age_threshold must be in [0, 1]")
        if max_swaps_per_epoch < 0:
            raise ValueError("max_swaps_per_epoch must be non-negative")
        self.cold_age_threshold = cold_age_threshold
        self.max_swaps_per_epoch = max_swaps_per_epoch
        self.regions = host_regions or HostRegions(host_id=0)

    # ------------------------------------------------------------------
    def _candidates(
        self, tiered: TieredMemorySystem
    ) -> Tuple[List[Tuple[int, int]], List[Tuple[int, int]]]:
        """Return (local pages coldest-first, CXL pages hottest-first)."""
        local_ids = {node.node_id for node in tiered.nodes_by_tier(MemoryTier.LOCAL_DRAM)}
        cxl_ids = {node.node_id for node in tiered.nodes_by_tier(MemoryTier.CXL)}
        local_pages: List[Tuple[int, int]] = []
        cxl_pages: List[Tuple[int, int]] = []
        local_append = local_pages.append
        cxl_append = cxl_pages.append
        for page in tiered.pages():
            node_id = page.node_id
            if node_id in local_ids:
                local_append((page.page_id, page.access_count))
            elif node_id in cxl_ids:
                cxl_append((page.page_id, page.access_count))
        local_pages.sort(key=lambda e: e[1])
        cxl_pages.sort(key=lambda e: e[1], reverse=True)
        return local_pages, cxl_pages

    def run_epoch(self, tiered: TieredMemorySystem, row_bytes: int = 64) -> SwapOutcome:
        """Perform up to ``max_swaps_per_epoch`` claim-&-swap exchanges."""
        local_pages, cxl_pages = self._candidates(tiered)
        promotions = 0
        demotions = 0
        cost = 0.0
        swaps = min(self.max_swaps_per_epoch, len(local_pages), len(cxl_pages))
        for i in range(swaps):
            cold_page_id, cold_count = local_pages[i]
            hot_page_id, hot_count = cxl_pages[i]
            # Promote only when the CXL page is hotter than the resident page
            # by more than the cold-age threshold.
            if hot_count <= cold_count * (1.0 + self.cold_age_threshold):
                break
            if self.regions.is_claimed_by_other(hot_page_id):
                continue
            records = tiered.swap_pages(hot_page_id, cold_page_id, row_bytes=row_bytes)
            if not records:
                continue
            cost += sum(r.cost_ns for r in records)
            self.regions.claim(hot_page_id)
            self.regions.release(cold_page_id)
            promotions += 1
            demotions += 1
        return SwapOutcome(promotions=promotions, demotions=demotions, cost_ns=cost)


__all__ = ["GlobalHotnessPolicy", "SwapOutcome"]
