"""Embedding spreading for bandwidth optimization (§IV-B3).

Cold pages are initially interleaved across CXL nodes.  When one node's
access count exceeds the average of the other nodes by more than
``1 - migrate_threshold``, the node is *warm*: its most-accessed pages are
redistributed to the least-accessed node, and if the destination is out of
capacity, its coldest page moves back to the overburdened node.  The
procedure iterates until the access frequencies are balanced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.memsys.node import MemoryNode, MemoryTier
from repro.memsys.tiered import TieredMemorySystem


@dataclass
class RebalanceOutcome:
    """Result of one spreading pass."""

    migrations: int
    cost_ns: float
    warm_nodes: List[int]


class SpreadingPolicy:
    """Balance access counts across CXL memory nodes."""

    def __init__(
        self,
        migrate_threshold: float = 0.35,
        max_migrations_per_epoch: int = 8,
        max_iterations: int = 4,
    ) -> None:
        if not 0.0 < migrate_threshold <= 1.0:
            raise ValueError("migrate_threshold must be in (0, 1]")
        self.migrate_threshold = migrate_threshold
        self.max_migrations_per_epoch = max_migrations_per_epoch
        self.max_iterations = max_iterations

    # ------------------------------------------------------------------
    def warm_trigger_ratio(self) -> float:
        """A node is warm when its access count exceeds the others' average
        by this multiplicative factor (``1 + (1 - migrate_threshold)``)."""
        return 1.0 + (1.0 - self.migrate_threshold)

    def find_warm_nodes(self, tiered: TieredMemorySystem) -> List[int]:
        """CXL nodes whose access counts exceed the warm trigger."""
        cxl_nodes = tiered.nodes_by_tier(MemoryTier.CXL)
        if len(cxl_nodes) < 2:
            return []
        warm: List[int] = []
        for node in cxl_nodes:
            others = [n.access_count for n in cxl_nodes if n.node_id != node.node_id]
            average = sum(others) / len(others) if others else 0.0
            if average <= 0:
                continue
            if node.access_count > average * self.warm_trigger_ratio():
                warm.append(node.node_id)
        return warm

    def _coldest_node(self, tiered: TieredMemorySystem, exclude: int) -> Optional[MemoryNode]:
        candidates = [n for n in tiered.nodes_by_tier(MemoryTier.CXL) if n.node_id != exclude]
        if not candidates:
            return None
        return min(candidates, key=lambda n: n.access_count)

    def rebalance(self, tiered: TieredMemorySystem, row_bytes: int = 64) -> RebalanceOutcome:
        """Run the redistribution procedure; returns migrations and their cost."""
        migrations = 0
        cost = 0.0
        all_warm: List[int] = []
        for _ in range(self.max_iterations):
            warm_nodes = self.find_warm_nodes(tiered)
            if not warm_nodes or migrations >= self.max_migrations_per_epoch:
                break
            all_warm.extend(w for w in warm_nodes if w not in all_warm)
            for warm_id in warm_nodes:
                if migrations >= self.max_migrations_per_epoch:
                    break
                destination = self._coldest_node(tiered, exclude=warm_id)
                if destination is None:
                    break
                tracker = tiered.node_access_tracker(warm_id)
                hottest = tracker.hottest(4)
                moved_any = False
                for page_id, page_count in hottest:
                    if migrations >= self.max_migrations_per_epoch:
                        break
                    page = tiered.page(page_id)
                    if page.node_id != warm_id:
                        continue
                    if not destination.can_fit(tiered.page_size):
                        # Destination full: swap with the destination's
                        # coldest page instead of a one-way migration.
                        dest_tracker = tiered.node_access_tracker(destination.node_id)
                        coldest = dest_tracker.coldest(1)
                        if not coldest:
                            break
                        records = tiered.swap_pages(page_id, coldest[0][0], row_bytes=row_bytes)
                        cost += sum(r.cost_ns for r in records)
                        migrations += len(records)
                    else:
                        record = tiered.migrate_page(page_id, destination.node_id, row_bytes=row_bytes)
                        cost += record.cost_ns
                        migrations += 1
                    moved_any = True
                    # Transfer the moved page's access count between node counters so
                    # the balance check sees the effect of the migration.
                    tiered.node(warm_id).access_count = max(
                        0, tiered.node(warm_id).access_count - page_count
                    )
                    destination.access_count += page_count
                if not moved_any:
                    break
        return RebalanceOutcome(migrations=migrations, cost_ns=cost, warm_nodes=all_warm)


__all__ = ["SpreadingPolicy", "RebalanceOutcome"]
