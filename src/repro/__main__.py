"""``python -m repro`` — the reproduction's command-line interface."""

import sys

from repro.api.cli import main

if __name__ == "__main__":
    sys.exit(main())
