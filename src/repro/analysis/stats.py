"""Small numeric helpers shared by the experiments and benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Mapping, Sequence, TypeVar

K = TypeVar("K")


def min_max_normalize(values: Mapping[K, float]) -> Dict[K, float]:
    """Min-max normalization as used by Fig 12 ("the plot uses min-max
    normalization"): the largest value maps to 1.0, the smallest to its
    proportional share (values are scaled by the maximum).

    The paper normalizes latencies by the slowest system so that lower bars
    are better; an all-equal input maps every entry to 1.0.
    """
    if not values:
        return {}
    maximum = max(values.values())
    if maximum == 0:
        return {key: 0.0 for key in values}
    return {key: value / maximum for key, value in values.items()}


def normalize_to(values: Mapping[K, float], reference: K) -> Dict[K, float]:
    """Normalize every value to the entry at ``reference``."""
    if reference not in values:
        raise KeyError(f"reference {reference!r} missing")
    ref = values[reference]
    if ref == 0:
        raise ZeroDivisionError("reference value is zero")
    return {key: value / ref for key, value in values.items()}


def speedup(baseline: float, improved: float) -> float:
    """Latency speedup of ``improved`` over ``baseline``."""
    if improved <= 0:
        raise ZeroDivisionError("improved latency must be positive")
    return baseline / improved


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ValueError("geometric_mean needs at least one value")
    if any(v <= 0 for v in values):
        raise ValueError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def standard_deviation(values: Sequence[float]) -> float:
    """Population standard deviation (used for Fig 13 b)."""
    values = list(values)
    if not values:
        raise ValueError("standard_deviation needs at least one value")
    mean = sum(values) / len(values)
    variance = sum((v - mean) ** 2 for v in values) / len(values)
    return math.sqrt(variance)


__all__ = [
    "min_max_normalize",
    "normalize_to",
    "speedup",
    "geometric_mean",
    "standard_deviation",
]
