"""Plain-text table formatting for experiment output."""

from __future__ import annotations

from typing import Iterable, List, Mapping, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    float_format: str = "{:.3f}",
) -> str:
    """Render a simple aligned text table.

    Used by the experiment runners and the benchmark harness to print the
    same rows/series the paper's figures report.
    """
    rendered_rows: List[List[str]] = []
    for row in rows:
        rendered: List[str] = []
        for cell in row:
            if isinstance(cell, float):
                rendered.append(float_format.format(cell))
            else:
                rendered.append(str(cell))
        rendered_rows.append(rendered)

    widths = [len(h) for h in headers]
    for row in rendered_rows:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))
            else:
                widths.append(len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))

    lines = [fmt_row(list(headers)), "-+-".join("-" * w for w in widths)]
    lines.extend(fmt_row(row) for row in rendered_rows)
    return "\n".join(lines)


def format_mapping(title: str, values: Mapping[str, float], float_format: str = "{:.3f}") -> str:
    """Render a one-column mapping under a title."""
    lines = [title]
    for key, value in values.items():
        lines.append(f"  {key}: {float_format.format(value)}")
    return "\n".join(lines)


__all__ = ["format_table", "format_mapping"]
