"""Analysis helpers: normalization, speedups, text reports."""

from repro.analysis.stats import (
    geometric_mean,
    min_max_normalize,
    normalize_to,
    speedup,
    standard_deviation,
)
from repro.analysis.report import format_table

__all__ = [
    "geometric_mean",
    "min_max_normalize",
    "normalize_to",
    "speedup",
    "standard_deviation",
    "format_table",
]
