"""Input batches for DLRM inference.

A query batch bundles the dense features with the per-table sparse index
lists (indices + offsets, the EmbeddingBag calling convention) that the
model's embedding stage consumes; helpers build batches from the trace
generators.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np


@dataclass
class QueryBatch:
    """One inference batch.

    * ``dense`` — (batch, dense_features) continuous features.
    * ``indices_per_table`` — for each sparse feature/table, the flat list of
      embedding row indices for the whole batch.
    * ``offsets_per_table`` — for each table, the bag start offsets (one per
      sample, starting at 0).
    """

    dense: np.ndarray
    indices_per_table: List[np.ndarray]
    offsets_per_table: List[np.ndarray]

    def __post_init__(self) -> None:
        if self.dense.ndim != 2:
            raise ValueError("dense must be (batch, dense_features)")
        if len(self.indices_per_table) != len(self.offsets_per_table):
            raise ValueError("indices and offsets must cover the same tables")
        batch = self.dense.shape[0]
        for offsets in self.offsets_per_table:
            if len(offsets) != batch:
                raise ValueError("each table needs one bag per sample")
            if len(offsets) and offsets[0] != 0:
                raise ValueError("offsets must start at 0")

    @property
    def batch_size(self) -> int:
        return self.dense.shape[0]

    @property
    def num_tables(self) -> int:
        return len(self.indices_per_table)

    @property
    def total_lookups(self) -> int:
        """Total number of embedding-row lookups in the batch."""
        return int(sum(len(idx) for idx in self.indices_per_table))

    def pooling_factor(self) -> float:
        """Average bag size across tables and samples."""
        bags = self.batch_size * self.num_tables
        if bags == 0:
            return 0.0
        return self.total_lookups / bags

    @classmethod
    def random(
        cls,
        batch_size: int,
        num_tables: int,
        num_embeddings: int,
        dense_features: int = 13,
        pooling_factor: int = 8,
        seed: int = 0,
    ) -> "QueryBatch":
        """Generate a uniform random batch (used by examples and tests)."""
        rng = np.random.default_rng(seed)
        dense = rng.normal(size=(batch_size, dense_features)).astype(np.float32)
        indices_per_table: List[np.ndarray] = []
        offsets_per_table: List[np.ndarray] = []
        for _ in range(num_tables):
            lengths = rng.poisson(pooling_factor, size=batch_size).clip(1, None)
            offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
            indices = rng.integers(0, num_embeddings, size=int(lengths.sum()), dtype=np.int64)
            indices_per_table.append(indices)
            offsets_per_table.append(offsets)
        return cls(dense=dense, indices_per_table=indices_per_table, offsets_per_table=offsets_per_table)


__all__ = ["QueryBatch"]
