"""A from-scratch DLRM inference pipeline (Fig 1).

The package provides functional (numpy) implementations of the four DLRM
stages — bottom MLP, embedding lookup (SparseLengthsSum), feature
interaction and top MLP — plus the RMC1-RMC4 model presets from Table I.
The functional model is used by the examples and by the end-to-end speedup
estimate of Fig 14 (SLS vs non-SLS operator weighting); the memory-system
simulators consume only the lookup index streams.
"""

from repro.dlrm.embedding import EmbeddingBagCollection, EmbeddingTable
from repro.dlrm.interaction import dot_feature_interaction
from repro.dlrm.mlp import MLP
from repro.dlrm.model import DLRM, OperatorProfile
from repro.dlrm.query import QueryBatch

__all__ = [
    "EmbeddingBagCollection",
    "EmbeddingTable",
    "dot_feature_interaction",
    "MLP",
    "DLRM",
    "OperatorProfile",
    "QueryBatch",
]
