"""Embedding tables and the SparseLengthsSum (SLS) operator."""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np


class EmbeddingTable:
    """One embedding table: ``num_embeddings`` rows of ``dim`` FP32 values."""

    def __init__(
        self,
        num_embeddings: int,
        dim: int,
        table_id: int = 0,
        rng: Optional[np.random.Generator] = None,
        materialize: bool = True,
    ) -> None:
        if num_embeddings <= 0 or dim <= 0:
            raise ValueError("num_embeddings and dim must be positive")
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.table_id = table_id
        self._rng = rng or np.random.default_rng(table_id)
        if materialize:
            scale = 1.0 / np.sqrt(dim)
            self.weights = self._rng.uniform(-scale, scale, size=(num_embeddings, dim)).astype(np.float32)
        else:
            # Large tables used only for address-stream simulation need no
            # backing data; lookups on a non-materialized table raise.
            self.weights = None

    @property
    def row_bytes(self) -> int:
        return self.dim * 4

    @property
    def table_bytes(self) -> int:
        return self.num_embeddings * self.row_bytes

    def lookup(self, indices: Sequence[int]) -> np.ndarray:
        """Gather the rows at ``indices`` (no pooling)."""
        if self.weights is None:
            raise RuntimeError("table was created with materialize=False")
        idx = np.asarray(indices, dtype=np.int64)
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        return self.weights[idx]

    def sls(
        self,
        indices: Sequence[int],
        offsets: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> np.ndarray:
        """SparseLengthsSum: sum rows per bag, bags delimited by ``offsets``.

        ``offsets`` has one entry per bag giving the start position in
        ``indices``; the last bag extends to the end of ``indices``.
        """
        if self.weights is None:
            raise RuntimeError("table was created with materialize=False")
        idx = np.asarray(indices, dtype=np.int64)
        offs = np.asarray(offsets, dtype=np.int64)
        if offs.ndim != 1 or offs.size == 0:
            raise ValueError("offsets must be a non-empty 1-D sequence")
        if np.any(np.diff(offs) < 0):
            raise ValueError("offsets must be non-decreasing")
        if offs[0] != 0:
            raise ValueError("offsets must start at 0")
        if idx.size and (idx.min() < 0 or idx.max() >= self.num_embeddings):
            raise IndexError("embedding index out of range")
        if weights is not None and len(weights) != len(idx):
            raise ValueError("weights must align with indices")
        bags = offs.size
        out = np.zeros((bags, self.dim), dtype=np.float32)
        bounds = np.concatenate([offs, [idx.size]])
        for bag in range(bags):
            start, end = bounds[bag], bounds[bag + 1]
            if end <= start:
                continue
            rows = self.weights[idx[start:end]]
            if weights is not None:
                w = np.asarray(weights[start:end], dtype=np.float32)[:, None]
                rows = rows * w
            out[bag] = rows.sum(axis=0)
        return out


class EmbeddingBagCollection:
    """A collection of embedding tables queried together (one per sparse feature)."""

    def __init__(self, tables: Sequence[EmbeddingTable]) -> None:
        if not tables:
            raise ValueError("at least one table is required")
        dims = {t.dim for t in tables}
        if len(dims) != 1:
            raise ValueError("all tables in a collection must share the same dim")
        self.tables = list(tables)
        self.dim = self.tables[0].dim

    @classmethod
    def build(
        cls,
        num_tables: int,
        num_embeddings: int,
        dim: int,
        seed: int = 0,
        materialize: bool = True,
    ) -> "EmbeddingBagCollection":
        rng = np.random.default_rng(seed)
        tables = [
            EmbeddingTable(num_embeddings, dim, table_id=t, rng=rng, materialize=materialize)
            for t in range(num_tables)
        ]
        return cls(tables)

    def __len__(self) -> int:
        return len(self.tables)

    @property
    def total_bytes(self) -> int:
        return sum(t.table_bytes for t in self.tables)

    def sls(
        self,
        indices_per_table: Sequence[Sequence[int]],
        offsets_per_table: Sequence[Sequence[int]],
    ) -> np.ndarray:
        """Run SLS on every table; returns (batch, num_tables, dim)."""
        if len(indices_per_table) != len(self.tables):
            raise ValueError("need one index list per table")
        if len(offsets_per_table) != len(self.tables):
            raise ValueError("need one offsets list per table")
        pooled: List[np.ndarray] = []
        for table, indices, offsets in zip(self.tables, indices_per_table, offsets_per_table):
            pooled.append(table.sls(indices, offsets))
        batch = pooled[0].shape[0]
        for p in pooled:
            if p.shape[0] != batch:
                raise ValueError("all tables must produce the same batch size")
        return np.stack(pooled, axis=1)


__all__ = ["EmbeddingTable", "EmbeddingBagCollection"]
