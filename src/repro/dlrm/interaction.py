"""Feature interaction layer (pairwise dot products, Fig 1)."""

from __future__ import annotations

import numpy as np


def dot_feature_interaction(dense: np.ndarray, sparse: np.ndarray) -> np.ndarray:
    """Combine the bottom-MLP output with the pooled embeddings.

    ``dense`` has shape (batch, dim); ``sparse`` has shape
    (batch, num_tables, dim).  The interaction computes the pairwise dot
    products between all feature vectors (dense + each pooled embedding) and
    concatenates the upper triangle with the dense vector, matching the
    original DLRM "dot" interaction.
    """
    dense = np.asarray(dense, dtype=np.float32)
    sparse = np.asarray(sparse, dtype=np.float32)
    if dense.ndim != 2:
        raise ValueError("dense must be (batch, dim)")
    if sparse.ndim != 3:
        raise ValueError("sparse must be (batch, num_tables, dim)")
    if dense.shape[0] != sparse.shape[0]:
        raise ValueError("batch sizes must match")
    if dense.shape[1] != sparse.shape[2]:
        raise ValueError("dense dim must match embedding dim")

    batch, num_tables, dim = sparse.shape
    features = np.concatenate([dense[:, None, :], sparse], axis=1)  # (B, T+1, D)
    gram = np.einsum("bij,bkj->bik", features, features)  # (B, T+1, T+1)
    upper_i, upper_j = np.triu_indices(num_tables + 1, k=1)
    interactions = gram[:, upper_i, upper_j]  # (B, (T+1)T/2)
    return np.concatenate([dense, interactions], axis=1)


def interaction_output_dim(num_tables: int, dim: int) -> int:
    """Width of the interaction output for ``num_tables`` tables of ``dim``."""
    num_features = num_tables + 1
    return dim + num_features * (num_features - 1) // 2


__all__ = ["dot_feature_interaction", "interaction_output_dim"]
