"""End-to-end DLRM model (bottom MLP -> SLS -> interaction -> top MLP)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.config import ModelConfig
from repro.dlrm.embedding import EmbeddingBagCollection
from repro.dlrm.interaction import dot_feature_interaction, interaction_output_dim
from repro.dlrm.mlp import MLP
from repro.dlrm.query import QueryBatch


@dataclass(frozen=True)
class OperatorProfile:
    """Relative time split between SLS and non-SLS operators.

    Fig 14 estimates end-to-end speedup by weighting the accelerated SLS
    portion against the unaccelerated MLP/interaction portion; this profile
    captures the split for a given model and batch size.
    """

    sls_fraction: float
    non_sls_fraction: float

    def __post_init__(self) -> None:
        total = self.sls_fraction + self.non_sls_fraction
        if not np.isclose(total, 1.0, atol=1e-6):
            raise ValueError("fractions must sum to 1")

    def end_to_end_speedup(self, sls_speedup: float) -> float:
        """Amdahl-style end-to-end speedup given an SLS-only speedup."""
        if sls_speedup <= 0:
            raise ValueError("sls_speedup must be positive")
        return 1.0 / (self.non_sls_fraction + self.sls_fraction / sls_speedup)


def operator_profile(model: ModelConfig, batch_size: int, pooling_factor: int = 8) -> OperatorProfile:
    """Estimate the SLS vs non-SLS time split for ``model``.

    SLS time scales with the bytes fetched from embedding tables (bandwidth
    bound, ~50 GB/s effective per-socket SLS bandwidth); MLP time scales with
    FLOPs.  The effective dense throughput improves with the batch size
    because larger batches amortize GEMM overheads, which is why the share of
    time spent in SLS — and therefore the end-to-end benefit of accelerating
    it — grows with the batch size (Fig 14).
    """
    bytes_per_sample = model.num_tables * pooling_factor * model.embedding_row_bytes
    # Random-access embedding gathers achieve only a fraction of the DRAM
    # peak; 25 GB/s is the per-socket effective SLS bandwidth the
    # characterization study observes under load.
    sls_time = bytes_per_sample * batch_size / 25e9

    bottom_flops = 0
    previous = model.dense_features
    for width in model.bottom_mlp:
        bottom_flops += 2 * previous * width
        previous = width
    top_in = interaction_output_dim(model.num_tables, model.embedding_dim)
    top_flops = 0
    previous = top_in
    for width in model.top_mlp:
        top_flops += 2 * previous * width
        previous = width
    # Effective dense throughput: ~2 TFLOP/s for small batches, approaching
    # 4 TFLOP/s once the GEMMs are large enough to run at full efficiency.
    dense_throughput = 2.0e12 + 2.0e12 * min(1.0, batch_size / 256.0)
    non_sls_time = (bottom_flops + top_flops) * batch_size / dense_throughput

    total = sls_time + non_sls_time
    return OperatorProfile(sls_fraction=sls_time / total, non_sls_fraction=non_sls_time / total)


class DLRM:
    """A functional DLRM built from a :class:`~repro.config.ModelConfig`."""

    def __init__(self, config: ModelConfig, seed: int = 0, materialize: bool = True) -> None:
        self.config = config
        self.bottom_mlp = MLP(config.dense_features, config.bottom_mlp, seed=seed)
        if self.bottom_mlp.output_dim != config.embedding_dim:
            # The bottom MLP must produce a vector of the embedding dimension
            # for the dot interaction; append a projection layer when the
            # configured widths do not line up (RMC presets do line up for
            # 64-dim models; RMC4 needs the projection).
            self.bottom_mlp = MLP(
                config.dense_features,
                tuple(config.bottom_mlp) + (config.embedding_dim,),
                seed=seed,
            )
        self.embeddings = EmbeddingBagCollection.build(
            num_tables=config.num_tables,
            num_embeddings=config.num_embeddings,
            dim=config.embedding_dim,
            seed=seed,
            materialize=materialize,
        )
        top_input = interaction_output_dim(config.num_tables, config.embedding_dim)
        self.top_mlp = MLP(top_input, config.top_mlp, sigmoid_output=True, seed=seed + 1)

    def forward(self, batch: QueryBatch) -> np.ndarray:
        """Run inference; returns the CTR prediction per sample (batch, 1)."""
        if batch.num_tables != self.config.num_tables:
            raise ValueError(
                f"batch has {batch.num_tables} tables, model expects {self.config.num_tables}"
            )
        dense_out = self.bottom_mlp(batch.dense)
        pooled = self.embeddings.sls(batch.indices_per_table, batch.offsets_per_table)
        interacted = dot_feature_interaction(dense_out, pooled)
        return self.top_mlp(interacted)

    __call__ = forward

    def parameter_counts(self) -> Dict[str, int]:
        """Parameter counts per component."""
        return {
            "bottom_mlp": self.bottom_mlp.num_parameters,
            "top_mlp": self.top_mlp.num_parameters,
            "embeddings": sum(t.num_embeddings * t.dim for t in self.embeddings.tables),
        }


__all__ = ["DLRM", "OperatorProfile", "operator_profile"]
