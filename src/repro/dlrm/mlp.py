"""A small fully-connected network used for the bottom and top MLPs."""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np


def _relu(x: np.ndarray) -> np.ndarray:
    return np.maximum(x, 0.0)


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-x))


class MLP:
    """A dense multi-layer perceptron with ReLU hidden layers.

    ``layer_sizes`` lists the output width of every layer; the input width is
    given separately.  The final layer uses a sigmoid when
    ``sigmoid_output=True`` (the top MLP producing the CTR) and ReLU
    otherwise (the bottom MLP producing the dense latent vector).
    """

    def __init__(
        self,
        input_dim: int,
        layer_sizes: Sequence[int],
        sigmoid_output: bool = False,
        seed: int = 0,
    ) -> None:
        if input_dim <= 0:
            raise ValueError("input_dim must be positive")
        if not layer_sizes:
            raise ValueError("at least one layer is required")
        self.input_dim = input_dim
        self.layer_sizes = tuple(int(s) for s in layer_sizes)
        self.sigmoid_output = sigmoid_output
        rng = np.random.default_rng(seed)
        self.weights: List[np.ndarray] = []
        self.biases: List[np.ndarray] = []
        previous = input_dim
        for size in self.layer_sizes:
            scale = np.sqrt(2.0 / previous)
            self.weights.append(rng.normal(0.0, scale, size=(previous, size)).astype(np.float32))
            self.biases.append(np.zeros(size, dtype=np.float32))
            previous = size

    @property
    def output_dim(self) -> int:
        return self.layer_sizes[-1]

    @property
    def num_parameters(self) -> int:
        return sum(w.size + b.size for w, b in zip(self.weights, self.biases))

    def flops_per_sample(self) -> int:
        """Approximate multiply-accumulate count per input sample."""
        flops = 0
        previous = self.input_dim
        for size in self.layer_sizes:
            flops += 2 * previous * size
            previous = size
        return flops

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the network on a (batch, input_dim) matrix."""
        activations = np.asarray(x, dtype=np.float32)
        if activations.ndim == 1:
            activations = activations[None, :]
        if activations.shape[1] != self.input_dim:
            raise ValueError(
                f"expected input dim {self.input_dim}, got {activations.shape[1]}"
            )
        last = len(self.weights) - 1
        for i, (weight, bias) in enumerate(zip(self.weights, self.biases)):
            activations = activations @ weight + bias
            if i == last and self.sigmoid_output:
                activations = _sigmoid(activations)
            else:
                activations = _relu(activations)
        return activations

    __call__ = forward


__all__ = ["MLP"]
