"""Declarative parameter sweeps with a multiprocessing execution engine.

A :class:`Sweep` expands a dict of axes into the cartesian product of grid
points, configures one :class:`~repro.api.session.Simulation` per point, and
executes them serially or across worker processes::

    from repro.api import Simulation, Sweep

    result = Sweep(
        over={"system": ["pond", "pifs-rec"], "batch_size": [8, 64]},
        base=Simulation().quick(),
    ).run(parallel=True)
    print(result.table())

Axis keys name :class:`Simulation` settings (``system``, ``model``,
``batch_size``, ``hosts``, ``devices``, ...).  An axis value may also be a
:func:`point` bundling several settings under one coordinate label — e.g.
the scale-out experiments grow hosts, switches and devices together::

    Sweep(over={"fabric": [point(n, hosts=n, switches=n, devices=n)
                           for n in (1, 2, 4)]})

Results come back in deterministic product order (first axis outermost)
regardless of which worker finished first, and parallel execution is
byte-identical to serial because every run derives its seeded workload
from the spec.  Runs are cached by config hash across sweeps.

Parallel grids execute on a process-wide **persistent worker pool**
(:func:`worker_pool`): grid points are scheduled as chunks grouped by
workload key, each chunk ships (or derives) its trace exactly once, and
the pool — with its workers' workload caches — survives across ``run()``
calls, so a sequence of sweeps pays pool startup once and never
re-derives a workload the process has already built.
"""

from __future__ import annotations

import atexit
import multiprocessing
import os
import sys
from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.api.results import RunResult, SweepResult
from repro.config import ModelConfig
from repro.api.session import (
    RunSpec,
    Simulation,
    cached_result,
    cached_workload,
    execute_chunk,
    execute_spec,
    model_label,
    public_copy,
    safe_spec_key,
    seed_workload_cache,
    store_result,
    system_label,
    workload_key,
)
from repro.obs.log import get_logger

LOG = get_logger("api.sweep")


def _pool_context():
    # ``fork`` skips re-importing the package in every worker, but is only
    # reliably safe on Linux (macOS frameworks can crash after fork, which
    # is why spawn is the platform default there).  Specs and the executor
    # functions are module-level and picklable, so the spawn-based default
    # contexts work everywhere else.
    if sys.platform.startswith("linux"):
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()  # pragma: no cover - macOS/Windows


class WorkerPool:
    """Persistent, reusable worker pool for parallel sweep execution.

    The previous engine forked a fresh pool inside every ``Sweep.run``
    call and tore it down with the grid: every sweep re-paid pool startup,
    and the workers' workload/result caches died with them.  This pool is
    created on first parallel use and then shared by every later sweep
    (and SLA-sweep grid stage) in the process.  It is transparently
    rebuilt when a larger pool is requested or when the system registry
    changed since the workers were created — forked workers bake in the
    registry, so a name registered afterwards would not resolve in a stale
    worker.
    """

    def __init__(self) -> None:
        self._pool = None
        self._size = 0
        self._generation = -1

    def get(self, workers: int):
        """A live pool with at least ``workers`` processes."""
        from repro.api.registry import registry_generation

        generation = registry_generation()
        if self._pool is None or self._size < workers or self._generation != generation:
            if self._pool is not None:
                LOG.debug(
                    "rebuilding worker pool (size %d -> %d, registry generation %d -> %d)",
                    self._size, workers, self._generation, generation,
                )
            self.shutdown()
            self._pool = _pool_context().Pool(processes=workers)
            self._size = workers
            self._generation = generation
        return self._pool

    @property
    def size(self) -> int:
        return self._size

    def active(self) -> bool:
        return self._pool is not None

    def shutdown(self) -> None:
        """Terminate the pool (idempotent); the next ``get`` starts fresh."""
        if self._pool is not None:
            self._pool.terminate()
            self._pool.join()
            self._pool = None
            self._size = 0
            self._generation = -1


#: The process-wide persistent pool (see :class:`WorkerPool`).
_WORKER_POOL = WorkerPool()
atexit.register(_WORKER_POOL.shutdown)


def worker_pool() -> WorkerPool:
    """The process-wide persistent sweep pool."""
    return _WORKER_POOL


def shutdown_worker_pool() -> None:
    """Tear down the persistent sweep pool (tests, embedders, benchmarks)."""
    _WORKER_POOL.shutdown()


@dataclass(frozen=True)
class AxisPoint:
    """One labeled grid point bundling several simulation settings."""

    label: Any
    settings: Tuple[Tuple[str, Any], ...]


def point(label: Any, **settings: Any) -> AxisPoint:
    """Build an :class:`AxisPoint` (see the module docstring)."""
    return AxisPoint(label=label, settings=tuple(settings.items()))


def _coordinate(value: Any) -> Any:
    """The coordinate recorded in ``RunResult.params`` for an axis value."""
    if isinstance(value, AxisPoint):
        return value.label
    if isinstance(value, ModelConfig):
        return model_label(value)
    if callable(value):
        return system_label(value)
    return value


class Sweep:
    """A declarative grid of simulation runs."""

    def __init__(
        self,
        over: Mapping[str, Iterable[Any]],
        base: Optional[Simulation] = None,
        **base_settings: Any,
    ) -> None:
        if not over:
            raise ValueError("a sweep needs at least one axis")
        self._axes: List[Tuple[str, List[Any]]] = [
            (str(key), list(values)) for key, values in over.items()
        ]
        for key, values in self._axes:
            if not values:
                raise ValueError(f"sweep axis {key!r} has no values")
        self._base = (base or Simulation()).clone().apply(**base_settings)
        self._compiled: Optional[Tuple[Any, Any, Any]] = None

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------
    @property
    def axes(self) -> List[Tuple[str, List[Any]]]:
        """Axes with coordinate labels (what the results are keyed by)."""
        return [
            (key, [_coordinate(value) for value in values]) for key, values in self._axes
        ]

    def __len__(self) -> int:
        size = 1
        for _, values in self._axes:
            size *= len(values)
        return size

    def points(self) -> List[Dict[str, Any]]:
        """Raw grid points in deterministic product order."""
        keys = [key for key, _ in self._axes]
        return [
            dict(zip(keys, combo))
            for combo in product(*(values for _, values in self._axes))
        ]

    def _apply_axis(self, sim: Simulation, key: str, value: Any) -> None:
        if isinstance(value, AxisPoint):
            sim.apply(**dict(value.settings))
        else:
            sim.apply(**{key: value})

    def simulations(self) -> List[Tuple[Simulation, Dict[str, Any]]]:
        """One configured (simulation, coordinates) pair per grid point."""
        configured: List[Tuple[Simulation, Dict[str, Any]]] = []
        for grid_point in self.points():
            sim = self._base.clone()
            coords: Dict[str, Any] = {}
            for key, value in grid_point.items():
                self._apply_axis(sim, key, value)
                coords[key] = _coordinate(value)
            configured.append((sim, coords))
        return configured

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _compile(self):
        """Configured sims, their specs, and cache keys — computed once.

        Keys are frozen at first use: option objects carried on the specs
        mutate while simulating, and recomputing keys per ``run()`` call
        would make a sweep re-run miss its own cached results.
        """
        if self._compiled is None:
            sims = self.simulations()
            specs = [sim.spec() for sim, _ in sims]
            keys = [safe_spec_key(spec) for spec in specs]
            self._compiled = (sims, specs, keys)
        return self._compiled

    def run(
        self,
        parallel: bool = False,
        processes: Optional[int] = None,
        cache: bool = True,
        reuse_pool: bool = True,
        recorder: Optional[Any] = None,
    ) -> SweepResult:
        """Execute every grid point and return the ordered results.

        ``parallel=True`` fans the uncached runs out over the persistent
        worker pool (default size: CPU count capped at the number of
        runs): grid points are scheduled as chunks grouped by workload
        key — every chunk's trace is derived (or fetched from the
        cross-run cache) once and shared by all its runs — and the pool
        itself survives across ``run()`` calls, so repeated sweeps pay
        neither pool startup nor workload re-derivation.  Ordering and
        values are identical to the serial path.  ``reuse_pool=False``
        restores the legacy fork-per-call pool (mainly for benchmarking
        the engines against each other).

        ``recorder`` (or a recorder attached to the base session via
        ``Simulation.observe``) observes the sweep: config-hash cache
        hits/misses are counted, serial runs record directly into it, and
        parallel chunks record worker-side and are merged back with
        ``worker-<pid>`` attribution.  Recording never changes the
        results.
        """
        sims, specs, keys = self._compile()
        if recorder is None:
            recorder = getattr(self._base, "_recorder", None)
        record = recorder is not None and getattr(recorder, "enabled", False)

        slots: List[Optional[RunResult]] = [None] * len(specs)
        pending: List[int] = []
        for index, key in enumerate(keys):
            hit = cached_result(key) if cache else None
            if hit is not None:
                slots[index] = hit
                if record:
                    recorder.count("cache.result.hits")
            else:
                pending.append(index)
                if record:
                    recorder.count("cache.result.misses")

        # Execute with the keys frozen at compile time: stateful option
        # objects (policies) mutate during the run, so a key recomputed
        # later would drift and a re-run of this sweep would miss the cache.
        fresh = self._execute(
            [(specs[i], keys[i] or "") for i in pending], parallel, processes, reuse_pool,
            recorder=recorder if record else None,
        )
        for index, result in zip(pending, fresh):
            slots[index] = result
            if cache:
                store_result(result)

        results: List[RunResult] = []
        for slot, spec, (_, coords) in zip(slots, specs, sims):
            assert slot is not None
            # Caller-owned copy from the requesting spec with this sweep's
            # coordinates overlaid: axis keys (including labeled AxisPoints
            # like "fabric") stay addressable, labels are deterministic
            # regardless of cache warmth, and the cached copy is never
            # mutated.
            results.append(public_copy(slot, spec, coords))
        return SweepResult(axes=self.axes, results=results)

    @staticmethod
    def _chunk_by_workload(
        tasks: Sequence[Tuple[RunSpec, str]], workers: int = 1
    ) -> List[Tuple[List[int], Optional[str]]]:
        """Group task indices into dispatch chunks sharing one workload.

        Returns ``(indices, workload_key)`` pairs in deterministic
        first-occurrence order; specs whose workload is not stably
        hashable get singleton chunks with key ``None``.  When grouping
        produces fewer chunks than ``workers`` — a systems-only sweep
        collapses into a single workload group — the largest chunks are
        split (each part still ships the same shared workload) so the
        pool stays fully occupied.
        """
        chunks: List[Tuple[List[int], Optional[str]]] = []
        by_key: Dict[str, List[int]] = {}
        for index, (spec, _) in enumerate(tasks):
            key = workload_key(spec)
            if key is None:
                chunks.append(([index], None))
                continue
            bucket = by_key.get(key)
            if bucket is None:
                bucket = [index]
                by_key[key] = bucket
                chunks.append((bucket, key))
            else:
                bucket.append(index)
        # Subdivide until every worker can get a chunk (or chunks are all
        # singletons).  Splitting is deterministic: always the largest
        # chunk, earliest first on ties, halved in place.
        target = min(workers, len(tasks))
        while len(chunks) < target:
            position = max(
                range(len(chunks)), key=lambda i: (len(chunks[i][0]), -i)
            )
            indices, key = chunks[position]
            if len(indices) <= 1:
                break
            middle = (len(indices) + 1) // 2
            chunks[position : position + 1] = [
                (indices[:middle], key),
                (indices[middle:], key),
            ]
        return chunks

    @staticmethod
    def _execute(
        tasks: Sequence[Tuple[RunSpec, str]],
        parallel: bool,
        processes: Optional[int],
        reuse_pool: bool = True,
        recorder: Optional[Any] = None,
    ) -> List[RunResult]:
        if not tasks:
            return []
        workers = min(len(tasks), os.cpu_count() or 1) if processes is None else processes
        if not parallel or workers <= 1 or len(tasks) == 1:
            return [execute_spec(spec, key, recorder=recorder) for spec, key in tasks]
        if not reuse_pool:
            # Legacy engine: a fresh fork-per-call pool, one task per IPC
            # round trip, no workload sharing (and no worker-side
            # recording).  Kept as the benchmark comparator and as an
            # escape hatch.
            with _pool_context().Pool(processes=workers) as pool:
                return pool.starmap(execute_spec, list(tasks))

        from collections import Counter

        record = recorder is not None
        chunks = Sweep._chunk_by_workload(tasks, workers)
        chunks_per_key = Counter(key for _, key in chunks if key is not None)
        pool = _WORKER_POOL.get(workers)
        grants = []
        for indices, chunk_key in chunks:
            chunk_tasks = [tasks[i] for i in indices]
            # The chunk's workload travels with it when the parent already
            # holds it (free — warmed by an earlier sweep or serial run) or
            # when several runs share it, in which case one parent build
            # replaces a per-worker derivation each and warms the
            # cross-run cache.  A cold singleton derives in its worker, in
            # parallel with the other chunks.
            shared = cached_workload(chunk_key)
            if (
                shared is None
                and chunk_key is not None
                and (len(indices) > 1 or chunks_per_key[chunk_key] > 1)
            ):
                from repro.api.session import build_workload

                shared = build_workload(chunk_tasks[0][0])
            grants.append(
                pool.apply_async(execute_chunk, (chunk_tasks, chunk_key, shared, record))
            )
        results: List[Optional[RunResult]] = [None] * len(tasks)
        for (indices, _), grant in zip(chunks, grants):
            payload = grant.get()
            if record:
                # Workers ship their recorder snapshot with the chunk; the
                # merge keys every worker's events under its own Perfetto
                # process so parallel execution reads as parallel tracks.
                chunk_results = payload["results"]
                recorder.merge(payload["obs"], process=f"worker-{payload['pid']}")
                recorder.count("sweep.chunks")
            else:
                chunk_results = payload
            for index, result in zip(indices, chunk_results):
                results[index] = result
        return results  # type: ignore[return-value]


def run_grid(
    over: Mapping[str, Iterable[Any]],
    base: Optional[Simulation] = None,
    parallel: bool = False,
    **base_settings: Any,
) -> SweepResult:
    """One-shot helper: build a :class:`Sweep` and run it."""
    return Sweep(over, base=base, **base_settings).run(parallel=parallel)


__all__ = [
    "AxisPoint",
    "Sweep",
    "WorkerPool",
    "point",
    "run_grid",
    "shutdown_worker_pool",
    "worker_pool",
]
