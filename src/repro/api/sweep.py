"""Declarative parameter sweeps with a multiprocessing execution engine.

A :class:`Sweep` expands a dict of axes into the cartesian product of grid
points, configures one :class:`~repro.api.session.Simulation` per point, and
executes them serially or across worker processes::

    from repro.api import Simulation, Sweep

    result = Sweep(
        over={"system": ["pond", "pifs-rec"], "batch_size": [8, 64]},
        base=Simulation().quick(),
    ).run(parallel=True)
    print(result.table())

Axis keys name :class:`Simulation` settings (``system``, ``model``,
``batch_size``, ``hosts``, ``devices``, ...).  An axis value may also be a
:func:`point` bundling several settings under one coordinate label — e.g.
the scale-out experiments grow hosts, switches and devices together::

    Sweep(over={"fabric": [point(n, hosts=n, switches=n, devices=n)
                           for n in (1, 2, 4)]})

Results come back in deterministic product order (first axis outermost)
regardless of which worker finished first, and parallel execution is
byte-identical to serial because every run re-derives its seeded workload
from the spec.  Runs are cached by config hash across sweeps.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from dataclasses import dataclass
from itertools import product
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.api.results import RunResult, SweepResult
from repro.config import ModelConfig
from repro.api.session import (
    RunSpec,
    Simulation,
    cached_result,
    execute_spec,
    model_label,
    public_copy,
    safe_spec_key,
    store_result,
    system_label,
)


@dataclass(frozen=True)
class AxisPoint:
    """One labeled grid point bundling several simulation settings."""

    label: Any
    settings: Tuple[Tuple[str, Any], ...]


def point(label: Any, **settings: Any) -> AxisPoint:
    """Build an :class:`AxisPoint` (see the module docstring)."""
    return AxisPoint(label=label, settings=tuple(settings.items()))


def _coordinate(value: Any) -> Any:
    """The coordinate recorded in ``RunResult.params`` for an axis value."""
    if isinstance(value, AxisPoint):
        return value.label
    if isinstance(value, ModelConfig):
        return model_label(value)
    if callable(value):
        return system_label(value)
    return value


class Sweep:
    """A declarative grid of simulation runs."""

    def __init__(
        self,
        over: Mapping[str, Iterable[Any]],
        base: Optional[Simulation] = None,
        **base_settings: Any,
    ) -> None:
        if not over:
            raise ValueError("a sweep needs at least one axis")
        self._axes: List[Tuple[str, List[Any]]] = [
            (str(key), list(values)) for key, values in over.items()
        ]
        for key, values in self._axes:
            if not values:
                raise ValueError(f"sweep axis {key!r} has no values")
        self._base = (base or Simulation()).clone().apply(**base_settings)
        self._compiled: Optional[Tuple[Any, Any, Any]] = None

    # ------------------------------------------------------------------
    # Grid expansion
    # ------------------------------------------------------------------
    @property
    def axes(self) -> List[Tuple[str, List[Any]]]:
        """Axes with coordinate labels (what the results are keyed by)."""
        return [
            (key, [_coordinate(value) for value in values]) for key, values in self._axes
        ]

    def __len__(self) -> int:
        size = 1
        for _, values in self._axes:
            size *= len(values)
        return size

    def points(self) -> List[Dict[str, Any]]:
        """Raw grid points in deterministic product order."""
        keys = [key for key, _ in self._axes]
        return [
            dict(zip(keys, combo))
            for combo in product(*(values for _, values in self._axes))
        ]

    def _apply_axis(self, sim: Simulation, key: str, value: Any) -> None:
        if isinstance(value, AxisPoint):
            sim.apply(**dict(value.settings))
        else:
            sim.apply(**{key: value})

    def simulations(self) -> List[Tuple[Simulation, Dict[str, Any]]]:
        """One configured (simulation, coordinates) pair per grid point."""
        configured: List[Tuple[Simulation, Dict[str, Any]]] = []
        for grid_point in self.points():
            sim = self._base.clone()
            coords: Dict[str, Any] = {}
            for key, value in grid_point.items():
                self._apply_axis(sim, key, value)
                coords[key] = _coordinate(value)
            configured.append((sim, coords))
        return configured

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _compile(self):
        """Configured sims, their specs, and cache keys — computed once.

        Keys are frozen at first use: option objects carried on the specs
        mutate while simulating, and recomputing keys per ``run()`` call
        would make a sweep re-run miss its own cached results.
        """
        if self._compiled is None:
            sims = self.simulations()
            specs = [sim.spec() for sim, _ in sims]
            keys = [safe_spec_key(spec) for spec in specs]
            self._compiled = (sims, specs, keys)
        return self._compiled

    def run(
        self,
        parallel: bool = False,
        processes: Optional[int] = None,
        cache: bool = True,
    ) -> SweepResult:
        """Execute every grid point and return the ordered results.

        ``parallel=True`` fans the uncached runs out over a process pool
        (default size: CPU count capped at the number of runs).  Ordering
        and values are identical to the serial path.
        """
        sims, specs, keys = self._compile()

        slots: List[Optional[RunResult]] = [None] * len(specs)
        pending: List[int] = []
        for index, key in enumerate(keys):
            hit = cached_result(key) if cache else None
            if hit is not None:
                slots[index] = hit
            else:
                pending.append(index)

        # Execute with the keys frozen at compile time: stateful option
        # objects (policies) mutate during the run, so a key recomputed
        # later would drift and a re-run of this sweep would miss the cache.
        fresh = self._execute(
            [(specs[i], keys[i] or "") for i in pending], parallel, processes
        )
        for index, result in zip(pending, fresh):
            slots[index] = result
            if cache:
                store_result(result)

        results: List[RunResult] = []
        for slot, spec, (_, coords) in zip(slots, specs, sims):
            assert slot is not None
            # Caller-owned copy from the requesting spec with this sweep's
            # coordinates overlaid: axis keys (including labeled AxisPoints
            # like "fabric") stay addressable, labels are deterministic
            # regardless of cache warmth, and the cached copy is never
            # mutated.
            results.append(public_copy(slot, spec, coords))
        return SweepResult(axes=self.axes, results=results)

    @staticmethod
    def _execute(
        tasks: Sequence[Tuple[RunSpec, str]], parallel: bool, processes: Optional[int]
    ) -> List[RunResult]:
        if not tasks:
            return []
        workers = min(len(tasks), os.cpu_count() or 1) if processes is None else processes
        if not parallel or workers <= 1 or len(tasks) == 1:
            return [execute_spec(spec, key) for spec, key in tasks]
        # ``fork`` skips re-importing the package in every worker, but is
        # only reliably safe on Linux (macOS frameworks can crash after
        # fork, which is why spawn is the platform default there).  Specs
        # and ``execute_spec`` are module-level and picklable, so the
        # spawn-based default contexts work everywhere else.
        if sys.platform.startswith("linux"):
            context = multiprocessing.get_context("fork")
        else:  # pragma: no cover - exercised on macOS/Windows hosts
            context = multiprocessing.get_context()
        with context.Pool(processes=workers) as pool:
            return pool.starmap(execute_spec, list(tasks))


def run_grid(
    over: Mapping[str, Iterable[Any]],
    base: Optional[Simulation] = None,
    parallel: bool = False,
    **base_settings: Any,
) -> SweepResult:
    """One-shot helper: build a :class:`Sweep` and run it."""
    return Sweep(over, base=base, **base_settings).run(parallel=parallel)


__all__ = ["AxisPoint", "Sweep", "point", "run_grid"]
