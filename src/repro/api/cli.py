"""Command-line interface of the reproduction (``python -m repro``).

Subcommands:

* ``run`` — one simulation session: ``python -m repro run pifs-rec --quick``
* ``sweep`` — a declarative grid: ``python -m repro sweep --system pond
  --system pifs-rec --batch-size 8 --batch-size 64 --quick``
* ``serve`` — online open-loop serving with tail-latency metrics:
  ``python -m repro serve pifs-rec --qps 2e5 --arrival poisson --sla-ms 5``
  (``--all --smoke`` is the CI guard: one short session per registered
  system, failing on unknown systems or non-finite percentiles)
* ``compare`` — every (or selected) system on one workload, normalized and
  with speedups against a baseline
* ``figures`` — regenerate every figure/table of the paper (subsumes the
  old ``python -m repro.experiments.runner``)
* ``bench`` — run the performance benchmark suite and record/update the
  ``BENCH_*.json`` baselines (``--smoke`` for the relaxed CI mode)
* ``scenario`` — the named-scenario catalog (workload mixes, popularity
  drift, trace files, fault injection): ``python -m repro scenario
  list|run|compare`` (``run --all --smoke`` is the CI guard)
* ``trace`` — observed sessions with Chrome/Perfetto ``trace_event``
  export: ``python -m repro trace run|serve|scenario ... --out trace.json``
  (``trace run <system> --smoke`` is the CI guard: quick scale plus
  schema validation of the emitted trace)
* ``fleet`` — sharded datacenter-scale simulation: N per-rack systems
  behind a request router: ``python -m repro fleet run|serve --shards 8
  --router table-affinity`` (``fleet run --smoke`` is the CI guard)
* ``systems`` — list the registered systems

Also installed as the ``pifs-rec`` console script.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.api.registry import UnknownSystemError, available_systems
from repro.scenarios.registry import UnknownScenarioError
from repro.api.results import SweepResult
from repro.api.session import Simulation
from repro.api.sweep import Sweep


def _add_scale_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run at the reduced 'quick' evaluation scale (smaller models, "
        "fewer batches; seconds instead of minutes)",
    )


def _add_machine_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--hosts", type=int, default=None, metavar="N",
        help="concurrent hosts sharing the CXL pool (default: 1)",
    )
    parser.add_argument(
        "--switches", type=int, default=None, metavar="N",
        help="fabric switches; hosts and devices are spread across them (default: 1)",
    )
    parser.add_argument(
        "--devices", type=int, default=None, metavar="N",
        help="CXL Type 3 memory devices behind the switches (default: 4)",
    )
    parser.add_argument(
        "--engine",
        choices=["scalar", "vector", "packet"],
        default=None,
        help="replay fidelity: 'scalar' walks the device models per lookup "
        "(the oracle), 'vector' resolves lookup batches as numpy arrays "
        "through flattened kernels — numerically identical, several times "
        "faster; 'packet' attaches per-port packet queues to every fabric "
        "link — identical to scalar when uncongested, and reporting "
        "queue depths, drops and backpressure (default: scalar)",
    )
    _add_stream_argument(parser)


def _add_stream_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--stream",
        action="store_true",
        help="stream the workload out-of-core: requests are materialized "
        "window by window (and serve consumes arrivals lazily), so peak "
        "memory stays proportional to the active window instead of the "
        "whole trace; every simulated number is bit-identical to the "
        "eager path",
    )


def _base_simulation(args: argparse.Namespace, system: str = "pifs-rec") -> Simulation:
    sim = Simulation(system)
    if args.quick:
        sim.quick()
    for setting in ("hosts", "switches", "devices", "engine"):
        value = getattr(args, setting, None)
        if value is not None:
            sim.apply(**{setting: value})
    if getattr(args, "num_batches", None) is not None:
        sim.num_batches(args.num_batches)
    if getattr(args, "stream", False):
        sim.stream()
    return sim


def _print_sweep(result: SweepResult, as_json: bool, metrics: Sequence[str]) -> None:
    if as_json:
        print(result.to_json(indent=2))
    else:
        print(result.table(metrics=metrics))


# ---------------------------------------------------------------------------
# Subcommands
# ---------------------------------------------------------------------------
def _cmd_run(args: argparse.Namespace) -> int:
    sim = _base_simulation(args, args.system).model(args.model)
    if args.batch_size is not None:
        sim.batch_size(args.batch_size)
    if args.distribution is not None:
        sim.distribution(args.distribution)
    run = sim.run()
    if args.json:
        print(run.to_json(indent=2))
        return 0
    print(f"system        : {run.system}")
    if run.params.get("engine"):
        print(f"engine        : {run.params['engine']}")
    print(f"model         : {run.model}  (trace: {run.params['distribution']})")
    print(
        f"machine       : {run.params['hosts']} host(s), "
        f"{run.params['switches']} switch(es), {run.params['devices']} CXL device(s)"
    )
    print(f"total latency : {run.total_ns:,.0f} ns for {run.sim.lookups} lookups")
    print(f"per lookup    : {run.latency_per_lookup_ns:,.2f} ns")
    print(f"local / CXL   : {run.sim.local_rows} / {run.sim.cxl_rows} rows")
    if run.sim.buffer_hits or run.sim.buffer_misses:
        print(f"buffer hits   : {run.sim.buffer_hit_ratio:.1%}")
    if run.sim.migrations:
        print(f"migrations    : {run.sim.migrations} ({run.sim.migration_cost_fraction:.2%} of time)")
    if run.sim.net is not None:
        net = run.sim.net
        print(
            f"packet tier   : {net.packets} packets, max queue depth "
            f"{net.max_queue_depth}, {net.drops} drops, "
            f"{net.backpressure_ns:,.0f} ns backpressure"
        )
        congested = net.congested_ports()
        if congested:
            print(f"congested     : {', '.join(congested)}")
    return 0


#: Default comparison set for ``python -m repro serve`` with no systems named.
DEFAULT_SERVE_SYSTEMS = ("pifs-rec", "pond", "beacon")


def _cmd_serve(args: argparse.Namespace) -> int:
    import math

    from repro.analysis.report import format_table

    if args.all:
        systems = list(available_systems())
    elif args.system:
        systems = _dedupe(args.system)
    else:
        systems = list(DEFAULT_SERVE_SYSTEMS)
    if args.smoke:
        args.quick = True
    sla_ns = args.sla_ms * 1e6 if args.sla_ms is not None else None

    serve_kwargs = dict(
        arrival=args.arrival,
        max_batch_size=args.max_batch,
        max_wait_ns=args.max_wait_us * 1e3,
        seed=args.seed,
        sla_ns=sla_ns,
    )
    results = []
    failures = []
    for name in systems:
        sim = _base_simulation(args, name).model(args.model)
        try:
            result = sim.serve(args.qps, **serve_kwargs)
        except Exception as error:  # smoke mode reports every broken system
            if not args.smoke:
                raise
            failures.append(f"{name}: {type(error).__name__}: {error}")
            continue
        if not result.latency.is_finite():
            failures.append(f"{name}: non-finite latency percentile")
            continue
        results.append((name, result))

    sla_sweeps = {}
    if args.find_max_qps:
        if sla_ns is None:
            print("error: --find-max-qps requires --sla-ms", file=sys.stderr)
            return 2
        bounds = (args.qps_min, args.qps_max)
        for name in systems:
            sweep = (
                _base_simulation(args, name)
                .model(args.model)
                .sla_sweep(
                    sla_ns,
                    bounds,
                    arrival=args.arrival,
                    max_batch_size=args.max_batch,
                    max_wait_ns=args.max_wait_us * 1e3,
                    seed=args.seed,
                )
            )
            if not math.isfinite(sweep.max_sustainable_qps):
                failures.append(f"{name}: non-finite sustainable QPS")
                continue
            sla_sweeps[name] = sweep

    if args.json:
        import json

        payload = {"results": [result.to_dict() for _, result in results]}
        if sla_sweeps:
            payload["sla_sweeps"] = {
                name: sweep.to_dict() for name, sweep in sla_sweeps.items()
            }
        print(json.dumps(payload, indent=2))
    else:
        rows = [
            [
                name,
                result.latency.p50_ns,
                result.latency.p95_ns,
                result.latency.p99_ns,
                result.goodput_qps,
                result.sla_attainment,
                result.max_queue_depth,
            ]
            for name, result in results
        ]
        print(
            f"open-loop serving: model {args.model}, {args.qps:,.0f} qps offered, "
            f"{args.arrival} arrivals, batch<= {args.max_batch}, "
            f"max wait {args.max_wait_us:,.0f} us"
            + (f", SLA {args.sla_ms} ms" if args.sla_ms is not None else "")
        )
        print(format_table(
            ["system", "p50_ns", "p95_ns", "p99_ns", "goodput_qps", "sla_attain", "max_queue"],
            rows,
        ))
        net_rows = [
            [
                name,
                result.sim.net.packets,
                result.sim.net.max_queue_depth,
                result.sim.net.drops,
                result.sim.net.retries,
                result.sim.net.backpressure_ns,
            ]
            for name, result in results
            if result.sim is not None and result.sim.net is not None
        ]
        if net_rows:
            print()
            print("packet tier (per-port queues on every fabric link):")
            print(format_table(
                ["system", "packets", "max_depth", "drops", "retries", "backpressure_ns"],
                net_rows,
            ))
        if sla_sweeps:
            print()
            print(f"max sustainable QPS under a {args.sla_ms} ms p99 budget:")
            print(format_table(
                ["system", "max_qps", "probes"],
                [
                    [name, sweep.max_sustainable_qps, len(sweep.probes)]
                    for name, sweep in sla_sweeps.items()
                ],
            ))

    for failure in failures:
        print(f"serve failure: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _dedupe(values):
    """Drop repeated axis values while preserving order."""
    return list(dict.fromkeys(values))


def _cmd_sweep(args: argparse.Namespace) -> int:
    over = {}
    if args.system:
        over["system"] = _dedupe(args.system)
    if args.model:
        over["model"] = _dedupe(args.model)
    if args.batch_size:
        over["batch_size"] = _dedupe(args.batch_size)
    if args.distribution:
        over["distribution"] = _dedupe(args.distribution)
    if not over:
        over = {"system": list(available_systems())}
    result = Sweep(over, base=_base_simulation(args)).run(parallel=not args.serial, processes=args.jobs)
    _print_sweep(result, args.json, metrics=("total_ns", "latency_per_lookup_ns"))
    if not args.json and over.get("system") and len(over["system"]) > 1:
        baseline_runs = result.where(system=over["system"][0])
        print()
        baseline_name = over["system"][0]
        print(f"speedup over {baseline_name!r} at equal coordinates:")
        for run in result:
            if run.params["system"] == baseline_name:
                continue
            reference = next(
                b for b in baseline_runs
                if {k: v for k, v in b.params.items() if k != "system"}
                == {k: v for k, v in run.params.items() if k != "system"}
            )
            coords = ", ".join(
                f"{key}={value}" for key, value in run.params.items()
                if key != "system" and len(result.axis_values(key)) > 1
            )
            print(f"  {run.params['system']:>14} [{coords}]: {run.speedup_over(reference):.2f}x")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    systems = _dedupe(args.system or available_systems())
    if args.baseline not in systems:
        systems = [args.baseline, *systems]
    sim = _base_simulation(args).model(args.model)
    if args.batch_size is not None:
        sim.batch_size(args.batch_size)
    result = Sweep({"system": systems}, base=sim).run(parallel=not args.serial, processes=args.jobs)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    baseline = result.only(system=args.baseline)
    normalized = result.normalized("total_ns")
    from repro.analysis.report import format_table

    rows = [
        [
            run.params["system"],
            run.total_ns,
            norm,
            baseline.total_ns / run.total_ns,
            run.sim.local_rows,
            run.sim.cxl_rows,
        ]
        for run, norm in zip(result, normalized)
    ]
    print(f"model {args.model}, batch {result[0].params['batch_size']}, "
          f"{result[0].sim.lookups} lookups; speedup vs {args.baseline!r}:")
    print(format_table(
        ["system", "latency_ns", "normalized", "speedup", "local rows", "CXL rows"],
        rows,
        float_format="{:,.3f}",
    ))
    return 0


def _cmd_figures(args: argparse.Namespace) -> int:
    from repro.experiments import runner
    from repro.experiments.common import DEFAULT_SCALE, QUICK_SCALE

    scale = QUICK_SCALE if args.quick else DEFAULT_SCALE
    runner.run_all(scale, parallel=not args.serial)
    return 0


#: The perf-benchmark files ``bench`` knows by short name, in run order.
BENCH_SUITES = {
    "engine": "test_engine_vectorization.py",
    "obs": "test_obs_overhead.py",
    "packet": "test_packet_tier.py",
    "serve": "test_serve_vector.py",
    "fleet": "test_fleet_scaling.py",
    "stream": "test_stream_serve.py",
    "sweep": "test_sweep_scaling.py",
    "workload": "test_workload_vectorization.py",
}


def _bench_directory():
    """Locate the repository's ``benchmarks/`` directory (or ``None``).

    The benchmarks are part of the source checkout, not the installed
    package: look next to the current working directory first, then
    relative to this file (``src/repro/api/cli.py`` → repo root).
    """
    import pathlib

    candidates = (
        pathlib.Path.cwd() / "benchmarks",
        pathlib.Path(__file__).resolve().parents[3] / "benchmarks",
    )
    for candidate in candidates:
        if (candidate / "conftest.py").is_file():
            return candidate
    return None


def _cmd_bench(args: argparse.Namespace) -> int:
    import os

    try:
        import pytest
    except ImportError:  # pragma: no cover - dev-only dependency
        print(
            "error: the bench subcommand needs pytest and pytest-benchmark "
            "(pip install pytest pytest-benchmark)",
            file=sys.stderr,
        )
        return 2
    bench_dir = _bench_directory()
    if bench_dir is None:
        print(
            "error: benchmarks/ directory not found — run from a source "
            "checkout of the repository",
            file=sys.stderr,
        )
        return 2
    if args.smoke:
        os.environ["REPRO_BENCH_SMOKE"] = "1"
    smoke = os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

    if args.all:
        targets = [str(bench_dir)]
    else:
        suites = _dedupe(args.suite) if args.suite else list(BENCH_SUITES)
        targets = [str(bench_dir / BENCH_SUITES[suite]) for suite in suites]
    mode = "smoke mode (relaxed floors, no baselines recorded)" if smoke else (
        "recording mode (BENCH_*.json baselines will be updated)"
    )
    print(f"running benchmarks in {mode}")
    return int(pytest.main([*targets, "-q", "-s"]))


#: Default comparison set for ``python -m repro scenario compare``.
DEFAULT_COMPARE_SYSTEMS = ("pifs-rec", "pond", "beacon")


def _print_scenario_run(name: str, run) -> None:
    params = run.params
    extras = []
    if params.get("workload"):
        extras.append(str(params["workload"]))
    if params.get("faults"):
        extras.append("faults: " + ", ".join(params["faults"]))
    suffix = f"  [{'; '.join(extras)}]" if extras else ""
    print(
        f"{name:>22}  {run.params['system']:>14}  "
        f"{run.total_ns:>16,.0f} ns  {run.latency_per_lookup_ns:>10,.2f} ns/lookup  "
        f"local/CXL {run.sim.local_rows}/{run.sim.cxl_rows}{suffix}"
    )


def _cmd_scenario_list(args: argparse.Namespace) -> int:
    from repro.scenarios import available_scenarios, scenario

    if args.json:
        import json

        print(json.dumps(
            [scenario(name).to_dict() for name in available_scenarios()], indent=2
        ))
        return 0
    for name in available_scenarios():
        entry = scenario(name)
        print(f"{name:>22}  {entry.dimensions()}")
        if args.verbose and entry.description:
            print(f"{'':>24}{entry.description}")
        if args.verbose:
            parameters = entry.parameters()
            if parameters != "-":
                print(f"{'':>24}[{parameters}]")
    return 0


def _cmd_scenario_run(args: argparse.Namespace) -> int:
    from repro.scenarios import available_scenarios, scenario

    if args.all:
        names = list(available_scenarios())
    elif args.name:
        names = _dedupe(args.name)
    else:
        print("error: name a scenario or pass --all (see 'scenario list')", file=sys.stderr)
        return 2
    if args.smoke:
        args.quick = True
    session_kwargs = dict(
        system=args.system, engine=args.engine, quick=args.quick,
        stream=args.stream,
    )

    if args.export_trace:
        if len(names) != 1:
            print("error: --export-trace takes exactly one scenario", file=sys.stderr)
            return 2
        from repro.traces.files import save_workload_trace

        workload = scenario(names[0]).simulation(**session_kwargs).build_workload()
        path = save_workload_trace(workload, args.export_trace)
        print(f"exported {len(workload.requests)} requests "
              f"({workload.total_lookups} lookups) to {path}")
        return 0

    payloads = []
    failures = []
    for name in names:
        entry = scenario(name)
        try:
            run = entry.run(**session_kwargs)
            serve_result = entry.serve(**session_kwargs) if args.serve else None
        except Exception as error:  # smoke mode reports every broken scenario
            if not args.smoke:
                raise
            failures.append(f"{name}: {type(error).__name__}: {error}")
            continue
        if args.smoke and not (run.total_ns > 0):
            failures.append(f"{name}: non-positive total latency")
            continue
        if args.json:
            payload = {"scenario": entry.to_dict(), "run": run.to_dict()}
            if serve_result is not None:
                payload["serve"] = serve_result.to_dict()
            payloads.append(payload)
        else:
            _print_scenario_run(name, run)
            if serve_result is not None:
                latency = serve_result.latency
                print(
                    f"{'':>24}serve: p50 {latency.p50_ns:,.0f} ns, "
                    f"p99 {latency.p99_ns:,.0f} ns, "
                    f"goodput {serve_result.goodput_qps:,.0f} qps"
                )
    if args.json:
        import json

        print(json.dumps(payloads, indent=2))
    for failure in failures:
        print(f"scenario failure: {failure}", file=sys.stderr)
    return 1 if failures else 0


def _cmd_scenario_compare(args: argparse.Namespace) -> int:
    from repro.analysis.report import format_table
    from repro.scenarios import scenario

    names = _dedupe(args.name)
    if len(names) > 1:
        return _compare_scenarios(names, args)
    entry = scenario(names[0])
    systems = _dedupe(args.system) if args.system else list(DEFAULT_COMPARE_SYSTEMS)
    sweep = entry.sweep(systems=systems, engine=args.engine, quick=args.quick,
                        stream=args.stream)
    result = sweep.run(parallel=not args.serial, processes=args.jobs)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(f"scenario {names[0]!r}: {entry.dimensions()}")
    if entry.description:
        print(entry.description)
    print(f"parameters: {entry.parameters()}")
    print()
    axis_names = [key for key, _ in result.axes]
    baseline_system = systems[0]
    baseline_runs = result.where(system=baseline_system)
    rows = []
    for run in result:
        reference = next(
            (
                b for b in baseline_runs
                if {k: v for k, v in b.params.items() if k != "system"}
                == {k: v for k, v in run.params.items() if k != "system"}
            ),
            None,
        )
        rows.append(
            [run.params.get(axis, "") for axis in axis_names]
            + [
                run.total_ns,
                run.latency_per_lookup_ns,
                run.speedup_over(reference) if reference is not None else float("nan"),
            ]
        )
    print(format_table(
        [*axis_names, "total_ns", "ns_per_lookup", f"speedup_vs_{baseline_system}"],
        rows,
    ))
    return 0


def _compare_scenarios(names, args: argparse.Namespace) -> int:
    """Compare several scenarios side by side on the same system(s).

    The table carries each scenario's distinguishing fault/traffic/packet
    parameters next to its metrics, so two rows differing only in knob
    values (e.g. two link degradations) are tellable apart.
    """
    from repro.analysis.report import format_table
    from repro.scenarios import scenario

    systems = _dedupe(args.system) if args.system else [scenario(names[0]).system]
    runs = {}
    payloads = []
    for name in names:
        entry = scenario(name)
        for system in systems:
            run = entry.run(system=system, engine=args.engine, quick=args.quick,
                            stream=args.stream)
            runs[(name, system)] = run
            payloads.append({
                "scenario": entry.to_dict(),
                "system": system,
                "run": run.to_dict(),
            })
    if args.json:
        import json

        print(json.dumps(payloads, indent=2))
        return 0
    print(f"comparing {len(names)} scenarios on: {', '.join(systems)}")
    print()
    rows = []
    for name in names:
        entry = scenario(name)
        for system in systems:
            run = runs[(name, system)]
            reference = runs[(names[0], system)]
            net = run.sim.net
            rows.append([
                name,
                system,
                entry.parameters(),
                entry.shards if entry.shards else "-",
                entry.router if entry.shards else "-",
                run.total_ns,
                run.latency_per_lookup_ns,
                reference.total_ns / run.total_ns,
                "-" if net is None else f"{net.max_queue_depth}d/{net.drops}x",
            ])
    print(format_table(
        ["scenario", "system", "parameters", "shards", "router", "total_ns",
         "ns_per_lookup", f"speedup_vs_{names[0]}", "queue"],
        rows,
    ))
    return 0


def _write_trace_outputs(recorder, args: argparse.Namespace) -> int:
    """Validate, report and export an observed session's recorder.

    Shared tail of every ``trace`` subcommand: schema-validate the
    Chrome/Perfetto export (non-empty ``traceEvents``, required keys),
    write ``--out`` / ``--metrics-out``, and print the wall-clock phase
    attribution.  Returns 1 when the trace fails validation.
    """
    from repro.analysis.report import format_table
    from repro.obs.recorder import validate_chrome_trace

    problems = validate_chrome_trace(recorder.to_chrome_trace())
    suffix = f" ({recorder.dropped} dropped)" if recorder.dropped else ""
    if args.out:
        path = recorder.write_chrome_trace(args.out)
        print(f"trace   : {len(recorder)} events{suffix} -> {path} "
              "(load in https://ui.perfetto.dev or chrome://tracing)")
    else:
        print(f"trace   : {len(recorder)} events{suffix} (pass --out to export)")
    if args.metrics_out:
        if str(args.metrics_out).lower().endswith(".csv"):
            path = recorder.write_metrics_csv(args.metrics_out)
        else:
            path = recorder.write_metrics_json(args.metrics_out)
        print(f"metrics : {len(recorder.metrics())} series -> {path}")
    phases = [
        [name[len("phase."):-len("_ms")], value]
        for name, value in recorder.metrics().items()
        if name.startswith("phase.") and name.endswith("_ms")
    ]
    if phases:
        print()
        print("self-profile (wall-clock attribution):")
        print(format_table(["phase", "wall_ms"], phases, float_format="{:,.3f}"))
    for problem in problems:
        print(f"trace schema: {problem}", file=sys.stderr)
    return 1 if problems else 0


def _cmd_trace_run(args: argparse.Namespace) -> int:
    from repro.obs.recorder import TraceRecorder

    if args.smoke:
        args.quick = True
    recorder = TraceRecorder(label=f"run:{args.system}")
    sim = _base_simulation(args, args.system).model(args.model).observe(recorder)
    if args.batch_size is not None:
        sim.batch_size(args.batch_size)
    run = sim.run()
    print(f"system  : {run.system}  engine {run.params.get('engine') or 'scalar'}, "
          f"{run.sim.lookups} lookups, {run.total_ns:,.0f} ns")
    return _write_trace_outputs(recorder, args)


def _cmd_trace_serve(args: argparse.Namespace) -> int:
    from repro.obs.recorder import TraceRecorder

    if args.smoke:
        args.quick = True
    recorder = TraceRecorder(label=f"serve:{args.system}")
    sim = _base_simulation(args, args.system).model(args.model).observe(recorder)
    result = sim.serve(
        args.qps,
        arrival=args.arrival,
        max_batch_size=args.max_batch,
        max_wait_ns=args.max_wait_us * 1e3,
        seed=args.seed,
    )
    print(f"system  : {args.system}  {args.qps:,.0f} qps {args.arrival}, "
          f"{result.requests} requests in {result.batches} batches, "
          f"p99 {result.latency.p99_ns:,.0f} ns")
    return _write_trace_outputs(recorder, args)


def _cmd_trace_scenario(args: argparse.Namespace) -> int:
    from repro.obs.recorder import TraceRecorder
    from repro.scenarios import scenario

    if args.smoke:
        args.quick = True
    entry = scenario(args.name)
    recorder = TraceRecorder(label=f"scenario:{args.name}")
    session_kwargs = dict(system=args.system, engine=args.engine, quick=args.quick,
                          stream=args.stream)
    sim = entry.simulation(**session_kwargs).observe(recorder)
    run = sim.run()
    print(f"scenario: {args.name}  [{entry.dimensions()}]")
    print(f"run     : {run.params['system']}  {run.total_ns:,.0f} ns, "
          f"{run.sim.lookups} lookups")
    if not args.no_serve:
        # The open-loop session lands on the same recorder, so the exported
        # timeline shows serve batching next to the engine/packet spans.
        serve_result = entry.serve(**session_kwargs, observe=recorder)
        print(f"serve   : {serve_result.requests} requests in "
              f"{serve_result.batches} batches, "
              f"p99 {serve_result.latency.p99_ns:,.0f} ns")
    return _write_trace_outputs(recorder, args)


def _fleet_simulation(args: argparse.Namespace) -> Simulation:
    """The fleet-shaped session shared by ``fleet run`` and ``fleet serve``."""
    if args.smoke:
        args.quick = True
    sim = _base_simulation(args, args.system).model(args.model)
    if getattr(args, "batch_size", None) is not None:
        sim.batch_size(args.batch_size)
    if getattr(args, "distribution", None) is not None:
        sim.distribution(args.distribution)
    sim.fleet(args.shards, router=args.router, seed=args.fleet_seed)
    return sim


def _print_fleet_breakdown(result) -> None:
    from repro.analysis.report import format_table

    rows = [
        [row["shard"], row["requests"], row["lookups"], row["total_ns"]]
        for row in result.shard_breakdown()
    ]
    print(format_table(["shard", "requests", "lookups", "total_ns"], rows))


def _cmd_fleet_run(args: argparse.Namespace) -> int:
    from repro.fleet import run_fleet

    sim = _fleet_simulation(args)
    result = run_fleet(sim.spec(), workers=args.workers)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    print(f"fleet         : {result.num_shards} shard(s) of {result.system}, "
          f"router {result.router}")
    print(f"completion    : {result.total_ns:,.0f} ns (slowest shard)")
    print(f"requests      : {result.requests} ({result.lookups} lookups)")
    print(f"goodput       : {result.goodput_lookups_per_us:,.2f} lookups/us aggregate")
    print()
    _print_fleet_breakdown(result)
    if args.smoke:
        failures = []
        if not result.total_ns > 0:
            failures.append("non-positive fleet completion time")
        if sum(sim_.requests for sim_ in result.per_shard) != result.requests:
            failures.append("per-shard requests do not sum to the fleet total")
        for failure in failures:
            print(f"fleet smoke failure: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _cmd_fleet_serve(args: argparse.Namespace) -> int:
    from repro.fleet import serve_fleet

    sim = _fleet_simulation(args)
    config = sim._serve_config(
        args.qps, args.arrival, args.max_batch, args.max_wait_us * 1e3,
        args.seed, args.sla_ms * 1e6 if args.sla_ms is not None else None,
    )
    result = serve_fleet(sim.spec(), config, workers=args.workers)
    if args.json:
        print(result.to_json(indent=2))
        return 0
    latency = result.latency
    print(f"fleet         : {result.num_shards} shard(s) of {result.system}, "
          f"router {result.router}")
    print(f"offered       : {result.qps:,.0f} qps {args.arrival}, "
          f"achieved {result.achieved_qps:,.0f} qps over {result.requests} requests")
    print(f"latency       : p50 {latency.p50_ns:,.0f} ns, p95 {latency.p95_ns:,.0f} ns, "
          f"p99 {latency.p99_ns:,.0f} ns, p99.9 {latency.p999_ns:,.0f} ns")
    print(f"goodput       : {result.goodput_qps:,.0f} qps"
          + (f" ({result.sla_attainment:.1%} within SLA)" if result.sla_ns else ""))
    if args.smoke:
        failures = []
        if not latency.is_finite():
            failures.append("non-finite fleet latency percentile")
        if result.requests <= 0:
            failures.append("fleet served zero requests")
        for failure in failures:
            print(f"fleet smoke failure: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def _cmd_systems(args: argparse.Namespace) -> int:
    from repro.api.registry import system_factory

    for name in available_systems():
        factory = system_factory(name)
        doc = (factory.__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"{name:>16}  {summary}")
    return 0


# ---------------------------------------------------------------------------
# Parser
# ---------------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    raw = argparse.RawDescriptionHelpFormatter
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="PIFS-Rec reproduction: run simulations, sweeps, online serving "
        "sessions and the paper's figures.",
        epilog="Use 'python -m repro <command> --help' for per-command options and "
        "examples.  Also installed as the 'pifs-rec' console script.",
    )
    parser.add_argument(
        "--log-level",
        choices=["debug", "info", "warning", "error"],
        default=None,
        metavar="LEVEL",
        help="configure the 'repro' logger namespace and print diagnostics to "
        "stderr: debug | info | warning | error (default: logging stays off)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run = subparsers.add_parser(
        "run",
        help="run one closed-loop simulation session",
        description="Replay one SLS workload on one registered system and print the "
        "resulting latency, per-lookup cost and local/CXL row split.",
        epilog="examples:\n"
        "  python -m repro run pifs-rec --quick\n"
        "  python -m repro run pond --model RMC4 --batch-size 64 --engine vector\n"
        "  python -m repro run recnmp --distribution zipfian --json",
        formatter_class=raw,
    )
    run.add_argument("system", help="registered system name (list them with 'systems')")
    run.add_argument("--model", default="RMC1", metavar="RMC",
                     help="DLRM model from Table I: RMC1..RMC4 (default: RMC1)")
    run.add_argument("--batch-size", type=int, default=None, metavar="N",
                     help="queries per inference batch (default: the scale's setting)")
    run.add_argument("--num-batches", type=int, default=None, metavar="N",
                     help="number of batches replayed (default: the scale's setting)")
    run.add_argument("--distribution", default=None, metavar="NAME",
                     help="trace distribution: meta | zipfian | normal | uniform | random "
                     "(default: meta)")
    _add_machine_arguments(run)
    _add_scale_arguments(run)
    run.add_argument("--json", action="store_true", help="print the RunResult as JSON")
    run.set_defaults(func=_cmd_run)

    sweep = subparsers.add_parser(
        "sweep",
        help="run a declarative parameter sweep (cartesian grid)",
        description="Expand the repeatable axis flags into a cartesian grid, execute "
        "every point (in parallel by default, cached by config hash) and print an "
        "aligned table plus speedups against the first system axis value.",
        epilog="examples:\n"
        "  python -m repro sweep --system pond --system pifs-rec --batch-size 8 "
        "--batch-size 64 --quick\n"
        "  python -m repro sweep --model RMC1 --model RMC4 --engine vector --json",
        formatter_class=raw,
    )
    sweep.add_argument("--system", action="append", default=None, metavar="NAME",
                       help="system axis value (repeatable; default: every registered system)")
    sweep.add_argument("--model", action="append", default=None, metavar="RMC",
                       help="model axis value (repeatable)")
    sweep.add_argument("--batch-size", type=int, action="append", default=None, metavar="N",
                       help="batch-size axis value (repeatable)")
    sweep.add_argument("--distribution", action="append", default=None, metavar="NAME",
                       help="trace-distribution axis value (repeatable)")
    sweep.add_argument("--num-batches", type=int, default=None, metavar="N",
                       help="batches replayed at every grid point")
    _add_machine_arguments(sweep)
    _add_scale_arguments(sweep)
    sweep.add_argument("--serial", action="store_true",
                       help="evaluate the grid in-process instead of the worker pool "
                       "(results are identical either way)")
    sweep.add_argument("--jobs", type=int, default=None, metavar="N",
                       help="worker process count (default: one per grid point, capped "
                       "at the CPU count)")
    sweep.add_argument("--json", action="store_true", help="print the SweepResult as JSON")
    sweep.set_defaults(func=_cmd_sweep)

    serve = subparsers.add_parser(
        "serve",
        help="online open-loop serving with tail-latency SLA metrics",
        description="Serve the workload open-loop: requests arrive on a seeded "
        "arrival process at --qps, queue per host, are dynamically batched and "
        "serviced on the host thread lanes.  Reports latency percentiles "
        "(p50..p99.9), goodput, SLA attainment and queue depths per system.",
        epilog="examples:\n"
        "  python -m repro serve pifs-rec pond --qps 2e5 --sla-ms 5 --quick\n"
        "  python -m repro serve --all --smoke --qps 3e5 --sla-ms 1   # CI guard\n"
        "  python -m repro serve pifs-rec --find-max-qps --sla-ms 2 --quick",
        formatter_class=raw,
    )
    serve.add_argument("system", nargs="*", default=[],
                       help=f"systems to serve (default: {' '.join(DEFAULT_SERVE_SYSTEMS)})")
    serve.add_argument("--all", action="store_true", help="serve every registered system")
    serve.add_argument("--smoke", action="store_true",
                       help="CI guard: quick scale, keep going past failures, exit 1 on any")
    serve.add_argument("--qps", type=float, default=2e5, metavar="QPS",
                       help="offered load in requests/s (default: 2e5)")
    serve.add_argument("--arrival", default="poisson", metavar="NAME",
                       help="arrival process: constant | poisson | bursty | mmpp | diurnal "
                       "(default: poisson)")
    serve.add_argument("--sla-ms", type=float, default=None, metavar="MS",
                       help="latency SLA in milliseconds (enables SLA attainment)")
    serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                       help="dynamic batcher max batch size (default: 8)")
    serve.add_argument("--max-wait-us", type=float, default=100.0, metavar="US",
                       help="dynamic batcher max wait in microseconds (default: 100)")
    serve.add_argument("--seed", type=int, default=None, metavar="SEED",
                       help="arrival-process seed (default: the scale's seed)")
    serve.add_argument("--model", default="RMC1", metavar="RMC",
                       help="DLRM model: RMC1..RMC4 (default: RMC1)")
    serve.add_argument("--num-batches", type=int, default=None, metavar="N",
                       help="batches in the served workload")
    serve.add_argument("--find-max-qps", action="store_true",
                       help="binary-search the max sustainable QPS under --sla-ms")
    serve.add_argument("--qps-min", type=float, default=1e4, metavar="QPS",
                       help="lower QPS bound of --find-max-qps (default: 1e4)")
    serve.add_argument("--qps-max", type=float, default=2e6, metavar="QPS",
                       help="upper QPS bound of --find-max-qps (default: 2e6)")
    _add_machine_arguments(serve)
    _add_scale_arguments(serve)
    serve.add_argument("--json", action="store_true", help="print ServeResults as JSON")
    serve.set_defaults(func=_cmd_serve)

    compare = subparsers.add_parser(
        "compare",
        help="compare systems on one workload (normalized + speedups)",
        description="Run every (or the selected) registered system on one identical "
        "workload and print absolute latency, min-max normalized latency and the "
        "speedup over --baseline.",
        epilog="examples:\n"
        "  python -m repro compare --quick\n"
        "  python -m repro compare --system pond --system pifs-rec --model RMC4 "
        "--baseline pond --engine vector",
        formatter_class=raw,
    )
    compare.add_argument("--system", action="append", default=None, metavar="NAME",
                         help="system to include (repeatable; default: all registered)")
    compare.add_argument("--model", default="RMC4", metavar="RMC",
                         help="DLRM model: RMC1..RMC4 (default: RMC4)")
    compare.add_argument("--batch-size", type=int, default=None, metavar="N",
                         help="queries per inference batch")
    compare.add_argument("--baseline", default="pond", metavar="NAME",
                         help="system speedups are computed against (default: pond)")
    _add_machine_arguments(compare)
    _add_scale_arguments(compare)
    compare.add_argument("--serial", action="store_true",
                         help="evaluate in-process instead of the worker pool")
    compare.add_argument("--jobs", type=int, default=None, metavar="N",
                         help="worker process count")
    compare.add_argument("--json", action="store_true", help="print the SweepResult as JSON")
    compare.set_defaults(func=_cmd_compare)

    figures = subparsers.add_parser(
        "figures",
        help="regenerate every figure/table of the paper",
        description="Re-run the full evaluation pipeline (Fig 5-18 plus the tables) "
        "at the default or --quick scale, printing each figure's data series.",
        epilog="example:\n  python -m repro figures --quick --serial",
        formatter_class=raw,
    )
    _add_scale_arguments(figures)
    figures.add_argument("--serial", action="store_true", help="disable the process pool")
    figures.set_defaults(func=_cmd_figures)

    bench = subparsers.add_parser(
        "bench",
        help="run the performance benchmarks and record BENCH_*.json baselines",
        description="Run the perf benchmark suite (engine vectorization, fabric "
        "kernels, serve path, sweep scaling, workload build) under pytest.  "
        "Outside smoke mode every suite pins its speedup floors and "
        "records/updates the BENCH_*.json baseline files at the repository "
        "root.  Honors REPRO_BENCH_SMOKE=1 (same as --smoke): shorter runs, "
        "relaxed floors, no baselines written.",
        epilog="examples:\n"
        "  python -m repro bench                      # full run, updates BENCH_*.json\n"
        "  python -m repro bench --smoke              # CI guard\n"
        "  python -m repro bench --suite serve --suite sweep\n"
        "  python -m repro bench --all                # also the paper-figure suite",
        formatter_class=raw,
    )
    bench.add_argument(
        "--suite",
        action="append",
        choices=sorted(BENCH_SUITES),
        default=None,
        metavar="NAME",
        help="perf suite to run (repeatable): "
        + " | ".join(sorted(BENCH_SUITES))
        + " (default: every suite)",
    )
    bench.add_argument(
        "--all",
        action="store_true",
        help="run the entire benchmarks/ directory (adds the per-figure "
        "regeneration suites; takes minutes)",
    )
    bench.add_argument(
        "--smoke",
        action="store_true",
        help="smoke mode: sets REPRO_BENCH_SMOKE=1 (short runs, relaxed "
        "floors, baselines untouched)",
    )
    bench.set_defaults(func=_cmd_bench)

    scenario = subparsers.add_parser(
        "scenario",
        help="run the named-scenario catalog (workload mixes, drift, faults)",
        description="The scenario catalog composes workload, traffic and fault "
        "dimensions into named, deterministic, JSON-round-trippable situations "
        "(see docs/SCENARIOS.md).  'list' shows them, 'run' executes one or "
        "all, 'compare' sweeps one across systems and its declared axes.",
        epilog="examples:\n"
        "  python -m repro scenario list --verbose\n"
        "  python -m repro scenario run fault-slow-link --quick\n"
        "  python -m repro scenario run --all --smoke          # CI guard\n"
        "  python -m repro scenario run drift-rotation --serve --engine vector\n"
        "  python -m repro scenario compare tenant-mix --quick\n"
        "  python -m repro scenario run paper-baseline --export-trace trace.npz",
        formatter_class=raw,
    )
    scenario_commands = scenario.add_subparsers(dest="scenario_command", required=True)

    scenario_list = scenario_commands.add_parser(
        "list",
        help="list every registered scenario with its dimensions",
        description="One line per scenario: name plus a compact dimension "
        "summary (model, workload source, machine, faults, traffic, axes).",
        epilog="example:\n  python -m repro scenario list --verbose",
        formatter_class=raw,
    )
    scenario_list.add_argument("--verbose", action="store_true",
                               help="also print each scenario's description")
    scenario_list.add_argument("--json", action="store_true",
                               help="print the full scenario definitions as JSON")
    scenario_list.set_defaults(func=_cmd_scenario_list)

    scenario_run = scenario_commands.add_parser(
        "run",
        help="run one or more scenarios (closed-loop; --serve adds open-loop)",
        description="Execute named scenarios deterministically.  Results are "
        "bit-identical between --engine scalar and --engine vector; --smoke is "
        "the CI guard (quick scale, keep going past failures, exit 1 on any).",
        epilog="examples:\n"
        "  python -m repro scenario run fault-buffer-squeeze --quick\n"
        "  python -m repro scenario run tenant-mix --system pond --engine vector\n"
        "  python -m repro scenario run --all --smoke",
        formatter_class=raw,
    )
    scenario_run.add_argument("name", nargs="*", default=[],
                              help="scenario name(s) (list them with 'scenario list')")
    scenario_run.add_argument("--all", action="store_true",
                              help="run every registered scenario")
    scenario_run.add_argument("--smoke", action="store_true",
                              help="CI guard: quick scale, keep going past failures, "
                              "exit 1 on any")
    scenario_run.add_argument("--system", default=None, metavar="NAME",
                              help="override the scenario's system under test")
    scenario_run.add_argument("--engine", choices=["scalar", "vector", "packet"],
                              default=None,
                              help="replay fidelity (scenario results are bit-identical "
                              "between scalar, vector and uncongested packet)")
    scenario_run.add_argument("--serve", action="store_true",
                              help="also serve the scenario open-loop under its "
                              "traffic spec (tail-latency metrics)")
    scenario_run.add_argument("--export-trace", default=None, metavar="PATH",
                              help="export the scenario's workload trace as a "
                              "lossless .npz archive instead of running it")
    scenario_run.add_argument("--json", action="store_true",
                              help="print scenario + result payloads as JSON")
    _add_scale_arguments(scenario_run)
    _add_stream_argument(scenario_run)
    scenario_run.set_defaults(func=_cmd_scenario_run)

    scenario_compare = scenario_commands.add_parser(
        "compare",
        help="sweep one scenario across systems, or several side by side",
        description="With one scenario: expand its declared axes (pooling, "
        "tables, ...) times the selected systems into a grid, run it on the "
        "sweep engine and print latencies plus speedups against the first "
        "system.  With several scenarios: run each on the selected system(s) "
        "and print them side by side, with the fault/traffic/packet parameter "
        "values that distinguish them in the table.",
        epilog="examples:\n"
        "  python -m repro scenario compare pooling-scaling --quick\n"
        "  python -m repro scenario compare fault-slow-link --system pond "
        "--system pifs-rec --engine vector\n"
        "  python -m repro scenario compare paper-baseline flash-crowd-incast "
        "hot-table-nmp-storm --quick",
        formatter_class=raw,
    )
    scenario_compare.add_argument("name", nargs="+",
                                  help="scenario(s) to compare (see 'scenario list')")
    scenario_compare.add_argument("--system", action="append", default=None,
                                  metavar="NAME",
                                  help="system to include (repeatable; default: "
                                  + " ".join(DEFAULT_COMPARE_SYSTEMS) + ")")
    scenario_compare.add_argument("--engine", choices=["scalar", "vector", "packet"],
                                  default=None,
                                  help="replay fidelity for every grid point")
    scenario_compare.add_argument("--serial", action="store_true",
                                  help="evaluate in-process instead of the worker pool")
    scenario_compare.add_argument("--jobs", type=int, default=None, metavar="N",
                                  help="worker process count")
    scenario_compare.add_argument("--json", action="store_true",
                                  help="print the SweepResult as JSON")
    _add_scale_arguments(scenario_compare)
    _add_stream_argument(scenario_compare)
    scenario_compare.set_defaults(func=_cmd_scenario_compare)

    trace = subparsers.add_parser(
        "trace",
        help="run an observed session and export a Chrome/Perfetto trace",
        description="Attach a TraceRecorder (repro.obs) to one session — "
        "closed-loop, open-loop serving, or a named scenario — and export "
        "the captured spans/counters as Chrome trace_event JSON (--out, "
        "loadable in ui.perfetto.dev or chrome://tracing) plus flat metrics "
        "(--metrics-out, .json or .csv).  Recording never perturbs results: "
        "observed runs stay bit-identical to unobserved ones.",
        epilog="examples:\n"
        "  python -m repro trace run pifs-rec --engine vector --quick --out trace.json\n"
        "  python -m repro trace serve pond --qps 2e5 --out serve.json "
        "--metrics-out serve.csv\n"
        "  python -m repro trace scenario hot-table-nmp-storm --out trace.json\n"
        "  python -m repro trace run pond --smoke            # CI guard",
        formatter_class=raw,
    )
    trace_commands = trace.add_subparsers(dest="trace_command", required=True)

    def _add_trace_outputs(subparser: argparse.ArgumentParser) -> None:
        subparser.add_argument("--out", default=None, metavar="PATH",
                               help="write the Chrome/Perfetto trace_event JSON here")
        subparser.add_argument("--metrics-out", default=None, metavar="PATH",
                               help="write the flat metrics here (.csv for CSV, "
                               "anything else for JSON)")
        subparser.add_argument("--smoke", action="store_true",
                               help="CI guard: quick scale; exit 1 if the emitted "
                               "trace fails trace_event schema validation")

    trace_run = trace_commands.add_parser(
        "run",
        help="observe one closed-loop session",
        description="Run one closed-loop session with a TraceRecorder attached: "
        "session/request/maintenance spans, kernel counters, packet-tier "
        "bridging (with --engine packet) and wall-clock phase attribution.",
        epilog="example:\n"
        "  python -m repro trace run pifs-rec --engine vector --quick --out trace.json",
        formatter_class=raw,
    )
    trace_run.add_argument("system", help="registered system name")
    trace_run.add_argument("--model", default="RMC1", metavar="RMC",
                           help="DLRM model: RMC1..RMC4 (default: RMC1)")
    trace_run.add_argument("--batch-size", type=int, default=None, metavar="N",
                           help="queries per inference batch")
    trace_run.add_argument("--num-batches", type=int, default=None, metavar="N",
                           help="number of batches replayed")
    _add_machine_arguments(trace_run)
    _add_scale_arguments(trace_run)
    _add_trace_outputs(trace_run)
    trace_run.set_defaults(func=_cmd_trace_run)

    trace_serve = trace_commands.add_parser(
        "serve",
        help="observe one open-loop serving session",
        description="Serve one system open-loop with a TraceRecorder attached: "
        "admission/batch/wait spans per host lane, queue-depth counters, and "
        "the engine's per-request spans on the same timeline.",
        epilog="example:\n"
        "  python -m repro trace serve pond --qps 2e5 --arrival bursty --out serve.json",
        formatter_class=raw,
    )
    trace_serve.add_argument("system", help="registered system name")
    trace_serve.add_argument("--model", default="RMC1", metavar="RMC",
                             help="DLRM model: RMC1..RMC4 (default: RMC1)")
    trace_serve.add_argument("--qps", type=float, default=2e5, metavar="QPS",
                             help="offered load in requests/s (default: 2e5)")
    trace_serve.add_argument("--arrival", default="poisson", metavar="NAME",
                             help="arrival process: constant | poisson | bursty | "
                             "mmpp | diurnal (default: poisson)")
    trace_serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                             help="dynamic batcher max batch size (default: 8)")
    trace_serve.add_argument("--max-wait-us", type=float, default=100.0, metavar="US",
                             help="dynamic batcher max wait in microseconds (default: 100)")
    trace_serve.add_argument("--seed", type=int, default=None, metavar="SEED",
                             help="arrival-process seed (default: the scale's seed)")
    trace_serve.add_argument("--num-batches", type=int, default=None, metavar="N",
                             help="batches in the served workload")
    _add_machine_arguments(trace_serve)
    _add_scale_arguments(trace_serve)
    _add_trace_outputs(trace_serve)
    trace_serve.set_defaults(func=_cmd_trace_serve)

    trace_scenario = trace_commands.add_parser(
        "scenario",
        help="observe a named scenario (closed-loop + its traffic spec)",
        description="Run a catalog scenario closed-loop AND serve it open-loop "
        "under its traffic spec, both on one shared TraceRecorder — the "
        "exported timeline shows serve batching, engine/kernel spans and "
        "packet-queue backpressure together.  --no-serve keeps it closed-loop "
        "only.",
        epilog="example:\n"
        "  python -m repro trace scenario hot-table-nmp-storm --out trace.json",
        formatter_class=raw,
    )
    trace_scenario.add_argument("name",
                                help="scenario name (list them with 'scenario list')")
    trace_scenario.add_argument("--system", default=None, metavar="NAME",
                                help="override the scenario's system under test")
    trace_scenario.add_argument("--engine", choices=["scalar", "vector", "packet"],
                                default=None, help="replay fidelity override")
    trace_scenario.add_argument("--no-serve", action="store_true",
                                help="skip the open-loop serving pass")
    _add_scale_arguments(trace_scenario)
    _add_stream_argument(trace_scenario)
    _add_trace_outputs(trace_scenario)
    trace_scenario.set_defaults(func=_cmd_trace_scenario)

    fleet = subparsers.add_parser(
        "fleet",
        help="simulate a sharded fleet of systems behind a request router",
        description="Compose N per-rack systems (repro.fleet) — each with its "
        "own fabric and its shard of the partitioned table space — behind a "
        "request router (hash | power-of-two-choices | table-affinity) and "
        "replay or serve one workload across them.  Shards execute on the "
        "persistent worker pool with --workers; results are identical for "
        "any worker count, and a 1-shard fleet is bit-identical to the "
        "plain single-system run.",
        epilog="examples:\n"
        "  python -m repro fleet run --shards 8 --router table-affinity --quick\n"
        "  python -m repro fleet run --shards 4 --router hash --stream --workers 4\n"
        "  python -m repro fleet serve --shards 4 --qps 4e5 --sla-ms 5 --quick\n"
        "  python -m repro fleet run --smoke                  # CI guard",
        formatter_class=raw,
    )
    fleet_commands = fleet.add_subparsers(dest="fleet_command", required=True)

    def _add_fleet_arguments(subparser: argparse.ArgumentParser) -> None:
        from repro.fleet import ROUTER_POLICIES

        subparser.add_argument("system", nargs="?", default="pifs-rec",
                               help="registered system per shard (default: pifs-rec)")
        subparser.add_argument("--shards", type=int, default=4, metavar="N",
                               help="per-rack systems in the fleet (default: 4)")
        subparser.add_argument("--router", choices=list(ROUTER_POLICIES),
                               default="table-affinity",
                               help="request routing policy (default: table-affinity)")
        subparser.add_argument("--fleet-seed", type=int, default=0, metavar="SEED",
                               help="router hashing/tie-break seed (default: 0)")
        subparser.add_argument("--workers", type=int, default=0, metavar="N",
                               help="worker processes executing shards (default: 0 = "
                               "in-process serial; results are identical either way)")
        subparser.add_argument("--model", default="RMC1", metavar="RMC",
                               help="DLRM model: RMC1..RMC4 (default: RMC1)")
        subparser.add_argument("--num-batches", type=int, default=None, metavar="N",
                               help="batches in the shared workload")
        subparser.add_argument("--smoke", action="store_true",
                               help="CI guard: quick scale plus fleet sanity checks, "
                               "exit 1 on any failure")
        _add_machine_arguments(subparser)
        _add_scale_arguments(subparser)
        subparser.add_argument("--json", action="store_true",
                               help="print the fleet result as JSON")

    fleet_run = fleet_commands.add_parser(
        "run",
        help="replay one workload closed-loop across the fleet",
        description="Partition the workload across the shards with the selected "
        "router and replay every shard; prints the combined fleet result "
        "(completion = slowest shard, counters summed) and the per-shard "
        "breakdown.",
        epilog="examples:\n"
        "  python -m repro fleet run --shards 8 --quick\n"
        "  python -m repro fleet run --shards 4 --router hash --stream --workers 4",
        formatter_class=raw,
    )
    _add_fleet_arguments(fleet_run)
    fleet_run.add_argument("--batch-size", type=int, default=None, metavar="N",
                           help="queries per inference batch")
    fleet_run.add_argument("--distribution", default=None, metavar="NAME",
                           help="trace distribution: meta | zipfian | normal | "
                           "uniform | random (default: meta)")
    fleet_run.set_defaults(func=_cmd_fleet_run)

    fleet_serve = fleet_commands.add_parser(
        "serve",
        help="serve one workload open-loop across the fleet",
        description="Serve every shard open-loop at the offered QPS (each rack "
        "sees the arrivals for its router-assigned requests) and report "
        "fleet-level tail latency over the pooled per-request samples: "
        "p50..p99.9, achieved QPS, goodput and SLA attainment.",
        epilog="examples:\n"
        "  python -m repro fleet serve --shards 4 --qps 4e5 --sla-ms 5 --quick\n"
        "  python -m repro fleet serve --router power-of-two-choices --smoke",
        formatter_class=raw,
    )
    _add_fleet_arguments(fleet_serve)
    fleet_serve.add_argument("--qps", type=float, default=2e5, metavar="QPS",
                             help="offered load in requests/s (default: 2e5)")
    fleet_serve.add_argument("--arrival", default="poisson", metavar="NAME",
                             help="arrival process: constant | poisson | bursty | "
                             "mmpp | diurnal (default: poisson)")
    fleet_serve.add_argument("--sla-ms", type=float, default=None, metavar="MS",
                             help="latency SLA in milliseconds (enables SLA attainment)")
    fleet_serve.add_argument("--max-batch", type=int, default=8, metavar="N",
                             help="dynamic batcher max batch size (default: 8)")
    fleet_serve.add_argument("--max-wait-us", type=float, default=100.0, metavar="US",
                             help="dynamic batcher max wait in microseconds (default: 100)")
    fleet_serve.add_argument("--seed", type=int, default=None, metavar="SEED",
                             help="arrival-process seed (default: the scale's seed)")
    fleet_serve.set_defaults(func=_cmd_fleet_serve)

    systems = subparsers.add_parser(
        "systems",
        help="list the registered systems",
        description="List every system registered with @register_system (built-ins "
        "and plugins) together with the first line of its docstring.  These names "
        "are what 'run', 'sweep', 'serve' and 'compare' accept.",
        epilog="example:\n  python -m repro systems",
        formatter_class=raw,
    )
    systems.set_defaults(func=_cmd_systems)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.log_level is not None:
        from repro.obs.log import setup_logging

        setup_logging(args.log_level)
    try:
        return args.func(args)
    except (UnknownSystemError, UnknownScenarioError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())


__all__ = ["build_parser", "main"]
