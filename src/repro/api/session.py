"""Fluent simulation sessions.

:class:`Simulation` is the single entry point that owns the whole
config-derivation → system-construction → workload-building pipeline the
experiment drivers, examples and CLI used to hand-wire::

    from repro.api import Simulation

    result = Simulation("pifs-rec").model("RMC4").hosts(4).batch_size(64).run()

A session compiles to an immutable, picklable :class:`RunSpec`;
:func:`execute_spec` turns a spec into a :class:`RunResult` and is the unit
of work the parallel sweep engine ships to worker processes.  Results are
cached by a stable hash of the spec (:func:`spec_key`), so repeated runs of
an identical configuration are free.
"""

from __future__ import annotations

import functools
import hashlib
import inspect
import os
import pickle
import types
from dataclasses import dataclass, fields, replace
from typing import Any, Callable, Dict, Optional, Sequence, Tuple, Union

from repro.api.registry import SystemFactory, UnknownSystemError, system_factory
from repro.api.results import RunResult
from repro.config import DEFAULT_SYSTEM, ModelConfig, SystemConfig
from repro.experiments.common import (
    DEFAULT_SCALE,
    QUICK_SCALE,
    EvaluationScale,
    evaluation_system,
    evaluation_workload,
)

#: A config transform rewrites the derived :class:`SystemConfig` (e.g. to
#: swap the on-switch buffer policy).  Must be picklable (module-level
#: functions or callable class instances) to work with parallel sweeps.
ConfigTransform = Callable[[SystemConfig], SystemConfig]

SystemLike = Union[str, SystemFactory]


@dataclass(frozen=True)
class RunSpec:
    """Immutable, picklable description of one simulation run."""

    system: SystemLike = "pifs-rec"
    model: Union[str, ModelConfig] = "RMC1"
    scale: EvaluationScale = DEFAULT_SCALE
    distribution: Optional[str] = None
    batch_size: Optional[int] = None
    num_batches: Optional[int] = None
    pooling_factor: Optional[int] = None
    num_hosts: int = 1
    num_fabric_switches: int = 1
    num_cxl_devices: Optional[int] = None
    local_capacity_bytes: Optional[int] = None
    base_config: SystemConfig = DEFAULT_SYSTEM
    config_transforms: Tuple[ConfigTransform, ...] = ()
    system_options: Tuple[Tuple[str, Any], ...] = ()
    engine: str = "scalar"
    #: Optional workload provider (``.build(spec) -> SLSWorkload``): trace
    #: files, drifting popularity, multi-tenant mixes — see
    #: :mod:`repro.scenarios.workloads`.  ``None`` uses the stationary
    #: synthetic generators.
    workload_provider: Optional[Any] = None
    #: Fault/degradation specs applied at every session setup (see
    #: :mod:`repro.scenarios.faults`); both engines see them identically.
    faults: Tuple[Any, ...] = ()
    #: Packet-tier configuration (:class:`~repro.net.fabric.PacketConfig`);
    #: only consulted when ``engine == "packet"``.  ``None`` is the
    #: uncongested default (unbounded port buffers).
    packet: Optional[Any] = None
    #: Out-of-core streaming: build the workload as a
    #: :class:`~repro.traces.workload.StreamingWorkload` (requests are
    #: materialized window by window; RSS stays O(window) instead of
    #: O(trace)).  The simulated numbers are bit-identical either way.
    stream: bool = False
    #: Fleet execution: partition the workload across this many per-rack
    #: systems behind ``fleet_router`` (see :mod:`repro.fleet`).  ``0``
    #: is the plain single-system run; ``1`` is a one-rack fleet, which
    #: replays bit-identically to the single-system run.
    fleet_shards: int = 0
    #: Request-routing policy in front of the fleet's shards (one of
    #: :data:`repro.fleet.router.ROUTER_POLICIES`).
    fleet_router: str = "table-affinity"
    #: Seed for the router's hashing/tie-breaking decisions.
    fleet_seed: int = 0


def system_label(system: SystemLike) -> str:
    """Display label of a system axis value (name string or factory)."""
    if isinstance(system, str):
        return system
    label = getattr(system, "label", None)
    if label:
        return str(label)
    name = getattr(system, "name", None)
    if isinstance(name, str) and name:
        return name
    return getattr(system, "__name__", repr(system))


def model_label(model: Union[str, ModelConfig]) -> str:
    return model if isinstance(model, str) else model.name


#: Object ids currently being tokenized — breaks reference cycles (e.g. a
#: method using ``super()`` holds a ``__class__`` closure cell pointing back
#: at the class being tokenized).
_TOKEN_STACK: set = set()


def _stable_token(value: Any) -> str:
    """A deterministic string for hashing spec fields.

    Never falls back to the default ``repr`` of an arbitrary object: that
    embeds a memory address, which is both unstable across processes and —
    worse — reusable after garbage collection, so two *different* configs
    could silently share a cache key.  Objects are tokenized structurally
    (type plus recursively tokenized state) instead.
    """
    marker = id(value)
    if marker in _TOKEN_STACK:
        return f"<cycle:{type(value).__qualname__}>"
    _TOKEN_STACK.add(marker)
    try:
        return _stable_token_inner(value)
    finally:
        _TOKEN_STACK.discard(marker)


def _stable_token_inner(value: Any) -> str:
    if isinstance(value, functools.partial):
        inner = ", ".join(
            [_stable_token(value.func)]
            + [_stable_token(a) for a in value.args]
            + [f"{k}={_stable_token(v)}" for k, v in sorted(value.keywords.items())]
        )
        return f"partial({inner})"
    if isinstance(value, (tuple, list)):
        return "(" + ", ".join(_stable_token(item) for item in value) + ")"
    if isinstance(value, dict):
        # Sort by tokenized key so unorderable keys and dict insertion order
        # cannot change the hash.
        items = sorted((_stable_token(k), _stable_token(v)) for k, v in value.items())
        return "{" + ", ".join(f"{k}: {v}" for k, v in items) + "}"
    if isinstance(value, (set, frozenset)):
        return "{" + ", ".join(sorted(_stable_token(item) for item in value)) + "}"
    if value is None or isinstance(value, (bool, int, float, complex, str, bytes)):
        return repr(value)
    # Objects with external state (e.g. a file-backed workload provider)
    # expose cache_token() so their cache identity tracks the state the
    # fields alone cannot see — an overwritten trace file must not be
    # served stale from the workload/result caches.
    token_fn = getattr(value, "cache_token", None)
    if callable(token_fn):
        return _stable_token(token_fn())
    if inspect.isclass(value):
        return _class_token(value)
    if inspect.isroutine(value):
        # Qualname alone is not enough: two lambdas/closures from the same
        # factory share it.  Fold in the bound receiver, closure cells,
        # argument defaults and a body hash so distinct behavior hashes
        # distinctly.
        token = f"{getattr(value, '__module__', '?')}.{value.__qualname__}"
        receiver = getattr(value, "__self__", None)
        if receiver is not None:
            token += f"<{_stable_token(receiver)}>"
        closure = getattr(value, "__closure__", None)
        if closure:
            token += "[" + ", ".join(_stable_token(cell.cell_contents) for cell in closure) + "]"
        defaults = getattr(value, "__defaults__", None)
        if defaults:
            token += "(" + ", ".join(_stable_token(item) for item in defaults) + ")"
        code = getattr(value, "__code__", None)
        if code is not None:
            token += "#" + _code_token(code)
        return token
    cls = type(value)
    state = getattr(value, "__dict__", None)
    if state is None:
        state = {name: getattr(value, name) for name in getattr(cls, "__slots__", ()) if hasattr(value, name)}
    if state:
        items = ", ".join(f"{key}={_stable_token(item)}" for key, item in sorted(state.items()))
        return f"{cls.__module__}.{cls.__qualname__}({items})"
    # No introspectable state (extension types like numpy arrays): hash the
    # pickled content.  An object that cannot be pickled either has no
    # stable token — raise so callers bypass the cache for this spec rather
    # than risk two different configs sharing a key.
    try:
        payload = pickle.dumps(value, protocol=4)
    except Exception as error:
        raise TypeError(f"cannot derive a stable cache token for {value!r}") from error
    return f"{cls.__module__}.{cls.__qualname__}~{hashlib.sha256(payload).hexdigest()[:12]}"


def _class_token(cls: type) -> str:
    """Token for a class: qualified name plus a hash of its own behavior.

    Qualname alone is not enough — a notebook cell or parametrized factory
    can re-define a class of the same name with different behavior (e.g. a
    method closing over a parameter), and a name-only token would serve the
    old class's cached results for the new one.
    """
    parts = [
        f"{cls.__module__}.{cls.__qualname__}",
        "(" + ", ".join(f"{base.__module__}.{base.__qualname__}" for base in cls.__bases__) + ")",
    ]
    for attr_name in sorted(vars(cls)):
        if attr_name.startswith("__") and attr_name not in ("__init__", "__call__"):
            continue
        attr = inspect.getattr_static(cls, attr_name)
        attr = getattr(attr, "__func__", attr)  # unwrap static/classmethods
        try:
            if inspect.isroutine(attr):
                parts.append(f"{attr_name}:{_stable_token(attr)}")
            elif attr is None or isinstance(attr, (bool, int, float, str, bytes, tuple)):
                parts.append(f"{attr_name}={attr!r}")
        except TypeError:
            continue  # untokenizable attribute: skip rather than fail the class
    digest = hashlib.sha256("|".join(parts).encode()).hexdigest()[:12]
    return f"{cls.__module__}.{cls.__qualname__}#{digest}"


def _code_token(code: types.CodeType) -> str:
    """Hash a code object's behavior: bytecode, constants and names.

    Bytecode alone is not enough — constants are referenced by index, so two
    lambdas differing only in a literal share identical ``co_code``.
    """
    consts = ", ".join(
        _code_token(const) if isinstance(const, types.CodeType) else _stable_token(const)
        for const in code.co_consts
    )
    payload = "|".join((code.co_code.hex(), consts, ",".join(code.co_names)))
    return hashlib.sha256(payload.encode()).hexdigest()[:12]


def _system_token(system: SystemLike) -> str:
    """Token for the spec's system field.

    Names are resolved to their registered factory so (a) a ``replace=True``
    re-registration changes the cache key instead of silently serving the
    previous factory's cached results, and (b) ``Simulation("pond")`` and
    ``Simulation(PondSystem)`` share cached work.  Unknown names fall back
    to the raw string — execution will raise the proper error.
    """
    if isinstance(system, str):
        try:
            return _stable_token(system_factory(system))
        except UnknownSystemError:
            return repr(system)
    return _stable_token(system)


def _cache_view(spec: RunSpec) -> RunSpec:
    """Resolve defaulted fields so semantically equal specs hash equally.

    ``distribution=None`` runs the same workload as ``distribution="meta"``
    and ``batch_size=None`` the same as the scale's default — normalizing
    before hashing lets e.g. fig12b's meta column hit fig12a's cache.
    """
    scale = spec.scale
    return replace(
        spec,
        distribution=spec.distribution or "meta",
        batch_size=scale.batch_size if spec.batch_size is None else spec.batch_size,
        num_batches=scale.num_batches if spec.num_batches is None else spec.num_batches,
        pooling_factor=(
            scale.pooling_factor if spec.pooling_factor is None else spec.pooling_factor
        ),
        num_cxl_devices=(
            scale.num_cxl_devices if spec.num_cxl_devices is None else spec.num_cxl_devices
        ),
        local_capacity_bytes=(
            scale.local_capacity_bytes()
            if spec.local_capacity_bytes is None
            else spec.local_capacity_bytes
        ),
    )


def spec_key(spec: RunSpec) -> str:
    """Stable content hash of a :class:`RunSpec` (the result-cache key).

    Raises :class:`TypeError` when the spec carries an object no stable
    token can be derived for; use :func:`safe_spec_key` to bypass the cache
    in that case.
    """
    spec = _cache_view(spec)
    tokens = []
    for spec_field in fields(RunSpec):
        value = getattr(spec, spec_field.name)
        token = _system_token(value) if spec_field.name == "system" else _stable_token(value)
        tokens.append(f"{spec_field.name}={token}")
    return hashlib.sha256("|".join(tokens).encode()).hexdigest()[:16]


def safe_spec_key(spec: RunSpec) -> Optional[str]:
    """:func:`spec_key`, or ``None`` when the spec is not stably hashable."""
    try:
        return spec_key(spec)
    except TypeError:
        return None


def build_system_config(spec: RunSpec) -> SystemConfig:
    """Derive the :class:`SystemConfig` for a spec."""
    config = evaluation_system(
        spec.scale,
        num_cxl_devices=spec.num_cxl_devices,
        num_fabric_switches=spec.num_fabric_switches,
        num_hosts=spec.num_hosts,
        local_capacity_bytes=spec.local_capacity_bytes,
        base=spec.base_config,
    )
    for transform in spec.config_transforms:
        config = transform(config)
    return config


def workload_key(spec: RunSpec) -> Optional[str]:
    """Hash of only the workload-determining spec fields (or ``None``).

    Two specs with equal keys replay the identical seeded workload — the
    workload cache and the sweep engine's chunked scheduling (grid points
    sharing a workload are executed by the same worker) both key on it.
    """
    view = _cache_view(spec)
    parts = (
        view.model,
        view.scale,
        view.distribution,
        view.batch_size,
        view.num_batches,
        view.pooling_factor,
        view.num_hosts,
        view.workload_provider,
        # A streaming workload is a different container type (lazy windows
        # vs. a materialized request list); the caches must not hand one
        # out where the other was built.
        view.stream,
    )
    try:
        return hashlib.sha256(_stable_token(parts).encode()).hexdigest()[:16]
    except TypeError:
        return None


#: Backwards-compatible private alias (pre-existing internal name).
_workload_key = workload_key


def build_workload(spec: RunSpec):
    """Build (or reuse) the seeded SLS workload for a spec.

    Workloads are deterministic functions of a few spec fields and are
    read-only during simulation (the seed drivers shared one workload
    object across systems), so grid points differing only in machine or
    system configuration share a single build instead of regenerating an
    identical trace per run.
    """
    key = workload_key(spec)
    if key is not None:
        hit = _WORKLOAD_CACHE.get(key)
        if hit is not None:
            return hit
    if spec.workload_provider is not None:
        # Providers honor ``spec.stream`` themselves where it applies
        # (TraceFileWorkload streams its file; generators that must
        # materialize — drift, multi-tenant — build eagerly regardless).
        workload = spec.workload_provider.build(spec)
    else:
        workload = evaluation_workload(
            spec.model,
            spec.scale,
            distribution=spec.distribution or "meta",
            batch_size=spec.batch_size,
            num_hosts=spec.num_hosts,
            num_batches=spec.num_batches,
            pooling_factor=spec.pooling_factor,
            streaming=spec.stream,
        )
    if key is not None:
        seed_workload_cache(key, workload)
    return workload


def cached_workload(key: Optional[str]):
    """The workload cached under ``key``, or ``None``."""
    if not key:
        return None
    return _WORKLOAD_CACHE.get(key)


def seed_workload_cache(key: str, workload) -> None:
    """Install a pre-built workload under its :func:`workload_key`.

    The sweep engine ships parent-built workloads into its persistent
    workers with the chunk they belong to, so no worker ever re-derives a
    trace the parent (or an earlier sweep) already built.
    """
    _WORKLOAD_CACHE[key] = workload
    while len(_WORKLOAD_CACHE) > _WORKLOAD_CACHE_MAX:
        _WORKLOAD_CACHE.pop(next(iter(_WORKLOAD_CACHE)))


def execute_chunk(
    tasks: Sequence[Tuple[RunSpec, str]],
    shared_workload_key: Optional[str] = None,
    shared_workload: Any = None,
    record: bool = False,
) -> Any:
    """Execute a same-workload chunk of specs in one worker round trip.

    Module-level and picklable (the unit the persistent sweep pool ships).
    When the parent attaches the chunk's shared workload, it is installed
    into the worker's cache first so every spec in the chunk reuses it.

    With ``record=True`` a worker-local :class:`TraceRecorder` observes the
    chunk and the return value becomes ``{"results": [...], "obs":
    snapshot, "pid": <worker pid>}`` — the parent folds the snapshot into
    its own recorder with worker attribution
    (:meth:`TraceRecorder.merge <repro.obs.recorder.TraceRecorder.merge>`).
    """
    if shared_workload_key and shared_workload is not None:
        seed_workload_cache(shared_workload_key, shared_workload)
    if not record:
        return [execute_spec(spec, key) for spec, key in tasks]
    from repro.obs.recorder import TraceRecorder

    recorder = TraceRecorder(label=f"chunk-pid{os.getpid()}")
    with recorder.phase("sweep.chunk"):
        results = [execute_spec(spec, key, recorder=recorder) for spec, key in tasks]
    return {"results": results, "obs": recorder.snapshot(), "pid": os.getpid()}


def build_system(spec: RunSpec):
    """Instantiate the (configured) system under evaluation for a spec."""
    factory = spec.system if callable(spec.system) else system_factory(spec.system)
    config = build_system_config(spec)
    options = dict(spec.system_options)
    system = factory(config, **options) if options else factory(config)
    if spec.engine != "scalar":
        # Third-party factories may return duck-typed systems without the
        # engine knob; only SLSSystem descendants know how to switch.
        set_engine = getattr(system, "set_engine", None)
        if set_engine is not None:
            set_engine(spec.engine)
    if spec.faults:
        set_mutators = getattr(system, "set_session_mutators", None)
        if set_mutators is None:
            raise TypeError(
                f"system {system_label(spec.system)!r} does not support session "
                "mutators; fault injection needs an SLSSystem descendant"
            )
        set_mutators(tuple(fault.apply for fault in spec.faults))
    if spec.packet is not None:
        set_packet = getattr(system, "set_packet_config", None)
        if set_packet is None:
            raise TypeError(
                f"system {system_label(spec.system)!r} does not support the "
                "packet tier; packet fidelity needs an SLSSystem descendant"
            )
        set_packet(spec.packet)
    return system


def spec_params(spec: RunSpec) -> Dict[str, Any]:
    """JSON-safe coordinate dict recorded on the :class:`RunResult`."""
    params: Dict[str, Any] = {
        "system": system_label(spec.system),
        "model": model_label(spec.model),
        "batch_size": spec.scale.batch_size if spec.batch_size is None else spec.batch_size,
        "distribution": spec.distribution or "meta",
        "hosts": spec.num_hosts,
        "switches": spec.num_fabric_switches,
        "devices": (
            spec.scale.num_cxl_devices if spec.num_cxl_devices is None else spec.num_cxl_devices
        ),
    }
    if spec.local_capacity_bytes is not None:
        params["local_capacity_bytes"] = spec.local_capacity_bytes
    if spec.engine != "scalar":
        params["engine"] = spec.engine
    if spec.stream:
        params["stream"] = True
    if spec.workload_provider is not None:
        params["workload"] = getattr(
            spec.workload_provider, "label", type(spec.workload_provider).__name__
        )
    if spec.faults:
        params["faults"] = [
            getattr(fault, "kind", type(fault).__name__) for fault in spec.faults
        ]
    if spec.packet is not None:
        params["packet"] = spec.packet.to_dict()
    if spec.fleet_shards:
        params["shards"] = spec.fleet_shards
        params["router"] = spec.fleet_router
    return params


def execute_serve_spec(
    spec: RunSpec, config: "ServeConfig", recorder: Optional[Any] = None
) -> "ServeResult":
    """Run one open-loop serving session for a spec (module-level, picklable).

    The serving counterpart of :func:`execute_spec`: builds the system and
    the seeded workload, then drives the system through the
    :mod:`repro.serve` loop instead of the closed-loop replay.  Serving
    results are not cached — the metrics depend on the arrival seed and QPS
    in addition to the spec, and sessions are cheap relative to sweeps.
    ``recorder`` installs an observability recorder on the system for the
    session (observe-only; the metrics are unchanged).
    """
    from repro.serve.server import serve as _serve

    if spec.fleet_shards:
        # Fleet sessions serve every shard and pool the samples; shards
        # run serially here — execute_serve_spec itself may already be
        # inside a (daemonic) sweep worker, which cannot nest pools.
        from repro.fleet.executor import serve_fleet

        return serve_fleet(spec, config, workers=0, recorder=recorder)
    if recorder is None:
        system = build_system(spec)
        workload = build_workload(spec)
        return _serve(system, workload, config)
    with recorder.phase("system.build"):
        system = build_system(spec)
    with recorder.phase("workload.build"):
        workload = build_workload(spec)
    set_recorder = getattr(system, "set_recorder", None)
    if set_recorder is not None:
        set_recorder(recorder)
    return _serve(system, workload, config)


class ServeEvaluator:
    """Picklable ``qps -> ServeResult`` callable used by the SLA sweep.

    Sweep probes only read the summary statistics, so the per-request
    record list is dropped before the result crosses a process boundary —
    it scales with the workload and would otherwise be pickled back from
    every parallel grid evaluation.
    """

    def __init__(self, spec: RunSpec, config: "ServeConfig") -> None:
        self.spec = spec
        self.config = config

    def __call__(self, qps: float) -> "ServeResult":
        result = execute_serve_spec(self.spec, replace(self.config, qps=float(qps)))
        result.records = None
        return result


def execute_spec(
    spec: RunSpec, key: Optional[str] = None, recorder: Optional[Any] = None
) -> RunResult:
    """Run one spec end-to-end (workload build → system build → replay).

    Module-level so :mod:`multiprocessing` can pickle it into sweep workers.
    The cache key is computed *before* the run: stateful option objects
    (e.g. page-management policies) mutate while simulating, and a post-run
    hash would never match the lookup key of an identical fresh spec.
    Callers that already hashed the spec pass ``key`` to skip re-hashing.

    ``recorder`` installs an observability recorder on the system for this
    run; the build stages are wall-clock attributed and the returned
    result carries the recorder digest on ``RunResult.obs``.  Recording is
    observe-only — the simulated numbers are bit-identical either way.
    """
    if key is None:
        key = safe_spec_key(spec) or ""
    if spec.fleet_shards:
        # Fleet sessions replay every shard and fold the per-shard
        # results into one combined SimResult; shards run serially here
        # — execute_spec itself may already be inside a (daemonic) sweep
        # worker, which cannot nest pools.  Use repro.fleet.run_fleet
        # directly for pooled shard execution and per-shard breakdowns.
        from repro.fleet.executor import run_fleet

        fleet = run_fleet(spec, workers=0, recorder=recorder)
        report = getattr(recorder, "report", None) if recorder is not None else None
        return RunResult(
            system=system_label(spec.system),
            model=model_label(spec.model),
            params=spec_params(spec),
            sim=fleet.combined,
            config_key=key,
            obs=report() if report is not None else None,
        )
    if recorder is None:
        # System first: an unknown name fails fast instead of after the
        # (expensive) workload generation.
        system = build_system(spec)
        workload = build_workload(spec)
        sim = system.run(workload)
        obs_report = None
    else:
        with recorder.phase("system.build"):
            system = build_system(spec)
        with recorder.phase("workload.build"):
            workload = build_workload(spec)
        set_recorder = getattr(system, "set_recorder", None)
        if set_recorder is not None:
            set_recorder(recorder)
        sim = system.run(workload)
        report = getattr(recorder, "report", None)
        obs_report = report() if report is not None else None
    return RunResult(
        system=system_label(spec.system),
        model=model_label(spec.model),
        params=spec_params(spec),
        sim=sim,
        config_key=key,
        obs=obs_report,
    )


# ---------------------------------------------------------------------------
# Result and workload caches
# ---------------------------------------------------------------------------
_RESULT_CACHE: Dict[str, RunResult] = {}
_WORKLOAD_CACHE: Dict[str, Any] = {}
#: Simple FIFO bounds so a long-lived process sweeping many distinct
#: configurations cannot grow the caches monotonically.
_RESULT_CACHE_MAX = 512
_WORKLOAD_CACHE_MAX = 64


def public_copy(
    result: RunResult, spec: RunSpec, coords: Optional[Dict[str, Any]] = None
) -> RunResult:
    """A caller-owned copy of a cached/stored run.

    Mutating it (params *or* the SimResult's counters) must never reach
    back into the cache, and the labels come from the *requesting* spec:
    name- and factory-addressed sessions share a cache entry, so the
    cached labels may belong to whichever form ran first.  ``coords`` are
    overlaid on the params (the sweep engine's axis coordinates).
    """
    params = spec_params(spec)
    if coords:
        params.update(coords)
    return RunResult(
        system=system_label(spec.system),
        model=model_label(spec.model),
        params=params,
        sim=result.sim.copy(),
        config_key=result.config_key,
    )


def cached_result(key: Optional[str]) -> Optional[RunResult]:
    if not key:
        return None
    return _RESULT_CACHE.get(key)


def store_result(result: RunResult) -> None:
    if result.config_key:
        _RESULT_CACHE[result.config_key] = result
        while len(_RESULT_CACHE) > _RESULT_CACHE_MAX:
            _RESULT_CACHE.pop(next(iter(_RESULT_CACHE)))


def clear_cache() -> None:
    """Drop every cached :class:`RunResult` and workload (mainly for tests)."""
    _RESULT_CACHE.clear()
    _WORKLOAD_CACHE.clear()


def cache_size() -> int:
    return len(_RESULT_CACHE)


class Simulation:
    """Fluent builder for one simulation run.

    Every setter returns ``self`` so sessions chain; :meth:`clone` gives an
    independent copy (the sweep engine clones its base per grid point).
    """

    def __init__(self, system: SystemLike = "pifs-rec", **settings: Any) -> None:
        self._spec = RunSpec(system=system)
        self._memo_key: Optional[str] = None
        # Observability recorder; lives on the session (not the picklable
        # spec) and is installed on the system per run by execute_spec.
        self._recorder: Optional[Any] = None
        self.apply(**settings)

    # ------------------------------------------------------------------
    # Fluent setters
    # ------------------------------------------------------------------
    def _set(self, **changes: Any) -> "Simulation":
        self._spec = replace(self._spec, **changes)
        self._memo_key = None
        return self

    def system(self, system: SystemLike) -> "Simulation":
        """Select the system under evaluation: a registered name or factory."""
        return self._set(system=system)

    def model(self, model: Union[str, ModelConfig]) -> "Simulation":
        """Select the DLRM model: an RMC name (scaled) or a full config.

        Names are case-insensitive and validated eagerly so typos fail at
        build time rather than deep inside the workload builder.
        """
        if isinstance(model, str):
            from repro.config import MODEL_CONFIGS

            name = model.upper()
            if name not in MODEL_CONFIGS:
                known = ", ".join(sorted(MODEL_CONFIGS))
                raise ValueError(f"unknown model {model!r}; expected one of: {known}")
            model = name
        return self._set(model=model)

    def scale(self, scale: Union[str, EvaluationScale]) -> "Simulation":
        """Select the evaluation scale: ``"default"``, ``"quick"`` or custom."""
        if isinstance(scale, str):
            try:
                scale = {"default": DEFAULT_SCALE, "quick": QUICK_SCALE}[scale.lower()]
            except KeyError:
                raise ValueError(f"unknown scale {scale!r}; expected 'default' or 'quick'") from None
        return self._set(scale=scale)

    def quick(self) -> "Simulation":
        """Shorthand for ``.scale("quick")``."""
        return self._set(scale=QUICK_SCALE)

    def distribution(self, name: str) -> "Simulation":
        """Select the trace distribution (meta, zipfian, normal, uniform, random)."""
        return self._set(distribution=name)

    def batch_size(self, batch_size: int) -> "Simulation":
        return self._set(batch_size=int(batch_size))

    def num_batches(self, num_batches: int) -> "Simulation":
        return self._set(num_batches=int(num_batches))

    def pooling(self, pooling_factor: int) -> "Simulation":
        """Average bag size (lookups per sample per table)."""
        return self._set(pooling_factor=int(pooling_factor))

    def hosts(self, num_hosts: int) -> "Simulation":
        """Number of concurrent hosts (applies to workload and machine)."""
        return self._set(num_hosts=int(num_hosts))

    def switches(self, num_switches: int) -> "Simulation":
        return self._set(num_fabric_switches=int(num_switches))

    def devices(self, num_devices: int) -> "Simulation":
        return self._set(num_cxl_devices=int(num_devices))

    def local_capacity(self, capacity_bytes: int) -> "Simulation":
        return self._set(local_capacity_bytes=int(capacity_bytes))

    def base_config(self, config: SystemConfig) -> "Simulation":
        """Replace the :class:`SystemConfig` the scale derivation starts from."""
        return self._set(base_config=config)

    def configure(self, *transforms: ConfigTransform) -> "Simulation":
        """Append transforms rewriting the derived :class:`SystemConfig`."""
        return self._set(config_transforms=self._spec.config_transforms + tuple(transforms))

    def options(self, **options: Any) -> "Simulation":
        """Extra keyword arguments for the system factory (e.g. policies)."""
        merged = dict(self._spec.system_options)
        merged.update(options)
        return self._set(system_options=tuple(sorted(merged.items(), key=lambda kv: kv[0])))

    def engine(self, engine: str) -> "Simulation":
        """Select the replay fidelity: ``"scalar"``, ``"vector"`` or ``"packet"``.

        The vector engine resolves lookup batches as numpy arrays and times
        them through flattened kernels; results are numerically identical
        for every built-in system, several times faster.  The packet engine
        attaches ``repro.net`` port queues to every fabric link — identical
        to scalar when uncongested, and reporting queue-depth timelines,
        drops and backpressure via ``result.net`` (see :meth:`packet` for
        the congestion knobs).  Validated eagerly so typos fail at
        session-build time.
        """
        from repro.sls.engine import ENGINES

        if engine not in ENGINES:
            raise ValueError(f"unknown engine {engine!r}; expected one of: {', '.join(ENGINES)}")
        return self._set(engine=engine)

    def fidelity(self, fidelity: str) -> "Simulation":
        """Alias of :meth:`engine` — the knob reads as a fidelity level."""
        return self.engine(fidelity)

    def stream(self, enabled: bool = True) -> "Simulation":
        """Stream the workload out-of-core instead of materializing it.

        With ``stream(True)`` the session's workload is built as a
        :class:`~repro.traces.workload.StreamingWorkload`: the trace source
        (synthetic generator or file) is replayed window by window, so peak
        memory stays proportional to the active window rather than the
        whole trace, and :meth:`serve` consumes arrivals lazily with
        bounded lookahead.  Every simulated number — SimResult counters,
        latency records, backend state — is bit-identical to the eager
        path on all three engines; streaming only changes *when* requests
        are resident.
        """
        return self._set(stream=bool(enabled))

    def fleet(
        self,
        shards: int,
        router: Optional[str] = None,
        seed: Optional[int] = None,
    ) -> "Simulation":
        """Partition the run across ``shards`` per-rack systems.

        Each shard is a full :class:`~repro.sls.system.SLSSystem` (its
        own fabric and table shard of the partitioned address space)
        replaying the slice of the workload the ``router`` policy
        assigns to it — see :mod:`repro.fleet`.  ``shards=0`` restores
        the plain single-system run; ``shards=1`` is a one-rack fleet,
        bit-identical to the single-system run.  ``router`` is one of
        :data:`~repro.fleet.router.ROUTER_POLICIES` (default
        ``"table-affinity"``); ``seed`` feeds the router's hashing and
        tie-breaking.  Composes with every other knob — engines,
        streaming, faults, packet fidelity, observability.
        """
        from repro.fleet.router import ROUTER_POLICIES

        shards = int(shards)
        if shards < 0:
            raise ValueError("fleet shard count must be non-negative")
        changes: Dict[str, Any] = {"fleet_shards": shards}
        if router is not None:
            if router not in ROUTER_POLICIES:
                known = ", ".join(ROUTER_POLICIES)
                raise ValueError(f"unknown router policy {router!r}; expected one of: {known}")
            changes["fleet_router"] = router
        if seed is not None:
            changes["fleet_seed"] = int(seed)
        return self._set(**changes)

    def shards(self, shards: int) -> "Simulation":
        """Shorthand for :meth:`fleet` keeping the current router policy."""
        return self.fleet(shards)

    def router(self, policy: str) -> "Simulation":
        """Select the fleet's request-routing policy (see :meth:`fleet`)."""
        from repro.fleet.router import ROUTER_POLICIES

        if policy not in ROUTER_POLICIES:
            known = ", ".join(ROUTER_POLICIES)
            raise ValueError(f"unknown router policy {policy!r}; expected one of: {known}")
        return self._set(fleet_router=str(policy))

    def packet(self, config: Optional[Any] = None, **knobs: Any) -> "Simulation":
        """Configure the packet tier and select ``engine("packet")``.

        Accepts a :class:`~repro.net.fabric.PacketConfig`, keyword knobs
        (``capacity=4, policy="priority", drop=True, ...``), or nothing —
        the uncongested default.  ``packet(None)`` with no knobs clears the
        configuration without changing the engine.
        """
        from repro.net.fabric import PacketConfig

        if config is not None and knobs:
            raise ValueError("pass either a PacketConfig or keyword knobs, not both")
        if config is None and not knobs:
            return self._set(packet=None)
        if config is None:
            config = PacketConfig(**knobs)
        elif isinstance(config, dict):
            config = PacketConfig.from_dict(config)
        elif not isinstance(config, PacketConfig):
            raise ValueError(f"expected a PacketConfig, dict or knobs, got {config!r}")
        return self._set(packet=config, engine="packet")

    def workload_provider(self, provider: Optional[Any]) -> "Simulation":
        """Source the workload from a provider instead of the generators.

        A provider exposes ``build(spec) -> SLSWorkload`` (and ideally a
        ``label``): trace files, drifting popularity, multi-tenant mixes —
        see :mod:`repro.scenarios.workloads`.  ``None`` restores the
        default synthetic generators.
        """
        if provider is not None and not hasattr(provider, "build"):
            raise ValueError(
                "workload provider must expose build(spec); see "
                "repro.scenarios.workloads for the shipped providers"
            )
        return self._set(workload_provider=provider)

    def faults(self, *faults: Any) -> "Simulation":
        """Append fault/degradation injections applied at session setup.

        Each fault exposes ``apply(system)`` (see
        :mod:`repro.scenarios.faults`); the engine runs them after the
        machine is built and before the vector kernels snapshot it, so
        both engines replay the identical degraded machine.
        """
        for fault in faults:
            if not hasattr(fault, "apply"):
                raise ValueError(
                    "fault specs must expose apply(system); see "
                    "repro.scenarios.faults for the shipped faults"
                )
        return self._set(faults=self._spec.faults + tuple(faults))

    def scenario(self, scenario: Any) -> "Simulation":
        """Apply a named or explicit :class:`~repro.scenarios.Scenario`.

        The scenario's workload/machine/fault dimensions overwrite the
        session's current values (its system only when this session still
        has the default); the session's scale is preserved — so
        ``Simulation("pond").quick().scenario("fault-slow-link")``
        evaluates Pond under the scenario at quick scale.  The session's
        engine is preserved unless the scenario pins a fidelity or packet
        configuration (the congestion scenarios are meaningless without
        the packet tier).
        """
        from repro.scenarios.base import Scenario
        from repro.scenarios.registry import scenario as resolve_scenario

        resolved = scenario if isinstance(scenario, Scenario) else resolve_scenario(scenario)
        if isinstance(self._spec.system, str) and self._spec.system == "pifs-rec":
            self.system(resolved.system)
        self.model(resolved.model)
        # Every workload/machine/fault field is taken from the scenario —
        # including the Nones, which mean "the scale's default", and the
        # fields a Scenario cannot even express (capacity override, config
        # transforms, factory options): a leaked session value would make
        # this session diverge from what `python -m repro scenario run
        # <name>` computes for the same name.
        self._set(
            distribution=resolved.distribution,
            batch_size=resolved.batch_size,
            num_batches=resolved.num_batches,
            pooling_factor=resolved.pooling_factor,
            num_hosts=resolved.resolved_hosts,
            num_fabric_switches=resolved.switches,
            num_cxl_devices=resolved.devices,
            local_capacity_bytes=None,
            base_config=DEFAULT_SYSTEM,
            config_transforms=(),
            system_options=(),
            faults=(),
            packet=None,
            fleet_shards=0,
            fleet_router="table-affinity",
            fleet_seed=0,
        )
        self.workload_provider(resolved.workload)
        if resolved.faults:
            self.faults(*resolved.faults)
        if resolved.fidelity is not None:
            self.engine(resolved.fidelity)
        if resolved.packet is not None:
            self.packet(resolved.packet)
        if resolved.shards:
            self.fleet(resolved.shards, router=resolved.router)
        return self

    def run_scenario(self, scenario: Any, cache: bool = True) -> RunResult:
        """Run a named/explicit scenario on this session (see :meth:`scenario`)."""
        return self.clone().scenario(scenario).run(cache=cache)

    #: Aliases accepted by :meth:`apply` (and therefore by ``Sweep`` axes and
    #: keyword construction) in addition to the method names themselves.
    _ALIASES = {
        "num_hosts": "hosts",
        "num_fabric_switches": "switches",
        "num_cxl_devices": "devices",
        "local_capacity_bytes": "local_capacity",
        "pooling_factor": "pooling",
        "trace": "distribution",
        "fidelity": "engine",
        "streaming": "stream",
        "fleet_shards": "shards",
        "fleet_router": "router",
    }

    #: The only methods :meth:`apply` may dispatch to — keeps sweep axes and
    #: keyword construction from invoking non-setter methods like ``run``.
    _SETTERS = frozenset({
        "system", "model", "scale", "distribution", "batch_size", "num_batches",
        "pooling", "hosts", "switches", "devices", "local_capacity",
        "base_config", "configure", "options", "engine", "packet",
        "workload_provider", "faults", "scenario", "stream",
        "fleet", "shards", "router",
    })

    def apply(self, **settings: Any) -> "Simulation":
        """Apply settings by name (``apply(model="RMC4", hosts=2)``)."""
        for key, value in settings.items():
            name = self._ALIASES.get(key, key)
            if name not in self._SETTERS:
                raise ValueError(f"unknown simulation setting {key!r}")
            method = getattr(self, name)
            if name == "options":
                if not isinstance(value, dict):
                    raise ValueError("'options' setting expects a dict")
                method(**value)
            elif name in ("configure", "faults"):
                items = value if isinstance(value, (tuple, list)) else (value,)
                method(*items)
            else:
                method(value)
        return self

    # ------------------------------------------------------------------
    # Compilation and execution
    # ------------------------------------------------------------------
    def clone(self) -> "Simulation":
        duplicate = Simulation.__new__(Simulation)
        duplicate._spec = self._spec  # RunSpec is immutable; sharing is safe
        duplicate._memo_key = self._memo_key
        duplicate._recorder = self._recorder
        return duplicate

    def spec(self) -> RunSpec:
        return self._spec

    def observe(self, recorder: Any = True) -> "Simulation":
        """Attach an observability recorder to this session.

        ``observe()`` (or ``observe(True)``) creates a fresh
        :class:`~repro.obs.recorder.TraceRecorder`; pass your own recorder
        to share one across sessions, or ``None``/``False`` to disable.
        Subsequent :meth:`run`/:meth:`serve` calls install it on the system
        — spans, counters and wall-clock phases accumulate on it, exportable
        via :meth:`TraceRecorder.write_chrome_trace
        <repro.obs.recorder.TraceRecorder.write_chrome_trace>`.  Observed
        runs bypass the result cache (a cache hit would execute nothing and
        record nothing).  Recording never changes the simulated numbers.
        """
        if recorder is True:
            from repro.obs.recorder import TraceRecorder

            recorder = TraceRecorder()
        elif recorder is False:
            recorder = None
        self._recorder = recorder
        return self

    @property
    def recorder(self) -> Optional[Any]:
        """The recorder attached via :meth:`observe` (``None`` when off)."""
        return self._recorder

    def describe(self) -> Dict[str, Any]:
        """The run's JSON-safe coordinates (without executing it)."""
        return spec_params(self._spec)

    def build_system_config(self) -> SystemConfig:
        return build_system_config(self._spec)

    def build_workload(self):
        return build_workload(self._spec)

    def build_system(self):
        return build_system(self._spec)

    def run(self, cache: bool = True) -> RunResult:
        """Execute the session and return its :class:`RunResult`.

        With ``cache=True`` (the default) an identical earlier run — same
        config hash — is returned without re-simulating.
        """
        # The key is memoized per session state: stateful option objects
        # (policies) mutate during a run, so hashing them again on a second
        # .run() of the same session would miss the cache and re-simulate
        # from dirty policy state.
        if self._memo_key is None:
            self._memo_key = safe_spec_key(self._spec) or ""
        if self._recorder is not None:
            # Observed runs bypass the result cache entirely: a hit would
            # record nothing, and storing would let a later unobserved run
            # see stale obs digests.
            return execute_spec(self._spec, key=self._memo_key, recorder=self._recorder)
        if cache:
            hit = cached_result(self._memo_key)
            if hit is not None:
                return public_copy(hit, self._spec)
        result = execute_spec(self._spec, key=self._memo_key)
        if cache:
            store_result(result)
            # Hand out a copy so callers annotating the returned params or
            # counters cannot poison the cached entry (the sweep engine
            # does the same when overlaying axis coordinates).
            return public_copy(result, self._spec)
        return result

    # ------------------------------------------------------------------
    # Online serving terminals
    # ------------------------------------------------------------------
    def _serve_config(
        self,
        qps: float,
        arrival: str,
        max_batch_size: int,
        max_wait_ns: float,
        seed: Optional[int],
        sla_ns: Optional[float],
    ) -> "ServeConfig":
        from repro.serve.server import ServeConfig

        return ServeConfig(
            qps=float(qps),
            arrival=arrival,
            max_batch_size=int(max_batch_size),
            max_wait_ns=float(max_wait_ns),
            seed=self._spec.scale.seed if seed is None else int(seed),
            sla_ns=sla_ns,
        )

    def serve(
        self,
        qps: float,
        *,
        arrival: str = "poisson",
        max_batch_size: int = 8,
        max_wait_ns: float = 100_000.0,
        seed: Optional[int] = None,
        sla_ns: Optional[float] = None,
    ) -> "ServeResult":
        """Serve this session's workload open-loop at ``qps`` requests/s.

        The online counterpart of :meth:`run`: requests arrive via the
        named arrival process, queue per host, are dynamically batched and
        serviced on the host thread lanes; the result carries the latency
        percentiles (p50..p99.9), goodput and queue-depth metrics instead
        of only the aggregate completion time.  The arrival seed defaults
        to the evaluation scale's seed, so identical sessions reproduce
        identical metrics.
        """
        config = self._serve_config(qps, arrival, max_batch_size, max_wait_ns, seed, sla_ns)
        return execute_serve_spec(self._spec, config, recorder=self._recorder)

    def sla_sweep(
        self,
        sla_ns: float,
        qps_bounds: Tuple[float, float],
        *,
        percentile: str = "p99",
        grid_points: int = 4,
        refine_iters: int = 8,
        parallel: bool = False,
        processes: Optional[int] = None,
        arrival: str = "poisson",
        max_batch_size: int = 8,
        max_wait_ns: float = 100_000.0,
        seed: Optional[int] = None,
    ) -> "SLASweepResult":
        """Max sustainable QPS whose ``percentile`` latency meets ``sla_ns``.

        A geometric QPS grid brackets the saturation point, then a binary
        search refines it.  ``parallel=True`` fans the independent grid
        evaluations out over worker processes; the returned numbers are
        identical to the serial path (the refinement stage is sequential
        either way).
        """
        from repro.serve.metrics import sla_sweep as _sla_sweep

        config = self._serve_config(
            qps_bounds[0], arrival, max_batch_size, max_wait_ns, seed, sla_ns
        )
        evaluator = ServeEvaluator(self._spec, config)
        if not parallel:
            return _sla_sweep(
                evaluator,
                sla_ns,
                qps_bounds,
                percentile=percentile,
                grid_points=grid_points,
                refine_iters=refine_iters,
            )
        # The independent grid evaluations borrow the persistent sweep
        # worker pool — no fork per sla_sweep() call, and the workers'
        # workload caches carry over between sweeps.
        from repro.api.sweep import worker_pool

        workers = min(grid_points, os.cpu_count() or 1) if processes is None else processes
        pool = worker_pool().get(max(1, workers))
        return _sla_sweep(
            evaluator,
            sla_ns,
            qps_bounds,
            percentile=percentile,
            grid_points=grid_points,
            refine_iters=refine_iters,
            map_fn=pool.map,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        coords = ", ".join(f"{k}={v!r}" for k, v in self.describe().items())
        return f"Simulation({coords})"


__all__ = [
    "ConfigTransform",
    "RunSpec",
    "ServeEvaluator",
    "Simulation",
    "build_system",
    "build_system_config",
    "build_workload",
    "cache_size",
    "cached_result",
    "cached_workload",
    "clear_cache",
    "execute_chunk",
    "execute_serve_spec",
    "execute_spec",
    "seed_workload_cache",
    "workload_key",
    "public_copy",
    "safe_spec_key",
    "spec_key",
    "spec_params",
    "store_result",
    "system_label",
    "model_label",
]
