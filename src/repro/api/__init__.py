"""Unified simulation façade for the PIFS-Rec reproduction.

The public experiment surface of the package:

* :class:`~repro.api.session.Simulation` — fluent session builder owning
  config derivation, system construction and workload building::

      Simulation("pifs-rec").model("RMC4").hosts(4).batch_size(64).run()

* :func:`~repro.api.registry.register_system` — decorator-based pluggable
  registry of evaluated systems (``create_system`` resolves names).
* :class:`~repro.api.sweep.Sweep` — declarative parameter sweeps with a
  multiprocessing engine and deterministic result ordering::

      Sweep(over={"system": ["pond", "pifs-rec"], "batch_size": [8, 64]}).run(parallel=True)

* :class:`~repro.api.results.RunResult` / ``SweepResult`` —
  JSON-serializable result containers with speedup/normalize helpers.
* ``python -m repro`` — the CLI (``run``, ``sweep``, ``compare``,
  ``figures``) built on top of all of the above.

Only :mod:`repro.api.registry` is imported eagerly: the registry decorator
is consumed at class-definition time by the baseline modules, so this
package initializer must not drag in the simulation engine (everything else
resolves lazily via PEP 562).
"""

from __future__ import annotations

from repro.api.registry import (
    SYSTEM_FACTORIES,
    DuplicateSystemError,
    SystemFactory,
    UnknownSystemError,
    available_systems,
    create_system,
    register_system,
    system_factory,
    unregister_system,
)

_LAZY_EXPORTS = {
    "RunResult": "repro.api.results",
    "SweepResult": "repro.api.results",
    "RunSpec": "repro.api.session",
    "ServeEvaluator": "repro.api.session",
    "Simulation": "repro.api.session",
    "execute_serve_spec": "repro.api.session",
    "execute_spec": "repro.api.session",
    "ServeConfig": "repro.serve.server",
    "ServeResult": "repro.serve.metrics",
    "SLASweepResult": "repro.serve.metrics",
    "spec_key": "repro.api.session",
    "clear_cache": "repro.api.session",
    "cache_size": "repro.api.session",
    "AxisPoint": "repro.api.sweep",
    "Sweep": "repro.api.sweep",
    "point": "repro.api.sweep",
    "run_grid": "repro.api.sweep",
    "main": "repro.api.cli",
    "Scenario": "repro.scenarios",
    "TrafficSpec": "repro.scenarios",
    "available_scenarios": "repro.scenarios",
    "register_scenario": "repro.scenarios",
    "scenario": "repro.scenarios",
}


def __getattr__(name: str):
    module_name = _LAZY_EXPORTS.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "SYSTEM_FACTORIES",
    "DuplicateSystemError",
    "SystemFactory",
    "UnknownSystemError",
    "available_systems",
    "create_system",
    "register_system",
    "system_factory",
    "unregister_system",
    "RunResult",
    "SweepResult",
    "RunSpec",
    "ServeConfig",
    "ServeEvaluator",
    "ServeResult",
    "SLASweepResult",
    "Simulation",
    "execute_serve_spec",
    "execute_spec",
    "spec_key",
    "clear_cache",
    "cache_size",
    "AxisPoint",
    "Sweep",
    "point",
    "run_grid",
    "main",
    "Scenario",
    "TrafficSpec",
    "available_scenarios",
    "register_scenario",
    "scenario",
]
