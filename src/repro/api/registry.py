"""Pluggable system registry for the simulation façade.

Evaluated systems register themselves by name with the
:func:`register_system` decorator::

    @register_system("my-system")
    class MySystem(SLSSystem):
        ...

and are instantiated by name through :func:`create_system`.  The registry
replaces the hard-coded ``SYSTEM_FACTORIES`` dict that used to live in
``repro.baselines.registry``; that module now re-exports this one for
backwards compatibility.

This module must stay import-light (standard library only): the baseline
modules import it at class-definition time, before the rest of the package
has finished importing.  The built-in systems are pulled in lazily the first
time a name is resolved.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Iterable, Iterator, Mapping, Optional, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from repro.config import SystemConfig
    from repro.sls.engine import SLSSystem

#: A factory builds a runnable system from a :class:`SystemConfig`.  The
#: registered classes themselves satisfy this signature.
SystemFactory = Callable[["SystemConfig"], "SLSSystem"]


class UnknownSystemError(KeyError):
    """Raised when a system name is not registered.

    Subclasses :class:`KeyError` so existing ``except KeyError`` call sites
    keep working, but renders a readable message (plain ``KeyError`` shows
    the repr of its argument) and suggests close matches.
    """

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.name = name
        self.known = tuple(sorted(known))
        message = f"unknown system {name!r}; expected one of: {', '.join(self.known)}"
        guesses = difflib.get_close_matches(str(name).lower(), self.known, n=1)
        if guesses:
            message += f" (did you mean {guesses[0]!r}?)"
        super().__init__(message)

    def __str__(self) -> str:
        return self.args[0]

    def __reduce__(self):
        # BaseException's default __reduce__ re-calls cls(*args) with only
        # the formatted message, which breaks the two-argument signature —
        # and an unpicklable exception raised in a multiprocessing worker
        # deadlocks the parent pool instead of propagating.
        return (type(self), (self.name, self.known))


class DuplicateSystemError(ValueError):
    """Raised when two different factories claim the same system name."""


_REGISTRY: Dict[str, SystemFactory] = {}
#: Bumped on every (un)registration.  Long-lived consumers that snapshot
#: registry state — the persistent sweep worker pool forks with the
#: registry baked in — compare generations to know when their snapshot is
#: stale and must be rebuilt.
_GENERATION = 0


def registry_generation() -> int:
    """Monotonic counter of registry mutations (see ``_GENERATION``)."""
    return _GENERATION
#: The names this package itself registers (and therefore guarantees are
#: always resolvable); user/plugin registrations are never snapshotted.
_BUILTIN_NAMES = ("pond", "pond+pm", "beacon", "recnmp", "tpp", "pifs-rec", "pifs-rec-nopm")
#: Snapshot of the built-in factories taken right after they load, used to
#: restore a built-in that a test unregistered.
_BUILTIN_SNAPSHOT: Dict[str, SystemFactory] = {}
_BUILTINS_LOADED = False


def register_system(
    name: str,
    factory: Optional[SystemFactory] = None,
    *,
    aliases: Tuple[str, ...] = (),
    replace: bool = False,
) -> Callable[[SystemFactory], SystemFactory]:
    """Register a system factory under ``name`` (case-insensitive).

    Usable as a decorator (``@register_system("pond")``) or called directly
    (``register_system("pond", PondSystem)``).  Re-registering the *same*
    factory is a no-op so modules may be re-imported; registering a
    *different* factory under a taken name raises
    :class:`DuplicateSystemError` unless ``replace=True``.
    """

    def _register(target: SystemFactory) -> SystemFactory:
        keys = [str(key).lower() for key in (name, *aliases)]
        # Validate every key before mutating anything, so a conflict on an
        # alias cannot leave a half-applied registration behind.
        for key in keys:
            existing = _REGISTRY.get(key)
            if existing is not None and existing is not target and not replace:
                # A module reload re-creates the class object; treat a
                # same-module, same-qualname registration as the re-import
                # no-op it is, not as a conflicting claim on the name.
                same_origin = (
                    getattr(existing, "__module__", None) == getattr(target, "__module__", object())
                    and getattr(existing, "__qualname__", None)
                    == getattr(target, "__qualname__", object())
                )
                if not same_origin:
                    raise DuplicateSystemError(
                        f"system name {key!r} is already registered to "
                        f"{getattr(existing, '__name__', existing)!r}; "
                        "pass replace=True to override"
                    )
        global _GENERATION
        for key in keys:
            _REGISTRY[key] = target
        _GENERATION += 1
        return target

    if factory is not None:
        return _register(factory)
    return _register


def unregister_system(name: str) -> None:
    """Remove a registration, including every alias of the same factory.

    Mainly for tests.  Built-in systems cannot be permanently removed —
    resolution and listings restore them from the built-in snapshot — so
    the registry cannot be left broken for the process; to change a
    built-in's behavior, use ``register_system(..., replace=True)``.
    """
    global _GENERATION
    factory = _REGISTRY.pop(str(name).lower(), None)
    if factory is not None:
        for alias in [key for key, value in _REGISTRY.items() if value is factory]:
            del _REGISTRY[alias]
        _GENERATION += 1


def _ensure_builtins() -> None:
    """Import the modules whose systems self-register via the decorator."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    import repro.baselines  # noqa: F401  (registers pond, pond+pm, beacon, recnmp, tpp)
    import repro.pifs.system  # noqa: F401  (registers pifs-rec, pifs-rec-nopm)

    _BUILTIN_SNAPSHOT.update(
        {name: _REGISTRY[name] for name in _BUILTIN_NAMES if name in _REGISTRY}
    )
    _BUILTINS_LOADED = True


def _effective_registry() -> Dict[str, SystemFactory]:
    """The live registry with unregistered built-ins restored.

    Built-in systems cannot be permanently removed from a process — only
    replaced — so listing surfaces (``available_systems``, the
    ``SYSTEM_FACTORIES`` view, the CLI) and name resolution always agree.
    """
    _ensure_builtins()
    merged = dict(_BUILTIN_SNAPSHOT)
    merged.update(_REGISTRY)
    return merged


def system_factory(name: str) -> SystemFactory:
    """Resolve a registered factory by (case-insensitive) name."""
    registry = _effective_registry()
    key = str(name).lower()
    try:
        factory = registry[key]
    except KeyError:
        raise UnknownSystemError(name, registry) from None
    _REGISTRY.setdefault(key, factory)  # restore an unregistered built-in
    return factory


def create_system(name: str, system_config: "SystemConfig") -> "SLSSystem":
    """Instantiate a system by (case-insensitive) name."""
    return system_factory(name)(system_config)


def available_systems() -> Tuple[str, ...]:
    """Sorted names of every registered system."""
    return tuple(sorted(_effective_registry()))


class _RegistryView(Mapping):
    """Read-only live view of the registry.

    Exported as ``SYSTEM_FACTORIES`` so code written against the old
    hard-coded dict in ``repro.baselines.registry`` keeps working.
    """

    def __getitem__(self, key: str) -> SystemFactory:
        return _effective_registry()[str(key).lower()]

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(_effective_registry()))

    def __len__(self) -> int:
        return len(_effective_registry())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SYSTEM_FACTORIES({sorted(_effective_registry())})"


#: Deprecated: live mapping view kept for backwards compatibility with the
#: old ``repro.baselines.registry.SYSTEM_FACTORIES`` dict.
SYSTEM_FACTORIES: Mapping[str, SystemFactory] = _RegistryView()


__all__ = [
    "SystemFactory",
    "UnknownSystemError",
    "DuplicateSystemError",
    "register_system",
    "registry_generation",
    "unregister_system",
    "system_factory",
    "create_system",
    "available_systems",
    "SYSTEM_FACTORIES",
]
