"""JSON-serializable result containers for the simulation façade.

A :class:`RunResult` wraps one :class:`~repro.sls.result.SimResult` together
with the sweep coordinates that produced it (system, model, batch size, ...).
A :class:`SweepResult` is an ordered collection of runs with the selection,
normalization and tabulation helpers the experiment drivers are built from.
Both round-trip through plain dicts (``to_dict`` / ``from_dict``), so sweep
outputs can be cached to JSON and reloaded.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.sls.result import SimResult


@dataclass
class RunResult:
    """One simulation run: its coordinates, its label, and the raw counters.

    ``params`` holds the JSON-safe sweep coordinates (``{"system": "pond",
    "model": "RMC4", "batch_size": 64}``); ``config_key`` is the stable hash
    of the full run specification used by the result cache.  ``obs`` carries
    the observability digest (:meth:`TraceRecorder.report
    <repro.obs.recorder.TraceRecorder.report>` — event counts plus the flat
    metrics, not the raw spans) when the run was observed, ``None``
    otherwise.
    """

    system: str
    model: str
    params: Dict[str, Any]
    sim: SimResult
    config_key: str = ""
    obs: Optional[Dict[str, Any]] = None

    # Convenience pass-throughs for the metrics every figure reads.
    @property
    def total_ns(self) -> float:
        return self.sim.total_ns

    @property
    def latency_per_lookup_ns(self) -> float:
        return self.sim.latency_per_lookup_ns

    @property
    def throughput_lookups_per_us(self) -> float:
        return self.sim.throughput_lookups_per_us

    @property
    def net(self):
        """Packet-tier observations, when the run used ``fidelity="packet"``."""
        return self.sim.net

    def metric(self, name: str) -> float:
        """Read a numeric metric by name from the run or its :class:`SimResult`."""
        for holder in (self, self.sim):
            value = getattr(holder, name, None)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        raise AttributeError(f"unknown metric {name!r}")

    def speedup_over(self, other: "RunResult") -> float:
        """How much faster this run is than ``other`` (latency ratio)."""
        return self.sim.speedup_over(other.sim)

    def matches(self, **coords: Any) -> bool:
        """True when every given coordinate equals this run's coordinate."""
        for key, value in coords.items():
            if key == "system":
                if self.system != value and self.params.get("system") != value:
                    return False
            elif key == "model":
                if self.model != value and self.params.get("model") != value:
                    return False
            elif self.params.get(key) != value:
                return False
        return True

    def to_dict(self) -> Dict[str, Any]:
        data = {
            "system": self.system,
            "model": self.model,
            "params": dict(self.params),
            "config_key": self.config_key,
            "sim": self.sim.to_dict(),
        }
        if self.obs is not None:
            data["obs"] = dict(self.obs)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        obs = data.get("obs")
        return cls(
            system=str(data["system"]),
            model=str(data["model"]),
            params=dict(data.get("params") or {}),
            sim=SimResult.from_dict(data["sim"]),
            config_key=str(data.get("config_key", "")),
            obs=dict(obs) if obs is not None else None,
        )

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "RunResult":
        return cls.from_dict(json.loads(payload))


@dataclass
class SweepResult:
    """Ordered results of a parameter sweep (deterministic product order)."""

    axes: List[Tuple[str, List[Any]]] = field(default_factory=list)
    results: List[RunResult] = field(default_factory=list)

    def __iter__(self) -> Iterator[RunResult]:
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index: int) -> RunResult:
        return self.results[index]

    # ------------------------------------------------------------------
    # Selection
    # ------------------------------------------------------------------
    def where(self, **coords: Any) -> List[RunResult]:
        """Every run whose coordinates match ``coords``."""
        return [run for run in self.results if run.matches(**coords)]

    def only(self, **coords: Any) -> RunResult:
        """The single run matching ``coords`` (raises if 0 or >1 match)."""
        matches = self.where(**coords)
        if len(matches) != 1:
            raise LookupError(f"expected exactly one run for {coords}, found {len(matches)}")
        return matches[0]

    def axis_values(self, axis: str) -> List[Any]:
        """Distinct coordinate values of ``axis`` in first-seen order."""
        for key, values in self.axes:
            if key == axis:
                return list(values)
        seen: List[Any] = []
        for run in self.results:
            value = run.params.get(axis)
            if value not in seen:
                seen.append(value)
        return seen

    # ------------------------------------------------------------------
    # Shaping helpers used by the figure drivers
    # ------------------------------------------------------------------
    def pivot(
        self, row_axis: str, col_axis: str, metric: str = "total_ns"
    ) -> Dict[Any, Dict[Any, float]]:
        """Nested ``{row: {col: metric}}`` dict over two sweep axes."""
        table: Dict[Any, Dict[Any, float]] = {}
        for row in self.axis_values(row_axis):
            table[row] = {
                col: self.only(**{row_axis: row, col_axis: col}).metric(metric)
                for col in self.axis_values(col_axis)
            }
        return table

    def values(self, metric: str = "total_ns") -> List[float]:
        return [run.metric(metric) for run in self.results]

    def speedups(self, baseline: "RunResult", metric: str = "total_ns") -> List[float]:
        """Per-run speedup of ``metric`` relative to ``baseline`` (ratio)."""
        reference = baseline.metric(metric)
        return [reference / run.metric(metric) for run in self.results]

    def normalized(self, metric: str = "total_ns") -> List[float]:
        """Each run's metric divided by the sweep-wide maximum."""
        values = self.values(metric)
        peak = max(values) if values else 1.0
        return [value / peak if peak else 0.0 for value in values]

    def best(self, metric: str = "total_ns", minimize: bool = True) -> RunResult:
        chooser = min if minimize else max
        return chooser(self.results, key=lambda run: run.metric(metric))

    # ------------------------------------------------------------------
    # Presentation
    # ------------------------------------------------------------------
    def table(self, metrics: Sequence[str] = ("total_ns",), float_format: str = "{:,.1f}") -> str:
        """Aligned text table: one row per run, one column per coordinate."""
        from repro.analysis.report import format_table

        axis_names = [key for key, _ in self.axes] or sorted(
            {key for run in self.results for key in run.params}
        )
        headers = [*axis_names, *metrics]
        rows = []
        for run in self.results:
            rows.append(
                [run.params.get(axis, "") for axis in axis_names]
                + [run.metric(metric) for metric in metrics]
            )
        return format_table(headers, rows, float_format=float_format)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "axes": [[key, list(values)] for key, values in self.axes],
            "results": [run.to_dict() for run in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "SweepResult":
        return cls(
            axes=[(str(key), list(values)) for key, values in data.get("axes") or []],
            results=[RunResult.from_dict(entry) for entry in data.get("results") or []],
        )

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "SweepResult":
        return cls.from_dict(json.loads(payload))


__all__ = ["RunResult", "SweepResult"]
