"""Request routers: which shard serves which SLS request.

A fleet places one table shard per rack (:class:`TablePartition` splits
the embedding tables into contiguous, balanced ranges) and a routing tier
in front of the racks decides which shard serves each request.  Three
policies ship, mirroring the routing tiers production DLRM deployments
actually run:

``table-affinity``
    Route by the request's table through the partition — the only policy
    under which a shard never touches rows outside its own table range
    (the sharded-parameter-server layout).
``hash``
    Seeded content hash of the request (table, sample, bag shape).  A
    pure function of the request — stable under arbitrary request
    reordering — so any frontend replica routes identically with no
    shared state.
``power-of-two-choices``
    Two seeded hash candidates per request; the one with the lower
    assigned load (lookups routed so far) wins, ties broken by a seeded
    coin — never by shard index or dict order.  Sequentially
    deterministic: replaying the same request stream reproduces the
    identical assignment.

Routers are small frozen dataclasses (picklable, hashable — they ride
inside :class:`~repro.api.session.RunSpec`); :meth:`Router.bind`
instantiates the per-pass mutable state so one router object can be
shared by every shard view and every worker process.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

__all__ = [
    "ROUTER_POLICIES",
    "BoundRouter",
    "HashRouter",
    "PowerOfTwoRouter",
    "Router",
    "TableAffinityRouter",
    "TablePartition",
    "make_router",
]

#: Router policy names accepted by ``Simulation.fleet(...)`` / the CLI.
ROUTER_POLICIES: Tuple[str, ...] = ("hash", "power-of-two-choices", "table-affinity")

_MASK64 = (1 << 64) - 1


def _mix64(*values: int) -> int:
    """Deterministic 64-bit mix of integers (splitmix64-style finalizer).

    Python's ``hash()`` is stable for ints but folds tuples through a
    process-wide siphash for str members; this mixer depends on nothing
    but the operands, so routing decisions are identical across
    processes, platforms and ``PYTHONHASHSEED`` values.
    """
    acc = 0x9E3779B97F4A7C15
    for value in values:
        acc = (acc + (int(value) & _MASK64)) & _MASK64
        acc = (acc ^ (acc >> 30)) * 0xBF58476D1CE4E5B9 & _MASK64
        acc = (acc ^ (acc >> 27)) * 0x94D049BB133111EB & _MASK64
        acc ^= acc >> 31
    return acc


def _request_key(request) -> Tuple[int, int, int, int, int]:
    """The content tuple hash-based policies key on.

    Everything here is a property of the request itself — never its
    position in the stream — which is what makes hash routing stable
    under reordering.  The bag's first/last row indices disambiguate
    same-shaped bags of the same (table, sample) from different batches
    well enough to spread them, while staying O(1) per request.
    """
    rows = request.rows
    first = int(rows[0]) if len(rows) else -1
    last = int(rows[-1]) if len(rows) else -1
    return (request.table, request.sample, request.num_candidates, first, last)


@dataclass(frozen=True)
class TablePartition:
    """Contiguous, balanced split of ``num_tables`` tables over ``num_shards``.

    The first ``num_tables % num_shards`` shards hold one extra table;
    with more shards than tables the trailing shards own empty ranges
    (and receive no table-affinity traffic at all).
    """

    num_tables: int
    num_shards: int

    def __post_init__(self) -> None:
        if self.num_tables < 0:
            raise ValueError("num_tables must be non-negative")
        if self.num_shards <= 0:
            raise ValueError("num_shards must be positive")

    def range_of(self, shard: int) -> Tuple[int, int]:
        """Half-open table range ``[lo, hi)`` owned by ``shard``."""
        if not 0 <= shard < self.num_shards:
            raise ValueError(f"shard {shard} out of range [0, {self.num_shards})")
        base, extra = divmod(self.num_tables, self.num_shards)
        lo = shard * base + min(shard, extra)
        hi = lo + base + (1 if shard < extra else 0)
        return lo, hi

    def shard_of_table(self, table: int) -> int:
        """The shard owning ``table`` (inverse of :meth:`range_of`)."""
        if not 0 <= table < self.num_tables:
            raise ValueError(f"table {table} out of range [0, {self.num_tables})")
        base, extra = divmod(self.num_tables, self.num_shards)
        boundary = extra * (base + 1)
        if table < boundary:
            return table // (base + 1)
        return extra + (table - boundary) // base

    def ranges(self) -> Iterator[Tuple[int, int]]:
        for shard in range(self.num_shards):
            yield self.range_of(shard)


class BoundRouter:
    """A router bound to a fleet shape: ``route(request) -> shard``.

    Holds whatever per-pass mutable state the policy needs (the
    power-of-two-choices load counters); every replay pass over a stream
    binds afresh, so repeated passes assign identically.
    """

    def __init__(self, policy: "Router", num_shards: int, num_tables: int) -> None:
        self.policy = policy
        self.num_shards = num_shards
        self.partition = TablePartition(num_tables, num_shards)

    def route(self, request) -> int:
        raise NotImplementedError


class _BoundHash(BoundRouter):
    def route(self, request) -> int:
        return _mix64(self.policy.seed, *_request_key(request)) % self.num_shards


class _BoundPowerOfTwo(BoundRouter):
    def __init__(self, policy: "Router", num_shards: int, num_tables: int) -> None:
        super().__init__(policy, num_shards, num_tables)
        self.loads = [0] * num_shards

    def route(self, request) -> int:
        key = _request_key(request)
        seed = self.policy.seed
        first = _mix64(seed, 1, *key) % self.num_shards
        second = _mix64(seed, 2, *key) % self.num_shards
        if self.loads[first] < self.loads[second]:
            choice = first
        elif self.loads[second] < self.loads[first]:
            choice = second
        else:
            # Equal load (including first == second): a seeded coin picks,
            # so ties never resolve by shard index or enumeration order.
            choice = first if _mix64(seed, 3, *key) & 1 else second
        self.loads[choice] += request.num_candidates
        return choice


class _BoundTableAffinity(BoundRouter):
    def route(self, request) -> int:
        return self.partition.shard_of_table(request.table)


@dataclass(frozen=True)
class Router:
    """Base request-routing policy (frozen, picklable; see module docstring)."""

    seed: int = 0

    #: Policy name as accepted by :func:`make_router` / the CLI.
    policy = ""
    #: True when every request lands on the shard owning its table —
    #: shard views use this to slice streams by table range up front.
    table_affine = False

    def bind(self, num_shards: int, num_tables: int) -> BoundRouter:
        """Bind to a fleet shape, creating fresh per-pass routing state."""
        raise NotImplementedError


@dataclass(frozen=True)
class HashRouter(Router):
    """Stateless seeded content hash: reordering-stable, shared-nothing."""

    policy = "hash"

    def bind(self, num_shards: int, num_tables: int) -> BoundRouter:
        return _BoundHash(self, num_shards, num_tables)


@dataclass(frozen=True)
class PowerOfTwoRouter(Router):
    """Two seeded candidates, lighter assigned load wins, seeded tie-break."""

    policy = "power-of-two-choices"

    def bind(self, num_shards: int, num_tables: int) -> BoundRouter:
        return _BoundPowerOfTwo(self, num_shards, num_tables)


@dataclass(frozen=True)
class TableAffinityRouter(Router):
    """Route by table ownership: requests never leave their table's shard."""

    policy = "table-affinity"
    table_affine = True

    def bind(self, num_shards: int, num_tables: int) -> BoundRouter:
        return _BoundTableAffinity(self, num_shards, num_tables)


_ROUTERS = {
    "hash": HashRouter,
    "power-of-two-choices": PowerOfTwoRouter,
    "table-affinity": TableAffinityRouter,
}


def make_router(policy: str, seed: int = 0) -> Router:
    """Build the :class:`Router` for a policy name (see :data:`ROUTER_POLICIES`)."""
    try:
        factory = _ROUTERS[policy]
    except KeyError:
        known = ", ".join(ROUTER_POLICIES)
        raise ValueError(f"unknown router policy {policy!r}; expected one of: {known}") from None
    return factory(seed=int(seed))
