"""Fleet execution: N per-rack systems replaying shard views of one trace.

:class:`Fleet` composes ``fleet_shards`` independent
:class:`~repro.sls.system.SLSSystem` instances — one per rack, each with
its own fabric and its shard of the partitioned table space — behind one
:class:`~repro.fleet.router.Router`.  Shards are embarrassingly
parallel, so execution generalizes the sweep engine's chunking from grid
points to shards: the same persistent worker pool
(:func:`repro.api.sweep.worker_pool`), the same parent-built shared
workload shipped once per task (a streaming workload travels as its
small stream handle, PR 8 style), and the same deterministic reassembly
— results are collected in shard order, so serial and pooled execution
are byte-identical for any worker count.
"""

from __future__ import annotations

import os
from dataclasses import replace
from typing import Any, List, Optional, Sequence, Tuple

from repro.api.session import (
    RunSpec,
    build_system,
    build_workload,
    cached_workload,
    seed_workload_cache,
    system_label,
    workload_key,
)
from repro.fleet.result import (
    FleetResult,
    FleetServeResult,
    combine_sim_results,
    summarize_fleet_serve,
)
from repro.fleet.router import Router, make_router
from repro.fleet.shard import ShardWorkload

__all__ = ["Fleet", "run_fleet", "serve_fleet"]


def _shard_base(spec: RunSpec) -> RunSpec:
    """The per-shard spec: the fleet fields cleared, everything else kept.

    Each shard is an ordinary single-system run over its shard view;
    clearing the fleet fields keeps :func:`execute_fleet_shard` from
    recursing and lets shards share the base spec's workload cache key.
    """
    return replace(spec, fleet_shards=0, fleet_router="table-affinity", fleet_seed=0)


def execute_fleet_shard(
    base_spec: RunSpec,
    router: Router,
    shard: int,
    num_shards: int,
    shared_workload_key: Optional[str] = None,
    shared_workload: Any = None,
    record: bool = False,
    keep_records: bool = False,  # accepted for executor symmetry; no records here
) -> dict:
    """Replay one shard (module-level and picklable — the pool's unit).

    Mirrors :func:`repro.api.session.execute_chunk`: a parent-built
    shared workload is installed into the worker's cache first, and with
    ``record=True`` the payload carries the shard's observability
    snapshot for ``shard-<i>`` attribution in the parent.
    """
    if shared_workload_key and shared_workload is not None:
        seed_workload_cache(shared_workload_key, shared_workload)
    recorder = None
    if record:
        from repro.obs.recorder import TraceRecorder

        recorder = TraceRecorder(label=f"shard-{shard}")
    system = build_system(base_spec)
    base = build_workload(base_spec)
    workload = ShardWorkload(base, router, shard, num_shards)
    if recorder is not None:
        set_recorder = getattr(system, "set_recorder", None)
        if set_recorder is not None:
            set_recorder(recorder)
        with recorder.phase(f"fleet.shard-{shard}"):
            sim = system.run(workload)
    else:
        sim = system.run(workload)
    return {
        "sim": sim,
        "obs": recorder.snapshot() if recorder is not None else None,
        "pid": os.getpid(),
    }


def execute_fleet_serve_shard(
    base_spec: RunSpec,
    router: Router,
    shard: int,
    num_shards: int,
    config: Any,
    shared_workload_key: Optional[str] = None,
    shared_workload: Any = None,
    record: bool = False,
    keep_records: bool = False,
) -> dict:
    """Serve one shard open-loop; ships summary + raw timing samples back.

    The per-request record list is reduced to (latency, queue_wait,
    service) triples before crossing the process boundary — enough for
    exact fleet-level percentiles without pickling the records.
    ``keep_records`` (in-process execution only) retains them for
    fingerprint-level comparisons; it never crosses a pickle boundary.
    """
    from repro.serve.server import serve as _serve

    if shared_workload_key and shared_workload is not None:
        seed_workload_cache(shared_workload_key, shared_workload)
    recorder = None
    if record:
        from repro.obs.recorder import TraceRecorder

        recorder = TraceRecorder(label=f"shard-{shard}")
    system = build_system(base_spec)
    base = build_workload(base_spec)
    workload = ShardWorkload(base, router, shard, num_shards)
    if recorder is not None:
        set_recorder = getattr(system, "set_recorder", None)
        if set_recorder is not None:
            set_recorder(recorder)
        with recorder.phase(f"fleet.shard-{shard}"):
            result = _serve(system, workload, config)
    else:
        result = _serve(system, workload, config)
    samples = [
        (record_.latency_ns, record_.queue_wait_ns, record_.service_ns)
        for record_ in (result.records or [])
    ]
    if not keep_records:
        result.records = None
    return {
        "serve": result,
        "samples": samples,
        "obs": recorder.snapshot() if recorder is not None else None,
        "pid": os.getpid(),
    }


class Fleet:
    """N sharded systems behind a request router (see module docstring).

    Built from a fleet-shaped :class:`~repro.api.session.RunSpec`
    (``fleet_shards >= 1``); :meth:`run` and :meth:`serve` execute every
    shard — serially in-process with ``workers=0`` (retaining the shard
    systems on :attr:`systems` for inspection), or across the persistent
    worker pool with ``workers > 0`` — and aggregate the fleet result.
    """

    def __init__(self, spec: RunSpec) -> None:
        if spec.fleet_shards < 1:
            raise ValueError(
                "a Fleet needs fleet_shards >= 1; set it via Simulation.fleet(n)"
            )
        self.spec = spec
        self.base_spec = _shard_base(spec)
        self.num_shards = int(spec.fleet_shards)
        self.router = make_router(spec.fleet_router, seed=spec.fleet_seed)
        #: Per-shard systems of the last serial :meth:`run`/:meth:`serve`
        #: (``None`` after pooled execution — workers keep their systems).
        self.systems: Optional[List[Any]] = None

    @property
    def router_policy(self) -> str:
        return self.router.policy

    def shard_workloads(self) -> List[ShardWorkload]:
        """All shard views over the (cached) shared base workload."""
        base = build_workload(self.base_spec)
        return [
            ShardWorkload(base, self.router, shard, self.num_shards)
            for shard in range(self.num_shards)
        ]

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _shared_workload(self) -> Tuple[Optional[str], Any]:
        """Parent-build the shared base workload once, as the sweep engine does."""
        key = workload_key(self.base_spec)
        shared = cached_workload(key)
        if shared is None:
            shared = build_workload(self.base_spec)
        return key, shared

    def _merge_obs(self, recorder: Any, payloads: Sequence[dict]) -> None:
        for shard, payload in enumerate(payloads):
            snapshot = payload.get("obs")
            if snapshot is not None:
                recorder.merge(snapshot, process=f"shard-{shard}")

    def _execute(
        self, executor, extra_args: Tuple, workers: int, recorder: Optional[Any]
    ) -> List[dict]:
        record = recorder is not None
        if workers and workers > 0:
            from repro.api.sweep import worker_pool

            key, shared = self._shared_workload()
            pool = worker_pool().get(min(int(workers), self.num_shards))
            pending = [
                pool.apply_async(
                    executor,
                    (self.base_spec, self.router, shard, self.num_shards)
                    + extra_args
                    + (key, shared, record),
                )
                for shard in range(self.num_shards)
            ]
            payloads = [task.get() for task in pending]
        else:
            # In-process serial path; identical inputs per shard, so the
            # results match the pooled path byte for byte.  Records are
            # retained (keep_records) — they never cross a process
            # boundary here and ``to_dict`` excludes them, so serial and
            # pooled result dicts still compare equal.
            self._shared_workload()  # warm the cache once, like the pool parent
            payloads = [
                executor(
                    self.base_spec, self.router, shard, self.num_shards,
                    *extra_args, None, None, record, True,
                )
                for shard in range(self.num_shards)
            ]
        if recorder is not None:
            self._merge_obs(recorder, payloads)
        return payloads

    def run(self, workers: int = 0, recorder: Optional[Any] = None) -> FleetResult:
        """Replay every shard closed-loop and aggregate the fleet result."""
        self.systems = None
        if not workers:
            # Serial path inlined (not via the worker entry point) only to
            # retain each shard's system for fingerprinting; the simulated
            # path is the same executor call.
            systems: List[Any] = []
            payloads: List[dict] = []
            key, shared = self._shared_workload()
            for shard in range(self.num_shards):
                sub = None
                if recorder is not None:
                    from repro.obs.recorder import TraceRecorder

                    sub = TraceRecorder(label=f"shard-{shard}")
                system = build_system(self.base_spec)
                workload = ShardWorkload(shared, self.router, shard, self.num_shards)
                if sub is not None:
                    set_recorder = getattr(system, "set_recorder", None)
                    if set_recorder is not None:
                        set_recorder(sub)
                    with sub.phase(f"fleet.shard-{shard}"):
                        sim = system.run(workload)
                else:
                    sim = system.run(workload)
                systems.append(system)
                payloads.append({"sim": sim, "obs": sub.snapshot() if sub else None})
            if recorder is not None:
                self._merge_obs(recorder, payloads)
            self.systems = systems
        else:
            payloads = self._execute(execute_fleet_shard, (), workers, recorder)
        per_shard = [payload["sim"] for payload in payloads]
        return FleetResult(
            system=system_label(self.spec.system),
            router=self.router_policy,
            num_shards=self.num_shards,
            combined=combine_sim_results(per_shard),
            per_shard=per_shard,
        )

    def serve(
        self, config: Any, workers: int = 0, recorder: Optional[Any] = None
    ) -> FleetServeResult:
        """Serve every shard open-loop at the configured QPS, concurrently.

        Every shard sees the full arrival process for its own requests
        (same seed, its router-assigned slice), mirroring a frontend that
        fans one arrival stream out across racks.
        """
        payloads = self._execute(execute_fleet_serve_shard, (config,), workers, recorder)
        return summarize_fleet_serve(
            system=system_label(self.spec.system),
            router=self.router_policy,
            qps=config.qps,
            sla_ns=config.sla_ns,
            per_shard=[payload["serve"] for payload in payloads],
            samples=[payload["samples"] for payload in payloads],
        )


def run_fleet(
    spec: RunSpec, workers: int = 0, recorder: Optional[Any] = None
) -> FleetResult:
    """Run the fleet described by ``spec`` (see :class:`Fleet`)."""
    return Fleet(spec).run(workers=workers, recorder=recorder)


def serve_fleet(
    spec: RunSpec, config: Any, workers: int = 0, recorder: Optional[Any] = None
) -> FleetServeResult:
    """Serve the fleet described by ``spec`` open-loop (see :class:`Fleet`)."""
    return Fleet(spec).serve(config, workers=workers, recorder=recorder)
