"""Fleet-level results: per-shard breakdowns plus combined aggregates.

Shards run concurrently (one rack each), so the combined completion time
is the *maximum* shard ``total_ns`` while every throughput counter —
requests, lookups, rows per tier, buffer traffic — is the *sum* across
shards.  Serving sessions additionally pool the per-request latency
samples of all shards, so the fleet p50..p99.9 and goodput are computed
over the union of requests, not averaged per shard.  Everything
round-trips through JSON like the single-system results do.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.net.stats import NetStats, PortStats
from repro.serve.arrivals import NS_PER_S
from repro.serve.metrics import ServeResult
from repro.sls.result import LatencyStats, SimResult

__all__ = [
    "FleetResult",
    "FleetServeResult",
    "combine_sim_results",
    "merge_net_stats",
]


def merge_net_stats(per_shard: Sequence[Optional[NetStats]]) -> Optional[NetStats]:
    """Merge per-shard packet-tier digests into one fleet digest.

    Counters sum, the queue-depth maximum is the max across shards, and
    ports are re-keyed ``shard<i>:<port>`` so same-named ports of
    different racks stay distinguishable.  ``None`` when no shard ran at
    packet fidelity.
    """
    present = [(shard, net) for shard, net in enumerate(per_shard) if net is not None]
    if not present:
        return None
    if len(per_shard) == 1:
        # A 1-shard fleet is the single-system run; hand its digest back
        # untouched (no re-keying) so the combined result stays
        # bit-identical to the plain run.
        return NetStats.from_dict(present[0][1].to_dict())
    ports: Dict[str, PortStats] = {}
    for shard, net in present:
        for name, port in net.ports.items():
            key = f"shard{shard}:{name}"
            merged = PortStats.from_dict(port.to_dict())
            merged.name = key
            ports[key] = merged
    return NetStats(
        seed=present[0][1].seed,
        packets=sum(net.packets for _, net in present),
        drops=sum(net.drops for _, net in present),
        retries=sum(net.retries for _, net in present),
        backpressure_ns=sum(net.backpressure_ns for _, net in present),
        max_queue_depth=max(net.max_queue_depth for _, net in present),
        ports=ports,
    )


def combine_sim_results(per_shard: Sequence[SimResult]) -> SimResult:
    """Fold per-shard :class:`SimResult` values into the fleet aggregate."""
    if not per_shard:
        raise ValueError("cannot combine zero shard results")
    device_counts: Dict[int, int] = {}
    extra: Dict[str, float] = {}
    for sim in per_shard:
        for device, count in sim.device_access_counts.items():
            device_counts[device] = device_counts.get(device, 0) + count
        for key, value in sim.extra.items():
            extra[key] = extra.get(key, 0.0) + value
    return SimResult(
        system=per_shard[0].system,
        total_ns=max(sim.total_ns for sim in per_shard),
        requests=sum(sim.requests for sim in per_shard),
        lookups=sum(sim.lookups for sim in per_shard),
        local_rows=sum(sim.local_rows for sim in per_shard),
        cxl_rows=sum(sim.cxl_rows for sim in per_shard),
        remote_socket_rows=sum(sim.remote_socket_rows for sim in per_shard),
        buffer_hits=sum(sim.buffer_hits for sim in per_shard),
        buffer_misses=sum(sim.buffer_misses for sim in per_shard),
        migrations=sum(sim.migrations for sim in per_shard),
        migration_cost_ns=sum(sim.migration_cost_ns for sim in per_shard),
        stall_cycles=sum(sim.stall_cycles for sim in per_shard),
        backpressure_ns=sum(sim.backpressure_ns for sim in per_shard),
        bytes_to_host=sum(sim.bytes_to_host for sim in per_shard),
        device_access_counts=device_counts,
        extra=extra,
        net=merge_net_stats([sim.net for sim in per_shard]),
    )


@dataclass
class FleetResult:
    """Outcome of one closed-loop fleet replay (per-shard + combined)."""

    system: str
    router: str
    num_shards: int
    combined: SimResult
    per_shard: List[SimResult] = field(default_factory=list)

    @property
    def total_ns(self) -> float:
        """Fleet completion time: the slowest shard's wall clock."""
        return self.combined.total_ns

    @property
    def requests(self) -> int:
        return self.combined.requests

    @property
    def lookups(self) -> int:
        return self.combined.lookups

    @property
    def goodput_lookups_per_us(self) -> float:
        """Aggregate lookup throughput over the fleet completion time."""
        return self.combined.throughput_lookups_per_us

    def shard_breakdown(self) -> List[Dict[str, Any]]:
        """Per-shard summary rows (shard index, requests, lookups, total_ns)."""
        return [
            {
                "shard": shard,
                "requests": sim.requests,
                "lookups": sim.lookups,
                "total_ns": sim.total_ns,
            }
            for shard, sim in enumerate(self.per_shard)
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "router": self.router,
            "num_shards": self.num_shards,
            "combined": self.combined.to_dict(),
            "per_shard": [sim.to_dict() for sim in self.per_shard],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetResult":
        return cls(
            system=str(data["system"]),
            router=str(data["router"]),
            num_shards=int(data["num_shards"]),
            combined=SimResult.from_dict(data["combined"]),
            per_shard=[SimResult.from_dict(entry) for entry in data.get("per_shard") or []],
        )

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "FleetResult":
        return cls.from_dict(json.loads(payload))


@dataclass
class FleetServeResult:
    """Outcome of one open-loop fleet serving session.

    ``latency``/``queue_wait``/``service`` are computed over the pooled
    per-request samples of every shard; ``duration_ns`` is the slowest
    shard's span (shards serve concurrently), and goodput/achieved QPS
    are fleet totals over that span.  ``per_shard`` keeps each rack's
    full :class:`~repro.serve.metrics.ServeResult` for breakdowns.
    """

    system: str
    router: str
    num_shards: int
    qps: float
    requests: int
    duration_ns: float
    latency: LatencyStats
    queue_wait: LatencyStats
    service: LatencyStats
    achieved_qps: float
    goodput_qps: float
    sla_attainment: float
    sla_ns: Optional[float] = None
    sim: Optional[SimResult] = None
    per_shard: List[ServeResult] = field(default_factory=list)
    #: Kept for duck-compatibility with ServeResult consumers that strip
    #: request records before pickling; fleet results never carry any.
    records: Optional[Any] = None

    def to_dict(self) -> Dict[str, Any]:
        return {
            "system": self.system,
            "router": self.router,
            "num_shards": self.num_shards,
            "qps": self.qps,
            "requests": self.requests,
            "duration_ns": self.duration_ns,
            "latency": self.latency.to_dict(),
            "queue_wait": self.queue_wait.to_dict(),
            "service": self.service.to_dict(),
            "achieved_qps": self.achieved_qps,
            "goodput_qps": self.goodput_qps,
            "sla_attainment": self.sla_attainment,
            "sla_ns": self.sla_ns,
            "sim": self.sim.to_dict() if self.sim is not None else None,
            "per_shard": [shard.to_dict() for shard in self.per_shard],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetServeResult":
        sim = data.get("sim")
        return cls(
            system=str(data["system"]),
            router=str(data["router"]),
            num_shards=int(data["num_shards"]),
            qps=float(data["qps"]),
            requests=int(data["requests"]),
            duration_ns=float(data["duration_ns"]),
            latency=LatencyStats.from_dict(data["latency"]),
            queue_wait=LatencyStats.from_dict(data["queue_wait"]),
            service=LatencyStats.from_dict(data["service"]),
            achieved_qps=float(data["achieved_qps"]),
            goodput_qps=float(data["goodput_qps"]),
            sla_attainment=float(data["sla_attainment"]),
            sla_ns=None if data.get("sla_ns") is None else float(data["sla_ns"]),
            sim=None if sim is None else SimResult.from_dict(sim),
            per_shard=[ServeResult.from_dict(entry) for entry in data.get("per_shard") or []],
        )

    def to_json(self, **kwargs: Any) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "FleetServeResult":
        return cls.from_dict(json.loads(payload))


#: Per-request (latency, queue_wait, service) samples of one shard.
ShardSamples = List[Tuple[float, float, float]]


def summarize_fleet_serve(
    *,
    system: str,
    router: str,
    qps: float,
    sla_ns: Optional[float],
    per_shard: Sequence[ServeResult],
    samples: Sequence[ShardSamples],
) -> FleetServeResult:
    """Fold per-shard serving outcomes into a :class:`FleetServeResult`.

    ``samples`` carries each shard's raw per-request timing triples —
    the workers extract them before dropping the (unpicklable-at-scale)
    record lists — so the fleet percentiles are exact over the union.
    """
    if len(per_shard) != len(samples):
        raise ValueError("per_shard and samples must align")
    latencies = [entry[0] for shard in samples for entry in shard]
    waits = [entry[1] for shard in samples for entry in shard]
    services = [entry[2] for shard in samples for entry in shard]
    requests = len(latencies)
    duration_ns = max((shard.duration_ns for shard in per_shard), default=0.0)
    duration_s = duration_ns / NS_PER_S
    if sla_ns is None:
        met = requests
    else:
        met = sum(1 for latency in latencies if latency <= sla_ns)
    stats = LatencyStats.from_samples(latencies)
    sims = [shard.sim for shard in per_shard if shard.sim is not None]
    combined_sim = combine_sim_results(sims) if len(sims) == len(per_shard) and sims else None
    if combined_sim is not None:
        combined_sim.latency = stats
    return FleetServeResult(
        system=system,
        router=router,
        num_shards=len(per_shard),
        qps=qps,
        requests=requests,
        duration_ns=duration_ns,
        latency=stats,
        queue_wait=LatencyStats.from_samples(waits),
        service=LatencyStats.from_samples(services),
        achieved_qps=requests / duration_s if duration_s > 0 else 0.0,
        goodput_qps=met / duration_s if duration_s > 0 else 0.0,
        sla_attainment=met / requests if requests else 0.0,
        sla_ns=sla_ns,
        sim=combined_sim,
        per_shard=list(per_shard),
    )
