"""Shard views: one shard's slice of a shared workload.

:class:`ShardWorkload` wraps a base workload (eager
:class:`~repro.traces.workload.SLSWorkload` or out-of-core
:class:`~repro.traces.workload.StreamingWorkload`) and exposes only the
requests a :class:`~repro.fleet.router.Router` assigns to one shard —
duck-type compatible with the engine/serve workload contract, so a
plain :class:`~repro.sls.system.SLSSystem` replays a shard with no
fleet-specific code.

Two invariants make fleet results trustworthy:

* **Global request ids.**  A shard view filters, never renumbers: the
  surviving requests are the *same objects* (same ids, hosts, addresses)
  the base workload would produce, so a 1-shard fleet replays a stream
  bit-identical to the plain single-system run, and the union of all
  shards' requests is exactly the base workload — no dupes, no gaps.
* **O(window) residency.**  Streaming shard views filter window by
  window over the base's one shared stream handle; only the active
  window is ever resident, and the view pickles as the base's small
  path+range handle plus the router (a few hundred bytes — workers
  never receive trace bytes).

Table-affinity shard views additionally slice the stream by table range
*before* address resolution (the range-sharded fast path): bags of
tables outside the shard's partition range are counted for id
continuity but never flattened.
"""

from __future__ import annotations

from itertools import chain
from typing import Iterator, List, Optional

import numpy as np

from repro.fleet.router import Router, TableAffinityRouter, TablePartition
from repro.traces.workload import SLSRequest, StreamingWorkload, flatten_table_bags

__all__ = ["ShardWorkload", "shard_views"]


class ShardWorkload:
    """One shard's view of a shared base workload (see module docstring).

    ``router`` decides membership; stateful policies (power-of-two-
    choices) are re-bound for every pass over the stream, so repeated
    replays — the counting pass, hotness profiling, the engine replay —
    all see the identical assignment.
    """

    def __init__(self, base, router: Router, shard: int, num_shards: int) -> None:
        num_shards = int(num_shards)
        shard = int(shard)
        if num_shards <= 0:
            raise ValueError("num_shards must be positive")
        if not 0 <= shard < num_shards:
            raise ValueError(f"shard {shard} out of range [0, {num_shards})")
        if not isinstance(router, Router):
            raise TypeError(f"expected a repro.fleet Router, got {router!r}")
        self.base = base
        self.router = router
        self.shard = shard
        self.num_shards = num_shards
        self._scan: Optional[dict] = None
        self._requests: Optional[List[SLSRequest]] = None

    # ------------------------------------------------------------------
    # Base pass-throughs (the engine's workload contract)
    # ------------------------------------------------------------------
    @property
    def streaming(self) -> bool:
        return bool(getattr(self.base, "streaming", False))

    @property
    def model(self):
        return self.base.model

    @property
    def address_space(self):
        return self.base.address_space

    @property
    def distribution(self) -> str:
        return self.base.distribution

    @property
    def batch_size(self) -> int:
        return self.base.batch_size

    @property
    def num_batches(self) -> int:
        return self.base.num_batches

    @property
    def working_set_bytes(self) -> int:
        return self.base.working_set_bytes

    def _bind(self):
        return self.router.bind(self.num_shards, self.address_space.num_tables)

    @property
    def table_range(self):
        """This shard's owned table range under the fleet's partition."""
        partition = TablePartition(self.address_space.num_tables, self.num_shards)
        return partition.range_of(self.shard)

    # ------------------------------------------------------------------
    # Request access
    # ------------------------------------------------------------------
    @property
    def requests(self) -> List[SLSRequest]:
        """The shard's materialized request list (eager bases only).

        Mirrors the base contract: a streaming base raises
        ``AttributeError`` here exactly like
        :class:`~repro.traces.workload.StreamingWorkload` does, which is
        what routes the engine and serve loop onto their windowed paths.
        """
        if self.streaming:
            raise AttributeError(
                "streaming shard views hold no materialized request list; "
                "iterate the view (or iter_windows()) instead"
            )
        if self._requests is None:
            bound = self._bind()
            self._requests = [
                request for request in self.base.requests
                if bound.route(request) == self.shard
            ]
        return self._requests

    def iter_windows(
        self, window_batches: Optional[int] = None
    ) -> Iterator[List[SLSRequest]]:
        """Yield this shard's requests window by window (one window resident)."""
        if not self.streaming:
            yield list(self.requests)
            return
        if self.router.table_affine and isinstance(self.base, StreamingWorkload):
            yield from self._iter_table_range_windows(window_batches)
            return
        bound = self._bind()
        for window in self.base.iter_windows(window_batches):
            yield [request for request in window if bound.route(request) == self.shard]

    def _iter_table_range_windows(
        self, window_batches: Optional[int]
    ) -> Iterator[List[SLSRequest]]:
        """Range-sharded stream slice: flatten only this shard's tables.

        Bags of foreign tables are *counted* (to keep the global request
        ids identical to the base flattening) but never resolved into
        addresses or request objects — the per-shard flattening cost
        scales with the shard's own table range, not the whole trace.
        """
        base = self.base
        lo, hi = self.table_range
        space = base.address_space
        row_bytes = base.model.embedding_row_bytes
        host_of_sample = base._host_of_sample()
        if window_batches is None:
            window_batches = base.window_batches
        request_id = 0
        for window in base.stream.windows(window_batches):
            requests: List[SLSRequest] = []
            for batch in window:
                for table in range(batch.num_tables):
                    indices = batch.indices_per_table[table]
                    offsets = batch.offsets_per_table[table]
                    if not lo <= table < hi:
                        bounds = np.concatenate([np.asarray(offsets), [len(indices)]])
                        request_id += int(np.count_nonzero(np.diff(bounds)))
                        continue
                    indices = indices.astype(np.int64)
                    table_addresses = space.row_addresses(table, indices)
                    request_id = flatten_table_bags(
                        requests, request_id, table, indices, offsets,
                        table_addresses, row_bytes, host_of_sample,
                    )
            yield requests

    def __iter__(self) -> Iterator[SLSRequest]:
        if self.streaming:
            return chain.from_iterable(self.iter_windows())
        return iter(self.requests)

    def iter_address_arrays(self) -> Iterator[np.ndarray]:
        """Per-request address arrays of this shard, in request order.

        The streaming hotness-profiling pass consumes these; yielding the
        kept requests' own address views keeps the profile bit-identical
        to profiling the equivalent eager shard (same counts, same
        first-occurrence order).
        """
        for request in self:
            yield request.addresses

    # ------------------------------------------------------------------
    # Whole-shard aggregates (one filtered pass, cached)
    # ------------------------------------------------------------------
    def _scanned(self) -> dict:
        if self._scan is None:
            if not self.streaming:
                kept = self.requests
                self._scan = {
                    "num_requests": len(kept),
                    "total_lookups": int(sum(r.num_candidates for r in kept)),
                }
            else:
                num_requests = 0
                total_lookups = 0
                for window in self.iter_windows():
                    num_requests += len(window)
                    total_lookups += int(sum(r.num_candidates for r in window))
                self._scan = {
                    "num_requests": num_requests,
                    "total_lookups": total_lookups,
                }
        return self._scan

    @property
    def num_requests(self) -> int:
        return self._scanned()["num_requests"]

    def __len__(self) -> int:
        return self.num_requests

    @property
    def total_lookups(self) -> int:
        return self._scanned()["total_lookups"]

    @property
    def total_bytes(self) -> int:
        return self.total_lookups * self.model.embedding_row_bytes

    def unique_pages(self) -> int:
        page_size = self.address_space.page_size
        pages: set = set()
        for addresses in self.iter_address_arrays():
            pages.update((addresses // page_size).tolist())
        return len(pages)

    # ------------------------------------------------------------------
    # Pickling: ship the handle, never the cache
    # ------------------------------------------------------------------
    def __getstate__(self):
        """Drop the derived caches so a shipped view is only the handle.

        The filtered request list (eager bases) is views into the base's
        arrays in memory but would materialize copies across a pickle
        boundary, and the scan cache is recomputed in one cheap pass.
        """
        state = self.__dict__.copy()
        state["_scan"] = None
        state["_requests"] = None
        return state


def shard_views(base, router: Router, num_shards: int) -> List[ShardWorkload]:
    """All ``num_shards`` shard views of ``base`` under one router."""
    return [ShardWorkload(base, router, shard, num_shards) for shard in range(num_shards)]
