"""Datacenter-scale fleet simulation: sharded systems behind request routers.

The paper models a handful of hosts on one fabric; ``repro.fleet``
composes N of those single-fabric systems — one per rack, each owning a
table shard of the partitioned embedding space — behind a pluggable
request-routing tier, and aggregates fleet-level results (goodput,
p50..p99.9, per-shard breakdowns).  The moving parts:

* :mod:`repro.fleet.router` — routing policies (``hash``,
  ``power-of-two-choices``, ``table-affinity``) and the table partition.
* :mod:`repro.fleet.shard` — :class:`~repro.fleet.shard.ShardWorkload`,
  one shard's filtered view over a shared (optionally streaming)
  workload with global request ids and O(window) residency.
* :mod:`repro.fleet.executor` — :class:`~repro.fleet.executor.Fleet`,
  executing shards serially or across the persistent worker pool.
* :mod:`repro.fleet.result` — per-shard + combined aggregates with JSON
  round trips.

Entry points: ``Simulation.fleet(shards, router=...)`` for sessions and
sweeps, ``python -m repro fleet run|serve`` on the CLI, or
:func:`run_fleet` / :func:`serve_fleet` directly when per-shard
breakdowns and pooled shard execution are wanted.
"""

from repro.fleet.executor import Fleet, run_fleet, serve_fleet
from repro.fleet.result import (
    FleetResult,
    FleetServeResult,
    combine_sim_results,
    merge_net_stats,
)
from repro.fleet.router import (
    ROUTER_POLICIES,
    HashRouter,
    PowerOfTwoRouter,
    Router,
    TableAffinityRouter,
    TablePartition,
    make_router,
)
from repro.fleet.shard import ShardWorkload, shard_views

__all__ = [
    "Fleet",
    "FleetResult",
    "FleetServeResult",
    "HashRouter",
    "PowerOfTwoRouter",
    "ROUTER_POLICIES",
    "Router",
    "ShardWorkload",
    "TableAffinityRouter",
    "TablePartition",
    "combine_sim_results",
    "make_router",
    "merge_net_stats",
    "run_fleet",
    "serve_fleet",
    "shard_views",
]
