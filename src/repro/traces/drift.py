"""Popularity drift: hot-set rotation over the lifetime of a trace.

Production embedding traffic is not stationary — the set of hot rows
rotates as content trends come and go, which is exactly the regime that
stresses online page management (a placement tuned for yesterday's hot set
keeps paying CXL latency for today's).  The generator here produces
Meta-shaped batches whose hot set is re-drawn every ``period_batches``
batches from a phase-seeded RNG, while bag sizes and the cold tail follow
the same per-table Poisson / Zipf structure as
:func:`~repro.traces.meta.generate_meta_like_trace`.

Everything is a pure function of ``(config.seed, drift knobs)``, so drift
workloads are as deterministic — and as exportable via
:mod:`repro.traces.files` — as the stationary ones.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.config import WorkloadConfig
from repro.traces.meta import TraceBatch
from repro.traces.synthetic import _zipfian_indices
from repro.traces.workload import SLSWorkload, workload_from_batches


def generate_drifting_trace(
    config: WorkloadConfig,
    period_batches: int = 2,
    hot_fraction: float = 0.05,
    hot_probability: float = 0.8,
) -> List[TraceBatch]:
    """Generate batches whose hot set rotates every ``period_batches``.

    Batch ``b`` belongs to phase ``b // period_batches``; each phase draws
    its own hot set (``hot_fraction`` of the rows, capturing
    ``hot_probability`` of the accesses) from an RNG seeded by
    ``(config.seed, phase)``, so consecutive phases overlap only by
    chance.  The cold tail is the same alpha-0.8 Zipfian as the META
    distribution.
    """
    if period_batches <= 0:
        raise ValueError("period_batches must be positive")
    if not 0.0 < hot_fraction <= 1.0:
        raise ValueError("hot_fraction must be in (0, 1]")
    if not 0.0 <= hot_probability <= 1.0:
        raise ValueError("hot_probability must be in [0, 1]")
    model = config.model
    rng = np.random.default_rng(config.seed)
    table_pooling = rng.poisson(config.pooling_factor, size=model.num_tables).clip(1, None)
    hot_rows = max(1, int(model.num_embeddings * hot_fraction))

    batches: List[TraceBatch] = []
    phase = -1
    hot_set = np.empty(0, dtype=np.int64)
    for batch_index in range(config.num_batches):
        batch_phase = batch_index // period_batches
        if batch_phase != phase:
            phase = batch_phase
            hot_set = np.random.default_rng([config.seed, phase]).choice(
                model.num_embeddings, size=hot_rows, replace=False
            )
        indices_per_table: List[np.ndarray] = []
        offsets_per_table: List[np.ndarray] = []
        for table in range(model.num_tables):
            lengths = rng.poisson(table_pooling[table], size=config.batch_size).clip(1, None)
            offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
            count = int(lengths.sum())
            is_hot = rng.random(count) < hot_probability
            hot_choice = hot_set[rng.integers(0, hot_rows, size=count)]
            cold_choice = _zipfian_indices(rng, count, model.num_embeddings, alpha=0.8)
            indices_per_table.append(np.where(is_hot, hot_choice, cold_choice).astype(np.int64))
            offsets_per_table.append(offsets)
        batches.append(
            TraceBatch(indices_per_table=indices_per_table, offsets_per_table=offsets_per_table)
        )
    return batches


def build_drifting_workload(
    config: WorkloadConfig,
    period_batches: int = 2,
    hot_fraction: float = 0.05,
    hot_probability: float = 0.8,
    host_id: int = 0,
    num_hosts: int = 1,
) -> SLSWorkload:
    """Drifting-popularity counterpart of :func:`~repro.traces.workload.build_workload`."""
    batches = generate_drifting_trace(
        config,
        period_batches=period_batches,
        hot_fraction=hot_fraction,
        hot_probability=hot_probability,
    )
    return workload_from_batches(
        batches,
        config.model,
        distribution=f"drift/{period_batches}",
        batch_size=config.batch_size,
        num_batches=config.num_batches,
        host_id=host_id,
        num_hosts=num_hosts,
    )


__all__ = ["generate_drifting_trace", "build_drifting_workload"]
