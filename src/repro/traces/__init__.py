"""Embedding-lookup trace generation and workload containers.

The paper evaluates with the open-source Meta DLRM traces plus synthetic
Zipfian / Normal / Uniform / Random traces (Fig 12 b).  This package
provides deterministic generators for all five distributions and the
:class:`~repro.traces.workload.SLSWorkload` container consumed by every SLS
system implementation.
"""

from repro.traces.meta import generate_meta_like_trace
from repro.traces.synthetic import TraceDistribution, generate_indices
from repro.traces.workload import SLSRequest, SLSWorkload, build_workload

__all__ = [
    "generate_meta_like_trace",
    "TraceDistribution",
    "generate_indices",
    "SLSRequest",
    "SLSWorkload",
    "build_workload",
]
