"""Embedding-lookup trace generation, ingestion and workload containers.

The paper evaluates with the open-source Meta DLRM traces plus synthetic
Zipfian / Normal / Uniform / Random traces (Fig 12 b).  This package
provides deterministic generators for all five distributions, a
drifting-popularity generator (hot-set rotation over time), trace-file
ingestion/export (Meta ``dlrm_datasets``-style ``.npz`` archives and
Criteo-style TSV), and the :class:`~repro.traces.workload.SLSWorkload`
container consumed by every SLS system implementation.
"""

from repro.traces.drift import build_drifting_workload, generate_drifting_trace
from repro.traces.files import (
    load_criteo_tsv,
    load_trace,
    load_trace_file,
    save_criteo_tsv,
    save_trace,
    save_workload_trace,
    workload_from_trace,
)
from repro.traces.meta import TraceBatch, generate_meta_like_trace, iter_meta_like_trace
from repro.traces.stream import (
    BatchStream,
    MemoryBatchStream,
    NpzBatchStream,
    SyntheticBatchStream,
    TsvBatchStream,
    iter_criteo_tsv,
    open_batch_stream,
)
from repro.traces.synthetic import TraceDistribution, generate_indices
from repro.traces.workload import (
    SLSRequest,
    SLSWorkload,
    StreamingWorkload,
    build_workload,
    workload_from_batches,
)

__all__ = [
    "TraceBatch",
    "generate_meta_like_trace",
    "iter_meta_like_trace",
    "BatchStream",
    "MemoryBatchStream",
    "NpzBatchStream",
    "SyntheticBatchStream",
    "TsvBatchStream",
    "iter_criteo_tsv",
    "open_batch_stream",
    "StreamingWorkload",
    "generate_drifting_trace",
    "build_drifting_workload",
    "TraceDistribution",
    "generate_indices",
    "SLSRequest",
    "SLSWorkload",
    "build_workload",
    "workload_from_batches",
    "load_trace",
    "load_trace_file",
    "load_criteo_tsv",
    "save_trace",
    "save_criteo_tsv",
    "save_workload_trace",
    "workload_from_trace",
]
