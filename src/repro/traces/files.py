"""Trace-file ingestion and export.

The paper evaluates on the open-source Meta ``dlrm_datasets`` traces —
per-table streams of (indices, offsets) pairs.  This module moves real
trace files through the same :class:`~repro.traces.meta.TraceBatch`
interface the synthetic generators produce, in two on-disk formats:

* **npz** (Meta ``dlrm_datasets`` style) — one compressed numpy archive
  holding every batch's per-table ``indices``/``offsets`` arrays.  This is
  the lossless format: :func:`save_trace` → :func:`load_trace` round-trips
  bit-identically, so any synthetic workload can be exported once and
  replayed forever (:func:`save_workload_trace` /
  :func:`workload_from_trace`).
* **tsv** (Criteo style) — one sample per line, one tab-separated
  categorical index per table (decimal or Criteo's hashed hex).  Pooling
  factor is 1 by construction; loading groups lines into batches.

Both loaders validate shapes eagerly (monotone offsets, index bounds when a
model is given) so a malformed file fails at ingestion with a pointed error
rather than deep inside the simulator.
"""

from __future__ import annotations

import pathlib
from typing import List, Optional, Sequence, Union

import numpy as np

from repro.config import ModelConfig
from repro.traces.meta import TraceBatch
from repro.traces.stream import (
    DEFAULT_WINDOW_BATCHES,
    NpzBatchStream,
    _parse_index,
    _validate_bags,
    iter_criteo_tsv,
    open_batch_stream,
)
from repro.traces.workload import (
    SLSWorkload,
    StreamingWorkload,
    workload_from_batches,
)

PathLike = Union[str, pathlib.Path]

#: Recognised trace-file formats.
TRACE_FORMATS = ("npz", "tsv")


def trace_format(path: PathLike, format: Optional[str] = None) -> str:
    """Resolve the trace format for ``path`` (explicit arg wins over suffix)."""
    if format is not None:
        if format not in TRACE_FORMATS:
            raise ValueError(
                f"unknown trace format {format!r}; expected one of: {', '.join(TRACE_FORMATS)}"
            )
        return format
    suffix = pathlib.Path(path).suffix.lower().lstrip(".")
    if suffix in TRACE_FORMATS:
        return suffix
    raise ValueError(
        f"cannot infer trace format from {str(path)!r}; use a .npz or .tsv "
        "suffix or pass format= explicitly"
    )


# ---------------------------------------------------------------------------
# npz (Meta dlrm_datasets style)
# ---------------------------------------------------------------------------
def save_trace(batches: Sequence[TraceBatch], path: PathLike) -> pathlib.Path:
    """Write ``batches`` to ``path`` as a compressed ``.npz`` archive.

    Layout: scalar ``num_batches``/``num_tables`` plus one
    ``batch{i}_table{t}_indices`` / ``..._offsets`` int64 array pair per
    (batch, table).  :func:`load_trace` restores the exact arrays.
    """
    if not batches:
        raise ValueError("cannot save an empty trace")
    num_tables = batches[0].num_tables
    payload = {
        "num_batches": np.asarray(len(batches), dtype=np.int64),
        "num_tables": np.asarray(num_tables, dtype=np.int64),
    }
    for i, batch in enumerate(batches):
        if batch.num_tables != num_tables:
            raise ValueError(
                f"batch {i} has {batch.num_tables} tables, expected {num_tables}"
            )
        for t in range(num_tables):
            payload[f"batch{i}_table{t}_indices"] = np.asarray(
                batch.indices_per_table[t], dtype=np.int64
            )
            payload[f"batch{i}_table{t}_offsets"] = np.asarray(
                batch.offsets_per_table[t], dtype=np.int64
            )
    path = pathlib.Path(path)
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **payload)
    return path


def load_trace(path: PathLike) -> List[TraceBatch]:
    """Load a ``.npz`` trace written by :func:`save_trace`.

    Materialized form of :class:`~repro.traces.stream.NpzBatchStream`;
    both read the archive through the same member-by-member path, so
    validation and error reporting cannot drift between eager and
    streaming ingestion.
    """
    return list(NpzBatchStream(path))


# ---------------------------------------------------------------------------
# tsv (Criteo style)
# ---------------------------------------------------------------------------
def load_criteo_tsv(
    path: PathLike,
    batch_size: int = 8,
    num_tables: Optional[int] = None,
    hex_indices: bool = False,
) -> List[TraceBatch]:
    """Load a Criteo-style TSV: one sample per line, one index per table.

    Every line holds ``num_tables`` tab-separated categorical indices
    (pooling factor 1, as in the Criteo click logs where each sample
    contributes exactly one id per categorical feature).  Lines are grouped
    into batches of ``batch_size`` (the final partial batch is kept).
    ``hex_indices=True`` reads the whole file as Criteo's hashed hex ids;
    the default is decimal (what :func:`save_criteo_tsv` writes).

    Built on the incremental parser
    (:func:`~repro.traces.stream.iter_criteo_tsv`): lines are decoded and
    batched as they are read — never the whole file at once — and decode
    errors carry the offending ``path:line`` location.
    """
    return list(
        iter_criteo_tsv(
            path, batch_size=batch_size, num_tables=num_tables, hex_indices=hex_indices
        )
    )


def save_criteo_tsv(batches: Sequence[TraceBatch], path: PathLike) -> pathlib.Path:
    """Write single-lookup-per-bag batches as a Criteo-style TSV.

    Only traces whose every bag holds exactly one index are expressible in
    this format (that is what a Criteo-style log is); anything else raises
    — use the lossless :func:`save_trace` npz format instead.
    """
    if not batches:
        raise ValueError("cannot save an empty trace")
    path = pathlib.Path(path)
    with open(path, "w", encoding="utf-8") as handle:
        for i, batch in enumerate(batches):
            size = batch.batch_size
            for t in range(batch.num_tables):
                indices = batch.indices_per_table[t]
                offsets = batch.offsets_per_table[t]
                if len(indices) != size or not np.array_equal(
                    np.asarray(offsets), np.arange(size, dtype=np.int64)
                ):
                    raise ValueError(
                        f"batch {i} table {t} has multi-lookup bags; the "
                        "Criteo TSV format holds exactly one index per bag "
                        "(export as npz via save_trace instead)"
                    )
            for sample in range(size):
                row = "\t".join(
                    str(int(batch.indices_per_table[t][sample]))
                    for t in range(batch.num_tables)
                )
                handle.write(row + "\n")
    return path


# ---------------------------------------------------------------------------
# Workload-level convenience
# ---------------------------------------------------------------------------
def load_trace_file(
    path: PathLike,
    format: Optional[str] = None,
    batch_size: int = 8,
    hex_indices: bool = False,
) -> List[TraceBatch]:
    """Load a trace file of either format (tsv honors ``batch_size``/``hex_indices``)."""
    resolved = trace_format(path, format)
    if resolved == "npz":
        return load_trace(path)
    return load_criteo_tsv(path, batch_size=batch_size, hex_indices=hex_indices)


def save_workload_trace(workload: SLSWorkload, path: PathLike) -> pathlib.Path:
    """Export the trace behind ``workload`` as a lossless ``.npz`` archive.

    Requires the workload to carry its source batches (every workload built
    through :func:`~repro.traces.workload.workload_from_batches` does);
    re-loading with :func:`workload_from_trace` under the same model and
    host assignment rebuilds a bit-identical request stream.
    """
    if workload.trace is None:
        raise ValueError(
            "workload carries no trace batches to export (it was assembled "
            "directly from requests); only batch-derived workloads round-trip"
        )
    return save_trace(workload.trace, path)


def workload_from_trace(
    path: PathLike,
    model: ModelConfig,
    *,
    format: Optional[str] = None,
    batch_size: int = 8,
    hex_indices: bool = False,
    host_id: int = 0,
    num_hosts: int = 1,
    distribution: Optional[str] = None,
    streaming: bool = False,
    window_batches: int = DEFAULT_WINDOW_BATCHES,
) -> Union[SLSWorkload, StreamingWorkload]:
    """Build an :class:`SLSWorkload` from a trace file.

    Indices are bounds-checked against ``model.num_embeddings`` by the
    address computation, so a trace recorded for a bigger table fails with
    a pointed error instead of aliasing rows.

    With ``streaming=True`` the file is *not* loaded: the returned
    :class:`~repro.traces.workload.StreamingWorkload` keeps a re-iterable
    stream handle and flattens ``window_batches`` trace batches of
    requests at a time, reconstructing the identical request stream the
    eager path builds (same ids, hosts and addresses).
    """
    label = distribution or f"file:{pathlib.Path(path).name}"
    if streaming:
        stream = open_batch_stream(
            path, format=format, batch_size=batch_size, hex_indices=hex_indices
        )
        return StreamingWorkload(
            stream,
            model,
            distribution=label,
            host_id=host_id,
            num_hosts=num_hosts,
            window_batches=window_batches,
        )
    batches = load_trace_file(
        path, format=format, batch_size=batch_size, hex_indices=hex_indices
    )
    return workload_from_batches(
        batches,
        model,
        distribution=label,
        host_id=host_id,
        num_hosts=num_hosts,
    )


__all__ = [
    "TRACE_FORMATS",
    "trace_format",
    "save_trace",
    "load_trace",
    "load_criteo_tsv",
    "save_criteo_tsv",
    "load_trace_file",
    "save_workload_trace",
    "workload_from_trace",
]
