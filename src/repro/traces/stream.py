"""Out-of-core trace ingestion: re-iterable batch streams.

A :class:`BatchStream` is the lazy counterpart of the ``List[TraceBatch]``
every eager loader returns: a **re-iterable** source of
:class:`~repro.traces.meta.TraceBatch` objects that keeps only the batch
(or batch window) being consumed resident.  The streaming workload path
(:class:`~repro.traces.workload.StreamingWorkload`) flattens these windows
through the exact eager request-construction code, so a trace replayed
out-of-core is bit-identical to the same trace loaded whole.

Three sources cover the repo's trace universe:

* :class:`NpzBatchStream` — a :func:`~repro.traces.files.save_trace`
  archive.  ``np.load`` on an ``.npz`` keeps the zip directory open and
  decompresses each member array on first access, so iterating batch by
  batch reads O(batch) bytes at a time instead of inflating the archive
  up front.
* :class:`TsvBatchStream` — a Criteo-style TSV, decoded **incrementally**
  line by line (the eager loader is built on the same parser, so the two
  cannot drift).  Decode errors always carry ``path:line`` locations.
* :class:`SyntheticBatchStream` — the seeded Meta-like generator driven
  lazily (:func:`~repro.traces.meta.iter_meta_like_trace`), for
  arbitrarily long synthetic traces without a file.

Streams hold no open file handles between iterations — they are cheap,
picklable *handles* (path + decode parameters), which is what the sweep
worker pool ships to chunks instead of materialized workloads.
"""

from __future__ import annotations

import pathlib
from typing import Iterable, Iterator, List, Optional, Sequence, Union

import numpy as np

from repro.config import WorkloadConfig
from repro.traces.meta import TraceBatch, iter_meta_like_trace
from repro.traces.synthetic import TraceDistribution

PathLike = Union[str, pathlib.Path]

#: Default number of trace batches flattened per streaming window.  Large
#: enough to amortize the per-window numpy address resolution, small enough
#: that a window of typical batches stays a few MB resident.
DEFAULT_WINDOW_BATCHES = 64


def _validate_bags(indices: np.ndarray, offsets: np.ndarray, where: str) -> None:
    if offsets.size and int(offsets[0]) != 0:
        raise ValueError(f"{where}: offsets must start at 0")
    if offsets.size > 1 and np.any(np.diff(offsets) < 0):
        raise ValueError(f"{where}: offsets must be non-decreasing")
    if offsets.size and int(offsets[-1]) > indices.size:
        raise ValueError(f"{where}: last offset exceeds the index count")
    if indices.size and int(indices.min()) < 0:
        raise ValueError(f"{where}: negative embedding index")


def _parse_index(token: str, path: PathLike, line_no: int, base: int) -> int:
    """Parse one categorical index in the file's declared base.

    The base is a per-file property, never guessed per token: real Criteo
    hashed features include all-digit tokens (``"10131014"``) that would
    silently alias under mixed-base parsing.
    """
    try:
        value = int(token, base)
    except ValueError:
        kind = "hexadecimal" if base == 16 else "decimal"
        hint = "" if base == 16 else " (pass hex_indices=True for Criteo hashed logs)"
        raise ValueError(
            f"{path}:{line_no}: {token!r} is not a {kind} index{hint}"
        ) from None
    if value < 0:
        raise ValueError(f"{path}:{line_no}: negative embedding index {token!r}")
    return value


def iter_criteo_tsv(
    path: PathLike,
    batch_size: int = 8,
    num_tables: Optional[int] = None,
    hex_indices: bool = False,
) -> Iterator[TraceBatch]:
    """Incrementally decode a Criteo-style TSV into batches.

    The buffered-reader core behind both :class:`TsvBatchStream` and the
    eager :func:`~repro.traces.files.load_criteo_tsv`: lines are parsed as
    they are read and grouped into batches of ``batch_size`` samples (the
    final partial batch is kept), so at no point is the whole file — or
    its decoded sample list — resident.  Malformed rows (short row, extra
    column, non-numeric id, wrong base) fail with the offending
    ``path:line`` location.
    """
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    base = 16 if hex_indices else 10
    path = pathlib.Path(path)
    chunk: List[List[int]] = []
    saw_samples = False
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.rstrip("\n")
            if not line or line.startswith("#"):
                continue
            tokens = line.split("\t")
            if num_tables is None:
                num_tables = len(tokens)
            elif len(tokens) != num_tables:
                raise ValueError(
                    f"{path}:{line_no}: expected {num_tables} columns, found {len(tokens)}"
                )
            chunk.append([_parse_index(token, path, line_no, base) for token in tokens])
            saw_samples = True
            if len(chunk) == batch_size:
                yield _tsv_chunk_batch(chunk, num_tables)
                chunk = []
    if chunk:
        assert num_tables is not None
        yield _tsv_chunk_batch(chunk, num_tables)
    if not saw_samples:
        raise ValueError(f"{path}: no samples found")


def _tsv_chunk_batch(chunk: List[List[int]], num_tables: int) -> TraceBatch:
    indices_per_table = [
        np.asarray([sample[t] for sample in chunk], dtype=np.int64)
        for t in range(num_tables)
    ]
    offsets = np.arange(len(chunk), dtype=np.int64)
    return TraceBatch(
        indices_per_table=indices_per_table,
        offsets_per_table=[offsets.copy() for _ in range(num_tables)],
    )


class BatchStream:
    """A re-iterable, O(window)-resident source of :class:`TraceBatch`.

    Subclasses implement :meth:`__iter__`; every call starts a fresh pass
    over the source, so a stream can feed a profiling pass, the replay
    itself and a verification pass without rewinding state.  Streams carry
    no open handles between iterations and pickle as small handles.
    """

    def __iter__(self) -> Iterator[TraceBatch]:
        raise NotImplementedError

    def windows(self, window_batches: int = DEFAULT_WINDOW_BATCHES) -> Iterator[List[TraceBatch]]:
        """Group the stream into lists of at most ``window_batches`` batches."""
        if window_batches <= 0:
            raise ValueError("window_batches must be positive")
        window: List[TraceBatch] = []
        for batch in self:
            window.append(batch)
            if len(window) == window_batches:
                yield window
                window = []
        if window:
            yield window

    def materialize(self) -> List[TraceBatch]:
        """Read the whole stream into a list (the eager representation)."""
        return list(self)


class MemoryBatchStream(BatchStream):
    """An in-memory batch list behind the stream interface.

    The degenerate stream used by tests and by synthetic workloads that
    are already materialized — iteration order and contents are exactly
    the wrapped list's.
    """

    def __init__(self, batches: Sequence[TraceBatch]) -> None:
        self.batches = list(batches)

    def __iter__(self) -> Iterator[TraceBatch]:
        return iter(self.batches)


class NpzBatchStream(BatchStream):
    """Stream a :func:`~repro.traces.files.save_trace` ``.npz`` archive.

    Each iteration opens the archive once and pulls the per-(batch, table)
    member arrays on demand — ``np.load`` decompresses zip members lazily,
    so only the batches of the active window are ever inflated.  The
    object itself holds just the path (picklable sweep handle).
    """

    def __init__(self, path: PathLike) -> None:
        self.path = pathlib.Path(path)
        self._shape: Optional[tuple] = None

    def _header(self, archive) -> tuple:
        try:
            num_batches = int(archive["num_batches"])
            num_tables = int(archive["num_tables"])
        except KeyError as error:
            raise ValueError(
                f"{self.path}: not a trace archive (missing {error.args[0]!r})"
            ) from None
        self._shape = (num_batches, num_tables)
        return self._shape

    @property
    def shape(self) -> tuple:
        """``(num_batches, num_tables)`` from the archive header."""
        if self._shape is None:
            with np.load(self.path) as archive:
                self._header(archive)
        return self._shape

    def __iter__(self) -> Iterator[TraceBatch]:
        with np.load(self.path) as archive:
            num_batches, num_tables = self._header(archive)
            for i in range(num_batches):
                indices_per_table: List[np.ndarray] = []
                offsets_per_table: List[np.ndarray] = []
                for t in range(num_tables):
                    try:
                        indices = archive[f"batch{i}_table{t}_indices"].astype(np.int64)
                        offsets = archive[f"batch{i}_table{t}_offsets"].astype(np.int64)
                    except KeyError as error:
                        raise ValueError(
                            f"{self.path}: truncated trace archive "
                            f"(missing {error.args[0]!r})"
                        ) from None
                    _validate_bags(indices, offsets, f"{self.path} batch {i} table {t}")
                    indices_per_table.append(indices)
                    offsets_per_table.append(offsets)
                yield TraceBatch(
                    indices_per_table=indices_per_table,
                    offsets_per_table=offsets_per_table,
                )

    def __getstate__(self):
        # Ship only the handle; the header cache re-reads on the far side.
        return {"path": self.path, "_shape": None}


class TsvBatchStream(BatchStream):
    """Stream a Criteo-style TSV through :func:`iter_criteo_tsv`."""

    def __init__(
        self,
        path: PathLike,
        batch_size: int = 8,
        num_tables: Optional[int] = None,
        hex_indices: bool = False,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        self.path = pathlib.Path(path)
        self.batch_size = batch_size
        self.num_tables = num_tables
        self.hex_indices = hex_indices

    def __iter__(self) -> Iterator[TraceBatch]:
        return iter_criteo_tsv(
            self.path,
            batch_size=self.batch_size,
            num_tables=self.num_tables,
            hex_indices=self.hex_indices,
        )


class SyntheticBatchStream(BatchStream):
    """Stream the seeded Meta-like generator without materializing it.

    Every iteration replays :func:`~repro.traces.meta.iter_meta_like_trace`
    from the configured seed, so repeated passes (profiling, replay,
    verification) observe the identical batch sequence that
    :func:`~repro.traces.meta.generate_meta_like_trace` would return as a
    list.
    """

    def __init__(
        self, config: WorkloadConfig, distribution: Optional[str] = None
    ) -> None:
        self.config = config
        self.distribution = distribution or config.distribution

    def __iter__(self) -> Iterator[TraceBatch]:
        return iter_meta_like_trace(
            self.config, TraceDistribution.from_name(self.distribution)
        )


def open_batch_stream(
    path: PathLike,
    format: Optional[str] = None,
    batch_size: int = 8,
    hex_indices: bool = False,
) -> BatchStream:
    """Open a trace file of either format as a :class:`BatchStream`."""
    from repro.traces.files import trace_format

    resolved = trace_format(path, format)
    if resolved == "npz":
        return NpzBatchStream(path)
    return TsvBatchStream(path, batch_size=batch_size, hex_indices=hex_indices)


def as_batch_stream(source: Union[BatchStream, Iterable[TraceBatch]]) -> BatchStream:
    """Coerce a batch list (or any finite iterable) to a stream."""
    if isinstance(source, BatchStream):
        return source
    return MemoryBatchStream(list(source))


__all__ = [
    "DEFAULT_WINDOW_BATCHES",
    "BatchStream",
    "MemoryBatchStream",
    "NpzBatchStream",
    "SyntheticBatchStream",
    "TsvBatchStream",
    "as_batch_stream",
    "iter_criteo_tsv",
    "open_batch_stream",
]
