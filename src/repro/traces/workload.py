"""SLS workload container consumed by every simulated system."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Iterator, List, Optional

import numpy as np

from repro.config import ModelConfig, WorkloadConfig
from repro.memsys.address_space import AddressSpace
from repro.traces.meta import TraceBatch, generate_meta_like_trace
from repro.traces.synthetic import TraceDistribution


@dataclass
class SLSRequest:
    """One row-accumulation request: sum ``rows`` of ``table`` into one vector.

    This is the unit of work the host hands to the SLS engine (one bag of one
    sample on one table).  ``addresses`` are the byte addresses of every row
    candidate in the shared embedding address space.
    """

    request_id: int
    host_id: int
    table: int
    sample: int
    rows: np.ndarray
    addresses: np.ndarray
    row_bytes: int

    @property
    def num_candidates(self) -> int:
        return len(self.rows)

    @property
    def bytes_accessed(self) -> int:
        return self.num_candidates * self.row_bytes


@dataclass
class SLSWorkload:
    """A full SLS workload: requests plus the address space they live in."""

    model: ModelConfig
    address_space: AddressSpace
    requests: List[SLSRequest]
    batch_size: int
    num_batches: int
    distribution: str

    def __iter__(self) -> Iterator[SLSRequest]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    # ``total_lookups``/``total_bytes`` are summed once and cached: requests
    # are immutable after construction and the online serving loop reads
    # these per-tick, so recomputing the full sums on every access would put
    # an O(requests) walk on the serving hot path.
    @cached_property
    def total_lookups(self) -> int:
        return int(sum(r.num_candidates for r in self.requests))

    @cached_property
    def total_bytes(self) -> int:
        return int(sum(r.bytes_accessed for r in self.requests))

    @property
    def working_set_bytes(self) -> int:
        return self.address_space.total_bytes

    def unique_pages(self) -> int:
        if not self.requests:
            return 0
        page_size = self.address_space.page_size
        addresses = np.concatenate([request.addresses for request in self.requests])
        return int(np.unique(addresses // page_size).size)


def build_workload(
    config: WorkloadConfig,
    distribution: Optional[str] = None,
    host_id: int = 0,
    num_hosts: int = 1,
) -> SLSWorkload:
    """Build an :class:`SLSWorkload` from a :class:`~repro.config.WorkloadConfig`.

    When ``num_hosts`` is greater than one, requests are assigned to hosts
    round-robin by sample, matching the paper's multi-host experiments where
    concurrent hosts issue batches against the same tables.
    """
    dist_name = distribution or config.distribution
    dist = TraceDistribution.from_name(dist_name)
    batches: List[TraceBatch] = generate_meta_like_trace(config, distribution=dist)
    space = AddressSpace.for_model(config.model)
    row_bytes = config.model.embedding_row_bytes

    requests: List[SLSRequest] = []
    request_id = 0
    for batch in batches:
        for table in range(batch.num_tables):
            indices = batch.indices_per_table[table].astype(np.int64)
            offsets = batch.offsets_per_table[table]
            bounds = np.concatenate([offsets, [len(indices)]])
            # One vectorized address computation per (batch, table); the
            # per-bag arrays below are views into it.
            table_addresses = space.row_addresses(table, indices)
            for sample in range(batch.batch_size):
                start, end = int(bounds[sample]), int(bounds[sample + 1])
                rows = indices[start:end]
                if len(rows) == 0:
                    continue
                addresses = table_addresses[start:end]
                requests.append(
                    SLSRequest(
                        request_id=request_id,
                        host_id=(host_id + sample) % max(1, num_hosts),
                        table=table,
                        sample=sample,
                        rows=rows,
                        addresses=addresses,
                        row_bytes=row_bytes,
                    )
                )
                request_id += 1
    return SLSWorkload(
        model=config.model,
        address_space=space,
        requests=requests,
        batch_size=config.batch_size,
        num_batches=config.num_batches,
        distribution=dist.value,
    )


__all__ = ["SLSRequest", "SLSWorkload", "build_workload"]
