"""SLS workload container consumed by every simulated system."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Callable, Iterator, List, Optional, Union

import numpy as np

from repro.config import ModelConfig, WorkloadConfig
from repro.memsys.address_space import AddressSpace
from repro.traces.meta import TraceBatch, generate_meta_like_trace
from repro.traces.stream import (
    DEFAULT_WINDOW_BATCHES,
    BatchStream,
    SyntheticBatchStream,
    as_batch_stream,
)
from repro.traces.synthetic import TraceDistribution


@dataclass
class SLSRequest:
    """One row-accumulation request: sum ``rows`` of ``table`` into one vector.

    This is the unit of work the host hands to the SLS engine (one bag of one
    sample on one table).  ``addresses`` are the byte addresses of every row
    candidate in the shared embedding address space.
    """

    request_id: int
    host_id: int
    table: int
    sample: int
    rows: np.ndarray
    addresses: np.ndarray
    row_bytes: int

    @property
    def num_candidates(self) -> int:
        return len(self.rows)

    @property
    def bytes_accessed(self) -> int:
        return self.num_candidates * self.row_bytes


@dataclass
class SLSWorkload:
    """A full SLS workload: requests plus the address space they live in.

    ``trace`` holds the per-batch (indices, offsets) arrays the requests
    were flattened from, when known — it is what the trace-file export
    (:func:`repro.traces.files.save_workload_trace`) writes, enabling a
    bit-identical save → load → rebuild round trip.  Workloads assembled
    directly from requests (e.g. multi-tenant mixes) carry ``None``.
    """

    model: ModelConfig
    address_space: AddressSpace
    requests: List[SLSRequest]
    batch_size: int
    num_batches: int
    distribution: str
    trace: Optional[List[TraceBatch]] = None

    #: Eager workloads hold every request resident; the engine and serve
    #: loop branch on this marker (duck-typed, see :class:`StreamingWorkload`).
    streaming = False

    def __iter__(self) -> Iterator[SLSRequest]:
        return iter(self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __getstate__(self):
        """Pickle without the source trace batches.

        In memory ``trace`` is nearly free (the requests' arrays are views
        into the same buffers), but pickling materializes every view — a
        workload shipped to a sweep worker would carry each index twice.
        The simulation never reads ``trace``; it exists for the in-process
        export path, so it stays on this side of the boundary.
        """
        state = self.__dict__.copy()
        state["trace"] = None
        return state

    # ``total_lookups``/``total_bytes`` are summed once and cached: requests
    # are immutable after construction and the online serving loop reads
    # these per-tick, so recomputing the full sums on every access would put
    # an O(requests) walk on the serving hot path.
    @cached_property
    def total_lookups(self) -> int:
        return int(sum(r.num_candidates for r in self.requests))

    @cached_property
    def total_bytes(self) -> int:
        return int(sum(r.bytes_accessed for r in self.requests))

    @property
    def working_set_bytes(self) -> int:
        return self.address_space.total_bytes

    def unique_pages(self) -> int:
        if not self.requests:
            return 0
        page_size = self.address_space.page_size
        addresses = np.concatenate([request.addresses for request in self.requests])
        return int(np.unique(addresses // page_size).size)


def flatten_table_bags(
    requests: List[SLSRequest],
    request_id: int,
    table: int,
    indices: np.ndarray,
    offsets: np.ndarray,
    table_addresses: np.ndarray,
    row_bytes: int,
    host_of_sample: Callable[[int], int],
) -> int:
    """Append one :class:`SLSRequest` per non-empty bag of one (batch, table).

    The single bag-flattening loop every workload source shares —
    :func:`workload_from_batches` and the multi-tenant provider both
    delegate here, so bag semantics (bounds, empty-bag skip, address
    views) cannot drift between them.  ``host_of_sample`` maps a sample
    index to its issuing host; returns the next free request id.
    """
    bounds = np.concatenate([offsets, [len(indices)]])
    for sample in range(len(offsets)):
        start, end = int(bounds[sample]), int(bounds[sample + 1])
        rows = indices[start:end]
        if len(rows) == 0:
            continue
        requests.append(
            SLSRequest(
                request_id=request_id,
                host_id=host_of_sample(sample),
                table=table,
                sample=sample,
                rows=rows,
                addresses=table_addresses[start:end],
                row_bytes=row_bytes,
            )
        )
        request_id += 1
    return request_id


def workload_from_batches(
    batches: List[TraceBatch],
    model: ModelConfig,
    *,
    distribution: str = "file",
    batch_size: Optional[int] = None,
    num_batches: Optional[int] = None,
    host_id: int = 0,
    num_hosts: int = 1,
    space: Optional[AddressSpace] = None,
) -> SLSWorkload:
    """Flatten trace batches into an :class:`SLSWorkload`.

    The shared request-construction path behind every workload source:
    synthetic generators (:func:`build_workload`), trace files
    (:mod:`repro.traces.files`) and the drifting-popularity generator all
    produce :class:`~repro.traces.meta.TraceBatch` lists and meet here, so
    a trace exported to disk and re-loaded rebuilds the *identical*
    request stream.  When ``num_hosts`` is greater than one, requests are
    assigned to hosts round-robin by sample, matching the paper's
    multi-host experiments where concurrent hosts issue batches against
    the same tables.
    """
    space = space or AddressSpace.for_model(model)
    row_bytes = model.embedding_row_bytes
    hosts = max(1, num_hosts)

    def host_of_sample(sample: int) -> int:
        return (host_id + sample) % hosts

    requests: List[SLSRequest] = []
    request_id = 0
    for batch in batches:
        for table in range(batch.num_tables):
            indices = batch.indices_per_table[table].astype(np.int64)
            offsets = batch.offsets_per_table[table]
            # One vectorized address computation per (batch, table); the
            # per-bag arrays are views into it.
            table_addresses = space.row_addresses(table, indices)
            request_id = flatten_table_bags(
                requests, request_id, table, indices, offsets,
                table_addresses, row_bytes, host_of_sample,
            )
    return SLSWorkload(
        model=model,
        address_space=space,
        requests=requests,
        batch_size=(batches[0].batch_size if batches else 0) if batch_size is None else batch_size,
        num_batches=len(batches) if num_batches is None else num_batches,
        distribution=distribution,
        trace=list(batches),
    )


class StreamingWorkload:
    """An out-of-core workload: batch windows flattened on demand.

    The streaming twin of :class:`SLSWorkload`.  Instead of a materialized
    request list it holds a re-iterable :class:`~repro.traces.stream.BatchStream`
    and flattens one *window* (``window_batches`` trace batches) of
    :class:`SLSRequest` objects at a time — through the exact
    :func:`flatten_table_bags` path the eager constructor uses, with the
    same sequential request ids and the same round-robin host assignment,
    so the reconstructed request stream is bit-identical to the eager
    workload built from the same batches.  Only the active window is
    resident; everything that needs whole-trace aggregates
    (``num_requests``, ``total_lookups``) comes from one cheap batch-level
    counting pass over the stream.

    Pickles as a small handle (the stream's path + decode parameters plus
    the model/space configs), which is what sweep workers receive instead
    of materialized workloads.
    """

    streaming = True

    def __init__(
        self,
        stream: Union[BatchStream, List[TraceBatch]],
        model: ModelConfig,
        *,
        distribution: str = "file",
        batch_size: Optional[int] = None,
        num_batches: Optional[int] = None,
        host_id: int = 0,
        num_hosts: int = 1,
        space: Optional[AddressSpace] = None,
        window_batches: int = DEFAULT_WINDOW_BATCHES,
    ) -> None:
        if window_batches <= 0:
            raise ValueError("window_batches must be positive")
        self.stream = as_batch_stream(stream)
        self.model = model
        self.address_space = space or AddressSpace.for_model(model)
        self.distribution = distribution
        self.host_id = host_id
        self.num_hosts = max(1, num_hosts)
        self.window_batches = window_batches
        self._batch_size = batch_size
        self._num_batches = num_batches
        self._scan: Optional[dict] = None

    # ------------------------------------------------------------------
    # Whole-trace aggregates (one batch-level pass, cached)
    # ------------------------------------------------------------------
    def _scanned(self) -> dict:
        """Count requests/lookups without flattening any request objects."""
        if self._scan is None:
            num_requests = 0
            total_lookups = 0
            num_batches = 0
            batch_size = 0
            for batch in self.stream:
                if num_batches == 0:
                    batch_size = batch.batch_size
                num_batches += 1
                for table in range(batch.num_tables):
                    indices = batch.indices_per_table[table]
                    offsets = np.asarray(batch.offsets_per_table[table])
                    bounds = np.concatenate([offsets, [len(indices)]])
                    num_requests += int(np.count_nonzero(np.diff(bounds)))
                    total_lookups += int(len(indices))
            self._scan = {
                "num_requests": num_requests,
                "total_lookups": total_lookups,
                "num_batches": num_batches,
                "batch_size": batch_size,
            }
        return self._scan

    @property
    def num_requests(self) -> int:
        return self._scanned()["num_requests"]

    @property
    def total_lookups(self) -> int:
        return self._scanned()["total_lookups"]

    @property
    def total_bytes(self) -> int:
        # Row size is uniform across tables, so bytes = lookups x row size
        # exactly as the eager per-request sum.
        return self.total_lookups * self.model.embedding_row_bytes

    @property
    def batch_size(self) -> int:
        if self._batch_size is not None:
            return self._batch_size
        return self._scanned()["batch_size"]

    @property
    def num_batches(self) -> int:
        if self._num_batches is not None:
            return self._num_batches
        return self._scanned()["num_batches"]

    @property
    def working_set_bytes(self) -> int:
        return self.address_space.total_bytes

    @property
    def requests(self):
        raise AttributeError(
            "StreamingWorkload holds no materialized request list; iterate "
            "the workload (or iter_windows()) instead, or call materialize()"
        )

    def __len__(self) -> int:
        return self.num_requests

    # ------------------------------------------------------------------
    # Lazy request reconstruction
    # ------------------------------------------------------------------
    def _host_of_sample(self) -> Callable[[int], int]:
        host_id, hosts = self.host_id, self.num_hosts

        def host_of_sample(sample: int) -> int:
            return (host_id + sample) % hosts

        return host_of_sample

    def iter_windows(
        self, window_batches: Optional[int] = None
    ) -> Iterator[List[SLSRequest]]:
        """Yield windows of flattened requests, one window resident at a time.

        Request ids run sequentially across windows and hosts are assigned
        by the eager round-robin rule, so ``chain(*iter_windows())``
        reproduces ``materialize().requests`` element for element.
        """
        space = self.address_space
        row_bytes = self.model.embedding_row_bytes
        host_of_sample = self._host_of_sample()
        request_id = 0
        if window_batches is None:
            window_batches = self.window_batches
        for window in self.stream.windows(window_batches):
            requests: List[SLSRequest] = []
            for batch in window:
                for table in range(batch.num_tables):
                    indices = batch.indices_per_table[table].astype(np.int64)
                    offsets = batch.offsets_per_table[table]
                    table_addresses = space.row_addresses(table, indices)
                    request_id = flatten_table_bags(
                        requests, request_id, table, indices, offsets,
                        table_addresses, row_bytes, host_of_sample,
                    )
            yield requests

    def __iter__(self) -> Iterator[SLSRequest]:
        for window in self.iter_windows():
            for request in window:
                yield request

    def iter_address_arrays(self) -> Iterator[np.ndarray]:
        """Per-(batch, table) resolved address arrays, in request order.

        Bags partition each (batch, table) index array completely (offsets
        start at 0, the last bag ends at the array's end), so concatenating
        these arrays equals concatenating the eager per-request address
        arrays — which is what keeps the streaming hotness-profiling pass
        bit-identical to the eager one, insertion order included.
        """
        space = self.address_space
        for batch in self.stream:
            for table in range(batch.num_tables):
                indices = batch.indices_per_table[table].astype(np.int64)
                yield space.row_addresses(table, indices)

    def unique_pages(self) -> int:
        page_size = self.address_space.page_size
        pages: set = set()
        for addresses in self.iter_address_arrays():
            pages.update((addresses // page_size).tolist())
        return len(pages)

    def shard_view(self, router, shard: int, num_shards: int):
        """One shard's view of this workload under a fleet router.

        Returns a :class:`~repro.fleet.shard.ShardWorkload` filtering
        this stream to the requests ``router`` assigns to ``shard`` —
        same global request ids, same O(window) residency, one shared
        stream handle across all shards (the fleet engine's feeding
        mechanism; see :mod:`repro.fleet`).
        """
        from repro.fleet.shard import ShardWorkload

        return ShardWorkload(self, router, shard, num_shards)

    def materialize(self) -> SLSWorkload:
        """Build the equivalent eager :class:`SLSWorkload` (whole trace resident)."""
        return workload_from_batches(
            self.stream.materialize(),
            self.model,
            distribution=self.distribution,
            batch_size=self._batch_size,
            num_batches=self._num_batches,
            host_id=self.host_id,
            num_hosts=self.num_hosts,
            space=self.address_space,
        )


def build_workload(
    config: WorkloadConfig,
    distribution: Optional[str] = None,
    host_id: int = 0,
    num_hosts: int = 1,
    streaming: bool = False,
    window_batches: int = DEFAULT_WINDOW_BATCHES,
) -> Union[SLSWorkload, StreamingWorkload]:
    """Build an :class:`SLSWorkload` from a :class:`~repro.config.WorkloadConfig`.

    Generates the seeded trace batches for the configured distribution and
    flattens them through :func:`workload_from_batches`.  With
    ``streaming=True`` the batches are *not* materialized: the returned
    :class:`StreamingWorkload` drives the seeded generator lazily and
    reconstructs the identical request stream window by window.
    """
    dist_name = distribution or config.distribution
    dist = TraceDistribution.from_name(dist_name)
    if streaming:
        return StreamingWorkload(
            SyntheticBatchStream(config, distribution=dist.value),
            config.model,
            distribution=dist.value,
            batch_size=config.batch_size,
            num_batches=config.num_batches,
            host_id=host_id,
            num_hosts=num_hosts,
            window_batches=window_batches,
        )
    batches: List[TraceBatch] = generate_meta_like_trace(config, distribution=dist)
    return workload_from_batches(
        batches,
        config.model,
        distribution=dist.value,
        batch_size=config.batch_size,
        num_batches=config.num_batches,
        host_id=host_id,
        num_hosts=num_hosts,
    )


__all__ = [
    "SLSRequest",
    "SLSWorkload",
    "StreamingWorkload",
    "build_workload",
    "flatten_table_bags",
    "workload_from_batches",
]
