"""Meta-like DLRM embedding trace generation.

The paper uses the open-source Meta ``dlrm_datasets`` traces.  Those traces
are per-table streams of (indices, offsets) pairs with a highly skewed,
hot-set-dominated reuse pattern and per-table pooling factors.  This module
generates traces with the same structure so the rest of the system consumes
exactly the same shape of data.  Each trace is a list of batches; each batch
holds per-table index arrays and bag offsets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.config import WorkloadConfig
from repro.traces.synthetic import TraceDistribution, generate_indices


@dataclass
class TraceBatch:
    """One batch of a trace: per-table indices and offsets."""

    indices_per_table: List[np.ndarray]
    offsets_per_table: List[np.ndarray]

    @property
    def num_tables(self) -> int:
        return len(self.indices_per_table)

    @property
    def batch_size(self) -> int:
        if not self.offsets_per_table:
            return 0
        return len(self.offsets_per_table[0])

    @property
    def total_lookups(self) -> int:
        return int(sum(len(idx) for idx in self.indices_per_table))


def iter_meta_like_trace(
    config: WorkloadConfig,
    distribution: Optional[TraceDistribution] = None,
) -> Iterator[TraceBatch]:
    """Lazily generate ``config.num_batches`` batches of Meta-like lookups.

    One seeded RNG drives the whole trace sequentially, so consuming this
    generator batch by batch produces exactly the list
    :func:`generate_meta_like_trace` would build — only one batch is ever
    resident, which is what lets the streaming workload path replay
    arbitrarily long synthetic traces in O(window) memory.

    Pooling factors vary per table (drawn once per table around the
    configured mean, as in the Meta traces where some features have much
    longer multi-hot lists than others).
    """
    model = config.model
    distribution = distribution or TraceDistribution.from_name(config.distribution)
    rng = np.random.default_rng(config.seed)
    table_pooling = rng.poisson(config.pooling_factor, size=model.num_tables).clip(1, None)

    for _ in range(config.num_batches):
        indices_per_table: List[np.ndarray] = []
        offsets_per_table: List[np.ndarray] = []
        for table in range(model.num_tables):
            lengths = rng.poisson(table_pooling[table], size=config.batch_size).clip(1, None)
            offsets = np.concatenate([[0], np.cumsum(lengths)[:-1]]).astype(np.int64)
            indices = generate_indices(
                distribution,
                count=int(lengths.sum()),
                num_embeddings=model.num_embeddings,
                rng=rng,
                zipf_alpha=config.zipf_alpha,
            )
            indices_per_table.append(indices)
            offsets_per_table.append(offsets)
        yield TraceBatch(indices_per_table=indices_per_table, offsets_per_table=offsets_per_table)


def generate_meta_like_trace(
    config: WorkloadConfig,
    distribution: Optional[TraceDistribution] = None,
) -> List[TraceBatch]:
    """Generate ``config.num_batches`` batches of Meta-like lookups.

    Materialized form of :func:`iter_meta_like_trace` (same seeded RNG
    sequence, whole trace resident).
    """
    return list(iter_meta_like_trace(config, distribution))


__all__ = ["TraceBatch", "generate_meta_like_trace", "iter_meta_like_trace"]
