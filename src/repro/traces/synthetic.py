"""Synthetic embedding-index generators (Fig 12 b distributions)."""

from __future__ import annotations

from enum import Enum
from typing import Optional

import numpy as np


class TraceDistribution(Enum):
    """The access distributions evaluated in the paper."""

    META = "meta"
    ZIPFIAN = "zipfian"
    NORMAL = "normal"
    UNIFORM = "uniform"
    RANDOM = "random"

    @classmethod
    def from_name(cls, name: str) -> "TraceDistribution":
        try:
            return cls(name.lower())
        except ValueError as exc:
            valid = ", ".join(d.value for d in cls)
            raise ValueError(f"unknown distribution {name!r}; expected one of {valid}") from exc


def _zipfian_indices(
    rng: np.random.Generator, count: int, num_embeddings: int, alpha: float
) -> np.ndarray:
    """Zipf-distributed indices over [0, num_embeddings).

    A bounded Zipf is sampled by inverse-transform over the normalized
    harmonic weights of the first ``num_embeddings`` ranks; ranks are then
    shuffled deterministically so hot rows are spread across the table (as
    observed in production traces) rather than clustered at index 0.
    """
    ranks = np.arange(1, num_embeddings + 1, dtype=np.float64)
    weights = ranks ** (-alpha)
    cdf = np.cumsum(weights)
    cdf /= cdf[-1]
    samples = rng.random(count)
    rank_indices = np.searchsorted(cdf, samples, side="left")
    permutation = np.random.default_rng(num_embeddings).permutation(num_embeddings)
    return permutation[rank_indices].astype(np.int64)


def _normal_indices(
    rng: np.random.Generator, count: int, num_embeddings: int, std_fraction: float = 0.15
) -> np.ndarray:
    """Normally distributed indices centred on the middle of the table."""
    center = num_embeddings / 2.0
    std = max(1.0, num_embeddings * std_fraction)
    samples = rng.normal(center, std, size=count)
    return np.clip(np.rint(samples), 0, num_embeddings - 1).astype(np.int64)


def generate_indices(
    distribution: TraceDistribution,
    count: int,
    num_embeddings: int,
    rng: Optional[np.random.Generator] = None,
    zipf_alpha: float = 1.05,
    hot_fraction: float = 0.05,
    hot_probability: float = 0.7,
) -> np.ndarray:
    """Generate ``count`` embedding indices following ``distribution``.

    ``META`` emulates the locality profile of the Meta production traces: a
    small hot set (``hot_fraction`` of the rows) captures
    ``hot_probability`` of the accesses, the rest is a heavy-ish Zipfian
    tail.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if num_embeddings <= 0:
        raise ValueError("num_embeddings must be positive")
    rng = rng or np.random.default_rng(0)
    if count == 0:
        return np.empty(0, dtype=np.int64)

    if distribution is TraceDistribution.UNIFORM:
        # Deterministic round-robin over the table: a perfectly balanced
        # access stream (the paper's best case).
        start = int(rng.integers(0, num_embeddings))
        return ((start + np.arange(count)) % num_embeddings).astype(np.int64)
    if distribution is TraceDistribution.RANDOM:
        return rng.integers(0, num_embeddings, size=count, dtype=np.int64)
    if distribution is TraceDistribution.NORMAL:
        return _normal_indices(rng, count, num_embeddings)
    if distribution is TraceDistribution.ZIPFIAN:
        return _zipfian_indices(rng, count, num_embeddings, zipf_alpha)
    if distribution is TraceDistribution.META:
        hot_rows = max(1, int(num_embeddings * hot_fraction))
        hot_set = np.random.default_rng(num_embeddings + 1).choice(
            num_embeddings, size=hot_rows, replace=False
        )
        is_hot = rng.random(count) < hot_probability
        hot_choice = hot_set[rng.integers(0, hot_rows, size=count)]
        cold_choice = _zipfian_indices(rng, count, num_embeddings, alpha=0.8)
        return np.where(is_hot, hot_choice, cold_choice).astype(np.int64)
    raise ValueError(f"unsupported distribution: {distribution}")


__all__ = ["TraceDistribution", "generate_indices"]
