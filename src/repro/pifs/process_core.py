"""The Process Core (PC) of the PIFS switch (§IV-A2, §IV-A3).

The process core passively receives enhanced instructions from the host,
decodes them, repacks data fetches into standard reads, tracks in-flight
accumulations in the Accumulate Configuration Register (ACR), applies
back-pressure when the ACR is full, and drives the accumulate logic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import PIFSConfig
from repro.cxl.protocol import MemOpcode
from repro.pifs.instructions import PIFSInstruction
from repro.pifs.ooo import OutOfOrderAccumulator


@dataclass
class ACREntry:
    """One Accumulate Configuration Register entry (one sumtag)."""

    sumtag: int
    result_address: int
    sum_candidate_count: int
    remaining: int
    accumulated: int = 0
    configured_ns: float = 0.0
    last_update_ns: float = 0.0

    @property
    def complete(self) -> bool:
        return self.remaining == 0


@dataclass
class ProcessCoreStats:
    """Counters exposed by the process core."""

    decoded_instructions: int = 0
    repacked_instructions: int = 0
    bypassed_instructions: int = 0
    configured_sumtags: int = 0
    completed_sumtags: int = 0
    backpressure_events: int = 0
    backpressure_ns: float = 0.0


class ProcessCore:
    """Cycle-cost model of the PIFS process core."""

    def __init__(self, config: PIFSConfig, out_of_order: Optional[bool] = None) -> None:
        self._config = config
        self._acr: Dict[int, ACREntry] = {}
        self._accumulator = OutOfOrderAccumulator(config, out_of_order=out_of_order)
        self._stats = ProcessCoreStats()
        self._ingress_registry: Dict[int, PIFSInstruction] = {}
        # Earliest time a new sumtag can be admitted when the ACR is full.
        self._earliest_free_ns = 0.0

    # ------------------------------------------------------------------
    @property
    def config(self) -> PIFSConfig:
        return self._config

    @property
    def stats(self) -> ProcessCoreStats:
        return self._stats

    @property
    def accumulator(self) -> OutOfOrderAccumulator:
        return self._accumulator

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self._config.core_clock_ghz

    @property
    def active_sumtags(self) -> int:
        return len(self._acr)

    # Precomputed per-event latencies for the batched switch kernel.  The
    # expressions are the scalar paths' own (cycle-count times cycle period),
    # so the floating-point values match exactly.
    @property
    def configure_ns(self) -> float:
        """Latency of decoding one configuration instruction."""
        return self._config.decode_cycles * self.cycle_ns

    @property
    def register_fetch_ns(self) -> float:
        """Latency of decoding + repacking one data-fetch instruction."""
        return (self._config.decode_cycles + self._config.repack_cycles) * self.cycle_ns

    @property
    def element_ns(self) -> float:
        """Busy time of accumulating one row element with no context switch.

        The sequential engine flows (one sumtag in flight per switch) never
        switch accumulation contexts mid-stream, so every element costs the
        base accumulate latency in both the in-order and out-of-order
        engines.
        """
        return float(self._config.accumulate_cycles_per_element) * self.cycle_ns

    def apply_accumulation_batch(
        self,
        accumulations: int,
        elements: int,
        last_retire_ns: float,
    ) -> None:
        """Fold the bookkeeping of ``accumulations`` completed in-switch
        accumulations (``elements`` rows in total) into the core's counters.

        The batched switch kernel performs the timing inline and leaves the
        ACR/ingress registry in their between-accumulation state (empty), so
        only the statistics and the earliest-free watermark need updating.
        """
        self._stats.decoded_instructions += accumulations + elements
        self._stats.repacked_instructions += elements
        self._stats.configured_sumtags += accumulations
        self._stats.completed_sumtags += accumulations
        accumulator_stats = self._accumulator.stats
        accumulator_stats.elements += elements
        accumulator_stats.busy_cycles += (
            float(self._config.accumulate_cycles_per_element) * elements
        )
        if last_retire_ns > self._earliest_free_ns:
            self._earliest_free_ns = last_retire_ns

    def acr_entry(self, sumtag: int) -> Optional[ACREntry]:
        return self._acr.get(sumtag)

    # ------------------------------------------------------------------
    # MemOpcode checker
    # ------------------------------------------------------------------
    def check_opcode(self, opcode: MemOpcode) -> bool:
        """Return True when the instruction must be handled by the PC.

        Standard instructions bypass the core and are routed straight to the
        VCS (the caller forwards them like a conventional switch).
        """
        handled = opcode in (MemOpcode.PIFS_DATA_FETCH, MemOpcode.PIFS_CONFIG)
        if not handled:
            self._stats.bypassed_instructions += 1
        return handled

    # ------------------------------------------------------------------
    # Configuration path
    # ------------------------------------------------------------------
    def configure(self, instruction: PIFSInstruction, now_ns: float) -> float:
        """Program the ACR for a new accumulation; returns the ready time.

        When the ACR capacity limit is reached the core asserts back-pressure
        and the configuration is delayed until an entry retires.
        """
        if not instruction.is_config:
            raise ValueError("configure() expects a PIFS_CONFIG instruction")
        ready = now_ns
        if len(self._acr) >= self._config.acr_capacity:
            wait_until = max(self._earliest_free_ns, now_ns + self.cycle_ns)
            self._stats.backpressure_events += 1
            self._stats.backpressure_ns += wait_until - now_ns
            ready = wait_until
        ready += self._config.decode_cycles * self.cycle_ns
        self._stats.decoded_instructions += 1
        self._stats.configured_sumtags += 1
        self._acr[instruction.sumtag] = ACREntry(
            sumtag=instruction.sumtag,
            result_address=instruction.address,
            sum_candidate_count=instruction.sum_candidate_count,
            remaining=instruction.sum_candidate_count,
            configured_ns=ready,
            last_update_ns=ready,
        )
        return ready

    # ------------------------------------------------------------------
    # Data-fetch path
    # ------------------------------------------------------------------
    def register_fetch(self, instruction: PIFSInstruction, now_ns: float) -> float:
        """Decode + repack a data-fetch; returns when the repacked read can issue."""
        if not instruction.is_data_fetch:
            raise ValueError("register_fetch() expects a PIFS_DATA_FETCH instruction")
        if instruction.sumtag not in self._acr:
            raise KeyError(f"sumtag {instruction.sumtag} was never configured")
        self._ingress_registry[instruction.address] = instruction
        self._stats.decoded_instructions += 1
        self._stats.repacked_instructions += 1
        cycles = self._config.decode_cycles + self._config.repack_cycles
        return now_ns + cycles * self.cycle_ns

    def match_ingress(self, address: int) -> Optional[PIFSInstruction]:
        """Match returning data against the Instruction Ingress Registry."""
        return self._ingress_registry.get(address)

    def accumulate(self, sumtag: int, data_ready_ns: float, elements: int = 1) -> float:
        """Accumulate ``elements`` row vectors of ``sumtag`` arriving at ``data_ready_ns``.

        Returns the time the accumulate logic is done with this data.  The
        ACR entry's remaining counter is decremented once per element; the
        caller checks :meth:`is_complete` to detect completion.
        """
        entry = self._acr.get(sumtag)
        if entry is None:
            raise KeyError(f"sumtag {sumtag} was never configured")
        busy_ns = 0.0
        for _ in range(elements):
            busy_ns += self._accumulator.accumulate_element(sumtag)
            if entry.remaining > 0:
                entry.remaining -= 1
            entry.accumulated += 1
        done = data_ready_ns + busy_ns
        entry.last_update_ns = max(entry.last_update_ns, done)
        return done

    def is_complete(self, sumtag: int) -> bool:
        entry = self._acr.get(sumtag)
        return entry is not None and entry.complete

    def retire(self, sumtag: int, now_ns: float) -> ACREntry:
        """Retire a completed accumulation and free its ACR slot."""
        entry = self._acr.pop(sumtag, None)
        if entry is None:
            raise KeyError(f"sumtag {sumtag} is not active")
        if entry.remaining != 0:
            raise RuntimeError(
                f"sumtag {sumtag} retired with {entry.remaining} candidates outstanding"
            )
        self._accumulator.finish_sumtag(sumtag)
        self._stats.completed_sumtags += 1
        self._earliest_free_ns = max(self._earliest_free_ns, now_ns)
        # Drop ingress-registry entries belonging to this sumtag.
        stale = [addr for addr, ins in self._ingress_registry.items() if ins.sumtag == sumtag]
        for addr in stale:
            del self._ingress_registry[addr]
        return entry

    def reset(self) -> None:
        self._acr.clear()
        self._ingress_registry.clear()
        self._accumulator.reset()
        self._stats = ProcessCoreStats()
        self._earliest_free_ns = 0.0


__all__ = ["ProcessCore", "ProcessCoreStats", "ACREntry"]
