"""Host-side flow of PIFS-Rec (§IV-A2 "Asynchronous Communication").

The host computes the SumCandidateCounter for every accumulation request by
determining which row candidates reside outside its local DRAM (the analogue
of PyTorch's ``data_ptr()`` + ``move_pages()`` inspection), reserves a result
address, issues the PIFS instructions for the non-local candidates, locally
accumulates the candidates it holds in its own DRAM, and snoops the reserved
address until the switch's D2H writeback lands.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.config import SystemConfig
from repro.memsys.tiered import TieredMemorySystem
from repro.memsys.node import MemoryTier


@dataclass
class CandidateSplit:
    """The host's partition of one request's row candidates."""

    local_addresses: List[int]
    remote_addresses: List[int]

    @property
    def sum_candidate_count(self) -> int:
        """The SumCandidateCounter configured into the fabric switch."""
        return len(self.remote_addresses)


@dataclass
class HostStats:
    """Host-side accounting."""

    local_rows: int = 0
    remote_rows: int = 0
    snoop_polls: int = 0
    results_combined: int = 0


class PIFSHost:
    """Host-side cost model for the PIFS-Rec flow."""

    #: Latency to accumulate one row vector on the host (SIMD add on data
    #: already brought into the cache hierarchy).
    HOST_ACCUMULATE_NS_PER_ROW = 1.0
    #: Latency to detect the switch's writeback via the standard CXL snooping
    #: mechanism and hand the result to the application.
    SNOOP_DETECT_NS = 20.0
    #: Overhead of combining the locally accumulated partial sum with the
    #: switch-produced partial sum.
    COMBINE_NS = 2.0
    #: Number of outstanding local loads the host core sustains (MSHR limit).
    LOCAL_MLP = 8

    def __init__(self, host_id: int, system: SystemConfig) -> None:
        self.host_id = host_id
        self.system = system
        self.stats = HostStats()

    # ------------------------------------------------------------------
    def split_candidates(
        self, addresses: Sequence[int], tiered: TieredMemorySystem
    ) -> CandidateSplit:
        """Partition row candidates into local-DRAM and remote (CXL) sets."""
        local: List[int] = []
        remote: List[int] = []
        for address in addresses:
            node = tiered.node_of_address(int(address))
            if node.tier is MemoryTier.LOCAL_DRAM:
                local.append(int(address))
            else:
                remote.append(int(address))
        self.stats.local_rows += len(local)
        self.stats.remote_rows += len(remote)
        return CandidateSplit(local_addresses=local, remote_addresses=remote)

    # ------------------------------------------------------------------
    def accumulate_local(
        self,
        addresses: Sequence[int],
        start_ns: float,
        local_access,
    ) -> float:
        """Accumulate locally held rows; ``local_access(addr, t)`` returns finish time.

        Loads are issued in groups bounded by the core's outstanding-miss
        capacity; accumulation of a group overlaps with the next group's
        loads, so only the per-row SIMD add is serialized.
        """
        if not addresses:
            return start_ns
        cursor = start_ns
        finish = start_ns
        for group_start in range(0, len(addresses), self.LOCAL_MLP):
            group = addresses[group_start : group_start + self.LOCAL_MLP]
            group_finish = cursor
            for address in group:
                group_finish = max(group_finish, local_access(address, cursor))
            cursor = group_finish
            finish = group_finish + len(group) * self.HOST_ACCUMULATE_NS_PER_ROW
        return finish

    def combine(self, local_done_ns: float, remote_done_ns: float) -> float:
        """Combine the local partial sum with the snooped switch result."""
        self.stats.snoop_polls += 1
        self.stats.results_combined += 1
        remote_visible = remote_done_ns + self.SNOOP_DETECT_NS
        return max(local_done_ns, remote_visible) + self.COMBINE_NS


__all__ = ["PIFSHost", "CandidateSplit", "HostStats"]
