"""Out-of-order accumulation engine (§IV-A5).

Row data can arrive from the CXL devices out of order with respect to the
accumulation requests (sumtags) they belong to.  An in-order engine stalls
whenever the arriving row belongs to a different sumtag than the one held in
the accumulation register.  The out-of-order engine instead moves the
partially accumulated vector to one of a small set of swap registers during
the first half of the cycle and processes the new row in the second half.
When all swap registers are occupied the intermediate result spills to the
on-switch SRAM, costing extra cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.config import PIFSConfig


@dataclass
class AccumulationState:
    """Bookkeeping for one in-flight accumulation (one sumtag)."""

    sumtag: int
    remaining: int
    accumulated: int = 0
    result_address: int = 0


@dataclass
class OoOStats:
    """Cycle accounting of the accumulation engine."""

    elements: int = 0
    switch_events: int = 0
    swap_spills: int = 0
    stall_cycles: float = 0.0
    busy_cycles: float = 0.0


class OutOfOrderAccumulator:
    """Cycle-cost model of the (out-of-order) accumulate logic."""

    def __init__(self, config: PIFSConfig, out_of_order: Optional[bool] = None) -> None:
        self._config = config
        self._out_of_order = config.out_of_order if out_of_order is None else out_of_order
        self._active_sumtag: Optional[int] = None
        self._swap_occupancy = 0
        self._stats = OoOStats()

    @property
    def out_of_order(self) -> bool:
        return self._out_of_order

    @property
    def stats(self) -> OoOStats:
        return self._stats

    @property
    def cycle_ns(self) -> float:
        return 1.0 / self._config.core_clock_ghz

    def accumulate_element(self, sumtag: int) -> float:
        """Account for accumulating one row element of ``sumtag``.

        Returns the number of nanoseconds the accumulate logic is busy for
        this element, including any stall or swap overhead.
        """
        cfg = self._config
        cycles = float(cfg.accumulate_cycles_per_element)
        if self._active_sumtag is None:
            self._active_sumtag = sumtag
        elif self._active_sumtag != sumtag:
            self._stats.switch_events += 1
            if self._out_of_order:
                # Move the current partial sum to a swap register (half cycle)
                # unless all swap registers are full, in which case it spills
                # to the on-switch SRAM.
                if self._swap_occupancy < cfg.swap_registers:
                    self._swap_occupancy += 1
                    cycles += cfg.swap_cycles * 0.5
                else:
                    self._stats.swap_spills += 1
                    cycles += cfg.sram_spill_cycles
                self._active_sumtag = sumtag
            else:
                # In-order engine: drain the pipeline before switching to the
                # other accumulation context.
                stall = cfg.inorder_stall_cycles
                self._stats.stall_cycles += stall
                cycles += stall
                self._active_sumtag = sumtag
        self._stats.elements += 1
        self._stats.busy_cycles += cycles
        return cycles * self.cycle_ns

    def finish_sumtag(self, sumtag: int) -> None:
        """Mark ``sumtag`` complete, freeing its swap register if it used one."""
        if self._active_sumtag == sumtag:
            self._active_sumtag = None
        elif self._swap_occupancy > 0:
            self._swap_occupancy -= 1

    def reset(self) -> None:
        self._active_sumtag = None
        self._swap_occupancy = 0
        self._stats = OoOStats()


__all__ = ["OutOfOrderAccumulator", "AccumulationState", "OoOStats"]
