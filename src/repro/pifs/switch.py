"""The PIFS fabric switch: a CXL fabric switch with a process core.

The switch combines the base :class:`~repro.cxl.switch.FabricSwitch` with
the process core, the FM endpoint extension and the on-switch buffer, and
implements the full in-switch accumulation flow of Fig 8:

1. the host issues one configuration instruction (SumCandidateCount + the
   reserved result address) and one data-fetch instruction per row candidate;
2. the memopcode checker routes them to the process core, which decodes and
   repacks each fetch into a standard read whose SPID is the switch;
3. reads are issued concurrently to the downstream Type 3 devices (or served
   from the on-switch buffer);
4. arriving rows are accumulated (out of order when enabled) and, when the
   SumCandidateCounter reaches zero, the result is written back to the
   reserved host address with a CXL.cache D2H message that the host snoops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import CXLConfig, PIFSConfig
from repro.cxl.protocol import CXLCacheD2H, MemOpcode
from repro.cxl.switch import FabricSwitch, FabricSwitchKernel, SwitchPort
from repro.pifs.fm_endpoint import FMEndpointExtension
from repro.pifs.instructions import PIFSInstruction, encode_vector_size, repack_instruction
from repro.pifs.onswitch_buffer import OnSwitchBuffer
from repro.pifs.process_core import ProcessCore


@dataclass(frozen=True)
class RowFetch:
    """One row candidate to accumulate: its global address and owning device."""

    address: int
    device_id: int
    device_address: Optional[int] = None

    @property
    def target_address(self) -> int:
        return self.device_address if self.device_address is not None else self.address


@dataclass
class AccumulationOutcome:
    """Result of one in-switch accumulation."""

    sumtag: int
    result_ready_ns: float
    host_notified_ns: float
    buffer_hits: int
    buffer_misses: int
    device_rows: Dict[int, int]
    writeback: CXLCacheD2H


class PIFSSwitch(FabricSwitch):
    """A fabric switch augmented with PIFS-Rec processing capability."""

    #: ID used as the SPID of repacked reads (the switch itself).
    SWITCH_SPID = 0xFFF

    def __init__(
        self,
        cxl_config: CXLConfig,
        pifs_config: PIFSConfig,
        row_bytes: int,
        switch_id: int = 0,
        name: Optional[str] = None,
        compute_enabled: bool = True,
    ) -> None:
        super().__init__(cxl_config, switch_id=switch_id, name=name or f"pifs{switch_id}")
        self._pifs_config = pifs_config
        self._row_bytes = row_bytes
        self._compute_enabled = compute_enabled and pifs_config.process_core
        self.process_core = ProcessCore(pifs_config)
        self.buffer = OnSwitchBuffer(pifs_config.on_switch_buffer, row_bytes)
        self.fm_extension = FMEndpointExtension()
        self._next_sumtag = 0

    # ------------------------------------------------------------------
    @property
    def pifs_config(self) -> PIFSConfig:
        return self._pifs_config

    @property
    def row_bytes(self) -> int:
        return self._row_bytes

    @property
    def compute_enabled(self) -> bool:
        """CNV bit: whether this switch can execute in-switch accumulation."""
        return self._compute_enabled

    def allocate_sumtag(self) -> int:
        """Allocate the next sumtag (9-bit, wraps around)."""
        sumtag = self._next_sumtag
        self._next_sumtag = (self._next_sumtag + 1) % 512
        return sumtag

    # ------------------------------------------------------------------
    def accumulate(
        self,
        rows: Sequence[RowFetch],
        host_port: SwitchPort,
        issue_ns: float,
        result_address: int = 0,
        sumtag: Optional[int] = None,
        notify_host: bool = True,
        per_row_overhead_ns: float = 0.0,
    ) -> AccumulationOutcome:
        """Run one complete in-switch accumulation for ``rows``.

        Returns the :class:`AccumulationOutcome`, whose ``host_notified_ns``
        is the time the accumulated result lands at the host's reserved
        address (or ``result_ready_ns`` when ``notify_host`` is False, e.g.
        for sub-sums forwarded to another switch).
        """
        if not rows:
            raise ValueError("accumulate() needs at least one row")
        if not self._compute_enabled:
            raise RuntimeError(f"switch {self.name} has no process core (CNV=0)")
        tag = self.allocate_sumtag() if sumtag is None else sumtag

        # Step 1: configuration instruction crosses the upstream link.
        config_instr = PIFSInstruction.configuration(
            result_address=result_address,
            sum_candidate_count=len(rows),
            sumtag=tag,
            spid=host_port.port_id,
            issue_ns=issue_ns,
        )
        config_at_switch = host_port.link.transfer(
            self._config.flit_bytes, issue_ns, op=MemOpcode.PIFS_CONFIG
        )
        configured_ns = self.process_core.configure(config_instr, config_at_switch)

        # Step 2: one data-fetch instruction per row, pipelined on the link.
        buffer_hits = 0
        buffer_misses = 0
        device_rows: Dict[int, int] = {}
        last_done = configured_ns
        for row in rows:
            fetch = PIFSInstruction.data_fetch(
                address=row.address,
                row_bytes=self._row_bytes,
                sumtag=tag,
                spid=host_port.port_id,
                dpid=self.device_port_id(row.device_id),
                issue_ns=configured_ns,
            )
            # Fetch instructions are pipelined on the upstream link; the
            # link's busy-until bookkeeping provides the serialization.
            instr_at_switch = host_port.link.transfer(
                self._config.slot_bytes, configured_ns, op=MemOpcode.PIFS_DATA_FETCH
            )
            ready_to_issue = self.process_core.register_fetch(fetch, instr_at_switch)
            # Extra per-row switch work, e.g. BEACON's address translation
            # logic, which PIFS-Rec avoids by operating on physical addresses.
            ready_to_issue += per_row_overhead_ns

            # Step 3: on-switch buffer lookup, then device fetch on a miss.
            self.fm_extension.record_device_access(row.device_id, row.address)
            if self.buffer.lookup(row.address):
                buffer_hits += 1
                data_ready = ready_to_issue + self.buffer.hit_latency_ns()
            else:
                buffer_misses += 1
                repacked = repack_instruction(
                    fetch,
                    switch_spid=self.SWITCH_SPID,
                    device_dpid=self.device_port_id(row.device_id),
                    device_address=row.target_address,
                )
                device = self.device(row.device_id)
                data_ready = device.access(
                    address=repacked.address,
                    arrival_ns=ready_to_issue,
                    bytes_requested=self._row_bytes,
                    from_switch=True,
                )
                self.buffer.insert(row.address)
            device_rows[row.device_id] = device_rows.get(row.device_id, 0) + 1

            # Step 4: accumulate the arriving row.
            done = self.process_core.accumulate(tag, data_ready)
            last_done = max(last_done, done)

        if not self.process_core.is_complete(tag):
            raise RuntimeError(f"sumtag {tag} did not complete")
        self.process_core.retire(tag, last_done)

        # Step 5: write the result back to the host's reserved address.
        if notify_host:
            notified = host_port.link.transfer(
                self._row_bytes, last_done, op=MemOpcode.MEM_RD_DATA
            )
        else:
            notified = last_done
        writeback = CXLCacheD2H(
            address=result_address,
            payload_bytes=self._row_bytes,
            finish_ns=notified,
            sumtag=tag,
            source_switch=self.switch_id,
        )
        return AccumulationOutcome(
            sumtag=tag,
            result_ready_ns=last_done,
            host_notified_ns=notified,
            buffer_hits=buffer_hits,
            buffer_misses=buffer_misses,
            device_rows=device_rows,
            writeback=writeback,
        )

    def batch_kernel(self, row_bytes: int) -> "PIFSSwitchKernel":
        """A flattened accumulate kernel over this switch (batch engine)."""
        return PIFSSwitchKernel(self, row_bytes)

    def reset(self) -> None:
        super().reset()
        self.process_core.reset()
        self.fm_extension.reset_counters()
        self.buffer.reset_stats()


class PIFSSwitchKernel(FabricSwitchKernel):
    """Flattened in-switch accumulation path of one :class:`PIFSSwitch`.

    :meth:`accumulate` replays the scalar :meth:`PIFSSwitch.accumulate` flow
    — configuration flit, per-row fetch instruction on the upstream link,
    FM-endpoint profiling, on-switch buffer lookup, device fetch on a miss,
    accumulate-logic busy time, result writeback — using the port/device/
    buffer kernels and plain float arithmetic.  Timing and all observable
    state (buffer contents and statistics, device counters, process-core
    statistics, sumtag sequence) match the scalar path exactly; the
    transient ACR/ingress-registry entries, which every scalar accumulation
    creates and retires before returning, are elided.
    """

    def __init__(self, switch: PIFSSwitch, row_bytes: int) -> None:
        super().__init__(switch, row_bytes)
        # Fail on unsupported row sizes exactly like the scalar instruction
        # builder would.
        encode_vector_size(row_bytes)
        if not switch.compute_enabled:
            raise RuntimeError(f"switch {switch.name} has no process core (CNV=0)")
        if switch.process_core.config.acr_capacity < 1:
            # A zero-capacity ACR back-pressures every configuration; the
            # flattened path assumes the (universal) >= 1 case.
            raise RuntimeError("vectorized accumulate requires ACR capacity >= 1")
        self.buffer = switch.buffer.batch_kernel()
        core = switch.process_core
        self._configure_ns = core.configure_ns
        self._register_fetch_ns = core.register_fetch_ns
        self._element_ns = core.element_ns
        self._hit_latency_ns = switch.buffer.hit_latency_ns()
        self._slot_bytes = switch.config.slot_bytes
        self._flit_bytes = switch.config.flit_bytes
        self._fm_counts = switch.fm_extension.address_profiler._counts
        self._fm_io = switch.fm_extension.io_access_counters
        self._fm_recorded = 0
        self._next_sumtag = switch._next_sumtag
        self._accumulations = 0
        self._elements = 0
        self._last_retire_ns = 0.0

    def accumulate(
        self,
        port_transfer,
        port_stream,
        ks: Sequence[int],
        devs: Sequence[int],
        addr: Sequence[int],
        cch: Sequence[int],
        cfb: Sequence[int],
        crow: Sequence[int],
        device_access,
        issue_ns: float,
        per_row_overhead_ns: float = 0.0,
        notify_host: bool = True,
    ) -> Tuple[float, float]:
        """One in-switch accumulation over pre-resolved row positions.

        ``ks`` are resolved workload positions indexing the session columns
        ``addr``/``cch``/``cfb``/``crow`` (address and CXL-DRAM coordinates)
        and ``devs`` the owning device id aligned with ``ks``;
        ``port_transfer``/``port_stream`` are the issuing host port's
        upstream-link closures and ``device_access`` the per-device
        ``access_switch`` closures indexed by device id.  Returns
        ``(result_ready_ns, host_notified_ns)``.

        The whole fetch-instruction stream crosses the upstream link in a
        single ``port_stream`` call (every instruction is issued at
        ``configured_ns``), the FM address profile — never read during an
        accumulation — is folded in with one bulk counter update, and
        buffer hits skip their timing arithmetic entirely (their finish
        times are monotone in instruction order, so the last hit stands in
        for all of them), leaving per hit row only the buffer probe.
        """
        count = len(ks)
        if not count:
            raise ValueError("accumulate() needs at least one row")
        # Step 1: sumtag allocation + configuration instruction.
        self._next_sumtag = (self._next_sumtag + 1) % 512
        configured_ns = port_transfer(self._flit_bytes, issue_ns) + self._configure_ns
        # Step 2: the fetch-instruction stream, pipelined on the upstream
        # link — all issued at configured_ns, so one stream call replays the
        # per-instruction serialization exactly.
        arrivals = port_stream(self._slot_bytes, configured_ns, count)
        # FM address profiling is read only between sessions: one bulk update.
        addresses = [addr[k] for k in ks]
        self._fm_counts.update(addresses)
        self._fm_recorded += count
        fm_io = self._fm_io
        fm_io_get = fm_io.get
        # Steps 3-4: per-row buffer/device data path and accumulation.
        register_ns = self._register_fetch_ns
        element_ns = self._element_ns
        hit_ns = self._hit_latency_ns
        lookup = self.buffer.lookup
        insert = self.buffer.insert
        last_done = configured_ns
        # Buffer hits finish in instruction order (the arrival chain on the
        # serializing upstream link is non-decreasing), so only the last
        # hit's finish time has to be materialized — per hit row the loop
        # below does the buffer probe and nothing else.
        last_hit = -1
        for i in range(count):
            address = addresses[i]
            device_id = devs[i]
            fm_io[device_id] = fm_io_get(device_id, 0) + 1
            if lookup(address):
                last_hit = i
            else:
                k = ks[i]
                # The scalar path adds the register latency and the per-row
                # overhead (BEACON's address translation) as separate sums.
                data_ready = device_access[device_id](
                    cch[k],
                    cfb[k],
                    crow[k],
                    address,
                    (arrivals[i] + register_ns) + per_row_overhead_ns,
                )
                insert(address)
                done = data_ready + element_ns
                if done > last_done:
                    last_done = done
        if last_hit >= 0:
            done = ((arrivals[last_hit] + register_ns) + per_row_overhead_ns + hit_ns) + element_ns
            if done > last_done:
                last_done = done
        self._accumulations += 1
        self._elements += count
        if last_done > self._last_retire_ns:
            self._last_retire_ns = last_done
        # Step 5: result writeback to the host's reserved address.
        if notify_host:
            notified = port_transfer(self._row_bytes, last_done)
        else:
            notified = last_done
        return last_done, notified

    def sync(self) -> None:
        """Fold buffered statistics back into the switch's components."""
        super().sync()
        switch = self._switch
        switch._next_sumtag = self._next_sumtag
        switch.fm_extension.address_profiler._total += self._fm_recorded
        self._fm_recorded = 0
        switch.process_core.apply_accumulation_batch(
            self._accumulations, self._elements, self._last_retire_ns
        )
        self._accumulations = 0
        self._elements = 0
        self.buffer.sync()


__all__ = ["PIFSSwitch", "PIFSSwitchKernel", "RowFetch", "AccumulationOutcome"]
