"""PIFS-Rec: the paper's primary contribution.

The package implements the hardware and software architecture of §IV:

* :mod:`repro.pifs.instructions` — the enhanced CXL.mem instruction format
  (Fig 9) and instruction repacking performed by the switch.
* :mod:`repro.pifs.onswitch_buffer` — the on-switch SRAM buffer with the
  Hottest-Recording (HTR), LRU and FIFO replacement policies (§IV-A4).
* :mod:`repro.pifs.ooo` — the out-of-order accumulation engine with swap
  registers and SRAM spill (§IV-A5).
* :mod:`repro.pifs.process_core` — the Process Core: instruction decode,
  Instruction Ingress Registry, Accumulate Configuration Register with
  capacity back-pressure, and the accumulate logic (§IV-A2/A3).
* :mod:`repro.pifs.fm_endpoint` — the FM Endpoint Extension: memory
  indexing, the address profiler feeding HTR, and the migration controller
  used for cache-line granular migration (§IV-A1, §IV-B4).
* :mod:`repro.pifs.switch` — the PIFS fabric switch combining all of the
  above on top of the base CXL switch.
* :mod:`repro.pifs.forwarding` — multi-layer instruction forwarding across
  switches with Sub-SumCandidateCounters and the CNV capability bit (§IV-C).
* :mod:`repro.pifs.host` — the host-side flow: SumCandidateCounter
  computation, instruction issue and result snooping (§IV-A2).
* :mod:`repro.pifs.runtime` — the user-space SLS API (§IV-D).
"""

from repro.pifs.fm_endpoint import FMEndpointExtension
from repro.pifs.forwarding import ForwardController, MultiSwitchCoordinator
from repro.pifs.host import PIFSHost
from repro.pifs.instructions import PIFSInstruction, repack_instruction
from repro.pifs.onswitch_buffer import OnSwitchBuffer
from repro.pifs.ooo import OutOfOrderAccumulator
from repro.pifs.process_core import ProcessCore
from repro.pifs.runtime import PIFSRuntime, SLSCallResult
from repro.pifs.switch import PIFSSwitch

__all__ = [
    "FMEndpointExtension",
    "ForwardController",
    "MultiSwitchCoordinator",
    "PIFSHost",
    "PIFSInstruction",
    "repack_instruction",
    "OnSwitchBuffer",
    "OutOfOrderAccumulator",
    "ProcessCore",
    "PIFSRuntime",
    "SLSCallResult",
    "PIFSSwitch",
]
