"""Multi-layer instruction forwarding across fabric switches (§IV-C).

In a scaled-out fabric every switch owns a local host and local Type 3
memory.  A row-accumulation request whose candidates span several switches
is split: each remote switch accumulates its local candidates (tracking a
Sub-SumCandidateCounter) and forwards only the partial sum back to the local
switch, whose forward controller combines sub-sums once every candidate has
been processed.  Switches without a process core (CNV = 0) forward raw rows
instead, and the local switch accumulates them itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.config import CXLConfig
from repro.cxl.topology import FabricTopology
from repro.net.packet import Priority


@dataclass
class SubSumRecord:
    """Tracking record for one remote switch's contribution to a sumtag."""

    switch_id: int
    sub_candidate_count: int
    completed: bool = False
    arrival_ns: float = 0.0


@dataclass
class ForwardDecision:
    """The forward controller's verdict once sub-results arrive."""

    complete: bool
    forward_ns: float
    missing_switches: List[int] = field(default_factory=list)


class ForwardController:
    """Per-sumtag tracking of sub-sums expected from remote switches."""

    def __init__(self) -> None:
        self._expected: Dict[int, Dict[int, SubSumRecord]] = {}

    def expect(self, sumtag: int, switch_id: int, sub_candidate_count: int) -> None:
        """Register that ``switch_id`` owes ``sub_candidate_count`` candidates."""
        if sub_candidate_count <= 0:
            raise ValueError("sub_candidate_count must be positive")
        self._expected.setdefault(sumtag, {})[switch_id] = SubSumRecord(
            switch_id=switch_id, sub_candidate_count=sub_candidate_count
        )

    def record_arrival(self, sumtag: int, switch_id: int, arrival_ns: float) -> ForwardDecision:
        """Record a sub-sum arrival; decide whether the result can be forwarded."""
        records = self._expected.get(sumtag)
        if records is None or switch_id not in records:
            raise KeyError(f"sumtag {sumtag} does not expect switch {switch_id}")
        record = records[switch_id]
        record.completed = True
        record.arrival_ns = arrival_ns
        missing = [r.switch_id for r in records.values() if not r.completed]
        if missing:
            return ForwardDecision(complete=False, forward_ns=arrival_ns, missing_switches=missing)
        forward_ns = max(r.arrival_ns for r in records.values())
        return ForwardDecision(complete=True, forward_ns=forward_ns)

    def discard(self, sumtag: int) -> None:
        """Discard tracking state (e.g. after a data-transfer error)."""
        self._expected.pop(sumtag, None)

    def outstanding(self, sumtag: int) -> int:
        records = self._expected.get(sumtag, {})
        return sum(1 for r in records.values() if not r.completed)


class MultiSwitchCoordinator:
    """Cost model for splitting an accumulation across a fabric of switches."""

    def __init__(
        self,
        topology: FabricTopology,
        cxl_config: CXLConfig,
        compute_capable: Optional[Sequence[bool]] = None,
    ) -> None:
        self._topology = topology
        self._config = cxl_config
        if compute_capable is None:
            compute_capable = [True] * topology.num_switches
        if len(compute_capable) != topology.num_switches:
            raise ValueError("compute_capable must have one flag per switch")
        self._cnv = list(compute_capable)
        self.forward_controller = ForwardController()
        # Packet-tier hop channel (``fidelity="packet"``): a PortQueue that
        # treats a sub-sum's round trip as holding one buffer credit from
        # admission until it lands back at the home switch.
        self._hop_port = None
        self._hop_bytes = 0

    @property
    def num_switches(self) -> int:
        return self._topology.num_switches

    @property
    def topology(self) -> FabricTopology:
        """The fabric topology behind this coordinator (fault injection
        degrades inter-switch hops through it)."""
        return self._topology

    def is_compute_capable(self, switch_id: int) -> bool:
        """The CNV bit read during configuration (§IV-C2)."""
        return self._cnv[switch_id]

    def attach_hop_port(self, port, bytes_hint: int = 0) -> None:
        """Install (or remove, with ``None``) a packet-tier hop channel.

        ``bytes_hint`` sizes the forwarded sub-sum payload for flow
        accounting (typically the embedding row width).
        """
        self._hop_port = port
        self._hop_bytes = int(bytes_hint)

    @property
    def hop_port(self):
        return self._hop_port

    def return_trip_ns(self, home_switch_id: int, remote_switch_id: int, ready_ns: float) -> float:
        """When a remote sub-sum ready at ``ready_ns`` lands at the home switch.

        The analytic price is the request/response hop pair
        (``2 * hop_latency_ns``).  With a packet-tier hop channel attached,
        the sub-sum first needs a transit credit: ``degrade_hops`` lengthens
        the transit, credits are held longer, occupancy rises, and a finite
        channel backs up — degradation alters occupancy, not just the price.
        Without a channel (or with unbounded credits) the arithmetic below
        is bit-identical to the historical inline pricing.
        """
        hop_ns = 2 * self.hop_latency_ns(home_switch_id, remote_switch_id)
        port = self._hop_port
        if port is None:
            return ready_ns + hop_ns
        admitted = port.admit(ready_ns, Priority.BULK)
        landed = admitted + hop_ns
        port.depart(ready_ns, admitted, landed, self._hop_bytes, Priority.BULK)
        return landed

    def hop_latency_ns(self, src: int, dst: int) -> float:
        """Inter-switch hop latency between two switches of the fabric.

        Served from the topology's route table — the BFS behind it runs
        once per (src, dst) pair per session, not once per request.
        """
        return self._topology.hop_latency_ns(src, dst)

    def partition_rows(self, row_switches: Sequence[int]) -> Dict[int, int]:
        """Count row candidates per owning switch."""
        counts: Dict[int, int] = {}
        for switch_id in row_switches:
            counts[switch_id] = counts.get(switch_id, 0) + 1
        return counts

    def remote_accumulation_time(
        self,
        local_switch: int,
        remote_switch: int,
        rows: int,
        row_bytes: int,
        per_row_fetch_ns: float,
        issue_ns: float,
    ) -> float:
        """Time for ``remote_switch`` to produce and deliver its contribution.

        A compute-capable remote switch accumulates its rows locally and
        forwards one ``row_bytes`` partial sum; a CNV=0 switch streams every
        raw row to ``local_switch``, which accumulates them itself.
        """
        if rows <= 0:
            raise ValueError("rows must be positive")
        hop_ns = self._topology.hop_latency_ns(local_switch, remote_switch)
        request_arrival = issue_ns + hop_ns
        if self.is_compute_capable(remote_switch):
            # Fetches to the remote switch's local devices proceed in
            # parallel; the slowest row dominates, plus one partial-sum
            # transfer back.
            local_done = request_arrival + per_row_fetch_ns
            return local_done + hop_ns
        # CNV=0: every raw row crosses the inter-switch link and is
        # accumulated by the local switch's process core.
        stream_ns = rows * (row_bytes / self._config.downstream_port_bandwidth_gbps)
        return request_arrival + per_row_fetch_ns + hop_ns + stream_ns


__all__ = ["ForwardController", "ForwardDecision", "MultiSwitchCoordinator", "SubSumRecord"]
