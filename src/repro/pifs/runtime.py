"""User-space programming interface of PIFS-Rec (§IV-D).

The runtime mirrors the OpenCL-like model the paper describes: the user
registers embedding tables (supplying the table data, the number of
embeddings and the vector size), then calls the SLS API with batch indices
and offsets.  Each call returns both the numerically correct pooled vectors
(computed functionally) and the simulated timing of executing the call on
the PIFS-Rec fabric, so applications can be validated for correctness and
performance from the same entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.config import ModelConfig, SystemConfig, WorkloadConfig, DEFAULT_SYSTEM
from repro.dlrm.embedding import EmbeddingTable
from repro.memsys.address_space import AddressSpace
from repro.pifs.system import PIFSRecSystem
from repro.sls.result import SimResult
from repro.traces.workload import SLSRequest, SLSWorkload


@dataclass
class SLSCallResult:
    """Result of one runtime SLS call."""

    values: np.ndarray
    sim: SimResult

    @property
    def latency_ns(self) -> float:
        return self.sim.total_ns


@dataclass
class _TableHandle:
    table_id: int
    table: EmbeddingTable


class PIFSRuntime:
    """The public, user-facing SLS API."""

    def __init__(
        self,
        system: Optional[SystemConfig] = None,
        seed: int = 0,
        local_capacity_fraction: Optional[float] = 0.25,
    ) -> None:
        """Create a runtime.

        ``local_capacity_fraction`` sizes the simulated local-DRAM tier as a
        fraction of the registered tables' footprint (mirroring the paper's
        regime where embedding tables exceed local DRAM and spill to the CXL
        pool).  Pass ``None`` to keep the capacity of ``system`` untouched.
        """
        self.system = system or DEFAULT_SYSTEM
        self.local_capacity_fraction = local_capacity_fraction
        self._seed = seed
        self._tables: List[_TableHandle] = []

    # ------------------------------------------------------------------
    # Memory allocation API
    # ------------------------------------------------------------------
    def allocate_embedding_table(
        self,
        weights: Optional[np.ndarray] = None,
        num_embeddings: Optional[int] = None,
        embedding_dim: Optional[int] = None,
    ) -> int:
        """Register an embedding table; returns its handle (table id).

        Either supply the table data directly via ``weights`` or give the
        (``num_embeddings``, ``embedding_dim``) shape to have the runtime
        initialize it, mirroring the paper's API where the user supplies the
        embedding table file, the number of embeddings and the vector size.
        """
        table_id = len(self._tables)
        if weights is not None:
            weights = np.asarray(weights, dtype=np.float32)
            if weights.ndim != 2:
                raise ValueError("weights must be a 2-D (num_embeddings, dim) array")
            table = EmbeddingTable(weights.shape[0], weights.shape[1], table_id=table_id)
            table.weights = weights.copy()
        else:
            if num_embeddings is None or embedding_dim is None:
                raise ValueError("provide either weights or (num_embeddings, embedding_dim)")
            table = EmbeddingTable(num_embeddings, embedding_dim, table_id=table_id)
        if self._tables and table.dim != self._tables[0].table.dim:
            raise ValueError("all tables registered with one runtime must share the same dim")
        self._tables.append(_TableHandle(table_id=table_id, table=table))
        return table_id

    @property
    def num_tables(self) -> int:
        return len(self._tables)

    def table(self, handle: int) -> EmbeddingTable:
        return self._tables[handle].table

    # ------------------------------------------------------------------
    # SLS API
    # ------------------------------------------------------------------
    def sls(
        self,
        table_handle: int,
        indices: Sequence[int],
        offsets: Sequence[int],
        weights: Optional[Sequence[float]] = None,
    ) -> SLSCallResult:
        """Pooled embedding lookup on one table (one bag per offset)."""
        return self.sls_multi([table_handle], [indices], [offsets], [weights])

    def sls_multi(
        self,
        table_handles: Sequence[int],
        indices_per_table: Sequence[Sequence[int]],
        offsets_per_table: Sequence[Sequence[int]],
        weights_per_table: Optional[Sequence[Optional[Sequence[float]]]] = None,
    ) -> SLSCallResult:
        """Pooled lookup across several tables; values stack per table."""
        if not table_handles:
            raise ValueError("at least one table handle is required")
        if not (len(table_handles) == len(indices_per_table) == len(offsets_per_table)):
            raise ValueError("handles, indices and offsets must align")
        if weights_per_table is None:
            weights_per_table = [None] * len(table_handles)

        values = []
        for handle, indices, offsets, weights in zip(
            table_handles, indices_per_table, offsets_per_table, weights_per_table
        ):
            values.append(self.table(handle).sls(indices, offsets, weights))
        stacked = np.stack(values, axis=1)  # (batch, tables, dim)

        sim = self._simulate(table_handles, indices_per_table, offsets_per_table)
        return SLSCallResult(values=stacked, sim=sim)

    # ------------------------------------------------------------------
    def _model_config(self) -> ModelConfig:
        dims = self._tables[0].table.dim
        max_rows = max(handle.table.num_embeddings for handle in self._tables)
        return ModelConfig(
            name="runtime",
            num_embeddings=max_rows,
            embedding_dim=dims,
            bottom_mlp=(dims,),
            top_mlp=(1,),
            num_tables=len(self._tables),
        )

    def _simulate(
        self,
        table_handles: Sequence[int],
        indices_per_table: Sequence[Sequence[int]],
        offsets_per_table: Sequence[Sequence[int]],
    ) -> SimResult:
        model = self._model_config()
        space = AddressSpace.for_model(model)
        row_bytes = model.embedding_row_bytes
        requests: List[SLSRequest] = []
        request_id = 0
        batch_size = 0
        for handle, indices, offsets in zip(table_handles, indices_per_table, offsets_per_table):
            idx = np.asarray(indices, dtype=np.int64)
            offs = np.asarray(offsets, dtype=np.int64)
            batch_size = max(batch_size, len(offs))
            bounds = np.concatenate([offs, [len(idx)]])
            for sample in range(len(offs)):
                rows = idx[int(bounds[sample]) : int(bounds[sample + 1])]
                if len(rows) == 0:
                    continue
                addresses = np.array(
                    [space.row_address(handle, int(r)) for r in rows], dtype=np.int64
                )
                requests.append(
                    SLSRequest(
                        request_id=request_id,
                        host_id=0,
                        table=handle,
                        sample=sample,
                        rows=rows,
                        addresses=addresses,
                        row_bytes=row_bytes,
                    )
                )
                request_id += 1
        workload = SLSWorkload(
            model=model,
            address_space=space,
            requests=requests,
            batch_size=batch_size,
            num_batches=1,
            distribution="user",
        )
        system_config = self.system
        if self.local_capacity_fraction is not None:
            capacity = max(2 * 4096, int(space.total_bytes * self.local_capacity_fraction))
            system_config = replace(system_config, local_dram_capacity_bytes=capacity)
        system = PIFSRecSystem(system_config)
        return system.run(workload)


__all__ = ["PIFSRuntime", "SLSCallResult"]
