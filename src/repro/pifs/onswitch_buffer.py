"""On-switch SRAM buffer (§IV-A4) with HTR, LRU and FIFO policies."""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Optional

from repro.config import BufferConfig
from repro.memsys.hotness import AccessTracker


class OnSwitchBuffer:
    """A row-vector cache held in the fabric switch's SRAM.

    The buffer stores whole embedding rows keyed by their (row-aligned) byte
    address.  Three replacement strategies are supported:

    * ``htr`` — Hottest Recording: an address profiler ranks rows by access
      frequency; the buffer is periodically re-curated to hold the hottest
      rows, and on insertion the coldest resident row is evicted only if the
      incoming row is hotter.
    * ``lru`` — classic least-recently-used.
    * ``fifo`` — first-in-first-out.
    * ``none`` — the buffer is disabled (every lookup misses).
    """

    def __init__(self, config: BufferConfig, row_bytes: int) -> None:
        if row_bytes <= 0:
            raise ValueError("row_bytes must be positive")
        if config.policy not in ("htr", "lru", "fifo", "none"):
            raise ValueError(f"unknown buffer policy {config.policy!r}")
        self._config = config
        self._row_bytes = row_bytes
        self._capacity_rows = max(0, config.capacity_bytes // row_bytes)
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # address -> insertion order
        self._fifo: Deque[int] = deque()
        self._profiler = AccessTracker()
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        self._accesses_since_curate = 0

    # ------------------------------------------------------------------
    @property
    def config(self) -> BufferConfig:
        return self._config

    @property
    def capacity_rows(self) -> int:
        return self._capacity_rows

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def profiler(self) -> AccessTracker:
        return self._profiler

    def hit_ratio(self) -> float:
        total = self._hits + self._misses
        if total == 0:
            return 0.0
        return self._hits / total

    def hit_latency_ns(self) -> float:
        return self._config.hit_latency_ns

    # ------------------------------------------------------------------
    def lookup(self, address: int) -> bool:
        """Look up ``address``; records profiling info and hit/miss counters."""
        self._profiler.record(address)
        self._accesses_since_curate += 1
        if self._config.policy == "none" or self._capacity_rows == 0:
            self._misses += 1
            return False
        hit = address in self._entries
        if hit:
            self._hits += 1
            if self._config.policy == "lru":
                self._entries.move_to_end(address)
        else:
            self._misses += 1
        if (
            self._config.policy == "htr"
            and self._accesses_since_curate >= self._config.htr_interval
        ):
            self._curate()
        return hit

    def insert(self, address: int) -> None:
        """Insert ``address`` after a miss, applying the replacement policy."""
        if self._config.policy == "none" or self._capacity_rows == 0:
            return
        if address in self._entries:
            if self._config.policy == "lru":
                self._entries.move_to_end(address)
            return
        if len(self._entries) >= self._capacity_rows:
            if not self._evict_for(address):
                return
        self._entries[address] = self._insertions
        self._insertions += 1
        if self._config.policy == "fifo":
            self._fifo.append(address)

    def contains(self, address: int) -> bool:
        return address in self._entries

    # ------------------------------------------------------------------
    def _evict_for(self, incoming: int) -> bool:
        """Free one slot for ``incoming``; returns False if it should not be cached."""
        policy = self._config.policy
        if policy == "fifo":
            while self._fifo:
                victim = self._fifo.popleft()
                if victim in self._entries:
                    del self._entries[victim]
                    self._evictions += 1
                    return True
            return True
        if policy == "lru":
            self._entries.popitem(last=False)
            self._evictions += 1
            return True
        # HTR: evict the coldest resident row, but only if the incoming row is
        # at least as hot — otherwise keep the current curation.
        coldest_addr = None
        coldest_count = None
        for addr in self._entries:
            count = self._profiler.count(addr)
            if coldest_count is None or count < coldest_count:
                coldest_addr, coldest_count = addr, count
        incoming_count = self._profiler.count(incoming)
        if coldest_addr is None:
            return True
        if incoming_count >= (coldest_count or 0):
            del self._entries[coldest_addr]
            self._evictions += 1
            return True
        return False

    def _curate(self) -> None:
        """Re-curate the HTR buffer to hold the hottest recorded rows."""
        self._accesses_since_curate = 0
        hottest = self._profiler.hottest(self._capacity_rows)
        desired = {addr for addr, _ in hottest}
        current = set(self._entries)
        for addr in current - desired:
            del self._entries[addr]
            self._evictions += 1
        for addr in desired - current:
            if len(self._entries) < self._capacity_rows:
                self._entries[addr] = self._insertions
                self._insertions += 1

    def reset_stats(self) -> None:
        self._hits = 0
        self._misses = 0


__all__ = ["OnSwitchBuffer"]
