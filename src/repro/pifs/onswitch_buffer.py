"""On-switch SRAM buffer (§IV-A4) with HTR, LRU and FIFO policies."""

from __future__ import annotations

import dataclasses
import heapq
from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.config import BufferConfig
from repro.memsys.hotness import AccessTracker


class OnSwitchBuffer:
    """A row-vector cache held in the fabric switch's SRAM.

    The buffer stores whole embedding rows keyed by their (row-aligned) byte
    address.  Three replacement strategies are supported:

    * ``htr`` — Hottest Recording: an address profiler ranks rows by access
      frequency; the buffer is periodically re-curated to hold the hottest
      rows, and on insertion the coldest resident row is evicted only if the
      incoming row is hotter.
    * ``lru`` — classic least-recently-used.
    * ``fifo`` — first-in-first-out.
    * ``none`` — the buffer is disabled (every lookup misses).
    """

    def __init__(self, config: BufferConfig, row_bytes: int) -> None:
        if row_bytes <= 0:
            raise ValueError("row_bytes must be positive")
        if config.policy not in ("htr", "lru", "fifo", "none"):
            raise ValueError(f"unknown buffer policy {config.policy!r}")
        self._config = config
        self._row_bytes = row_bytes
        self._capacity_rows = max(0, config.capacity_bytes // row_bytes)
        self._entries: "OrderedDict[int, int]" = OrderedDict()  # address -> insertion order
        self._fifo: Deque[int] = deque()
        # HTR eviction heap: (count-at-push, insertion-seq, address) triples.
        # Profiler counts only grow between curations, so pushed counts are
        # lower bounds and the classic lazy-update scheme finds the exact
        # (count, insertion-order) minimum the linear scan used to select.
        self._heap: List[Tuple[int, int, int]] = []
        self._profiler = AccessTracker()
        self._hits = 0
        self._misses = 0
        self._insertions = 0
        self._evictions = 0
        self._accesses_since_curate = 0

    # ------------------------------------------------------------------
    @property
    def config(self) -> BufferConfig:
        return self._config

    @property
    def capacity_rows(self) -> int:
        return self._capacity_rows

    @property
    def occupancy(self) -> int:
        return len(self._entries)

    @property
    def hits(self) -> int:
        return self._hits

    @property
    def misses(self) -> int:
        return self._misses

    @property
    def evictions(self) -> int:
        return self._evictions

    @property
    def profiler(self) -> AccessTracker:
        return self._profiler

    def hit_ratio(self) -> float:
        total = self._hits + self._misses
        if total == 0:
            return 0.0
        return self._hits / total

    def hit_latency_ns(self) -> float:
        return self._config.hit_latency_ns

    # ------------------------------------------------------------------
    def lookup(self, address: int) -> bool:
        """Look up ``address``; records profiling info and hit/miss counters."""
        self._profiler.record(address)
        self._accesses_since_curate += 1
        if self._config.policy == "none" or self._capacity_rows == 0:
            self._misses += 1
            return False
        hit = address in self._entries
        if hit:
            self._hits += 1
            if self._config.policy == "lru":
                self._entries.move_to_end(address)
        else:
            self._misses += 1
        if (
            self._config.policy == "htr"
            and self._accesses_since_curate >= self._config.htr_interval
        ):
            self._curate()
        return hit

    def insert(self, address: int) -> None:
        """Insert ``address`` after a miss, applying the replacement policy."""
        if self._config.policy == "none" or self._capacity_rows == 0:
            return
        if address in self._entries:
            if self._config.policy == "lru":
                self._entries.move_to_end(address)
            return
        if len(self._entries) >= self._capacity_rows:
            if not self._evict_for(address):
                return
        self._entries[address] = self._insertions
        if self._config.policy == "htr":
            heapq.heappush(
                self._heap, (self._profiler.count(address), self._insertions, address)
            )
        self._insertions += 1
        if self._config.policy == "fifo":
            self._fifo.append(address)

    def contains(self, address: int) -> bool:
        return address in self._entries

    def resize(self, capacity_bytes: int) -> None:
        """Shrink or grow the buffer's SRAM capacity in place.

        Models a fault/degradation scenario where part of the switch SRAM
        is reallocated (or mapped out after an ECC event).  If the new
        capacity is below the current occupancy, resident rows are evicted
        in insertion order until the buffer fits.  Must be applied before
        a :class:`BufferKernel` is built — kernels snapshot the capacity.
        """
        if capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        self._config = dataclasses.replace(self._config, capacity_bytes=capacity_bytes)
        self._capacity_rows = max(0, capacity_bytes // self._row_bytes)
        while len(self._entries) > self._capacity_rows:
            victim, _ = self._entries.popitem(last=False)
            if victim in self._fifo:
                self._fifo.remove(victim)
            self._evictions += 1
        if self._config.policy == "htr":
            self._rebuild_heap()

    # ------------------------------------------------------------------
    def _evict_for(self, incoming: int) -> bool:
        """Free one slot for ``incoming``; returns False if it should not be cached."""
        policy = self._config.policy
        if policy == "fifo":
            while self._fifo:
                victim = self._fifo.popleft()
                if victim in self._entries:
                    del self._entries[victim]
                    self._evictions += 1
                    return True
            return True
        if policy == "lru":
            self._entries.popitem(last=False)
            self._evictions += 1
            return True
        # HTR: evict the coldest resident row, but only if the incoming row is
        # at least as hot — otherwise keep the current curation.  The victim
        # the original linear scan selected is the first minimal-count entry
        # in insertion order, i.e. the lexicographic minimum of
        # (count, insertion-seq) — which the lazy heap yields in O(log n)
        # amortized instead of an O(n) profiler scan per eviction.
        if not self._entries:
            return True
        top = self._heap_top()
        if top is None:
            return True
        coldest_count, _, coldest_addr = top
        incoming_count = self._profiler.count(incoming)
        if incoming_count >= (coldest_count or 0):
            heapq.heappop(self._heap)
            del self._entries[coldest_addr]
            self._evictions += 1
            return True
        return False

    def _heap_top(self) -> Optional[Tuple[int, int, int]]:
        """The exact (count, seq, address) minimum over resident entries.

        Pops stale heap entries (evicted or re-curated addresses) and
        refreshes entries whose profiler count grew since they were pushed.
        Counts never shrink between curations, so a fresh top is a true
        global minimum.
        """
        heap = self._heap
        entries = self._entries
        counts = self._profiler._counts
        entry_seq = entries.get
        rebuilt = False
        while True:
            while heap:
                count, seq, address = heap[0]
                if entry_seq(address) != seq:
                    heapq.heappop(heap)
                    continue
                current = counts[address]
                if current != count:
                    heapq.heapreplace(heap, (current, seq, address))
                    continue
                return heap[0]
            if rebuilt or not entries:
                return None
            self._rebuild_heap()
            rebuilt = True

    def _rebuild_heap(self) -> None:
        counts = self._profiler._counts
        self._heap = [(counts[address], seq, address) for address, seq in self._entries.items()]
        heapq.heapify(self._heap)

    def _curate(self) -> None:
        """Re-curate the HTR buffer to hold the hottest recorded rows."""
        self._accesses_since_curate = 0
        hottest = self._profiler.hottest(self._capacity_rows)
        desired = {addr for addr, _ in hottest}
        current = set(self._entries)
        for addr in current - desired:
            del self._entries[addr]
            self._evictions += 1
        for addr in desired - current:
            if len(self._entries) < self._capacity_rows:
                self._entries[addr] = self._insertions
                self._insertions += 1
        self._rebuild_heap()

    def reset_stats(self) -> None:
        self._hits = 0
        self._misses = 0

    def batch_kernel(self) -> "BufferKernel":
        """A flattened lookup/insert kernel over this buffer (batch engine)."""
        return BufferKernel(self)


class BufferKernel:
    """Flattened ``lookup``/``insert`` over one :class:`OnSwitchBuffer`.

    The closures operate directly on the buffer's own ``OrderedDict`` and
    profiler counter (so HTR curation and eviction decisions are the
    buffer's own code), while the hit/miss/interval counters live in locals
    until :meth:`sync`.  Behaviour is identical to the scalar methods,
    including the HTR re-curation trigger position inside ``lookup``.

    Policies that never *read* the profiler mid-stream (LRU, FIFO, none —
    only HTR consults counts for eviction and curation) additionally get a
    ``probe``/``record`` pair: ``probe`` is ``lookup`` minus the per-row
    profiler increment, and ``record`` folds a whole batch of addresses
    into the profiler with one C-level counter update.  A
    ``probe``+``record`` sequence leaves bit-identical buffer, profiler
    and counter state; for HTR ``probe`` is ``None`` and callers use the
    exact ``lookup``.
    """

    def __init__(self, buffer: OnSwitchBuffer) -> None:
        self._buffer = buffer
        self.lookup, self.probe, self.record, self.insert, self._snapshot = self._build()

    def _build(self):
        buffer = self._buffer
        entries = buffer._entries
        move_to_end = entries.move_to_end
        profiler_counts = buffer._profiler._counts
        policy = buffer._config.policy
        capacity = buffer._capacity_rows
        disabled = policy == "none" or capacity == 0
        is_lru = policy == "lru"
        is_htr = policy == "htr"
        is_fifo = policy == "fifo"
        htr_interval = buffer._config.htr_interval
        hits = 0
        misses = 0
        recorded = 0
        since_curate = buffer._accesses_since_curate

        def lookup(address: int) -> bool:
            nonlocal hits, misses, recorded, since_curate
            profiler_counts[address] += 1
            recorded += 1
            since_curate += 1
            if disabled:
                misses += 1
                return False
            hit = address in entries
            if hit:
                hits += 1
                if is_lru:
                    move_to_end(address)
            else:
                misses += 1
            if is_htr and since_curate >= htr_interval:
                buffer._curate()
                since_curate = 0
            return hit

        def probe(address: int) -> bool:
            """``lookup`` without the profiler increment (LRU/FIFO/none only)."""
            nonlocal hits, misses
            if disabled:
                misses += 1
                return False
            if address in entries:
                hits += 1
                if is_lru:
                    move_to_end(address)
                return True
            misses += 1
            return False

        pending: list = []
        pending_extend = pending.extend

        def record(addresses) -> None:
            """Queue the profiler increments ``probe`` skipped, folded at sync.

            Non-HTR policies never read the profiler mid-session, so the
            counts can accumulate as a flat list (C-level ``extend``) and
            hit the Counter once.
            """
            nonlocal recorded, since_curate
            pending_extend(addresses)
            recorded += len(addresses)
            since_curate += len(addresses)

        heappush = heapq.heappush

        def insert(address: int) -> None:
            if disabled:
                return
            if address in entries:
                if is_lru:
                    move_to_end(address)
                return
            if len(entries) >= capacity:
                if not buffer._evict_for(address):
                    return
            seq = buffer._insertions
            entries[address] = seq
            if is_htr:
                heappush(buffer._heap, (profiler_counts[address], seq, address))
            buffer._insertions += 1
            if is_fifo:
                buffer._fifo.append(address)

        def snapshot():
            if pending:
                profiler_counts.update(pending)
                del pending[:]
            return hits, misses, recorded, since_curate

        # HTR reads profiler counts on every eviction/curation decision, so
        # only the exact per-row lookup preserves its behaviour.
        if is_htr:
            probe_out = record_out = None
        else:
            probe_out, record_out = probe, record
        return lookup, probe_out, record_out, insert, snapshot

    def sync(self) -> None:
        """Fold the buffered counters back into the buffer object."""
        hits, misses, recorded, since_curate = self._snapshot()
        buffer = self._buffer
        buffer._hits += hits
        buffer._misses += misses
        buffer._profiler._total += recorded
        buffer._accesses_since_curate = since_curate
        self.lookup, self.probe, self.record, self.insert, self._snapshot = self._build()


__all__ = ["OnSwitchBuffer", "BufferKernel"]
