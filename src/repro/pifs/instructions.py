"""Enhanced CXL.mem instruction format and repacking (Fig 9).

The enhanced M2S request adds, on top of the standard fields (valid bit,
MemOpcode, snoop/meta fields, tag, address, SPID/DPID):

* ``sumtag``     (9 bits)  — the accumulation cluster a row fetch belongs to,
* ``vector_size`` (3 bits) — the number of 16 B chunks forming a row access
  (binary-coded, eight configurations from 16 B to 2 KB),
* ``sum_candidate_count`` (16 bits, configuration opcode only) — the number
  of row vectors required to finish the accumulation; the address field is
  re-purposed as the reserved result address.

Instruction *repacking* (§IV-A2) is performed by the process core: the PIFS
data-fetch opcode is rewritten to a standard read whose SPID is the fabric
switch, so the target Type 3 device sees an unmodified CXL.mem request and
returns the data to the switch instead of the host.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.config import CXLConfig
from repro.cxl.protocol import CXLMemM2S, MemOpcode

#: Field widths (bits) from Fig 9.
VALID_BITS = 1
MEMOPCODE_BITS = 4
META_BITS = 7
TAG_BITS = 16
ADDRESS_BITS = 46
SPID_BITS = 12
DPID_BITS = 12
SUMTAG_BITS = 9
VECTOR_SIZE_BITS = 3
SUM_CANDIDATE_COUNT_BITS = 16

#: vector_size encodings: value -> row bytes.  The minimum granularity is one
#: 16 B slot; eight configurations are supported with the 3-bit field.
VECTOR_SIZE_BYTES = {
    0: 16,
    1: 32,
    2: 64,
    3: 128,
    4: 256,
    5: 512,
    6: 1024,
    7: 2048,
}
_BYTES_TO_VECTOR_SIZE = {v: k for k, v in VECTOR_SIZE_BYTES.items()}


def encode_vector_size(row_bytes: int) -> int:
    """Encode a row size in bytes into the 3-bit vectorsize field."""
    if row_bytes not in _BYTES_TO_VECTOR_SIZE:
        supported = sorted(_BYTES_TO_VECTOR_SIZE)
        raise ValueError(f"row size {row_bytes} B not encodable; supported: {supported}")
    return _BYTES_TO_VECTOR_SIZE[row_bytes]


def decode_vector_size(code: int) -> int:
    """Decode the 3-bit vectorsize field into a row size in bytes."""
    if code not in VECTOR_SIZE_BYTES:
        raise ValueError(f"invalid vectorsize code {code}")
    return VECTOR_SIZE_BYTES[code]


@dataclass(frozen=True)
class PIFSInstruction:
    """A decoded enhanced instruction as seen by the process core."""

    opcode: MemOpcode
    address: int
    spid: int
    dpid: int
    sumtag: int = 0
    vector_size_code: int = 0
    sum_candidate_count: int = 0
    weight: float = 1.0
    issue_ns: float = 0.0

    def __post_init__(self) -> None:
        if not 0 <= self.sumtag < (1 << SUMTAG_BITS):
            raise ValueError(f"sumtag {self.sumtag} exceeds {SUMTAG_BITS} bits")
        if not 0 <= self.vector_size_code < (1 << VECTOR_SIZE_BITS):
            raise ValueError("vector_size_code exceeds 3 bits")
        if not 0 <= self.sum_candidate_count < (1 << SUM_CANDIDATE_COUNT_BITS):
            raise ValueError("sum_candidate_count exceeds 16 bits")
        if not 0 <= self.address < (1 << (ADDRESS_BITS + 1)):
            raise ValueError("address exceeds 46/47 bits")

    @property
    def row_bytes(self) -> int:
        return decode_vector_size(self.vector_size_code)

    @property
    def is_config(self) -> bool:
        return self.opcode is MemOpcode.PIFS_CONFIG

    @property
    def is_data_fetch(self) -> bool:
        return self.opcode is MemOpcode.PIFS_DATA_FETCH

    def to_message(self) -> CXLMemM2S:
        """Render the instruction as an on-the-wire M2S message."""
        return CXLMemM2S(
            opcode=self.opcode,
            address=self.address,
            spid=self.spid,
            dpid=self.dpid,
            sumtag=self.sumtag,
            vector_size=self.vector_size_code,
            sum_candidate_count=self.sum_candidate_count,
            weight=self.weight,
            data_bytes=self.row_bytes if self.is_data_fetch else 16,
            issue_ns=self.issue_ns,
        )

    @classmethod
    def data_fetch(
        cls,
        address: int,
        row_bytes: int,
        sumtag: int,
        spid: int,
        dpid: int = 0,
        weight: float = 1.0,
        issue_ns: float = 0.0,
    ) -> "PIFSInstruction":
        """Build a row-vector data-fetch instruction."""
        return cls(
            opcode=MemOpcode.PIFS_DATA_FETCH,
            address=address,
            spid=spid,
            dpid=dpid,
            sumtag=sumtag,
            vector_size_code=encode_vector_size(row_bytes),
            weight=weight,
            issue_ns=issue_ns,
        )

    @classmethod
    def configuration(
        cls,
        result_address: int,
        sum_candidate_count: int,
        sumtag: int,
        spid: int,
        issue_ns: float = 0.0,
    ) -> "PIFSInstruction":
        """Build an ACR configuration instruction.

        The address field carries the reserved result address; the data slot
        carries the SumCandidateCount.
        """
        return cls(
            opcode=MemOpcode.PIFS_CONFIG,
            address=result_address,
            spid=spid,
            dpid=0,
            sumtag=sumtag,
            sum_candidate_count=sum_candidate_count,
            issue_ns=issue_ns,
        )


def repack_instruction(
    instruction: PIFSInstruction,
    switch_spid: int,
    device_dpid: int,
    device_address: Optional[int] = None,
) -> CXLMemM2S:
    """Repack a PIFS data-fetch into a standard read issued by the switch.

    Two fields change (§IV-A2): the MemOpcode becomes a standard ``MEM_RD``
    so the Type 3 device needs no modification, and the SPID becomes the
    fabric switch so the data returns to the switch rather than the host.
    """
    if not instruction.is_data_fetch:
        raise ValueError("only data-fetch instructions are repacked")
    return CXLMemM2S(
        opcode=MemOpcode.MEM_RD,
        address=device_address if device_address is not None else instruction.address,
        spid=switch_spid,
        dpid=device_dpid,
        sumtag=instruction.sumtag,
        vector_size=instruction.vector_size_code,
        weight=instruction.weight,
        data_bytes=instruction.row_bytes,
        issue_ns=instruction.issue_ns,
    )


__all__ = [
    "PIFSInstruction",
    "repack_instruction",
    "encode_vector_size",
    "decode_vector_size",
    "VECTOR_SIZE_BYTES",
]
