"""PIFS-Rec as an end-to-end SLS system (hardware + software architecture)."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.api.registry import register_system
from repro.config import SystemConfig
from repro.cxl.topology import FabricTopology
from repro.memsys.tiered import TieredMemorySystem
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pagemgmt.spreading import SpreadingPolicy
from repro.pifs.forwarding import MultiSwitchCoordinator
from repro.pifs.host import PIFSHost
from repro.pifs.switch import PIFSSwitch, RowFetch
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSRequest, SLSWorkload


@register_system("pifs-rec")
class PIFSRecSystem(SLSSystem):
    """The full PIFS-Rec design (§IV).

    Hardware: process cores in every fabric switch, on-switch HTR buffer,
    out-of-order accumulation, FM endpoint extension.  Software: online
    global-hotness page swapping between local DRAM and CXL plus embedding
    spreading across CXL nodes, using the cache-line-granular migration
    controller.
    """

    name = "PIFS-Rec"
    supports_vector_engine = True

    def __init__(
        self,
        system: SystemConfig,
        page_management: bool = True,
        hotness_policy: Optional[GlobalHotnessPolicy] = None,
        spreading_policy: Optional[SpreadingPolicy] = None,
    ) -> None:
        super().__init__(system, use_pifs_switch=True)
        self.page_management = page_management and system.page_mgmt.enabled
        self.hotness_policy = hotness_policy or GlobalHotnessPolicy(
            cold_age_threshold=system.page_mgmt.cold_age_threshold
        )
        self.spreading_policy = spreading_policy or SpreadingPolicy(
            migrate_threshold=system.page_mgmt.migrate_threshold
        )
        self.hosts: Dict[int, PIFSHost] = {}
        self.coordinator: Optional[MultiSwitchCoordinator] = None

    # ------------------------------------------------------------------
    def build_placement(self, workload: SLSWorkload) -> TieredMemorySystem:
        if self.page_management:
            # With page management enabled the placement starts from the
            # hotness-ordered steady state the global-hotness policy converges
            # to (convergence is fast thanks to cache-line-granular
            # migration); the online policies keep refining it below.
            return self.place_hotness_order(workload)
        # Without page management PIFS-Rec inherits Pond's capacity-ordered
        # placement.
        return self.place_capacity_order(workload)

    def prepare(self, workload: SLSWorkload) -> None:
        self.hosts = {
            host_id: PIFSHost(host_id, self.system)
            for host_id in range(max(1, self.system.num_hosts))
        }
        # The embedding-table region is designated device-bias (§IV-A1), so
        # in-switch fetches never pay the host-bias coherence round trip.
        from repro.cxl.bias_table import BiasMode

        for device in self.backends.devices:
            device.bias_table.set_mode(0, BiasMode.DEVICE, workload.address_space.total_bytes)
        num_switches = max(1, self.system.num_fabric_switches)
        if num_switches > 1:
            topology = FabricTopology(num_switches, self.system.cxl)
            compute = [
                isinstance(sw, PIFSSwitch) and sw.compute_enabled
                for sw in self.backends.switches
            ]
            self.coordinator = MultiSwitchCoordinator(topology, self.system.cxl, compute)
        else:
            self.coordinator = None

    # ------------------------------------------------------------------
    def process_request(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        host = self.hosts[host_id]
        split = host.split_candidates(request.addresses, self.tiered)

        local_done = host.accumulate_local(
            split.local_addresses,
            start_ns,
            lambda address, now, _host=host_id: self.host_local_access(address, now, _host),
        )

        if not split.remote_addresses:
            return local_done

        # Record CXL accesses for placement policies and counters.
        for address in split.remote_addresses:
            self.tiered.record_access(address, start_ns)
        self._counters["cxl_rows"] += len(split.remote_addresses)

        remote_done = self._accumulate_in_fabric(split.remote_addresses, start_ns, host_id, request)
        return host.combine(local_done, remote_done)

    def _accumulate_in_fabric(
        self,
        addresses: List[int],
        start_ns: float,
        host_id: int,
        request: SLSRequest,
    ) -> float:
        """Run the in-switch accumulation for the non-local candidates."""
        by_switch: Dict[int, List[RowFetch]] = {}
        for address in addresses:
            device_id = self.device_of_address(address)
            switch_id = self.backends.device_switch[device_id]
            by_switch.setdefault(switch_id, []).append(
                RowFetch(address=address, device_id=device_id)
            )

        home_switch_id = self.backends.host_home_switch[host_id]
        result_address = (1 << 40) | (request.request_id << 8)
        finishes: List[float] = []
        for switch_id, rows in by_switch.items():
            switch = self.backends.switches[switch_id]
            assert isinstance(switch, PIFSSwitch)
            port = self.backends.host_port(host_id, switch_id)
            is_home = switch_id == home_switch_id
            outcome = switch.accumulate(
                rows,
                host_port=port,
                issue_ns=start_ns,
                result_address=result_address,
                notify_host=is_home or self.coordinator is None,
            )
            finish = outcome.host_notified_ns
            if not is_home and self.coordinator is not None:
                # Sub-sum produced at the remote switch travels back to the
                # home switch (inter-switch hops in both directions for the
                # forwarded instructions and the returning partial result).
                # The coordinator prices the round trip — and, under packet
                # fidelity, routes it through the hop channel's credit pool.
                finish = self.coordinator.return_trip_ns(
                    home_switch_id, switch_id, outcome.result_ready_ns
                )
            finishes.append(finish)
        return max(finishes)

    # ------------------------------------------------------------------
    # Vector-engine twin
    # ------------------------------------------------------------------
    def prepare_vector(self, ctx) -> None:
        """Build the per-host fused local-accumulation closures once."""
        num_drams = len(ctx.local_dram_kernels)
        self._local_bags = [
            ctx.local_dram_kernels[host_id % num_drams].mlp_bag(
                self.hosts[host_id].LOCAL_MLP,
                self.HOST_LOCAL_OVERHEAD_NS,
                self.hosts[host_id].HOST_ACCUMULATE_NS_PER_ROW,
            )
            for host_id in range(ctx.num_hosts)
        ]

    def process_request_vector(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        """The PIFS-Rec request flow on pre-resolved batches.

        Candidate split, local SIMD accumulation and the in-switch
        accumulation all run on the vector context's resolution arrays and
        flattened kernels with the scalar path's exact arithmetic.
        """
        ctx = self._vector
        begin, end = ctx.bounds[request.request_id]
        local_ks, remote_ks, remote_devs, remote_sws = ctx.split(begin, end)
        page = ctx.page
        page_last = ctx.page_last
        # Counts carry no timestamps: bulk-append the whole bag in C (the
        # Counter is built at flush).  A page holds rows of exactly one
        # node, so the local (cursor-stamped) and remote (issue-stamped)
        # page sets below are disjoint.
        ctx.pending_pages.extend(page[begin:end])
        host = self.hosts[host_id]
        stats = host.stats
        stats.local_rows += len(local_ks)
        stats.remote_rows += len(remote_ks)

        # Local candidates: host-side loads in LOCAL_MLP groups, run through
        # the per-host fused DRAM bag closure (one Python call per bag).
        local_done = start_ns
        if local_ks:
            local_done = self._local_bags[host_id](
                local_ks, ctx.lch, ctx.lfb, ctx.lrow, start_ns, page, page_last
            )
            self._counters["local_rows"] += len(local_ks)

        if not remote_ks:
            return local_done

        # Remote candidates: record at issue time, then accumulate in-fabric.
        addr = ctx.addr
        cch, cfb, crow = ctx.cch, ctx.cfb, ctx.crow
        page_last.update(dict.fromkeys([page[k] for k in remote_ks], start_ns))
        self._counters["cxl_rows"] += len(remote_ks)

        dev_access = ctx.dev_access_switch
        port_transfers = ctx.port_transfer[host_id]
        port_streams = ctx.port_stream[host_id]
        if ctx.single_switch:
            # One switch: it is every host's home switch and the coordinator
            # is disabled, so the whole remote set is one accumulation.
            _, remote_done = ctx.switch_kernels[0].accumulate(
                port_transfers[0],
                port_streams[0],
                remote_ks,
                remote_devs,
                addr,
                cch,
                cfb,
                crow,
                dev_access,
                start_ns,
            )
        else:
            by_switch: Dict[int, Tuple[list, list]] = {}
            for j, k in enumerate(remote_ks):
                bucket = by_switch.get(remote_sws[j])
                if bucket is None:
                    by_switch[remote_sws[j]] = ([k], [remote_devs[j]])
                else:
                    bucket[0].append(k)
                    bucket[1].append(remote_devs[j])
            home_switch_id = ctx.home_switch[host_id]
            coordinator = self.coordinator
            remote_done = None
            for switch_id, (switch_ks, switch_devs) in by_switch.items():
                kernel = ctx.switch_kernels[switch_id]
                is_home = switch_id == home_switch_id
                result_ready, notified = kernel.accumulate(
                    port_transfers[switch_id],
                    port_streams[switch_id],
                    switch_ks,
                    switch_devs,
                    addr,
                    cch,
                    cfb,
                    crow,
                    dev_access,
                    start_ns,
                    notify_host=is_home or coordinator is None,
                )
                finish = notified
                if not is_home and coordinator is not None:
                    hop_ns = 2 * coordinator.hop_latency_ns(home_switch_id, switch_id)
                    finish = result_ready + hop_ns
                if remote_done is None or finish > remote_done:
                    remote_done = finish

        # host.combine(): snoop the writeback, fold in the local partial sum.
        stats.snoop_polls += 1
        stats.results_combined += 1
        remote_visible = remote_done + host.SNOOP_DETECT_NS
        combined = local_done if local_done > remote_visible else remote_visible
        return combined + host.COMBINE_NS

    # ------------------------------------------------------------------
    def maintenance(self, now_ns: float) -> float:
        if not self.page_management:
            return 0.0
        row_bytes = self.backends.row_bytes
        swap = self.hotness_policy.run_epoch(self.tiered, row_bytes=row_bytes)
        balance = self.spreading_policy.rebalance(self.tiered, row_bytes=row_bytes)
        cost = swap.cost_ns + balance.cost_ns
        self.add_migration_cost(cost)
        self.tiered.decay_hotness(0.5)
        # Cache-line-block migration barely blocks query processing; OS
        # page-block migration stalls the queries that touch the page for a
        # sizeable fraction of the copy.
        if self.system.page_mgmt.migration_mode == "page_block":
            return cost * 0.25
        return cost * 0.05


@register_system("pifs-rec-nopm")
class PIFSRecNoPM(PIFSRecSystem):
    """PIFS-Rec hardware without the software page management (ablation)."""

    name = "PIFS-Rec (no PM)"

    def __init__(self, system: SystemConfig) -> None:
        super().__init__(system, page_management=False)


__all__ = ["PIFSRecSystem", "PIFSRecNoPM"]
