"""PIFS-Rec as an end-to-end SLS system (hardware + software architecture)."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional

from repro.api.registry import register_system
from repro.config import SystemConfig
from repro.cxl.topology import FabricTopology
from repro.memsys.tiered import TieredMemorySystem
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pagemgmt.spreading import SpreadingPolicy
from repro.pifs.forwarding import MultiSwitchCoordinator
from repro.pifs.host import PIFSHost
from repro.pifs.switch import PIFSSwitch, RowFetch
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSRequest, SLSWorkload


@register_system("pifs-rec")
class PIFSRecSystem(SLSSystem):
    """The full PIFS-Rec design (§IV).

    Hardware: process cores in every fabric switch, on-switch HTR buffer,
    out-of-order accumulation, FM endpoint extension.  Software: online
    global-hotness page swapping between local DRAM and CXL plus embedding
    spreading across CXL nodes, using the cache-line-granular migration
    controller.
    """

    name = "PIFS-Rec"

    def __init__(
        self,
        system: SystemConfig,
        page_management: bool = True,
        hotness_policy: Optional[GlobalHotnessPolicy] = None,
        spreading_policy: Optional[SpreadingPolicy] = None,
    ) -> None:
        super().__init__(system, use_pifs_switch=True)
        self.page_management = page_management and system.page_mgmt.enabled
        self.hotness_policy = hotness_policy or GlobalHotnessPolicy(
            cold_age_threshold=system.page_mgmt.cold_age_threshold
        )
        self.spreading_policy = spreading_policy or SpreadingPolicy(
            migrate_threshold=system.page_mgmt.migrate_threshold
        )
        self.hosts: Dict[int, PIFSHost] = {}
        self.coordinator: Optional[MultiSwitchCoordinator] = None

    # ------------------------------------------------------------------
    def build_placement(self, workload: SLSWorkload) -> TieredMemorySystem:
        if self.page_management:
            # With page management enabled the placement starts from the
            # hotness-ordered steady state the global-hotness policy converges
            # to (convergence is fast thanks to cache-line-granular
            # migration); the online policies keep refining it below.
            return self.place_hotness_order(workload)
        # Without page management PIFS-Rec inherits Pond's capacity-ordered
        # placement.
        return self.place_capacity_order(workload)

    def prepare(self, workload: SLSWorkload) -> None:
        self.hosts = {
            host_id: PIFSHost(host_id, self.system)
            for host_id in range(max(1, self.system.num_hosts))
        }
        # The embedding-table region is designated device-bias (§IV-A1), so
        # in-switch fetches never pay the host-bias coherence round trip.
        from repro.cxl.bias_table import BiasMode

        for device in self.backends.devices:
            device.bias_table.set_mode(0, BiasMode.DEVICE, workload.address_space.total_bytes)
        num_switches = max(1, self.system.num_fabric_switches)
        if num_switches > 1:
            topology = FabricTopology(num_switches, self.system.cxl)
            compute = [
                isinstance(sw, PIFSSwitch) and sw.compute_enabled
                for sw in self.backends.switches
            ]
            self.coordinator = MultiSwitchCoordinator(topology, self.system.cxl, compute)
        else:
            self.coordinator = None

    # ------------------------------------------------------------------
    def process_request(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        host = self.hosts[host_id]
        split = host.split_candidates(request.addresses, self.tiered)

        local_done = host.accumulate_local(
            split.local_addresses,
            start_ns,
            lambda address, now, _host=host_id: self.host_local_access(address, now, _host),
        )

        if not split.remote_addresses:
            return local_done

        # Record CXL accesses for placement policies and counters.
        for address in split.remote_addresses:
            self.tiered.record_access(address, start_ns)
        self._counters["cxl_rows"] += len(split.remote_addresses)

        remote_done = self._accumulate_in_fabric(split.remote_addresses, start_ns, host_id, request)
        return host.combine(local_done, remote_done)

    def _accumulate_in_fabric(
        self,
        addresses: List[int],
        start_ns: float,
        host_id: int,
        request: SLSRequest,
    ) -> float:
        """Run the in-switch accumulation for the non-local candidates."""
        by_switch: Dict[int, List[RowFetch]] = {}
        for address in addresses:
            device_id = self.device_of_address(address)
            switch_id = self.backends.device_switch[device_id]
            by_switch.setdefault(switch_id, []).append(
                RowFetch(address=address, device_id=device_id)
            )

        home_switch_id = self.backends.host_home_switch[host_id]
        result_address = (1 << 40) | (request.request_id << 8)
        finishes: List[float] = []
        for switch_id, rows in by_switch.items():
            switch = self.backends.switches[switch_id]
            assert isinstance(switch, PIFSSwitch)
            port = self.backends.host_port(host_id, switch_id)
            is_home = switch_id == home_switch_id
            outcome = switch.accumulate(
                rows,
                host_port=port,
                issue_ns=start_ns,
                result_address=result_address,
                notify_host=is_home or self.coordinator is None,
            )
            finish = outcome.host_notified_ns
            if not is_home and self.coordinator is not None:
                # Sub-sum produced at the remote switch travels back to the
                # home switch (inter-switch hops in both directions for the
                # forwarded instructions and the returning partial result).
                hop_ns = 2 * self.coordinator.hop_latency_ns(home_switch_id, switch_id)
                finish = outcome.result_ready_ns + hop_ns
            finishes.append(finish)
        return max(finishes)

    # ------------------------------------------------------------------
    def maintenance(self, now_ns: float) -> float:
        if not self.page_management:
            return 0.0
        row_bytes = self.backends.row_bytes
        swap = self.hotness_policy.run_epoch(self.tiered, row_bytes=row_bytes)
        balance = self.spreading_policy.rebalance(self.tiered, row_bytes=row_bytes)
        cost = swap.cost_ns + balance.cost_ns
        self.add_migration_cost(cost)
        self.tiered.decay_hotness(0.5)
        # Cache-line-block migration barely blocks query processing; OS
        # page-block migration stalls the queries that touch the page for a
        # sizeable fraction of the copy.
        if self.system.page_mgmt.migration_mode == "page_block":
            return cost * 0.25
        return cost * 0.05


@register_system("pifs-rec-nopm")
class PIFSRecNoPM(PIFSRecSystem):
    """PIFS-Rec hardware without the software page management (ablation)."""

    name = "PIFS-Rec (no PM)"

    def __init__(self, system: SystemConfig) -> None:
        super().__init__(system, page_management=False)


__all__ = ["PIFSRecSystem", "PIFSRecNoPM"]
