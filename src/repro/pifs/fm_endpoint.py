"""FM Endpoint Extension: memory indexing, address profiler, migration controller."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import CACHE_LINE_BYTES
from repro.memsys.hotness import AccessTracker


@dataclass(frozen=True)
class IndexEntry:
    """One lookup-table entry: which device holds an address range."""

    start_address: int
    end_address: int
    device_id: int

    def contains(self, address: int) -> bool:
        return self.start_address <= address < self.end_address


class MemoryIndexingUnit:
    """The enhanced memory indexing unit of the FM endpoint extension.

    The paper describes a "lookup table ... to facilitate address indexing
    and mapping logic, directing the memory footprint to either CXL memory or
    an on-switch buffer".  The unit maps global (host physical) addresses to
    the downstream device owning them; page-granular overrides installed by
    the migration controller take precedence over the coarse range map.
    """

    def __init__(self, page_size: int = 4096) -> None:
        self._ranges: list[IndexEntry] = []
        self._page_overrides: Dict[int, int] = {}
        self._page_size = page_size

    def add_range(self, start_address: int, end_address: int, device_id: int) -> None:
        if end_address <= start_address:
            raise ValueError("end_address must be greater than start_address")
        self._ranges.append(IndexEntry(start_address, end_address, device_id))

    def set_page_owner(self, page_id: int, device_id: int) -> None:
        """Install (or update) a page-granular override."""
        self._page_overrides[page_id] = device_id

    def device_for(self, address: int) -> int:
        """Device id owning ``address``; raises KeyError if unmapped."""
        page_id = address // self._page_size
        if page_id in self._page_overrides:
            return self._page_overrides[page_id]
        for entry in self._ranges:
            if entry.contains(address):
                return entry.device_id
        raise KeyError(f"address {address:#x} is not mapped to any device")


class MigrationController:
    """Cache-line granular migration support in the switch (§IV-B4).

    During a migration the controller holds in-flight cache lines in a
    temporal location in the switch, so only the rows sharing the in-flight
    line are blocked rather than the whole page.
    """

    #: Latency to stage one cache line in the switch's temporal buffer.
    STAGE_LATENCY_NS = 4.0

    def __init__(self) -> None:
        self._inflight_lines: Dict[int, float] = {}
        self._staged_lines = 0

    @property
    def staged_lines(self) -> int:
        return self._staged_lines

    def begin_line(self, line_address: int, now_ns: float) -> float:
        """Stage ``line_address``; returns when the line becomes available again."""
        available = now_ns + self.STAGE_LATENCY_NS
        self._inflight_lines[line_address // CACHE_LINE_BYTES] = available
        self._staged_lines += 1
        return available

    def finish_line(self, line_address: int) -> None:
        self._inflight_lines.pop(line_address // CACHE_LINE_BYTES, None)

    def access_delay(self, address: int, now_ns: float) -> float:
        """Extra delay an access pays if its cache line is being migrated."""
        available = self._inflight_lines.get(address // CACHE_LINE_BYTES)
        if available is None or available <= now_ns:
            return 0.0
        return available - now_ns


class FMEndpointExtension:
    """The fabric-manager endpoint extension of the PIFS switch."""

    def __init__(self, page_size: int = 4096) -> None:
        self.indexing = MemoryIndexingUnit(page_size=page_size)
        self.address_profiler = AccessTracker()
        self.migration_controller = MigrationController()
        self.io_access_counters: Dict[int, int] = {}

    def record_device_access(self, device_id: int, address: int) -> None:
        """Record an I/O access for profiling and device balancing."""
        self.address_profiler.record(address)
        self.io_access_counters[device_id] = self.io_access_counters.get(device_id, 0) + 1

    def device_access_counts(self) -> Dict[int, int]:
        return dict(self.io_access_counters)

    def reset_counters(self) -> None:
        self.address_profiler.reset()
        self.io_access_counters.clear()


__all__ = ["FMEndpointExtension", "MemoryIndexingUnit", "MigrationController", "IndexEntry"]
