"""Latency-vs-QPS curves: tail latency of every system under open-loop load.

The paper's figures compare systems by closed-loop completion time; this
experiment compares them the way production recommendation serving is
judged — p50/p95/p99 latency and goodput as the offered QPS grows — and
reports the maximum QPS each system sustains under a p99 latency budget.
Each (system, qps) point is an independent :func:`repro.api.session.
execute_serve_spec` call, so the grid fans out over worker processes
exactly like the closed-loop sweeps.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Dict, Optional, Sequence, Tuple

from repro.api.session import ServeEvaluator, Simulation
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale
from repro.serve.metrics import ServeResult
from repro.serve.server import ServeConfig

#: PIFS-Rec against the host-centric and CXL-only baselines.
CURVE_SYSTEMS = ("pond", "beacon", "recnmp", "pifs-rec")
#: Offered-load axis (requests/s), spanning underload to saturation.
QPS_VALUES = (1e5, 2e5, 4e5, 8e5, 1.6e6)
#: The serving-loop knobs shared by every point of the figure.
SERVE_SETTINGS = dict(arrival="poisson", max_batch_size=8, max_wait_ns=20_000.0)


def _simulation(system: str, scale: EvaluationScale, model: str, num_batches: int) -> Simulation:
    return Simulation(system, scale=scale).model(model).num_batches(num_batches)


def run_latency_curves(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = CURVE_SYSTEMS,
    qps_values: Sequence[float] = QPS_VALUES,
    model: str = "RMC1",
    num_batches: int = 8,
    parallel: bool = False,
) -> Dict[str, Dict[float, Dict[str, float]]]:
    """Latency metrics per system per offered QPS: ``{system: {qps: {...}}}``.

    Each cell reports ``p50_ns``/``p95_ns``/``p99_ns``, ``goodput_qps`` and
    ``achieved_qps``.  ``parallel=True`` evaluates the (system × qps) grid
    across worker processes with results identical to the serial path.
    """
    tasks = []
    for system in systems:
        sim = _simulation(system, scale, model, num_batches)
        config = ServeConfig(qps=float(qps_values[0]), seed=scale.seed, **SERVE_SETTINGS)
        evaluator = ServeEvaluator(sim.spec(), config)
        tasks.extend((evaluator, float(qps)) for qps in qps_values)

    if parallel and len(tasks) > 1:
        context = (
            multiprocessing.get_context("fork")
            if sys.platform.startswith("linux")
            else multiprocessing.get_context()
        )
        workers = min(len(tasks), os.cpu_count() or 1)
        with context.Pool(processes=workers) as pool:
            outcomes = pool.starmap(_evaluate, tasks)
    else:
        outcomes = [_evaluate(evaluator, qps) for evaluator, qps in tasks]

    curves: Dict[str, Dict[float, Dict[str, float]]] = {}
    cursor = iter(outcomes)
    for system in systems:
        curves[system] = {float(qps): _summary(next(cursor)) for qps in qps_values}
    return curves


def _evaluate(evaluator: ServeEvaluator, qps: float) -> ServeResult:
    """Module-level so the process pool can pickle the task."""
    return evaluator(qps)


def _summary(result: ServeResult) -> Dict[str, float]:
    return {
        "p50_ns": result.latency.p50_ns,
        "p95_ns": result.latency.p95_ns,
        "p99_ns": result.latency.p99_ns,
        "goodput_qps": result.goodput_qps,
        "achieved_qps": result.achieved_qps,
    }


def run_max_sustainable_qps(
    sla_ns: float = 50_000.0,
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = CURVE_SYSTEMS,
    qps_bounds: Tuple[float, float] = (5e4, 5e6),
    model: str = "RMC1",
    num_batches: int = 8,
    grid_points: int = 4,
    refine_iters: int = 6,
    parallel: bool = False,
) -> Dict[str, float]:
    """Max QPS each system sustains under a p99 budget of ``sla_ns``."""
    sustained: Dict[str, float] = {}
    for system in systems:
        sweep = _simulation(system, scale, model, num_batches).sla_sweep(
            sla_ns,
            qps_bounds,
            grid_points=grid_points,
            refine_iters=refine_iters,
            parallel=parallel,
            **SERVE_SETTINGS,
        )
        sustained[system] = sweep.max_sustainable_qps
    return sustained


def main(parallel: bool = False, scale: Optional[EvaluationScale] = None) -> None:
    from repro.analysis.report import format_table

    scale = scale or DEFAULT_SCALE
    curves = run_latency_curves(scale, parallel=parallel)
    rows = []
    for system, by_qps in curves.items():
        for qps, metrics in by_qps.items():
            rows.append([
                system,
                qps,
                metrics["p50_ns"],
                metrics["p95_ns"],
                metrics["p99_ns"],
                metrics["goodput_qps"],
            ])
    print(format_table(
        ["system", "offered_qps", "p50_ns", "p95_ns", "p99_ns", "goodput_qps"], rows
    ))
    sustained = run_max_sustainable_qps(scale=scale, parallel=parallel)
    print()
    print("max sustainable QPS under a 50 us p99 budget:")
    print(format_table(
        ["system", "max_qps"], [[system, qps] for system, qps in sustained.items()]
    ))


if __name__ == "__main__":
    main()


__all__ = [
    "CURVE_SYSTEMS",
    "QPS_VALUES",
    "run_latency_curves",
    "run_max_sustainable_qps",
    "main",
]
