"""Tables I-III of the paper as structured data."""

from __future__ import annotations

from typing import Dict, List

from repro.config import DEFAULT_SYSTEM, MODEL_CONFIGS
from repro.cost.hardware_specs import HARDWARE_SPECS


def table1_models() -> List[Dict[str, object]]:
    """Table I: model parameters."""
    rows: List[Dict[str, object]] = []
    for name, model in MODEL_CONFIGS.items():
        rows.append(
            {
                "name": name,
                "emb_num": model.num_embeddings,
                "emb_dim": model.embedding_dim,
                "bottom_mlp": "-".join(str(x) for x in model.bottom_mlp),
                "top_mlp": "-".join(str(x) for x in model.top_mlp),
            }
        )
    return rows


def table2_hardware() -> Dict[str, Dict[str, object]]:
    """Table II: the hardware configuration used by the simulator."""
    dram = DEFAULT_SYSTEM.local_dram
    cxl = DEFAULT_SYSTEM.cxl
    timings = dram.timings
    return {
        "dram": {
            "dimm_capacity_gb": dram.dimm_capacity_bytes // (1024 ** 3),
            "channels": dram.channels,
            "ranks": dram.ranks_per_channel,
            "frequency_mhz": int(1e6 / timings.tck_ps),
            "cl_rcd_rp_ras": (timings.cl, timings.trcd, timings.trp, timings.tras),
            "trc_twr_trtp": (timings.trc, timings.twr, timings.trtp),
            "tcwl_nrfc1_tck_ps": (timings.tcwl, timings.nrfc1, timings.tck_ps),
        },
        "cxl": {
            "downstream_port_gbps": cxl.downstream_port_bandwidth_gbps,
            "downstream_ports": cxl.downstream_ports,
            "buffer_read_ns": cxl.buffer_read_ns,
            "buffer_write_ns": cxl.buffer_write_ns,
            "access_penalty_ns": cxl.access_penalty_ns,
        },
    }


def table3_specs() -> List[Dict[str, object]]:
    """Table III: hardware specifications and prices."""
    return [
        {
            "key": key,
            "name": spec.name,
            "description": spec.description,
            "tdp_watts": spec.tdp_watts,
            "price_usd": spec.price_usd,
            "per_gb": spec.per_gb,
        }
        for key, spec in HARDWARE_SPECS.items()
    ]


def main() -> None:
    from repro.analysis.report import format_table

    print(format_table(
        ["name", "emb_num", "emb_dim", "bottom_mlp", "top_mlp"],
        [[r["name"], r["emb_num"], r["emb_dim"], r["bottom_mlp"], r["top_mlp"]] for r in table1_models()],
    ))
    print()
    print(format_table(
        ["name", "tdp_w", "price_usd"],
        [[r["name"], r["tdp_watts"], r["price_usd"]] for r in table3_specs()],
    ))


if __name__ == "__main__":
    main()


__all__ = ["table1_models", "table2_hardware", "table3_specs", "main"]
