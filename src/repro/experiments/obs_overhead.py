"""Observability overhead: what tracing costs, and what NullRecorder doesn't.

Two claims underwrite ``repro.obs``: with recording off the hot paths pay
one attribute check (the ``NullRecorder`` default), and with recording on
the results are bit-identical — the recorder only receives timestamps the
engines already computed.  This experiment measures both: each
(system, engine) cell runs the same session unobserved and with a
:class:`~repro.obs.recorder.TraceRecorder` attached, reports the best-of-N
wall time of each, the traced/null ratio, the event volume behind the gap,
and asserts the two runs produced identical simulated totals.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.api.session import Simulation
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale
from repro.net.fabric import PacketConfig
from repro.obs.recorder import TraceRecorder

#: One representative cell per fidelity tier (the CI trace smoke mirrors it).
OVERHEAD_CELLS: Tuple[Tuple[str, str], ...] = (
    ("pond", "scalar"),
    ("pifs-rec", "vector"),
    ("recnmp", "packet"),
)


def _cell_simulation(system: str, engine: str, scale: EvaluationScale) -> Simulation:
    sim = Simulation(system, scale=scale)
    if engine == "packet":
        # Finite buffers so the packet bridge has backpressure to record;
        # both timed runs share the configuration, so the comparison holds.
        sim.packet(PacketConfig(capacity=4))
    else:
        sim.engine(engine)
    return sim


def _best_of(repeats: int, sim: Simulation, recorder: Optional[TraceRecorder]):
    """Best wall time of ``repeats`` uncached runs (and the last result)."""
    best_ns = None
    result = None
    for _ in range(repeats):
        sim.observe(recorder if recorder is not None else None)
        if recorder is not None:
            recorder.clear()
        start = time.perf_counter_ns()
        result = sim.run(cache=False)
        elapsed = time.perf_counter_ns() - start
        best_ns = elapsed if best_ns is None else min(best_ns, elapsed)
    return best_ns, result


def run_obs_overhead(
    scale: EvaluationScale = DEFAULT_SCALE,
    cells: Sequence[Tuple[str, str]] = OVERHEAD_CELLS,
    repeats: int = 3,
) -> Dict[str, Dict[str, Any]]:
    """Null-vs-traced wall time per cell: ``{"system/engine": {...}}``.

    Each cell carries ``null_ms`` / ``traced_ms`` (best of ``repeats``),
    the ``ratio`` between them, the traced run's event and metric volume,
    and ``identical`` — whether both runs produced the same simulated
    total (they must; recording never perturbs results).
    """
    report: Dict[str, Dict[str, Any]] = {}
    for system, engine in cells:
        sim = _cell_simulation(system, engine, scale)
        null_ns, null_run = _best_of(repeats, sim, recorder=None)
        recorder = TraceRecorder(label=f"overhead:{system}")
        traced_ns, traced_run = _best_of(repeats, sim, recorder=recorder)
        report[f"{system}/{engine}"] = {
            "null_ms": null_ns / 1e6,
            "traced_ms": traced_ns / 1e6,
            "ratio": traced_ns / null_ns if null_ns else float("inf"),
            "events": len(recorder),
            "metrics": len(recorder.metrics()),
            "identical": null_run.total_ns == traced_run.total_ns,
        }
    return report


def main(scale: Optional[EvaluationScale] = None) -> None:
    from repro.analysis.report import format_table

    report = run_obs_overhead(scale or DEFAULT_SCALE)
    print(format_table(
        ["cell", "null_ms", "traced_ms", "ratio", "events", "identical"],
        [
            [
                cell,
                row["null_ms"],
                row["traced_ms"],
                row["ratio"],
                row["events"],
                str(row["identical"]),
            ]
            for cell, row in report.items()
        ],
        float_format="{:,.3f}",
    ))


if __name__ == "__main__":
    main()


__all__ = ["OVERHEAD_CELLS", "run_obs_overhead", "main"]
