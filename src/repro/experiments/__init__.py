"""Experiment drivers: one module per evaluation figure/table of the paper.

Each module exposes ``run_*`` functions that return plain dictionaries (so
tests and benchmarks can assert on them) plus a ``main()`` that prints the
same rows/series the paper reports.  All experiments run at "laptop scale":
the RMC models are scaled down and the local-DRAM capacity is scaled with
them so that the fraction of the working set spilling to CXL matches the
paper's regime.
"""

from repro.experiments.common import EvaluationScale, evaluation_system, evaluation_workload

__all__ = ["EvaluationScale", "evaluation_system", "evaluation_workload"]
