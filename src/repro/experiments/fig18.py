"""Fig 18 and §VI-D: hardware power/area overheads and energy."""

from __future__ import annotations

from typing import Dict

from repro.cost.energy import EnergyModel
from repro.cost.power_area import PIFS_BREAKDOWN, RECNMP_X8, PowerAreaModel
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale, evaluation_system, evaluation_workload
from repro.baselines import create_system
from repro.pifs.system import PIFSRecSystem


def run_fig18() -> Dict[str, Dict[str, float]]:
    """The Fig 18 table: per-component power (mW) and area (um^2)."""
    rows: Dict[str, Dict[str, float]] = {
        RECNMP_X8.name: {"power_mw": RECNMP_X8.power_mw, "area_um2": RECNMP_X8.area_um2}
    }
    for component in PIFS_BREAKDOWN.values():
        rows[component.name] = {"power_mw": component.power_mw, "area_um2": component.area_um2}
    model = PowerAreaModel()
    rows["PIFS-Rec total (logic)"] = {
        "power_mw": model.total_power_mw(include_buffer=False),
        "area_um2": model.total_area_um2(include_buffer=False),
    }
    rows["reductions"] = {
        "power_reduction_x": model.power_reduction_vs_recnmp(),
        "area_reduction_x": model.area_reduction_vs_recnmp(),
    }
    return rows


def run_energy_comparison(
    scale: EvaluationScale = DEFAULT_SCALE, model: str = "RMC2"
) -> Dict[str, float]:
    """Energy of PIFS-Rec vs the conventional DIMM+CPU (Pond) solution.

    The paper reports ~15 % average energy reduction for PIFS-Rec.
    """
    workload = evaluation_workload(model, scale)
    system_config = evaluation_system(scale)
    pifs = PIFSRecSystem(system_config).run(workload)
    pond = create_system("pond", system_config).run(workload)
    energy = EnergyModel()
    return {
        "pifs_mj": energy.total_mj(pifs, in_switch=True),
        "pond_mj": energy.total_mj(pond, in_switch=False),
        "saving_fraction": energy.savings_vs(pifs, pond),
    }


def main() -> None:
    from repro.analysis.report import format_table

    data = run_fig18()
    rows = [[name, values.get("power_mw", values.get("power_reduction_x", 0.0)),
             values.get("area_um2", values.get("area_reduction_x", 0.0))] for name, values in data.items()]
    print(format_table(["component", "power_mw (or x)", "area_um2 (or x)"], rows))


if __name__ == "__main__":
    main()


__all__ = ["run_fig18", "run_energy_comparison", "main"]
