"""Scenario grid: the catalog as a paper-grade cross-system comparison.

The paper evaluates one workload shape at a time on a healthy fabric; the
scenario catalog (:mod:`repro.scenarios.catalog`) widens that to workload
mixes, popularity drift, multi-tenant co-location and fault injection.
This driver runs a selected slice of the catalog across the headline
systems and reports, per scenario, absolute latency plus the speedup of
PIFS-Rec over each baseline — the "does the advantage survive scenario
X?" table.  Every cell is deterministic and bit-identical between the
scalar and vector engines; the grid runs on the vector engine by default.

Run it standalone (``python -m repro.experiments.scenario_grid [--quick]``)
or from code via :func:`run_scenario_grid`.
"""

from __future__ import annotations

import argparse
from typing import Dict, Sequence, Tuple

from repro.analysis.report import format_table
from repro.experiments.common import DEFAULT_SCALE, QUICK_SCALE, EvaluationScale
from repro.scenarios import scenario

#: The headline comparison systems (first entry is the speedup reference).
GRID_SYSTEMS: Tuple[str, ...] = ("pifs-rec", "pond", "beacon")

#: Catalog slice of the default grid: one representative per dimension
#: (baseline, skew, drift, co-location, each fault class).
GRID_SCENARIOS: Tuple[str, ...] = (
    "paper-baseline",
    "zipfian-skew",
    "uniform-stress",
    "drift-rotation",
    "tenant-mix",
    "fault-slow-link",
    "fault-degraded-device",
    "fault-buffer-squeeze",
)


def run_scenario_grid(
    scale: EvaluationScale = DEFAULT_SCALE,
    scenarios: Sequence[str] = GRID_SCENARIOS,
    systems: Sequence[str] = GRID_SYSTEMS,
    engine: str = "vector",
    parallel: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Run ``scenarios`` x ``systems``; returns ``{scenario: {system: total_ns}}``.

    Each scenario's machine (hosts, switches, devices, faults) comes from
    its own definition, so only systems are swept per scenario — the grid
    is a sequence of per-scenario sweeps, not one big cartesian product.
    """
    grid: Dict[str, Dict[str, float]] = {}
    for name in scenarios:
        entry = scenario(name)
        result = entry.sweep(systems=systems, engine=engine, scale=scale).run(
            parallel=parallel
        )
        grid[name] = {}
        for run in result:
            system = run.params["system"]
            # Axis scenarios produce several points per system; the grid
            # records the scenario's base point (first per system).
            grid[name].setdefault(system, run.total_ns)
    return grid


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="reduced evaluation scale")
    parser.add_argument("--serial", action="store_true", help="disable the worker pool")
    parser.add_argument("--engine", choices=["scalar", "vector"], default="vector")
    args = parser.parse_args(argv)

    scale = QUICK_SCALE if args.quick else DEFAULT_SCALE
    grid = run_scenario_grid(
        scale, engine=args.engine, parallel=not args.serial
    )
    reference = GRID_SYSTEMS[0]
    rows = []
    for name, by_system in grid.items():
        row = [name, scenario(name).dimensions()]
        for system in GRID_SYSTEMS:
            row.append(by_system.get(system, float("nan")))
        for system in GRID_SYSTEMS[1:]:
            row.append(by_system[system] / by_system[reference])
        rows.append(row)
    headers = (
        ["scenario", "dimensions"]
        + [f"{system}_ns" for system in GRID_SYSTEMS]
        + [f"{reference}_speedup_vs_{system}" for system in GRID_SYSTEMS[1:]]
    )
    print(f"scenario grid ({'quick' if args.quick else 'default'} scale, "
          f"{args.engine} engine; {len(grid)} scenarios x {len(GRID_SYSTEMS)} systems)")
    print(format_table(headers, rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())


__all__ = ["GRID_SCENARIOS", "GRID_SYSTEMS", "main", "run_scenario_grid"]
