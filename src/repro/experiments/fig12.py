"""Fig 12: the main HW/SW co-evaluation (§VI-C1 .. §VI-C4).

Five panels:

* (a) normalized latency per scheme across the RMC1-RMC4 models,
* (b) per trace distribution (Meta, Zipfian, Normal, Uniform, Random),
* (c) scaling with the number of CXL memory devices,
* (d) sensitivity to local DRAM capacity,
* (e) the ablation study (PC, +OoO, +PM, +OSB).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.baselines import create_system
from repro.config import BufferConfig, SystemConfig
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale, evaluation_system, evaluation_workload
from repro.pifs.system import PIFSRecSystem
from repro.sls.result import SimResult

#: The schemes of Fig 12 (a)-(d), in the paper's order.
FIG12_SYSTEMS = ("pond", "pond+pm", "beacon", "recnmp", "pifs-rec")
FIG12_MODELS = ("RMC1", "RMC2", "RMC3", "RMC4")
FIG12_TRACES = ("meta", "zipfian", "normal", "uniform", "random")
FIG12_DEVICE_COUNTS = (2, 4, 8, 16)
#: DRAM capacities relative to the default (128 GB, x2, x4 in the paper).
FIG12_DRAM_MULTIPLIERS = (1, 2, 4)


def _run(name: str, system_config: SystemConfig, workload) -> SimResult:
    return create_system(name, system_config).run(workload)


def run_fig12a(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = FIG12_SYSTEMS,
    models: Sequence[str] = FIG12_MODELS,
) -> Dict[str, Dict[str, float]]:
    """Latency (ns) per model per system: ``{model: {system: total_ns}}``."""
    results: Dict[str, Dict[str, float]] = {}
    system_config = evaluation_system(scale)
    for model in models:
        workload = evaluation_workload(model, scale)
        results[model] = {name: _run(name, system_config, workload).total_ns for name in systems}
    return results


def run_fig12b(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = FIG12_SYSTEMS,
    traces: Sequence[str] = FIG12_TRACES,
    model: str = "RMC4",
) -> Dict[str, Dict[str, float]]:
    """Latency per trace distribution: ``{trace: {system: total_ns}}``."""
    results: Dict[str, Dict[str, float]] = {}
    system_config = evaluation_system(scale)
    for trace in traces:
        workload = evaluation_workload(model, scale, distribution=trace)
        results[trace] = {name: _run(name, system_config, workload).total_ns for name in systems}
    return results


def run_fig12c(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = FIG12_SYSTEMS,
    device_counts: Sequence[int] = FIG12_DEVICE_COUNTS,
    model: str = "RMC4",
) -> Dict[int, Dict[str, float]]:
    """Latency vs number of CXL memory devices."""
    results: Dict[int, Dict[str, float]] = {}
    workload = evaluation_workload(model, scale)
    for count in device_counts:
        system_config = evaluation_system(scale, num_cxl_devices=count)
        results[count] = {name: _run(name, system_config, workload).total_ns for name in systems}
    return results


def run_fig12d(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = FIG12_SYSTEMS,
    multipliers: Sequence[int] = FIG12_DRAM_MULTIPLIERS,
    model: str = "RMC4",
) -> Dict[int, Dict[str, float]]:
    """Latency vs local DRAM capacity (x1 = the scaled 128 GB equivalent)."""
    results: Dict[int, Dict[str, float]] = {}
    workload = evaluation_workload(model, scale)
    base_capacity = scale.local_capacity_bytes()
    for multiplier in multipliers:
        system_config = evaluation_system(
            scale, local_capacity_bytes=base_capacity * multiplier
        )
        results[multiplier] = {
            name: _run(name, system_config, workload).total_ns for name in systems
        }
    return results


# ----------------------------------------------------------------------
# Fig 12 (e): ablation study
# ----------------------------------------------------------------------
ABLATION_STEPS = ("Baseline", "PC", "PC/OoO", "PC/OoO/PM", "PC/OoO/PM/OSB")


def run_fig12e(
    scale: EvaluationScale = DEFAULT_SCALE,
    models: Sequence[str] = FIG12_MODELS,
) -> Dict[str, Dict[str, float]]:
    """Ablation: cumulative PIFS-Rec features over the Pond baseline.

    ``Baseline`` is Pond; ``PC`` adds the in-switch process core (no OoO, no
    buffer, no PM); the remaining steps cumulatively add out-of-order
    accumulation, page management, and the on-switch buffer.
    """
    results: Dict[str, Dict[str, float]] = {}
    base_system = evaluation_system(scale)
    no_buffer = BufferConfig(policy="none", capacity_bytes=0)

    def pifs_variant(out_of_order: bool, page_management: bool, buffer_on: bool) -> PIFSRecSystem:
        pifs_cfg = replace(
            base_system.pifs,
            out_of_order=out_of_order,
            on_switch_buffer=base_system.pifs.on_switch_buffer if buffer_on else no_buffer,
        )
        cfg = replace(base_system, pifs=pifs_cfg)
        return PIFSRecSystem(cfg, page_management=page_management)

    for model in models:
        workload = evaluation_workload(model, scale)
        row: Dict[str, float] = {}
        row["Baseline"] = create_system("pond", base_system).run(workload).total_ns
        row["PC"] = pifs_variant(False, False, False).run(workload).total_ns
        row["PC/OoO"] = pifs_variant(True, False, False).run(workload).total_ns
        row["PC/OoO/PM"] = pifs_variant(True, True, False).run(workload).total_ns
        row["PC/OoO/PM/OSB"] = pifs_variant(True, True, True).run(workload).total_ns
        results[model] = row
    return results


def main() -> None:
    from repro.analysis.report import format_table
    from repro.analysis.stats import min_max_normalize

    fig12a = run_fig12a()
    rows = []
    for model, by_system in fig12a.items():
        normalized = min_max_normalize(by_system)
        for system, value in normalized.items():
            rows.append([model, system, by_system[system], value])
    print(format_table(["model", "system", "latency_ns", "normalized"], rows))


if __name__ == "__main__":
    main()


__all__ = [
    "FIG12_SYSTEMS",
    "FIG12_MODELS",
    "FIG12_TRACES",
    "FIG12_DEVICE_COUNTS",
    "FIG12_DRAM_MULTIPLIERS",
    "ABLATION_STEPS",
    "run_fig12a",
    "run_fig12b",
    "run_fig12c",
    "run_fig12d",
    "run_fig12e",
    "main",
]
