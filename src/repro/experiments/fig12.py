"""Fig 12: the main HW/SW co-evaluation (§VI-C1 .. §VI-C4).

Five panels, each expressed as a declarative :class:`~repro.api.Sweep` over
the evaluation grid (``parallel=True`` fans the grid out over worker
processes with identical results):

* (a) normalized latency per scheme across the RMC1-RMC4 models,
* (b) per trace distribution (Meta, Zipfian, Normal, Uniform, Random),
* (c) scaling with the number of CXL memory devices,
* (d) sensitivity to local DRAM capacity,
* (e) the ablation study (PC, +OoO, +PM, +OSB).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

from repro.api import Simulation, Sweep, point
from repro.config import BufferConfig, SystemConfig
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale
from repro.pifs.system import PIFSRecSystem

#: The schemes of Fig 12 (a)-(d), in the paper's order.
FIG12_SYSTEMS = ("pond", "pond+pm", "beacon", "recnmp", "pifs-rec")
FIG12_MODELS = ("RMC1", "RMC2", "RMC3", "RMC4")
FIG12_TRACES = ("meta", "zipfian", "normal", "uniform", "random")
FIG12_DEVICE_COUNTS = (2, 4, 8, 16)
#: DRAM capacities relative to the default (128 GB, x2, x4 in the paper).
FIG12_DRAM_MULTIPLIERS = (1, 2, 4)


def run_fig12a(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = FIG12_SYSTEMS,
    models: Sequence[str] = FIG12_MODELS,
    parallel: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Latency (ns) per model per system: ``{model: {system: total_ns}}``."""
    sweep = Sweep(
        over={"model": list(models), "system": list(systems)},
        base=Simulation(scale=scale),
    )
    return sweep.run(parallel=parallel).pivot("model", "system")


def run_fig12b(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = FIG12_SYSTEMS,
    traces: Sequence[str] = FIG12_TRACES,
    model: str = "RMC4",
    parallel: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Latency per trace distribution: ``{trace: {system: total_ns}}``."""
    sweep = Sweep(
        over={"distribution": list(traces), "system": list(systems)},
        base=Simulation(scale=scale, model=model),
    )
    return sweep.run(parallel=parallel).pivot("distribution", "system")


def run_fig12c(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = FIG12_SYSTEMS,
    device_counts: Sequence[int] = FIG12_DEVICE_COUNTS,
    model: str = "RMC4",
    parallel: bool = False,
) -> Dict[int, Dict[str, float]]:
    """Latency vs number of CXL memory devices."""
    sweep = Sweep(
        over={"devices": list(device_counts), "system": list(systems)},
        base=Simulation(scale=scale, model=model),
    )
    return sweep.run(parallel=parallel).pivot("devices", "system")


def run_fig12d(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = FIG12_SYSTEMS,
    multipliers: Sequence[int] = FIG12_DRAM_MULTIPLIERS,
    model: str = "RMC4",
    parallel: bool = False,
) -> Dict[int, Dict[str, float]]:
    """Latency vs local DRAM capacity (x1 = the scaled 128 GB equivalent)."""
    base_capacity = scale.local_capacity_bytes()
    sweep = Sweep(
        over={
            "capacity_x": [
                point(multiplier, local_capacity=base_capacity * multiplier)
                for multiplier in multipliers
            ],
            "system": list(systems),
        },
        base=Simulation(scale=scale, model=model),
    )
    return sweep.run(parallel=parallel).pivot("capacity_x", "system")


# ----------------------------------------------------------------------
# Fig 12 (e): ablation study
# ----------------------------------------------------------------------
ABLATION_STEPS = ("Baseline", "PC", "PC/OoO", "PC/OoO/PM", "PC/OoO/PM/OSB")


class _AblationVariant:
    """Picklable factory: PIFS-Rec with a cumulative subset of features."""

    def __init__(self, label: str, out_of_order: bool, page_management: bool, buffer_on: bool) -> None:
        self.label = label
        self.out_of_order = out_of_order
        self.page_management = page_management
        self.buffer_on = buffer_on

    def __call__(self, config: SystemConfig) -> PIFSRecSystem:
        buffer_cfg = (
            config.pifs.on_switch_buffer
            if self.buffer_on
            else BufferConfig(policy="none", capacity_bytes=0)
        )
        pifs_cfg = replace(config.pifs, out_of_order=self.out_of_order, on_switch_buffer=buffer_cfg)
        return PIFSRecSystem(replace(config, pifs=pifs_cfg), page_management=self.page_management)


#: The cumulative feature steps of Fig 12 (e): ``Baseline`` is Pond; ``PC``
#: adds the in-switch process core; the rest add OoO, PM and the buffer.
ABLATION_FACTORIES = {
    "Baseline": "pond",
    "PC": _AblationVariant("PC", out_of_order=False, page_management=False, buffer_on=False),
    "PC/OoO": _AblationVariant("PC/OoO", out_of_order=True, page_management=False, buffer_on=False),
    "PC/OoO/PM": _AblationVariant("PC/OoO/PM", out_of_order=True, page_management=True, buffer_on=False),
    "PC/OoO/PM/OSB": _AblationVariant("PC/OoO/PM/OSB", out_of_order=True, page_management=True, buffer_on=True),
}


def run_fig12e(
    scale: EvaluationScale = DEFAULT_SCALE,
    models: Sequence[str] = FIG12_MODELS,
    parallel: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Ablation: cumulative PIFS-Rec features over the Pond baseline."""
    sweep = Sweep(
        over={
            "model": list(models),
            "ablation": [point(step, system=ABLATION_FACTORIES[step]) for step in ABLATION_STEPS],
        },
        base=Simulation(scale=scale),
    )
    return sweep.run(parallel=parallel).pivot("model", "ablation")


def main() -> None:
    from repro.analysis.report import format_table
    from repro.analysis.stats import min_max_normalize

    fig12a = run_fig12a()
    rows = []
    for model, by_system in fig12a.items():
        normalized = min_max_normalize(by_system)
        for system, value in normalized.items():
            rows.append([model, system, by_system[system], value])
    print(format_table(["model", "system", "latency_ns", "normalized"], rows))


if __name__ == "__main__":
    main()


__all__ = [
    "FIG12_SYSTEMS",
    "FIG12_MODELS",
    "FIG12_TRACES",
    "FIG12_DEVICE_COUNTS",
    "FIG12_DRAM_MULTIPLIERS",
    "ABLATION_STEPS",
    "ABLATION_FACTORIES",
    "run_fig12a",
    "run_fig12b",
    "run_fig12c",
    "run_fig12d",
    "run_fig12e",
    "main",
]
