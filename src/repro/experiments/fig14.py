"""Fig 14: end-to-end inference speedup with multiple hosts (§VI-C4).

The end-to-end speedup is obtained by weighting the SLS speedup measured on
the simulator with the non-SLS operator fraction of each model (bottom/top
MLP and feature interaction are not accelerated by PIFS-Rec).  The
model × batch × host-count grid and the Pond baseline grid are both
:class:`~repro.api.Sweep` declarations.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.api import Simulation, Sweep, point
from repro.dlrm.model import operator_profile
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale

HOST_COUNTS = (1, 2, 4, 8)
BATCH_SIZES = (8, 64, 256)
FIG14_MODELS = ("RMC1", "RMC2")


def run_fig14(
    scale: EvaluationScale = DEFAULT_SCALE,
    models: Sequence[str] = FIG14_MODELS,
    host_counts: Sequence[int] = HOST_COUNTS,
    batch_sizes: Sequence[int] = BATCH_SIZES,
    parallel: bool = False,
) -> Dict[str, Dict[int, Dict[int, float]]]:
    """End-to-end speedup of PIFS-Rec over Pond: ``{model: {batch: {hosts: x}}}``.

    ``hosts = 1`` corresponds to the "Host" point of Fig 14 (the baseline
    parameter server handling the whole batch itself).
    """
    baselines = Sweep(
        over={"model": list(models), "batch_size": list(batch_sizes)},
        base=Simulation("pond", scale=scale),
    ).run(parallel=parallel)
    grid = Sweep(
        over={
            "model": list(models),
            "batch_size": list(batch_sizes),
            "fabric": [
                # One shared fabric switch; every extra host brings enough
                # CXL devices to keep the per-host share constant.
                point(hosts, hosts=hosts, switches=1,
                      devices=max(scale.num_cxl_devices, hosts))
                for hosts in host_counts
            ],
        },
        base=Simulation("pifs-rec", scale=scale),
    ).run(parallel=parallel)

    results: Dict[str, Dict[int, Dict[int, float]]] = {}
    for model_name in models:
        model_results: Dict[int, Dict[int, float]] = {}
        for batch in batch_sizes:
            profile = operator_profile(
                scale.model(model_name), batch, pooling_factor=scale.pooling_factor
            )
            baseline = baselines.only(model=model_name, batch_size=batch)
            per_hosts: Dict[int, float] = {}
            for hosts in host_counts:
                run = grid.only(model=model_name, batch_size=batch, fabric=hosts)
                per_hosts[hosts] = profile.end_to_end_speedup(run.speedup_over(baseline))
            model_results[batch] = per_hosts
        results[model_name] = model_results
    return results


def main() -> None:
    from repro.analysis.report import format_table

    data = run_fig14()
    rows = []
    for model, by_batch in data.items():
        for batch, by_hosts in by_batch.items():
            for hosts, speedup in by_hosts.items():
                rows.append([model, batch, hosts, speedup])
    print(format_table(["model", "batch", "hosts", "end_to_end_speedup"], rows))


if __name__ == "__main__":
    main()


__all__ = ["HOST_COUNTS", "BATCH_SIZES", "FIG14_MODELS", "run_fig14", "main"]
