"""Fig 15: on-switch buffer capacity and replacement-policy sweep (§VI-C5).

The policy × capacity grid is a :class:`~repro.api.Sweep` whose axes are
config transforms rewriting the :class:`~repro.config.BufferConfig`; the
no-buffer baseline is a plain :class:`~repro.api.Simulation` session.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Sequence

from repro.api import Simulation, Sweep, point
from repro.config import KIB, replace_buffer
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale

BUFFER_SIZES = (64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, 1024 * KIB)
POLICIES = ("htr", "lru", "fifo")

#: Config transform disabling the on-switch buffer entirely.
_no_buffer = partial(replace_buffer, policy="none", capacity_bytes=0)


def run_fig15(
    scale: EvaluationScale = DEFAULT_SCALE,
    buffer_sizes: Sequence[int] = BUFFER_SIZES,
    policies: Sequence[str] = POLICIES,
    model: str = "RMC4",
    parallel: bool = False,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Speedup over the no-buffer configuration and hit ratio per policy/size.

    Returns ``{policy: {capacity_bytes: {"speedup": x, "hit_ratio": h}}}``.
    The sweep disables page management so the buffer sees the full embedding
    reuse stream, matching the paper's isolation of the caching effect.
    """
    base = Simulation("pifs-rec", scale=scale, model=model).options(page_management=False)
    baseline = base.clone().configure(_no_buffer).run()

    grid = Sweep(
        over={
            "policy": [
                point(policy, configure=partial(replace_buffer, policy=policy))
                for policy in policies
            ],
            "capacity": [
                point(capacity, configure=partial(replace_buffer, capacity_bytes=capacity))
                for capacity in buffer_sizes
            ],
        },
        base=base,
    ).run(parallel=parallel)

    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for policy in policies:
        per_policy: Dict[int, Dict[str, float]] = {}
        for capacity in buffer_sizes:
            run = grid.only(policy=policy, capacity=capacity)
            per_policy[capacity] = {
                "speedup": baseline.total_ns / run.total_ns,
                "hit_ratio": run.sim.buffer_hit_ratio,
                "latency": run.total_ns,
            }
        results[policy] = per_policy
    return results


def main() -> None:
    from repro.analysis.report import format_table

    data = run_fig15()
    rows = []
    for policy, by_size in data.items():
        for size, metrics in by_size.items():
            rows.append([policy, size // KIB, metrics["speedup"], metrics["hit_ratio"]])
    print(format_table(["policy", "size_kib", "speedup", "hit_ratio"], rows))


if __name__ == "__main__":
    main()


__all__ = ["BUFFER_SIZES", "POLICIES", "run_fig15", "main"]
