"""Fig 15: on-switch buffer capacity and replacement-policy sweep (§VI-C5)."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, Sequence

from repro.config import KIB, BufferConfig
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale, evaluation_system, evaluation_workload
from repro.pifs.system import PIFSRecSystem

BUFFER_SIZES = (64 * KIB, 128 * KIB, 256 * KIB, 512 * KIB, 1024 * KIB)
POLICIES = ("htr", "lru", "fifo")


def run_fig15(
    scale: EvaluationScale = DEFAULT_SCALE,
    buffer_sizes: Sequence[int] = BUFFER_SIZES,
    policies: Sequence[str] = POLICIES,
    model: str = "RMC4",
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Speedup over the no-buffer configuration and hit ratio per policy/size.

    Returns ``{policy: {capacity_bytes: {"speedup": x, "hit_ratio": h}}}``.
    The sweep disables page management so the buffer sees the full embedding
    reuse stream, matching the paper's isolation of the caching effect.
    """
    workload = evaluation_workload(model, scale)
    base_system = evaluation_system(scale)

    no_buffer_cfg = replace(
        base_system, pifs=replace(base_system.pifs, on_switch_buffer=BufferConfig(policy="none", capacity_bytes=0))
    )
    baseline = PIFSRecSystem(no_buffer_cfg, page_management=False).run(workload)

    results: Dict[str, Dict[int, Dict[str, float]]] = {}
    for policy in policies:
        per_policy: Dict[int, Dict[str, float]] = {}
        for capacity in buffer_sizes:
            cfg = replace(
                base_system,
                pifs=replace(
                    base_system.pifs,
                    on_switch_buffer=BufferConfig(policy=policy, capacity_bytes=capacity),
                ),
            )
            result = PIFSRecSystem(cfg, page_management=False).run(workload)
            per_policy[capacity] = {
                "speedup": baseline.total_ns / result.total_ns,
                "hit_ratio": result.buffer_hit_ratio,
                "latency": result.total_ns,
            }
        results[policy] = per_policy
    return results


def main() -> None:
    from repro.analysis.report import format_table

    data = run_fig15()
    rows = []
    for policy, by_size in data.items():
        for size, metrics in by_size.items():
            rows.append([policy, size // KIB, metrics["speedup"], metrics["hit_ratio"]])
    print(format_table(["policy", "size_kib", "speedup", "hit_ratio"], rows))


if __name__ == "__main__":
    main()


__all__ = ["BUFFER_SIZES", "POLICIES", "run_fig15", "main"]
