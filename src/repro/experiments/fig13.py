"""Fig 13: page-management and scale-out sensitivity studies (§VI-C4, C6).

* (a) embedding-migration threshold sweep: SLS latency plus the migration
  cost under page-block and cache-line-block mechanisms;
* (b) per-device access frequency before/after the spreading policy;
* (c) latency vs fabric-switch count for different batch sizes;
* (d) cold-age-threshold sweep for the hot/cold page swapping policy,
  compared against TPP.

The parameter grids are :class:`~repro.api.Sweep` declarations; the
threshold axes use config transforms plus policy options carried on the
:class:`~repro.api.Simulation` session.
"""

from __future__ import annotations

from functools import partial
from typing import Dict, Sequence

from repro.analysis.stats import standard_deviation
from repro.api import Simulation, Sweep, point
from repro.config import replace_page_mgmt
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pagemgmt.spreading import SpreadingPolicy
from repro.pifs.system import PIFSRecSystem

MIGRATION_THRESHOLDS = (0.10, 0.20, 0.35, 0.50)
COLD_AGE_THRESHOLDS = (0.04, 0.08, 0.16, 0.20)
SWITCH_COUNTS = (1, 2, 4, 8)
SWITCH_BATCHES = (8, 64, 256)


def run_fig13a(
    scale: EvaluationScale = DEFAULT_SCALE,
    thresholds: Sequence[float] = MIGRATION_THRESHOLDS,
    model: str = "RMC4",
    parallel: bool = False,
) -> Dict[float, Dict[str, float]]:
    """Migration-threshold sweep.

    For each threshold returns the normalizable SLS latency plus the
    migration cost fraction under both migration mechanisms.
    """
    sweep = Sweep(
        over={
            "threshold": [
                point(
                    threshold,
                    configure=partial(replace_page_mgmt, migrate_threshold=threshold),
                    options={"spreading_policy": SpreadingPolicy(migrate_threshold=threshold)},
                )
                for threshold in thresholds
            ],
            "mode": [
                point(mode, configure=partial(replace_page_mgmt, migration_mode=mode))
                for mode in ("page_block", "cacheline_block")
            ],
        },
        base=Simulation("pifs-rec", scale=scale, model=model),
    )
    result = sweep.run(parallel=parallel)
    results: Dict[float, Dict[str, float]] = {}
    for threshold in thresholds:
        entry: Dict[str, float] = {}
        for mode in ("page_block", "cacheline_block"):
            run = result.only(threshold=threshold, mode=mode)
            entry[f"latency_{mode}"] = run.total_ns
            entry[f"migration_cost_{mode}"] = run.sim.migration_cost_fraction
            entry[f"migrations_{mode}"] = float(run.sim.migrations)
        results[threshold] = entry
    return results


class _BlockedPlacementPIFS(PIFSRecSystem):
    """PIFS hardware without PM, starting from a block-allocated spill.

    Whole tables land on individual CXL devices, which is the unbalanced
    "before PM" starting point of Fig 13 (b).
    """

    name = "PIFS-Rec (before PM)"

    def build_placement(self, wl):
        return self.place_capacity_order(wl, interleave_spill=False)


def run_fig13b(
    scale: EvaluationScale = DEFAULT_SCALE,
    model: str = "RMC4",
    num_devices: int = 16,
) -> Dict[str, Dict[int, float]]:
    """Per-device relative access frequency before and after spreading.

    Returns ``{"before": {device: freq}, "after": {...}, "std": {...}}``
    where frequencies are percentages of the busiest device (before).
    """
    base = Simulation(scale=scale, model=model, devices=num_devices)
    before = base.clone().system(_BlockedPlacementPIFS).options(page_management=False).run()
    after = base.clone().system("pifs-rec").options(page_management=True).run()

    def relative(counts: Dict[int, int]) -> Dict[int, float]:
        peak = max(counts.values()) if counts else 1
        return {device: 100.0 * count / peak for device, count in sorted(counts.items())}

    before_rel = relative(before.sim.device_access_counts)
    after_rel = relative(after.sim.device_access_counts)
    return {
        "before": before_rel,
        "after": after_rel,
        "std": {
            0: standard_deviation(list(before_rel.values())),
            1: standard_deviation(list(after_rel.values())),
        },
    }


def run_fig13c(
    scale: EvaluationScale = DEFAULT_SCALE,
    switch_counts: Sequence[int] = SWITCH_COUNTS,
    batch_sizes: Sequence[int] = SWITCH_BATCHES,
    model: str = "RMC4",
    parallel: bool = False,
) -> Dict[int, Dict[int, float]]:
    """Latency vs fabric-switch count per batch size: ``{batch: {count: ns}}``.

    Each fabric switch brings one host and a proportional share of the CXL
    devices, as in the paper's scale-up experiment; the batch is shared
    between the hosts.
    """
    sweep = Sweep(
        over={
            "batch_size": list(batch_sizes),
            "fabric": [
                point(count, hosts=count, switches=count, devices=count)
                for count in switch_counts
            ],
        },
        base=Simulation("pifs-rec", scale=scale, model=model),
    )
    return sweep.run(parallel=parallel).pivot("batch_size", "fabric")


def run_fig13d(
    scale: EvaluationScale = DEFAULT_SCALE,
    thresholds: Sequence[float] = COLD_AGE_THRESHOLDS,
    model: str = "RMC4",
    parallel: bool = False,
) -> Dict[str, Dict[str, float]]:
    """Cold-age-threshold sweep vs TPP.

    Returns ``{"TPP": {...}, "0.04": {...}, ...}`` with latency and migration
    cost fraction per configuration.
    """
    sweep = Sweep(
        over={
            "config": [
                point("TPP", system="tpp"),
                *(
                    point(
                        f"{threshold:.2f}",
                        system="pifs-rec",
                        configure=partial(replace_page_mgmt, cold_age_threshold=threshold),
                        options={"hotness_policy": GlobalHotnessPolicy(cold_age_threshold=threshold)},
                    )
                    for threshold in thresholds
                ),
            ],
        },
        base=Simulation(scale=scale, model=model),
    )
    result = sweep.run(parallel=parallel)
    return {
        run.params["config"]: {
            "latency": run.total_ns,
            "migration_cost": run.sim.migration_cost_fraction,
        }
        for run in result
    }


def main() -> None:
    from repro.analysis.report import format_table

    fig13a = run_fig13a()
    rows = [
        [t, v["latency_cacheline_block"], v["migration_cost_cacheline_block"],
         v["latency_page_block"], v["migration_cost_page_block"]]
        for t, v in fig13a.items()
    ]
    print(format_table(
        ["threshold", "latency(cl)", "mig_cost(cl)", "latency(page)", "mig_cost(page)"], rows
    ))


if __name__ == "__main__":
    main()


__all__ = [
    "MIGRATION_THRESHOLDS",
    "COLD_AGE_THRESHOLDS",
    "SWITCH_COUNTS",
    "SWITCH_BATCHES",
    "run_fig13a",
    "run_fig13b",
    "run_fig13c",
    "run_fig13d",
    "main",
]
