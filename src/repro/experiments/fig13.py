"""Fig 13: page-management and scale-out sensitivity studies (§VI-C4, C6).

* (a) embedding-migration threshold sweep: SLS latency plus the migration
  cost under page-block and cache-line-block mechanisms;
* (b) per-device access frequency before/after the spreading policy;
* (c) latency vs fabric-switch count for different batch sizes;
* (d) cold-age-threshold sweep for the hot/cold page swapping policy,
  compared against TPP.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Sequence

from repro.analysis.stats import standard_deviation
from repro.baselines import create_system
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale, evaluation_system, evaluation_workload
from repro.pagemgmt.spreading import SpreadingPolicy
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pifs.system import PIFSRecSystem

MIGRATION_THRESHOLDS = (0.10, 0.20, 0.35, 0.50)
COLD_AGE_THRESHOLDS = (0.04, 0.08, 0.16, 0.20)
SWITCH_COUNTS = (1, 2, 4, 8)
SWITCH_BATCHES = (8, 64, 256)


def run_fig13a(
    scale: EvaluationScale = DEFAULT_SCALE,
    thresholds: Sequence[float] = MIGRATION_THRESHOLDS,
    model: str = "RMC4",
) -> Dict[float, Dict[str, float]]:
    """Migration-threshold sweep.

    For each threshold returns the normalizable SLS latency plus the
    migration cost fraction under both migration mechanisms.
    """
    results: Dict[float, Dict[str, float]] = {}
    workload = evaluation_workload(model, scale)
    for threshold in thresholds:
        entry: Dict[str, float] = {}
        for mode in ("page_block", "cacheline_block"):
            base = evaluation_system(scale)
            cfg = replace(
                base,
                page_mgmt=replace(base.page_mgmt, migrate_threshold=threshold, migration_mode=mode),
            )
            system = PIFSRecSystem(cfg, spreading_policy=SpreadingPolicy(migrate_threshold=threshold))
            result = system.run(workload)
            entry[f"latency_{mode}"] = result.total_ns
            entry[f"migration_cost_{mode}"] = result.migration_cost_fraction
            entry[f"migrations_{mode}"] = float(result.migrations)
        results[threshold] = entry
    return results


def run_fig13b(
    scale: EvaluationScale = DEFAULT_SCALE,
    model: str = "RMC4",
    num_devices: int = 16,
) -> Dict[str, Dict[int, float]]:
    """Per-device relative access frequency before and after spreading.

    Returns ``{"before": {device: freq}, "after": {...}, "std": {...}}``
    where frequencies are percentages of the busiest device (before).
    """
    workload = evaluation_workload(model, scale)
    system_config = evaluation_system(scale, num_cxl_devices=num_devices)

    class _BlockedPlacementPIFS(PIFSRecSystem):
        """PIFS hardware without PM, starting from a block-allocated spill.

        Whole tables land on individual CXL devices, which is the unbalanced
        "before PM" starting point of Fig 13 (b).
        """

        name = "PIFS-Rec (before PM)"

        def build_placement(self, wl):
            return self.place_capacity_order(wl, interleave_spill=False)

    before = _BlockedPlacementPIFS(system_config, page_management=False).run(workload)
    after = PIFSRecSystem(system_config, page_management=True).run(workload)

    def relative(counts: Dict[int, int]) -> Dict[int, float]:
        peak = max(counts.values()) if counts else 1
        return {device: 100.0 * count / peak for device, count in sorted(counts.items())}

    before_rel = relative(before.device_access_counts)
    after_rel = relative(after.device_access_counts)
    return {
        "before": before_rel,
        "after": after_rel,
        "std": {
            0: standard_deviation(list(before_rel.values())),
            1: standard_deviation(list(after_rel.values())),
        },
    }


def run_fig13c(
    scale: EvaluationScale = DEFAULT_SCALE,
    switch_counts: Sequence[int] = SWITCH_COUNTS,
    batch_sizes: Sequence[int] = SWITCH_BATCHES,
    model: str = "RMC4",
) -> Dict[int, Dict[int, float]]:
    """Latency vs fabric-switch count per batch size: ``{batch: {count: ns}}``.

    Each fabric switch brings one host and a proportional share of the CXL
    devices, as in the paper's scale-up experiment.
    """
    results: Dict[int, Dict[int, float]] = {}
    for batch in batch_sizes:
        per_batch: Dict[int, float] = {}
        for count in switch_counts:
            # One host and one local CXL memory device per fabric switch; the
            # batch is shared between the hosts.
            workload = evaluation_workload(model, scale, batch_size=batch, num_hosts=count)
            system_config = evaluation_system(
                scale,
                num_cxl_devices=count,
                num_fabric_switches=count,
                num_hosts=count,
            )
            result = PIFSRecSystem(system_config).run(workload)
            per_batch[count] = result.total_ns
        results[batch] = per_batch
    return results


def run_fig13d(
    scale: EvaluationScale = DEFAULT_SCALE,
    thresholds: Sequence[float] = COLD_AGE_THRESHOLDS,
    model: str = "RMC4",
) -> Dict[str, Dict[str, float]]:
    """Cold-age-threshold sweep vs TPP.

    Returns ``{"TPP": {...}, "0.04": {...}, ...}`` with latency and migration
    cost fraction per configuration.
    """
    workload = evaluation_workload(model, scale)
    results: Dict[str, Dict[str, float]] = {}

    tpp_result = create_system("tpp", evaluation_system(scale)).run(workload)
    results["TPP"] = {
        "latency": tpp_result.total_ns,
        "migration_cost": tpp_result.migration_cost_fraction,
    }
    for threshold in thresholds:
        base = evaluation_system(scale)
        cfg = replace(base, page_mgmt=replace(base.page_mgmt, cold_age_threshold=threshold))
        system = PIFSRecSystem(
            cfg, hotness_policy=GlobalHotnessPolicy(cold_age_threshold=threshold)
        )
        result = system.run(workload)
        results[f"{threshold:.2f}"] = {
            "latency": result.total_ns,
            "migration_cost": result.migration_cost_fraction,
        }
    return results


def main() -> None:
    from repro.analysis.report import format_table

    fig13a = run_fig13a()
    rows = [
        [t, v["latency_cacheline_block"], v["migration_cost_cacheline_block"],
         v["latency_page_block"], v["migration_cost_page_block"]]
        for t, v in fig13a.items()
    ]
    print(format_table(
        ["threshold", "latency(cl)", "mig_cost(cl)", "latency(page)", "mig_cost(page)"], rows
    ))


if __name__ == "__main__":
    main()


__all__ = [
    "MIGRATION_THRESHOLDS",
    "COLD_AGE_THRESHOLDS",
    "SWITCH_COUNTS",
    "SWITCH_BATCHES",
    "run_fig13a",
    "run_fig13b",
    "run_fig13c",
    "run_fig13d",
    "main",
]
