"""Shared scaling and configuration for the evaluation experiments.

The paper evaluates multi-terabyte models on a 128 GB-local / multi-device
CXL machine.  To run on a laptop we scale the models down and scale the
local-DRAM capacity with them, preserving the *fraction* of the embedding
working set that spills to CXL memory — the quantity every evaluation result
depends on.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Union

from repro.config import (
    DEFAULT_SYSTEM,
    MODEL_CONFIGS,
    ModelConfig,
    SystemConfig,
    WorkloadConfig,
    scaled_model,
)
from repro.traces.workload import SLSWorkload, build_workload


@dataclass(frozen=True)
class EvaluationScale:
    """Scale factors for laptop-size evaluation runs."""

    #: Embedding-count scale applied to the Table I models.
    model_scale: float = 0.01
    #: Number of embedding tables per model.
    num_tables: int = 8
    #: Query batch size (the paper's default evaluation uses 8 per batch).
    batch_size: int = 8
    #: Number of batches replayed.
    num_batches: int = 4
    #: Average pooling factor (bag size).
    pooling_factor: int = 16
    #: Local DRAM capacity as a fraction of the *smallest* model's (RMC1)
    #: working set.  The paper's 128 GB local DRAM is a small fraction of its
    #: multi-terabyte deployments, so every model spills to CXL and the spill
    #: fraction grows from RMC1 to RMC4 — this scaling reproduces that regime.
    local_capacity_fraction: float = 0.50
    #: Simulated host threads.
    host_threads: int = 16
    #: Default number of CXL memory devices (the paper's default is 4... 8).
    num_cxl_devices: int = 4
    #: Page-management epoch (lookups between maintenance passes).
    migration_epoch_accesses: int = 1024
    seed: int = 2024

    def model(self, name: str) -> ModelConfig:
        base = MODEL_CONFIGS[name]
        scaled = scaled_model(base, self.model_scale)
        return replace(scaled, num_tables=self.num_tables)

    def reference_working_set_bytes(self) -> int:
        """Working-set size of the scaled RMC1 (the smallest model)."""
        reference = self.model("RMC1")
        return reference.table_bytes * reference.num_tables

    def local_capacity_bytes(self) -> int:
        return max(
            4 * 4096,
            int(self.reference_working_set_bytes() * self.local_capacity_fraction),
        )


#: The default scale used by benchmarks; tests use smaller custom scales.
DEFAULT_SCALE = EvaluationScale()

#: A faster scale for unit/integration tests.
QUICK_SCALE = EvaluationScale(
    model_scale=0.004,
    num_tables=4,
    batch_size=4,
    num_batches=2,
    pooling_factor=8,
    host_threads=8,
    migration_epoch_accesses=512,
)


def evaluation_workload(
    model_name: Union[str, ModelConfig],
    scale: EvaluationScale = DEFAULT_SCALE,
    distribution: str = "meta",
    batch_size: Optional[int] = None,
    num_hosts: int = 1,
    num_batches: Optional[int] = None,
    pooling_factor: Optional[int] = None,
    streaming: bool = False,
) -> SLSWorkload:
    """Build the SLS workload for one model at the given scale.

    ``model_name`` is either a Table I name (``"RMC1"``..``"RMC4"``, scaled
    by ``scale``) or a ready :class:`ModelConfig` used as-is.  ``num_hosts``
    distributes the batch's requests across concurrent hosts (used by the
    multi-host and multi-switch scaling experiments).  ``streaming=True``
    returns the out-of-core container (windows of requests are materialized
    on demand; the replayed schedule is bit-identical either way).
    """
    model = model_name if isinstance(model_name, ModelConfig) else scale.model(model_name)
    config = WorkloadConfig(
        model=model,
        batch_size=scale.batch_size if batch_size is None else batch_size,
        pooling_factor=scale.pooling_factor if pooling_factor is None else pooling_factor,
        num_batches=scale.num_batches if num_batches is None else num_batches,
        distribution=distribution,
        seed=scale.seed,
    )
    return build_workload(config, num_hosts=num_hosts, streaming=streaming)


def evaluation_system(
    scale: EvaluationScale = DEFAULT_SCALE,
    num_cxl_devices: Optional[int] = None,
    num_fabric_switches: int = 1,
    num_hosts: int = 1,
    local_capacity_bytes: Optional[int] = None,
    base: SystemConfig = DEFAULT_SYSTEM,
) -> SystemConfig:
    """Build the :class:`SystemConfig` for one evaluation run."""
    page_mgmt = replace(
        base.page_mgmt, migration_epoch_accesses=scale.migration_epoch_accesses
    )
    return replace(
        base,
        local_dram_capacity_bytes=(
            scale.local_capacity_bytes() if local_capacity_bytes is None else local_capacity_bytes
        ),
        num_cxl_devices=scale.num_cxl_devices if num_cxl_devices is None else num_cxl_devices,
        num_fabric_switches=num_fabric_switches,
        num_hosts=num_hosts,
        host_threads=scale.host_threads,
        page_mgmt=page_mgmt,
    )


__all__ = [
    "EvaluationScale",
    "DEFAULT_SCALE",
    "QUICK_SCALE",
    "evaluation_workload",
    "evaluation_system",
]
