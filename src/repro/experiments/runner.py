"""Run every experiment and print a compact report.

Subsumed by the package CLI: ``python -m repro figures --quick`` is the
canonical entry point (it calls :func:`run_all` and adds a parallel sweep
engine).  ``python -m repro.experiments.runner --quick`` keeps working and
produces the same report.
"""

from __future__ import annotations

import argparse
from typing import Callable, Dict

from repro.analysis.report import format_table
from repro.analysis.stats import min_max_normalize
from repro.experiments import (
    characterization,
    congestion_curves,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16_17,
    fig18,
    latency_curves,
    obs_overhead,
    tables,
)
from repro.experiments.common import DEFAULT_SCALE, QUICK_SCALE, EvaluationScale


def _print_header(title: str) -> None:
    print()
    print("=" * 72)
    print(title)
    print("=" * 72)


def run_all(scale: EvaluationScale, parallel: bool = False) -> Dict[str, object]:
    """Run every experiment; returns the raw data keyed by experiment id.

    ``parallel=True`` fans each figure's sweep out over worker processes;
    the reported numbers are identical to the serial path.
    """
    data: Dict[str, object] = {}

    _print_header("Table I / II / III")
    tables.main()
    data["tables"] = {
        "table1": tables.table1_models(),
        "table2": tables.table2_hardware(),
        "table3": tables.table3_specs(),
    }

    _print_header("Fig 5 / Fig 6 — characterization")
    fig5 = characterization.run_fig5(
        table_sizes=characterization.TABLE_SIZES[:4],
        embedding_dims=(16, 64),
        lookups_per_thread=64,
    )
    fig6 = characterization.run_fig6(lookups_per_thread=64)
    data["fig5"], data["fig6"] = fig5, fig6
    print(format_table(
        ["config", "dimm_share", "cxl_share"],
        [[cfg, v["dimm"], v["cxl"]] for cfg, v in fig6.items()],
    ))

    _print_header("Fig 12 (a) — models x systems")
    fig12a = fig12.run_fig12a(scale, parallel=parallel)
    data["fig12a"] = fig12a
    rows = []
    for model, by_system in fig12a.items():
        norm = min_max_normalize(by_system)
        rows.extend([[model, system, by_system[system], norm[system]] for system in by_system])
    print(format_table(["model", "system", "latency_ns", "normalized"], rows))

    _print_header("Fig 12 (b) — trace distributions (RMC4)")
    fig12b = fig12.run_fig12b(scale, parallel=parallel)
    data["fig12b"] = fig12b
    rows = []
    for trace, by_system in fig12b.items():
        norm = min_max_normalize(by_system)
        rows.extend([[trace, system, norm[system]] for system in by_system])
    print(format_table(["trace", "system", "normalized latency"], rows))

    _print_header("Fig 12 (c) — memory device count")
    data["fig12c"] = fig12.run_fig12c(scale, parallel=parallel)
    _print_header("Fig 12 (d) — DRAM capacity")
    data["fig12d"] = fig12.run_fig12d(scale, parallel=parallel)
    _print_header("Fig 12 (e) — ablation")
    fig12e = fig12.run_fig12e(scale, models=("RMC1", "RMC4"), parallel=parallel)
    data["fig12e"] = fig12e
    rows = []
    for model, steps in fig12e.items():
        rows.extend([[model, step, value] for step, value in steps.items()])
    print(format_table(["model", "step", "latency_ns"], rows))

    _print_header("Fig 13 — page management & scale-out")
    data["fig13a"] = fig13.run_fig13a(scale, parallel=parallel)
    data["fig13b"] = fig13.run_fig13b(scale, num_devices=8)
    data["fig13c"] = fig13.run_fig13c(scale, switch_counts=(1, 2, 4), batch_sizes=(8, 64), parallel=parallel)
    data["fig13d"] = fig13.run_fig13d(scale, parallel=parallel)

    _print_header("Fig 14 — multi-host end-to-end speedup")
    data["fig14"] = fig14.run_fig14(scale, host_counts=(1, 2, 4), batch_sizes=(8, 64), parallel=parallel)

    _print_header("Fig 15 — on-switch buffer")
    data["fig15"] = fig15.run_fig15(scale, parallel=parallel)

    _print_header("Fig 16 / 17 — TCO and throughput")
    data["fig16"] = fig16_17.run_fig16()
    data["fig17"] = fig16_17.run_fig17()

    _print_header("Fig 18 — hardware overheads")
    fig18.main()
    data["fig18"] = fig18.run_fig18()
    data["energy"] = fig18.run_energy_comparison(scale)

    _print_header("Latency vs QPS — online serving")
    data["latency_curves"] = latency_curves.run_latency_curves(scale, parallel=parallel)
    rows = []
    for system, by_qps in data["latency_curves"].items():
        for qps, metrics in by_qps.items():
            rows.append([system, qps, metrics["p50_ns"], metrics["p99_ns"], metrics["goodput_qps"]])
    print(format_table(["system", "offered_qps", "p50_ns", "p99_ns", "goodput_qps"], rows))

    _print_header("Congestion curves — packet tier vs analytic fabric pricing")
    data["congestion_curves"] = congestion_curves.run_congestion_curves(
        scale, parallel=parallel
    )
    rows = []
    for system, by_capacity in data["congestion_curves"].items():
        for capacity, cell in by_capacity.items():
            rows.append([
                system,
                capacity if capacity else "unbounded",
                cell["total_ns"],
                cell["divergence_pct"],
                cell["backpressure_ns"],
            ])
    print(format_table(
        ["system", "buffer_credits", "total_ns", "divergence_pct", "backpressure_ns"], rows
    ))

    _print_header("Observability overhead — NullRecorder vs TraceRecorder")
    data["obs_overhead"] = obs_overhead.run_obs_overhead(scale)
    obs_rows = [
        [cell, row["null_ms"], row["traced_ms"], row["ratio"], row["events"], str(row["identical"])]
        for cell, row in data["obs_overhead"].items()
    ]
    print(format_table(
        ["cell", "null_ms", "traced_ms", "ratio", "events", "identical"],
        obs_rows,
        float_format="{:,.3f}",
    ))

    _print_header("Scenario grid — mixes, drift, co-location, faults")
    from repro.experiments import scenario_grid

    data["scenario_grid"] = scenario_grid.run_scenario_grid(
        scale, parallel=parallel
    )
    rows = []
    for name, by_system in data["scenario_grid"].items():
        reference = by_system[scenario_grid.GRID_SYSTEMS[0]]
        rows.extend(
            [[name, system, value, value / reference] for system, value in by_system.items()]
        )
    print(format_table(["scenario", "system", "latency_ns", "vs_pifs_rec"], rows))

    return data


def main() -> None:
    parser = argparse.ArgumentParser(description="Run all PIFS-Rec reproduction experiments")
    parser.add_argument("--quick", action="store_true", help="use the reduced test scale")
    parser.add_argument("--parallel", action="store_true", help="use the parallel sweep engine")
    args = parser.parse_args()
    scale = QUICK_SCALE if args.quick else DEFAULT_SCALE
    run_all(scale, parallel=args.parallel)


if __name__ == "__main__":
    main()


__all__ = ["run_all", "main"]
