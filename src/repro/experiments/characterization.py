"""Characterization study experiments (Fig 5 and Fig 6, §III).

The characterization runs the embedding-table lookup phase on the tiered
memory model of the dual-socket + CXL platform (Fig 3) under two
parallelization methods:

* *batch threading* — each thread processes a slice of the batch and touches
  every table (all threads see the same local/spilled page mix);
* *table threading* — each thread owns a set of tables (threads whose tables
  spill to the slower tier become stragglers).

and four placements of the working set:

* ``local``      — everything in CPU-attached DDR5 (the reference),
* ``remote``     — 20 % of the pages on the remote CPU socket,
* ``cxl``        — the same 20 % on CXL DDR4,
* ``interleave`` — the 20 % spread over all CXL nodes (the 4:1 policy).

The metric is application bandwidth (bytes moved / makespan), normalized to
the local-only configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.config import GIB
from repro.memsys.allocator import InterleaveAllocator, PlacementPolicy
from repro.memsys.node import MemoryNode, MemoryTier
from repro.traces.synthetic import TraceDistribution, generate_indices

#: Embedding-table sizes on the X axis of Fig 5 (number of embeddings).
TABLE_SIZES = (16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024, 256 * 1024, 512 * 1024, 1024 * 1024)
#: Embedding dimensions (the Fig 5 series).
EMBEDDING_DIMS = (16, 32, 64, 128)

PLACEMENTS = ("local", "remote", "cxl", "interleave")
THREADING_MODES = ("batch", "table")


def _build_nodes(num_cxl_nodes: int = 4) -> List[MemoryNode]:
    """The characterization platform: local DDR5, remote socket, CXL DDR4."""
    nodes = [
        MemoryNode(0, MemoryTier.LOCAL_DRAM, 768 * GIB, base_latency_ns=90.0, bandwidth_gbps=460.0),
        # The remote socket is only partially populated/accessed, so its
        # effective bandwidth over the inter-socket interconnect is low
        # (§III: partial remote accesses degrade application bandwidth).
        MemoryNode(1, MemoryTier.REMOTE_SOCKET, 768 * GIB, base_latency_ns=150.0, bandwidth_gbps=19.2),
    ]
    for i in range(num_cxl_nodes):
        nodes.append(
            MemoryNode(
                2 + i,
                MemoryTier.CXL,
                256 * GIB,
                base_latency_ns=190.0,
                bandwidth_gbps=25.6,
            )
        )
    return nodes


def _placement_policy(placement: str) -> PlacementPolicy:
    return {
        "local": PlacementPolicy.LOCAL_ONLY,
        "remote": PlacementPolicy.REMOTE_FRACTION,
        "cxl": PlacementPolicy.CXL_FRACTION,
        "interleave": PlacementPolicy.INTERLEAVE,
        "cxl_only": PlacementPolicy.CXL_ONLY,
    }[placement]


@dataclass
class CharacterizationPoint:
    """One measured configuration of the characterization study."""

    placement: str
    threading: str
    table_size: int
    embedding_dim: int
    bandwidth_bytes_per_ns: float
    local_bytes: int
    cxl_bytes: int
    remote_bytes: int


def run_lookup_phase(
    placement: str,
    threading: str,
    table_size: int,
    embedding_dim: int,
    num_tables: int = 16,
    threads: int = 16,
    lookups_per_thread: int = 256,
    spill_fraction: float = 0.2,
    num_cxl_nodes: int = 4,
    seed: int = 7,
) -> CharacterizationPoint:
    """Simulate the embedding lookup phase for one configuration."""
    if threading not in THREADING_MODES:
        raise ValueError(f"unknown threading mode {threading!r}")
    nodes = _build_nodes(num_cxl_nodes)
    allocator = InterleaveAllocator(nodes, _placement_policy(placement), spill_fraction)
    row_bytes = embedding_dim * 4
    rows_per_page = max(1, 4096 // row_bytes)
    pages_per_table = (table_size + rows_per_page - 1) // rows_per_page
    total_pages = pages_per_table * num_tables
    placement_map = allocator.place_pages(total_pages)
    node_by_id = {node.node_id: node for node in nodes}

    rng = np.random.default_rng(seed)
    # Pre-generate the index stream each thread will consume.
    per_thread_tables: List[Sequence[int]] = []
    for thread in range(threads):
        if threading == "table":
            tables = [thread % num_tables]
        else:
            tables = list(range(num_tables))
        per_thread_tables.append(tables)

    thread_time = [0.0] * threads
    tier_bytes = {MemoryTier.LOCAL_DRAM: 0, MemoryTier.CXL: 0, MemoryTier.REMOTE_SOCKET: 0}
    for thread in range(threads):
        tables = per_thread_tables[thread]
        indices = generate_indices(
            TraceDistribution.META, lookups_per_thread, table_size, rng=rng
        )
        cursor = 0.0
        for i, row in enumerate(indices):
            table = tables[i % len(tables)]
            page = table * pages_per_table + int(row) // rows_per_page
            node = node_by_id[placement_map[page]]
            cursor = node.serve(cursor, row_bytes)
            tier_bytes[node.tier] += row_bytes
        thread_time[thread] = cursor

    makespan = max(thread_time)
    total_bytes = sum(tier_bytes.values())
    return CharacterizationPoint(
        placement=placement,
        threading=threading,
        table_size=table_size,
        embedding_dim=embedding_dim,
        bandwidth_bytes_per_ns=total_bytes / makespan if makespan > 0 else 0.0,
        local_bytes=tier_bytes[MemoryTier.LOCAL_DRAM],
        cxl_bytes=tier_bytes[MemoryTier.CXL],
        remote_bytes=tier_bytes[MemoryTier.REMOTE_SOCKET],
    )


def run_fig5(
    table_sizes: Sequence[int] = TABLE_SIZES,
    embedding_dims: Sequence[int] = EMBEDDING_DIMS,
    threads: int = 16,
    lookups_per_thread: int = 128,
) -> Dict[str, Dict[str, Dict[int, Dict[int, float]]]]:
    """Fig 5: normalized application bandwidth per panel.

    Returns ``{placement: {threading: {embedding_dim: {table_size: value}}}}``.
    Panels (a)-(d) — ``remote`` and ``cxl`` — are normalized to the local-only
    configuration (values below 1.0: partially spilling the working set hurts
    bandwidth, CXL less so than the remote socket).  Panels (e)-(f) —
    ``interleave`` — are normalized to the CXL-only placement, showing the
    gain of the software interleave policy over relying on CXL alone (the
    paper reports up to ~9x).
    """
    results: Dict[str, Dict[str, Dict[int, Dict[int, float]]]] = {}
    local_baseline: Dict[tuple, float] = {}
    cxl_only_baseline: Dict[tuple, float] = {}
    for threading in THREADING_MODES:
        for dim in embedding_dims:
            for size in table_sizes:
                local = run_lookup_phase(
                    "local", threading, size, dim, threads=threads,
                    lookups_per_thread=lookups_per_thread,
                )
                cxl_only = run_lookup_phase(
                    "cxl_only", threading, size, dim, threads=threads,
                    lookups_per_thread=lookups_per_thread,
                )
                local_baseline[(threading, dim, size)] = local.bandwidth_bytes_per_ns
                cxl_only_baseline[(threading, dim, size)] = cxl_only.bandwidth_bytes_per_ns

    for placement in ("remote", "cxl", "interleave"):
        results[placement] = {}
        for threading in THREADING_MODES:
            results[placement][threading] = {}
            for dim in embedding_dims:
                results[placement][threading][dim] = {}
                for size in table_sizes:
                    point = run_lookup_phase(
                        placement, threading, size, dim, threads=threads,
                        lookups_per_thread=lookups_per_thread,
                    )
                    if placement == "interleave":
                        baseline = cxl_only_baseline[(threading, dim, size)]
                    else:
                        baseline = local_baseline[(threading, dim, size)]
                    value = point.bandwidth_bytes_per_ns / baseline if baseline > 0 else 0.0
                    results[placement][threading][dim][size] = value
    return results


def run_fig6(
    configs: Sequence[tuple] = ((16, 32), (16, 64), (16, 128), (32, 32), (32, 64)),
    table_size: int = 128 * 1024,
    lookups_per_thread: int = 128,
) -> Dict[str, Dict[str, float]]:
    """Fig 6: DIMM vs CXL share of system bandwidth per (threads, dim) config.

    Returns ``{"16&32": {"dimm": ..., "cxl": ...}, ...}`` where the values
    are the fractions of total bytes served by each tier under the
    interleaved placement.
    """
    results: Dict[str, Dict[str, float]] = {}
    for threads, dim in configs:
        point = run_lookup_phase(
            "interleave", "batch", table_size, dim, threads=threads,
            lookups_per_thread=lookups_per_thread,
        )
        total = point.local_bytes + point.cxl_bytes + point.remote_bytes
        results[f"{threads}&{dim}"] = {
            "dimm": point.local_bytes / total if total else 0.0,
            "cxl": point.cxl_bytes / total if total else 0.0,
            "bandwidth": point.bandwidth_bytes_per_ns,
        }
    return results


def main() -> None:
    from repro.analysis.report import format_table

    fig5 = run_fig5(table_sizes=TABLE_SIZES[:4], embedding_dims=(16, 64), lookups_per_thread=64)
    rows = []
    for placement, by_threading in fig5.items():
        for threading, by_dim in by_threading.items():
            for dim, by_size in by_dim.items():
                for size, value in by_size.items():
                    rows.append([placement, threading, dim, size, value])
    print(format_table(["placement", "threading", "dim", "table_size", "norm_bandwidth"], rows))

    fig6 = run_fig6()
    rows = [[config, v["dimm"], v["cxl"]] for config, v in fig6.items()]
    print(format_table(["threads&dim", "dimm_share", "cxl_share"], rows))


if __name__ == "__main__":
    main()


__all__ = [
    "TABLE_SIZES",
    "EMBEDDING_DIMS",
    "CharacterizationPoint",
    "run_lookup_phase",
    "run_fig5",
    "run_fig6",
    "main",
]
