"""Fig 16 (TCO) and Fig 17 (throughput) — the cost and performance analysis (§VI-E)."""

from __future__ import annotations

from typing import Dict, Sequence

from repro.baselines.gpu_ps import GPUParameterServer
from repro.config import MODEL_CONFIGS
from repro.cost.tco import TCOModel

GPU_COUNTS = (2, 3, 4)
FIG16_MODELS = ("RMC1", "RMC2", "RMC3", "RMC4")


def run_fig16(
    models: Sequence[str] = FIG16_MODELS, gpu_counts: Sequence[int] = GPU_COUNTS
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Normalized TCO per model: ``{model: {config: {capex, opex, total}}}``.

    Values are normalized to the most expensive configuration of each model
    (min-max normalization of Fig 16).
    """
    results: Dict[str, Dict[str, Dict[str, float]]] = {}
    for model_name in models:
        tco = TCOModel(MODEL_CONFIGS[model_name])
        reports = tco.comparison(gpu_counts)
        peak = max(report.total_usd for report in reports.values())
        results[model_name] = {
            key: {
                "capex": report.capex_usd / peak,
                "opex": report.opex_usd / peak,
                "total": report.total_usd / peak,
                "total_usd": report.total_usd,
            }
            for key, report in reports.items()
        }
    return results


def run_fig17(
    models: Sequence[str] = FIG16_MODELS,
    gpu_counts: Sequence[int] = GPU_COUNTS,
    pifs_effective_bandwidth_gbps: float = 180.0,
) -> Dict[str, Dict[str, float]]:
    """Normalized SLS throughput per model: GPU x2/x3/x4 vs PIFS-Rec.

    The GPU throughput comes from the HBM/PCIe roofline; PIFS-Rec throughput
    is modelled as the aggregate loaded bandwidth of the local DDR5 channels
    plus the CXL downstream ports divided by the bytes each query moves —
    PIFS-Rec is bandwidth-bound but insensitive to the model footprint.
    """
    results: Dict[str, Dict[str, float]] = {}
    for model_name in models:
        model = MODEL_CONFIGS[model_name]
        per_config: Dict[str, float] = {}
        for count in gpu_counts:
            ps = GPUParameterServer(count, model)
            per_config[f"GPUX{count}"] = ps.throughput_queries_per_us()
        bytes_per_query = 8 * 8 * model.embedding_row_bytes
        per_config["PIFS-Rec"] = pifs_effective_bandwidth_gbps / bytes_per_query * 1000.0
        peak = max(per_config.values())
        results[model_name] = {key: value / peak for key, value in per_config.items()}
    return results


def run_performance_per_watt(
    models: Sequence[str] = FIG16_MODELS,
    pifs_effective_bandwidth_gbps: float = 180.0,
    pifs_power_watts: float = 1200.0,
) -> Dict[str, float]:
    """PIFS-Rec performance-per-watt relative to a 4-GPU parameter server."""
    results: Dict[str, float] = {}
    for model_name in models:
        model = MODEL_CONFIGS[model_name]
        ps = GPUParameterServer(4, model)
        gpu_ppw = ps.performance_per_watt()
        bytes_per_query = 8 * 8 * model.embedding_row_bytes
        pifs_throughput = pifs_effective_bandwidth_gbps / bytes_per_query * 1000.0
        pifs_ppw = pifs_throughput / pifs_power_watts
        results[model_name] = pifs_ppw / gpu_ppw if gpu_ppw > 0 else float("inf")
    return results


def main() -> None:
    from repro.analysis.report import format_table

    fig16 = run_fig16()
    rows = []
    for model, configs in fig16.items():
        for config, values in configs.items():
            rows.append([model, config, values["capex"], values["opex"], values["total"]])
    print(format_table(["model", "config", "capex", "opex", "total(norm)"], rows))

    fig17 = run_fig17()
    rows = [[model, *(configs[k] for k in sorted(configs))] for model, configs in fig17.items()]
    print(format_table(["model", *sorted(next(iter(fig17.values())))], rows))


if __name__ == "__main__":
    main()


__all__ = ["GPU_COUNTS", "FIG16_MODELS", "run_fig16", "run_fig17", "run_performance_per_watt", "main"]
