"""Congestion curves: what finite port buffers do that analytic pricing cannot.

The analytic tier prices every fabric transfer as serialization + a busy
wait; the packet tier (``fidelity="packet"``) attaches a credit-counted
queue to every port.  This experiment sweeps the per-port buffer capacity
from unbounded down to a single credit and reports how completion time
diverges from the analytic answer as credit backpressure, drops and
retries appear — the congestion knee the closed-form model prices as zero.
A second table replays the three catalog congestion scenarios
(``flash-crowd-incast``, ``priority-inversion``, ``hot-table-nmp-storm``)
against their analytic twins, and a third shows the ``policy="priority"``
rescue: reserved credits for CONTROL/INSTRUCTION flits erasing the
inversion that FIFO queues inflict on the PIFS instruction stream.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
from typing import Dict, List, Optional, Sequence

from repro.api.results import RunResult
from repro.api.session import RunSpec, Simulation, execute_spec
from repro.experiments.common import DEFAULT_SCALE, EvaluationScale
from repro.net.fabric import PacketConfig

#: Fabric-bound systems whose transfers actually traverse the port queues.
CURVE_SYSTEMS = ("pifs-rec", "recnmp")
#: Per-port credit axis: 0 = unbounded (bit-identical to analytic) -> 1.
CAPACITIES = (0, 8, 4, 2, 1)
#: The catalog scenarios that demonstrate packet-tier-only effects.
CONGESTION_SCENARIOS = ("flash-crowd-incast", "priority-inversion", "hot-table-nmp-storm")
#: The incast-shaped workload every curve point shares.
CURVE_WORKLOAD = dict(distribution="zipfian", pooling_factor=32, num_hosts=4)


def _curve_simulation(system: str, scale: EvaluationScale) -> Simulation:
    return (
        Simulation(system, scale=scale)
        .distribution(CURVE_WORKLOAD["distribution"])
        .pooling(CURVE_WORKLOAD["pooling_factor"])
        .hosts(CURVE_WORKLOAD["num_hosts"])
    )


def _evaluate(spec: RunSpec) -> RunResult:
    """Module-level so the process pool can pickle the task."""
    return execute_spec(spec)


def _run_specs(specs: Sequence[RunSpec], parallel: bool) -> List[RunResult]:
    if parallel and len(specs) > 1:
        context = (
            multiprocessing.get_context("fork")
            if sys.platform.startswith("linux")
            else multiprocessing.get_context()
        )
        workers = min(len(specs), os.cpu_count() or 1)
        with context.Pool(processes=workers) as pool:
            return pool.map(_evaluate, specs)
    return [_evaluate(spec) for spec in specs]


def _cell(run: RunResult, analytic_total_ns: float) -> Dict[str, float]:
    net = run.net
    return {
        "total_ns": run.total_ns,
        "divergence_pct": 100.0 * (run.total_ns / analytic_total_ns - 1.0),
        "backpressure_ns": 0.0 if net is None else net.backpressure_ns,
        "drops": 0.0 if net is None else float(net.drops),
        "retries": 0.0 if net is None else float(net.retries),
        "max_queue_depth": 0.0 if net is None else float(net.max_queue_depth),
    }


def run_congestion_curves(
    scale: EvaluationScale = DEFAULT_SCALE,
    systems: Sequence[str] = CURVE_SYSTEMS,
    capacities: Sequence[int] = CAPACITIES,
    policy: str = "fifo",
    parallel: bool = False,
) -> Dict[str, Dict[int, Dict[str, float]]]:
    """Buffer-capacity sweep per system: ``{system: {capacity: {...}}}``.

    Each cell reports the packet-tier completion time, its divergence from
    the analytic tier, and the queueing counters (``backpressure_ns``,
    ``drops``, ``retries``, ``max_queue_depth``) behind the divergence.
    Capacity ``0`` is the unbounded control row: bit-identical totals and
    zeroed counters, pinning the tier's fidelity contract.
    """
    specs: List[RunSpec] = []
    for system in systems:
        base = _curve_simulation(system, scale)
        specs.append(base.clone().engine("scalar").spec())
        for capacity in capacities:
            sim = base.clone().packet(PacketConfig(capacity=int(capacity), policy=policy))
            specs.append(sim.spec())

    outcomes = iter(_run_specs(specs, parallel))
    curves: Dict[str, Dict[int, Dict[str, float]]] = {}
    for system in systems:
        analytic = next(outcomes)
        curves[system] = {
            int(capacity): _cell(next(outcomes), analytic.total_ns) for capacity in capacities
        }
    return curves


def run_scenario_divergence(quick: bool = False) -> Dict[str, Dict[str, float]]:
    """The catalog congestion scenarios against their analytic twins.

    For each scenario the packet-fidelity run (the scenario's own
    configuration) is compared with the same situation replayed on the
    analytic tier — the queueing effects in the gap are exactly what the
    packet tier adds.
    """
    from repro.scenarios import catalog  # noqa: F401  (registers the catalog)
    from repro.scenarios.registry import scenario

    report: Dict[str, Dict[str, float]] = {}
    for name in CONGESTION_SCENARIOS:
        entry = scenario(name)
        analytic = entry.simulation(quick=quick).engine("scalar").packet(None).run()
        packet = entry.run(quick=quick)
        report[name] = _cell(packet, analytic.total_ns)
    return report


def run_policy_rescue(
    capacities: Sequence[int] = (2, 1), quick: bool = False
) -> Dict[int, Dict[str, float]]:
    """FIFO inversion vs the priority-policy rescue on ``priority-inversion``.

    Returns ``{capacity: {"fifo_divergence_pct", "priority_divergence_pct",
    "instruction_stall_ns"}}``: FIFO queues stall the PIFS instruction
    stream behind bulk DATA; reserved credits (``policy="priority"``) put
    the divergence back to zero.
    """
    from dataclasses import replace as dc_replace

    from repro.scenarios import catalog  # noqa: F401  (registers the catalog)
    from repro.scenarios.registry import scenario

    entry = scenario("priority-inversion")
    analytic = entry.simulation(quick=quick).engine("scalar").packet(None).run()
    rescue: Dict[int, Dict[str, float]] = {}
    for capacity in capacities:
        by_policy: Dict[str, RunResult] = {}
        for policy in ("fifo", "priority"):
            sim = entry.simulation(quick=quick)
            sim.packet(dc_replace(entry.packet, capacity=int(capacity), policy=policy))
            by_policy[policy] = sim.run()
        fifo_net = by_policy["fifo"].net
        rescue[int(capacity)] = {
            "fifo_divergence_pct": 100.0 * (by_policy["fifo"].total_ns / analytic.total_ns - 1.0),
            "priority_divergence_pct": 100.0
            * (by_policy["priority"].total_ns / analytic.total_ns - 1.0),
            "instruction_stall_ns": 0.0 if fifo_net is None else fifo_net.backpressure_ns,
        }
    return rescue


def main(parallel: bool = False, scale: Optional[EvaluationScale] = None) -> None:
    from repro.analysis.report import format_table

    scale = scale or DEFAULT_SCALE
    quick = scale is not DEFAULT_SCALE

    curves = run_congestion_curves(scale, parallel=parallel)
    rows = []
    for system, by_capacity in curves.items():
        for capacity, cell in by_capacity.items():
            rows.append([
                system,
                capacity if capacity else "unbounded",
                cell["total_ns"],
                cell["divergence_pct"],
                cell["backpressure_ns"],
                cell["max_queue_depth"],
            ])
    print(format_table(
        ["system", "buffer_credits", "total_ns", "divergence_pct", "backpressure_ns", "max_depth"],
        rows,
    ))

    print()
    print("catalog congestion scenarios vs their analytic twins:")
    divergence = run_scenario_divergence(quick=quick)
    print(format_table(
        ["scenario", "divergence_pct", "backpressure_ns", "drops", "retries"],
        [
            [name, cell["divergence_pct"], cell["backpressure_ns"], cell["drops"], cell["retries"]]
            for name, cell in divergence.items()
        ],
    ))

    print()
    print("priority-policy rescue of the inverted instruction stream:")
    rescue = run_policy_rescue(quick=quick)
    print(format_table(
        ["buffer_credits", "fifo_divergence_pct", "priority_divergence_pct", "instr_stall_ns"],
        [
            [capacity, cell["fifo_divergence_pct"], cell["priority_divergence_pct"], cell["instruction_stall_ns"]]
            for capacity, cell in rescue.items()
        ],
    ))


if __name__ == "__main__":
    main()


__all__ = [
    "CURVE_SYSTEMS",
    "CAPACITIES",
    "CONGESTION_SCENARIOS",
    "run_congestion_curves",
    "run_scenario_divergence",
    "run_policy_rescue",
    "main",
]
