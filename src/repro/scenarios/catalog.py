"""The starter scenario catalog (importing this module registers them).

Each entry composes the workload / traffic / fault dimensions into one
named, deterministic situation.  ``docs/SCENARIOS.md`` is the cookbook:
what each scenario models, which knobs it turns and what to expect
qualitatively; ``experiments/scenario_grid.py`` runs the catalog as a
paper-grade comparison grid.  List and run them from the CLI::

    python -m repro scenario list
    python -m repro scenario run fault-slow-link --quick
    python -m repro scenario compare tenant-mix --quick
"""

from __future__ import annotations

from repro.net.fabric import PacketConfig
from repro.scenarios.base import Scenario, TrafficSpec
from repro.scenarios.faults import (
    BufferDegradation,
    DeviceDegradation,
    HopDegradation,
    LinkDegradation,
)
from repro.scenarios.registry import register_scenario
from repro.scenarios.workloads import DriftWorkload, MultiTenantWorkload, TenantSpec

# ---------------------------------------------------------------------------
# Workload-shape scenarios
# ---------------------------------------------------------------------------
register_scenario(
    Scenario(
        name="paper-baseline",
        description="The paper's default evaluation point: Meta-like trace on a "
        "healthy single-switch fabric (the reference every other scenario is "
        "judged against).",
        distribution="meta",
        traffic=TrafficSpec(qps=2e5, arrival="poisson", sla_ms=5.0),
    )
)

register_scenario(
    Scenario(
        name="zipfian-skew",
        description="Heavily skewed Zipfian traffic with long bags: the regime "
        "where the on-switch HTR buffer and hotness-based placement pay off "
        "most (small hot set, long tail).",
        distribution="zipfian",
        pooling_factor=32,
    )
)

register_scenario(
    Scenario(
        name="uniform-stress",
        description="Uniform accesses defeat every caching/placement policy: "
        "the worst case for PIFS-Rec's buffer and the best case for raw "
        "fabric bandwidth (buffer hit ratio collapses toward zero).",
        distribution="uniform",
    )
)

register_scenario(
    Scenario(
        name="drift-rotation",
        description="Popularity drift: the hot set rotates every 2 batches, so "
        "a placement tuned for the previous phase keeps paying CXL latency — "
        "stresses the online page-management loop.",
        workload=DriftWorkload(period_batches=2, hot_fraction=0.05, hot_probability=0.8),
        num_batches=8,
        traffic=TrafficSpec(qps=1.5e5, arrival="bursty", sla_ms=10.0),
    )
)

# ---------------------------------------------------------------------------
# Multi-tenant co-location scenarios
# ---------------------------------------------------------------------------
register_scenario(
    Scenario(
        name="tenant-mix",
        description="Two heterogeneous tenants share the fabric: a small hot "
        "RMC1 next to a large RMC3, each on its own host — the big tenant's "
        "spill traffic contends with the small tenant's tail.",
        workload=MultiTenantWorkload(
            tenants=(
                TenantSpec(name="hot-small", model="RMC1", distribution="meta", hosts=1),
                TenantSpec(name="big-cold", model="RMC3", distribution="zipfian", hosts=1),
            )
        ),
    )
)

register_scenario(
    Scenario(
        name="tenant-quad",
        description="Four co-located tenants (2x RMC1 + 2x RMC2) on four hosts "
        "sharing one switch and pool: the crowded-pool regime where per-device "
        "queueing dominates.",
        workload=MultiTenantWorkload(
            tenants=(
                TenantSpec(name="a", model="RMC1", distribution="meta", hosts=1),
                TenantSpec(name="b", model="RMC1", distribution="zipfian", hosts=1),
                TenantSpec(name="c", model="RMC2", distribution="meta", hosts=1),
                TenantSpec(name="d", model="RMC2", distribution="random", hosts=1),
            )
        ),
    )
)

# ---------------------------------------------------------------------------
# Fault / degradation scenarios
# ---------------------------------------------------------------------------
register_scenario(
    Scenario(
        name="fault-slow-link",
        description="Every CXL downstream link retrained to half bandwidth with "
        "+100 ns propagation (marginal retimers): fabric-bound systems slow "
        "down, host-local traffic is untouched.",
        faults=(LinkDegradation(bandwidth_scale=0.5, extra_latency_ns=100.0),),
    )
)

register_scenario(
    Scenario(
        name="fault-degraded-device",
        description="Device 0 goes fail-slow: +200 ns on every read through its "
        "controller. Placement policies that spread hot rows across devices "
        "dilute the damage; capacity-ordered placement concentrates it.",
        faults=(DeviceDegradation(extra_read_ns=200.0, devices=(0,)),),
    )
)

register_scenario(
    Scenario(
        name="fault-buffer-squeeze",
        description="Three quarters of the on-switch SRAM is mapped out "
        "(capacity x0.25): the HTR buffer's hit ratio drops and PIFS-Rec "
        "degrades toward its no-buffer ablation.",
        faults=(BufferDegradation(capacity_scale=0.25),),
    )
)

register_scenario(
    Scenario(
        name="fabric-congested",
        description="Two-switch fabric whose inter-switch hops cost +400 ns "
        "(congestion/retraining): remote-switch accumulations pay double, "
        "rewarding placements that keep bags switch-local.",
        hosts=2,
        switches=2,
        faults=(HopDegradation(extra_hop_ns=400.0),),
    )
)

# ---------------------------------------------------------------------------
# Congestion scenarios (packet fidelity: per-port queues, finite buffers)
# ---------------------------------------------------------------------------
register_scenario(
    Scenario(
        name="flash-crowd-incast",
        description="Flash crowd: four hosts slam one switch's upstream ports "
        "with long bags at once.  With 2-credit port buffers the response "
        "bursts overrun the buffers and credit backpressure stalls admissions "
        "— queueing collapse the analytic tier prices as zero.",
        distribution="zipfian",
        pooling_factor=32,
        hosts=4,
        fidelity="packet",
        packet=PacketConfig(capacity=2, policy="fifo"),
        traffic=TrafficSpec(qps=3e5, arrival="bursty", sla_ms=5.0),
    )
)

register_scenario(
    Scenario(
        name="priority-inversion",
        description="Two tenants of different urgency share the fabric under "
        "tight 2-credit FIFO buffers: the big tenant's row payloads fill "
        "every port queue and the PIFS instruction stream inverts behind "
        "DATA bursts.  Re-run with policy='priority' to watch reserved "
        "credits for CONTROL/INSTRUCTION flits erase the inversion.",
        workload=MultiTenantWorkload(
            tenants=(
                TenantSpec(name="latency", model="RMC1", distribution="meta", hosts=1),
                TenantSpec(name="bulk", model="RMC3", distribution="uniform", hosts=1),
            )
        ),
        pooling_factor=32,
        fidelity="packet",
        packet=PacketConfig(capacity=2, policy="fifo"),
        traffic=TrafficSpec(qps=2e5, arrival="poisson", sla_ms=10.0),
    )
)

register_scenario(
    Scenario(
        name="hot-table-nmp-storm",
        description="A hot table pins every bag to the same few devices while "
        "near-memory accumulation streams whole rows: the device ports drop "
        "packets under a 3-credit buffer and pay a 500 ns retry each time — "
        "drop/retry dynamics only the packet tier can expose.",
        system="recnmp",
        distribution="zipfian",
        pooling_factor=32,
        devices=2,
        fidelity="packet",
        packet=PacketConfig(capacity=3, policy="fifo", drop=True, retry_ns=500.0),
    )
)

# ---------------------------------------------------------------------------
# Fleet scenarios (sharded datacenter-scale serving, see repro.fleet)
# ---------------------------------------------------------------------------
register_scenario(
    Scenario(
        name="fleet-baseline",
        description="Datacenter fleet: the Meta-like trace partitioned across "
        "4 per-rack systems behind a table-affinity router — the sharded "
        "parameter-server layout production DLRM serving actually runs. "
        "Sweep the shards axis to watch per-rack load shrink as the fleet "
        "scales out.",
        distribution="meta",
        shards=4,
        router="table-affinity",
        traffic=TrafficSpec(qps=2e5, arrival="poisson", sla_ms=5.0),
        axes=(("shards", (1, 2, 4)),),
    )
)

# ---------------------------------------------------------------------------
# Sweep-axis scenarios
# ---------------------------------------------------------------------------
register_scenario(
    Scenario(
        name="pooling-scaling",
        description="Bag-size sensitivity: pooling factor 4 -> 64 under the "
        "Meta trace. In-fabric accumulation amortizes per-bag overhead, so "
        "its advantage grows with the bag.",
        distribution="meta",
        axes=(("pooling", (4, 16, 64)),),
    )
)

register_scenario(
    Scenario(
        name="table-scaling",
        description="Table-count sensitivity: 2 -> 8 embedding tables at fixed "
        "capacity share. More tables mean more concurrent bags and more "
        "working-set pressure per batch.",
        distribution="meta",
        axes=(("tables", (2, 4, 8)),),
    )
)


__all__: list = []
