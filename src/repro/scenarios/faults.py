"""Composable fault/degradation injections for scenario runs.

A fault is a small frozen dataclass describing one degradation of the
simulated machine — a CXL link renegotiated to lower bandwidth or higher
latency, a device whose reads turned fail-slow, a cut-down on-switch SRAM
buffer, congested inter-switch hops.  Faults are *applied at session
setup*: :meth:`~repro.sls.engine.SLSSystem.begin_session` runs every
installed mutator after the backends, placement and system preparation
exist but before the vector engine snapshots the machine into its
flattened kernels, so the scalar and vector engines replay the identical
degraded machine (the engine-equivalence suite pins this).

Faults compose: a scenario carries a tuple of them and each mutates its
own target.  They are JSON round-trippable (``to_dict``/``fault_from_dict``)
so scenarios serialize, and picklable so faulted specs ship to sweep
workers.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple, Type

from repro.pifs.switch import PIFSSwitch


@dataclass(frozen=True)
class FaultSpec:
    """Base class: one degradation applied to a system at session setup."""

    #: JSON discriminator; each concrete fault overrides it.
    kind = "fault"

    def apply(self, system) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def describe(self) -> str:
        return self.kind

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        payload.update(asdict(self))
        return payload


@dataclass(frozen=True)
class LinkDegradation(FaultSpec):
    """Degrade the downstream FlexBus link(s) of CXL device(s).

    ``bandwidth_scale`` multiplies the link's peak bandwidth (0.5 = the
    link retrained at half width); ``extra_latency_ns`` is added to the
    propagation delay (marginal retimer).  ``devices`` selects which
    device ids are affected; ``None`` degrades every device's link.
    """

    bandwidth_scale: float = 1.0
    extra_latency_ns: float = 0.0
    devices: Optional[Tuple[int, ...]] = None

    kind = "link-degrade"

    def __post_init__(self) -> None:
        if self.bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        if self.extra_latency_ns < 0:
            raise ValueError("extra_latency_ns must be non-negative")
        if self.devices is not None:
            object.__setattr__(self, "devices", tuple(int(d) for d in self.devices))

    def apply(self, system) -> None:
        for device in system.backends.devices:
            if self.devices is None or device.device_id in self.devices:
                device.link.degrade(
                    bandwidth_scale=self.bandwidth_scale,
                    extra_propagation_ns=self.extra_latency_ns,
                )

    def describe(self) -> str:
        scope = "all links" if self.devices is None else f"devices {list(self.devices)}"
        return (
            f"{scope} at {self.bandwidth_scale:g}x bandwidth, "
            f"+{self.extra_latency_ns:g} ns propagation"
        )


@dataclass(frozen=True)
class DeviceDegradation(FaultSpec):
    """Mark CXL device(s) read-degraded: every read pays ``extra_read_ns``.

    Models fail-slow media (a DIMM in self-heal/retraining).  Affects the
    device-controller read path both engines share; writes are unaffected.
    """

    extra_read_ns: float = 150.0
    devices: Tuple[int, ...] = (0,)

    kind = "device-degrade"

    def __post_init__(self) -> None:
        if self.extra_read_ns < 0:
            raise ValueError("extra_read_ns must be non-negative")
        object.__setattr__(self, "devices", tuple(int(d) for d in self.devices))

    def apply(self, system) -> None:
        for device in system.backends.devices:
            if device.device_id in self.devices:
                device.degrade_reads(self.extra_read_ns)

    def describe(self) -> str:
        return f"devices {list(self.devices)} read-degraded by +{self.extra_read_ns:g} ns"


@dataclass(frozen=True)
class BufferDegradation(FaultSpec):
    """Cut the on-switch SRAM buffer capacity.

    ``capacity_scale`` multiplies the configured capacity (0.25 = three
    quarters of the SRAM mapped out); ``capacity_bytes`` pins an absolute
    size instead when given.  Only PIFS switches carry a buffer; the fault
    is a no-op on plain fabric switches.
    """

    capacity_scale: float = 0.25
    capacity_bytes: Optional[int] = None

    kind = "buffer-degrade"

    def __post_init__(self) -> None:
        if self.capacity_bytes is None and not 0.0 <= self.capacity_scale <= 1.0:
            raise ValueError("capacity_scale must be in [0, 1]")
        if self.capacity_bytes is not None and self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")

    def apply(self, system) -> None:
        for switch in system.backends.switches:
            if not isinstance(switch, PIFSSwitch):
                continue
            buffer = switch.buffer
            if self.capacity_bytes is not None:
                new_capacity = int(self.capacity_bytes)
            else:
                new_capacity = int(buffer.config.capacity_bytes * self.capacity_scale)
            buffer.resize(new_capacity)

    def describe(self) -> str:
        if self.capacity_bytes is not None:
            return f"on-switch buffer pinned to {self.capacity_bytes} bytes"
        return f"on-switch buffer cut to {self.capacity_scale:g}x capacity"


@dataclass(frozen=True)
class HopDegradation(FaultSpec):
    """Add latency to every inter-switch hop of a multi-switch fabric.

    Models congestion or retraining on the inter-switch links.  Applies to
    the fabric topology behind the multi-switch coordinator; single-switch
    sessions (no inter-switch traffic) are unaffected.
    """

    extra_hop_ns: float = 400.0

    kind = "hop-degrade"

    def __post_init__(self) -> None:
        if self.extra_hop_ns < 0:
            raise ValueError("extra_hop_ns must be non-negative")

    def apply(self, system) -> None:
        coordinator = getattr(system, "coordinator", None)
        topology = getattr(coordinator, "topology", None) if coordinator else None
        if topology is not None:
            topology.degrade_hops(self.extra_hop_ns)

    def describe(self) -> str:
        return f"+{self.extra_hop_ns:g} ns per inter-switch hop"


#: kind → class, the JSON round-trip dispatch table.
FAULT_KINDS: Dict[str, Type[FaultSpec]] = {
    cls.kind: cls
    for cls in (LinkDegradation, DeviceDegradation, BufferDegradation, HopDegradation)
}


def fault_from_dict(data: Mapping[str, Any]) -> FaultSpec:
    """Rebuild a fault from its ``to_dict`` payload."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = FAULT_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(FAULT_KINDS))
        raise ValueError(f"unknown fault kind {kind!r}; expected one of: {known}")
    for key in ("devices",):
        if key in payload and payload[key] is not None:
            payload[key] = tuple(payload[key])
    return cls(**payload)


__all__ = [
    "FAULT_KINDS",
    "FaultSpec",
    "LinkDegradation",
    "DeviceDegradation",
    "BufferDegradation",
    "HopDegradation",
    "fault_from_dict",
]
