"""Declarative, registry-backed scenario subsystem.

Scenarios compose three dimensions into named, deterministic, JSON
round-trippable situations served through the one façade API:

* **workload** — model/trace shape, a trace file, popularity drift, or a
  multi-tenant mix (:mod:`repro.scenarios.workloads`);
* **traffic** — open-loop serve knobs (:class:`~repro.scenarios.base.TrafficSpec`);
* **faults** — machine degradations applied at session setup so the
  scalar and vector engines replay the identical degraded machine
  (:mod:`repro.scenarios.faults`).

Entry points::

    from repro.scenarios import scenario, available_scenarios

    run = scenario("fault-slow-link").run(quick=True)
    result = scenario("tenant-mix").sweep(systems=["pond", "pifs-rec"]).run()

and ``python -m repro scenario list|run|compare`` from the CLI.  The
starter catalog lives in :mod:`repro.scenarios.catalog`; the cookbook is
``docs/SCENARIOS.md``.
"""

from repro.scenarios.base import SCENARIO_AXES, Scenario, TrafficSpec
from repro.scenarios.faults import (
    FAULT_KINDS,
    BufferDegradation,
    DeviceDegradation,
    FaultSpec,
    HopDegradation,
    LinkDegradation,
    fault_from_dict,
)
from repro.scenarios.registry import (
    DuplicateScenarioError,
    UnknownScenarioError,
    available_scenarios,
    register_scenario,
    scenario,
    unregister_scenario,
)
from repro.scenarios.workloads import (
    PROVIDER_KINDS,
    DriftWorkload,
    MultiTenantWorkload,
    TenantSpec,
    TraceFileWorkload,
    provider_from_dict,
)

__all__ = [
    "SCENARIO_AXES",
    "Scenario",
    "TrafficSpec",
    "FAULT_KINDS",
    "FaultSpec",
    "LinkDegradation",
    "DeviceDegradation",
    "BufferDegradation",
    "HopDegradation",
    "fault_from_dict",
    "PROVIDER_KINDS",
    "TraceFileWorkload",
    "DriftWorkload",
    "MultiTenantWorkload",
    "TenantSpec",
    "provider_from_dict",
    "DuplicateScenarioError",
    "UnknownScenarioError",
    "available_scenarios",
    "register_scenario",
    "scenario",
    "unregister_scenario",
]
