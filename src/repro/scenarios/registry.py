"""Named-scenario registry (the scenario counterpart of the system registry).

The starter catalog (:mod:`repro.scenarios.catalog`) registers itself
lazily the first time a name is resolved, exactly like the built-in
systems do in :mod:`repro.api.registry`; user code adds its own scenarios
with :func:`register_scenario` — directly with a :class:`Scenario`, or as
a decorator on a zero-argument factory::

    @register_scenario
    def my_scenario() -> Scenario:
        return Scenario(name="my-scenario", ...)

Names are case-insensitive and must be unique unless ``replace=True``.
"""

from __future__ import annotations

import difflib
from typing import Callable, Dict, Iterable, Optional, Tuple, Union

from repro.scenarios.base import Scenario


class UnknownScenarioError(KeyError):
    """Raised when a scenario name is not registered (readable + suggests)."""

    def __init__(self, name: str, known: Iterable[str]) -> None:
        self.name = name
        self.known = tuple(sorted(known))
        message = f"unknown scenario {name!r}; expected one of: {', '.join(self.known)}"
        guesses = difflib.get_close_matches(str(name).lower(), self.known, n=1)
        if guesses:
            message += f" (did you mean {guesses[0]!r}?)"
        super().__init__(message)

    def __str__(self) -> str:
        return self.args[0]

    def __reduce__(self):
        return (type(self), (self.name, self.known))


class DuplicateScenarioError(ValueError):
    """Raised when two different scenarios claim the same name."""


_REGISTRY: Dict[str, Scenario] = {}
_CATALOG_LOADED = False

ScenarioLike = Union[Scenario, Callable[[], Scenario]]


def register_scenario(
    scenario: Optional[ScenarioLike] = None, *, replace: bool = False
):
    """Register a scenario (or decorate a zero-argument scenario factory)."""

    def _register(target: ScenarioLike):
        resolved = target() if callable(target) else target
        if not isinstance(resolved, Scenario):
            raise TypeError(
                f"register_scenario expects a Scenario (or a factory returning "
                f"one), got {type(resolved).__name__}"
            )
        key = resolved.name.lower()
        existing = _REGISTRY.get(key)
        if existing is not None and existing != resolved and not replace:
            raise DuplicateScenarioError(
                f"scenario name {resolved.name!r} is already registered; "
                "pass replace=True to override"
            )
        _REGISTRY[key] = resolved
        return target

    if scenario is not None:
        _register(scenario)
        return scenario
    return _register


def unregister_scenario(name: str) -> None:
    """Remove a registration (mainly for tests)."""
    _REGISTRY.pop(str(name).lower(), None)


def _ensure_catalog() -> None:
    """Import the starter catalog, which self-registers on first use."""
    global _CATALOG_LOADED
    if _CATALOG_LOADED:
        return
    import repro.scenarios.catalog  # noqa: F401  (registers the starter catalog)

    _CATALOG_LOADED = True


def scenario(name: str) -> Scenario:
    """Resolve a registered scenario by (case-insensitive) name."""
    _ensure_catalog()
    try:
        return _REGISTRY[str(name).lower()]
    except KeyError:
        raise UnknownScenarioError(name, _REGISTRY) from None


def available_scenarios() -> Tuple[str, ...]:
    """Registered scenarios' display names, sorted case-insensitively.

    Display names (``Scenario.name``), not the lowercased registry keys —
    listings and ``to_dict()['name']`` must agree on what a scenario is
    called.
    """
    _ensure_catalog()
    return tuple(
        entry.name for entry in sorted(_REGISTRY.values(), key=lambda s: s.name.lower())
    )


__all__ = [
    "DuplicateScenarioError",
    "UnknownScenarioError",
    "available_scenarios",
    "register_scenario",
    "scenario",
    "unregister_scenario",
]
