"""Declarative scenarios: workload x traffic x fault dimensions, named.

A :class:`Scenario` is a frozen, JSON-round-trippable description of one
evaluation situation — which workload shape runs (model, trace
distribution, a drifting hot set, a trace file, a multi-tenant mix), on
which machine (hosts/switches/devices), under which degradations
(:mod:`repro.scenarios.faults`), and optionally under which open-loop
traffic (:class:`TrafficSpec`).  Scenarios compile onto the existing
façade: :meth:`Scenario.simulation` returns a configured
:class:`~repro.api.session.Simulation`, so every scenario runs closed-loop
(:meth:`run`), open-loop (:meth:`serve`), across systems and its declared
axes (:meth:`sweep`), on either engine, and from the CLI
(``python -m repro scenario run <name>``) — deterministically under the
session seed.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.config import MODEL_CONFIGS
from repro.scenarios.faults import FaultSpec, fault_from_dict
from repro.scenarios.workloads import (
    MultiTenantWorkload,
    provider_from_dict,
)

#: Axis names a scenario may sweep over.  ``tables`` is special-cased (it
#: rewrites the evaluation scale); the rest map to Simulation settings.
SCENARIO_AXES = (
    "system",
    "model",
    "distribution",
    "batch_size",
    "pooling",
    "tables",
    "devices",
    "switches",
    "hosts",
    "shards",
    "router",
)


@dataclass(frozen=True)
class TrafficSpec:
    """Open-loop traffic dimension of a scenario (the serve-path knobs)."""

    qps: float = 1e5
    arrival: str = "poisson"
    max_batch_size: int = 8
    max_wait_us: float = 100.0
    sla_ms: Optional[float] = None

    def __post_init__(self) -> None:
        if self.qps <= 0:
            raise ValueError("qps must be positive")
        if self.max_batch_size <= 0:
            raise ValueError("max_batch_size must be positive")
        # Validate eagerly (like every sibling spec) so a typo'd arrival
        # fails at scenario definition, not at serve time.
        from repro.serve.arrivals import available_arrivals

        if str(self.arrival).lower() not in available_arrivals():
            known = ", ".join(available_arrivals())
            raise ValueError(
                f"unknown arrival process {self.arrival!r}; expected one of: {known}"
            )

    @property
    def sla_ns(self) -> Optional[float]:
        return None if self.sla_ms is None else self.sla_ms * 1e6

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrafficSpec":
        return cls(**dict(data))


@dataclass(frozen=True)
class Scenario:
    """One named, deterministic evaluation situation (see module docstring)."""

    name: str
    description: str = ""
    system: str = "pifs-rec"
    model: str = "RMC1"
    distribution: Optional[str] = None
    batch_size: Optional[int] = None
    num_batches: Optional[int] = None
    pooling_factor: Optional[int] = None
    hosts: Optional[int] = None
    switches: int = 1
    devices: Optional[int] = None
    workload: Optional[Any] = None  # a workload provider (see repro.scenarios.workloads)
    faults: Tuple[FaultSpec, ...] = ()
    traffic: Optional[TrafficSpec] = None
    #: Pinned replay fidelity (``"scalar"``/``"vector"``/``"packet"``);
    #: ``None`` leaves the session's engine choice alone.  Congestion
    #: scenarios pin ``"packet"`` — their queueing effects do not exist at
    #: analytic fidelity.
    fidelity: Optional[str] = None
    #: Packet-tier knobs (:class:`~repro.net.fabric.PacketConfig`); implies
    #: packet fidelity when set.
    packet: Optional[Any] = None
    #: Fleet dimension: partition the run across this many per-rack
    #: systems behind ``router`` (0 = plain single-system run; see
    #: :mod:`repro.fleet`).
    shards: int = 0
    #: Request-routing policy in front of the shards (one of
    #: :data:`repro.fleet.router.ROUTER_POLICIES`).
    router: str = "table-affinity"
    axes: Tuple[Tuple[str, Tuple[Any, ...]], ...] = ()

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a scenario needs a name")
        if self.model.upper() not in MODEL_CONFIGS:
            known = ", ".join(sorted(MODEL_CONFIGS))
            raise ValueError(f"unknown model {self.model!r}; expected one of: {known}")
        if self.fidelity is not None:
            from repro.sls.engine import ENGINES

            if self.fidelity not in ENGINES:
                raise ValueError(
                    f"unknown fidelity {self.fidelity!r}; expected one of: "
                    + ", ".join(ENGINES)
                )
        if self.shards < 0:
            raise ValueError("shards must be non-negative")
        from repro.fleet.router import ROUTER_POLICIES

        if self.router not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router policy {self.router!r}; expected one of: "
                + ", ".join(ROUTER_POLICIES)
            )
        object.__setattr__(self, "faults", tuple(self.faults))
        object.__setattr__(
            self, "axes", tuple((str(k), tuple(v)) for k, v in self.axes)
        )
        for axis, values in self.axes:
            if axis not in SCENARIO_AXES:
                raise ValueError(
                    f"unknown scenario axis {axis!r}; expected one of: "
                    + ", ".join(SCENARIO_AXES)
                )
            if not values:
                raise ValueError(f"scenario axis {axis!r} has no values")

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------
    @property
    def resolved_hosts(self) -> int:
        """Host count: explicit, the multi-tenant total, or 1."""
        if self.hosts is not None:
            return self.hosts
        if isinstance(self.workload, MultiTenantWorkload):
            return self.workload.total_hosts
        return 1

    def dimensions(self) -> str:
        """One-line summary of the scenario's dimensions (CLI listing)."""
        parts = [self.model]
        if self.workload is not None:
            parts.append(self.workload.label)
        elif self.distribution:
            parts.append(self.distribution)
        machine = f"{self.resolved_hosts}h/{self.switches}sw"
        if self.devices is not None:
            machine += f"/{self.devices}dev"
        parts.append(machine)
        if self.shards:
            parts.append(f"{self.shards}shards/{self.router}")
        parts.extend(fault.kind for fault in self.faults)
        if self.traffic is not None:
            parts.append(f"{self.traffic.qps:g}qps/{self.traffic.arrival}")
        if self.fidelity is not None:
            parts.append(self.fidelity)
        if self.packet is not None:
            parts.append(f"buf{self.packet.capacity}")
        for axis, values in self.axes:
            parts.append(f"{axis}x{len(values)}")
        return " ".join(parts)

    def parameters(self) -> str:
        """The fault/traffic/packet parameters that distinguish this scenario.

        One compact human-readable string for CLI tables — the knob values
        themselves (degradation factors, offered load, buffer credits), not
        just the dimension names that :meth:`dimensions` reports.
        """
        parts: List[str] = [fault.describe() for fault in self.faults]
        if self.traffic is not None:
            traffic = f"{self.traffic.qps:g} qps {self.traffic.arrival}"
            traffic += f", batch<={self.traffic.max_batch_size}"
            traffic += f", wait<={self.traffic.max_wait_us:g}us"
            if self.traffic.sla_ms is not None:
                parts.append(traffic + f", SLA {self.traffic.sla_ms:g}ms")
            else:
                parts.append(traffic)
        if self.packet is not None:
            packet = f"packet buffers={self.packet.capacity or 'unbounded'}"
            packet += f", {self.packet.policy}"
            if self.packet.drop:
                packet += f", drop+retry {self.packet.retry_ns:g}ns"
            parts.append(packet)
        elif self.fidelity is not None:
            parts.append(f"fidelity={self.fidelity}")
        if self.shards:
            parts.append(f"fleet {self.shards} shards, {self.router}")
        return "; ".join(parts) if parts else "-"

    # ------------------------------------------------------------------
    # Compilation onto the façade
    # ------------------------------------------------------------------
    def simulation(
        self,
        system: Optional[str] = None,
        engine: Optional[str] = None,
        scale: Optional[Any] = None,
        quick: bool = False,
        observe: Optional[Any] = None,
        stream: bool = False,
    ):
        """A configured :class:`~repro.api.session.Simulation` for this scenario.

        Delegates to :meth:`Simulation.scenario` so there is exactly one
        scenario → session mapping: ``Scenario.run()``,
        ``Simulation.run_scenario()`` and the CLI cannot drift apart.
        ``observe`` attaches a recorder (see :meth:`Simulation.observe`),
        so ``entry.run(observe=recorder)`` and ``entry.serve(observe=recorder)``
        land closed- and open-loop spans on one shared timeline.  ``stream``
        replays the scenario's workload out-of-core (see
        :meth:`Simulation.stream`) — bit-identical, O(window) resident.
        """
        from repro.api.session import Simulation

        sim = Simulation(system or self.system)
        if quick:
            sim.quick()
        elif scale is not None:
            sim.scale(scale)
        sim.scenario(self)
        if system is not None:
            # Re-assert the explicit choice: Simulation.scenario() cannot
            # tell an explicitly requested "pifs-rec" from its constructor
            # default and would hand the name back to the scenario.
            sim.system(system)
        if engine is not None:
            sim.engine(engine)
        if observe is not None:
            sim.observe(observe)
        if stream:
            sim.stream()
        return sim

    def run(self, cache: bool = True, **session_kwargs: Any):
        """Run the scenario closed-loop; returns the :class:`RunResult`."""
        return self.simulation(**session_kwargs).run(cache=cache)

    def serve(self, qps: Optional[float] = None, **session_kwargs: Any):
        """Serve the scenario open-loop under its traffic spec.

        Scenarios without an explicit :class:`TrafficSpec` use the spec's
        defaults; ``qps`` overrides the offered load either way.
        """
        traffic = self.traffic or TrafficSpec()
        return self.simulation(**session_kwargs).serve(
            qps if qps is not None else traffic.qps,
            arrival=traffic.arrival,
            max_batch_size=traffic.max_batch_size,
            max_wait_ns=traffic.max_wait_us * 1e3,
            sla_ns=traffic.sla_ns,
        )

    def sweep(
        self,
        systems: Optional[Sequence[str]] = None,
        **session_kwargs: Any,
    ):
        """A :class:`~repro.api.sweep.Sweep` over the scenario's axes.

        ``systems`` adds/overrides a system axis (the CLI's
        ``scenario compare`` passes the systems to compare).  Scenarios
        without declared axes sweep over systems alone.
        """
        from repro.api.sweep import Sweep, point

        base = self.simulation(**session_kwargs)
        over: Dict[str, List[Any]] = {}
        if systems:
            over["system"] = list(dict.fromkeys(systems))
        scale = base.spec().scale
        for axis, values in self.axes:
            if axis == "system" and "system" in over:
                continue  # explicit systems win over the declared axis
            if axis == "tables":
                over[axis] = [
                    point(n, scale=replace(scale, num_tables=int(n))) for n in values
                ]
            else:
                over[axis] = list(values)
        if not over:
            over["system"] = [self.system]
        return Sweep(over, base=base)

    # ------------------------------------------------------------------
    # JSON round trip
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "system": self.system,
            "model": self.model,
            "distribution": self.distribution,
            "batch_size": self.batch_size,
            "num_batches": self.num_batches,
            "pooling_factor": self.pooling_factor,
            "hosts": self.hosts,
            "switches": self.switches,
            "devices": self.devices,
            "workload": None if self.workload is None else self.workload.to_dict(),
            "faults": [fault.to_dict() for fault in self.faults],
            "traffic": None if self.traffic is None else self.traffic.to_dict(),
            "fidelity": self.fidelity,
            "packet": None if self.packet is None else self.packet.to_dict(),
            "shards": self.shards,
            "router": self.router,
            "axes": [[axis, list(values)] for axis, values in self.axes],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Scenario":
        from repro.net.fabric import PacketConfig

        payload = dict(data)
        workload = payload.get("workload")
        traffic = payload.get("traffic")
        packet = payload.get("packet")
        return cls(
            name=str(payload["name"]),
            description=str(payload.get("description", "")),
            system=str(payload.get("system", "pifs-rec")),
            model=str(payload.get("model", "RMC1")),
            distribution=payload.get("distribution"),
            batch_size=payload.get("batch_size"),
            num_batches=payload.get("num_batches"),
            pooling_factor=payload.get("pooling_factor"),
            hosts=payload.get("hosts"),
            switches=int(payload.get("switches", 1)),
            devices=payload.get("devices"),
            workload=None if workload is None else provider_from_dict(workload),
            faults=tuple(fault_from_dict(f) for f in payload.get("faults") or ()),
            traffic=None if traffic is None else TrafficSpec.from_dict(traffic),
            fidelity=payload.get("fidelity"),
            packet=None if packet is None else PacketConfig.from_dict(packet),
            shards=int(payload.get("shards", 0)),
            router=str(payload.get("router", "table-affinity")),
            axes=tuple(
                (str(axis), tuple(values)) for axis, values in payload.get("axes") or ()
            ),
        )

    def to_json(self, **kwargs: Any) -> str:
        import json

        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_json(cls, payload: str) -> "Scenario":
        import json

        return cls.from_dict(json.loads(payload))


__all__ = ["SCENARIO_AXES", "Scenario", "TrafficSpec"]
