"""Workload providers: scenario-shaped workloads behind one spec hook.

A provider is a small frozen dataclass with a ``build(spec)`` method
returning the session's :class:`~repro.traces.workload.SLSWorkload`.  It
rides on :class:`~repro.api.session.RunSpec.workload_provider`: when set,
the façade's workload builder delegates to it (instead of the stationary
synthetic generators) while keeping everything else — caching by workload
key, sweep chunking, serve, both engines — unchanged.

Three providers ship:

* :class:`TraceFileWorkload` — replay a real trace file (Meta
  ``dlrm_datasets``-style ``.npz`` or Criteo-style TSV) through
  :mod:`repro.traces.files`;
* :class:`DriftWorkload` — popularity drift via hot-set rotation
  (:mod:`repro.traces.drift`);
* :class:`MultiTenantWorkload` — co-locate heterogeneous tenants (their
  own models, traces and hosts) on one shared fabric, each tenant's
  tables mapped into a disjoint region of a combined address space.

All providers are deterministic functions of ``(provider fields, spec)``,
picklable (they ship to sweep workers) and JSON round-trippable.
"""

from __future__ import annotations

import pathlib
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple, Type

import numpy as np

from repro.config import MODEL_CONFIGS, ModelConfig, WorkloadConfig
from repro.memsys.address_space import AddressSpace
from repro.traces.drift import build_drifting_workload
from repro.traces.files import workload_from_trace
from repro.traces.meta import generate_meta_like_trace
from repro.traces.stream import DEFAULT_WINDOW_BATCHES
from repro.traces.synthetic import TraceDistribution
from repro.traces.workload import SLSRequest, SLSWorkload, flatten_table_bags


def resolve_model(spec) -> ModelConfig:
    """The spec's model as a scaled :class:`ModelConfig` (names go through the scale)."""
    if isinstance(spec.model, ModelConfig):
        return spec.model
    return spec.scale.model(str(spec.model).upper())


def _resolved(spec) -> Tuple[int, int, int]:
    """(batch_size, num_batches, pooling_factor) with scale defaults applied."""
    scale = spec.scale
    return (
        scale.batch_size if spec.batch_size is None else spec.batch_size,
        scale.num_batches if spec.num_batches is None else spec.num_batches,
        scale.pooling_factor if spec.pooling_factor is None else spec.pooling_factor,
    )


@dataclass(frozen=True)
class TraceFileWorkload:
    """Serve the session from a trace file instead of a generator.

    ``hex_indices`` applies to Criteo-style TSVs whose hashed categorical
    ids are hexadecimal.  ``streaming=True`` (or a session built with
    ``Simulation.stream()``) replays the file out-of-core: only the active
    ``window_batches`` window of requests is resident at a time, and the
    replayed schedule is bit-identical to the eager load.
    """

    path: str
    format: Optional[str] = None
    hex_indices: bool = False
    streaming: bool = False
    window_batches: int = DEFAULT_WINDOW_BATCHES

    kind = "trace-file"

    @property
    def label(self) -> str:
        return f"trace:{self.path}"

    def cache_token(self) -> tuple:
        """Cache identity: the fields plus the file's (mtime, size).

        The workload/result caches key specs by value; for a file-backed
        provider the value includes state the fields cannot see — a trace
        file overwritten on disk must invalidate, not serve stale.
        """
        try:
            stat = pathlib.Path(self.path).stat()
            fingerprint: tuple = (stat.st_mtime_ns, stat.st_size)
        except OSError:
            fingerprint = ("missing",)
        return (
            "trace-file", self.path, self.format, self.hex_indices,
            self.streaming, self.window_batches,
        ) + fingerprint

    def build(self, spec) -> SLSWorkload:
        batch_size, _, _ = _resolved(spec)
        return workload_from_trace(
            self.path,
            resolve_model(spec),
            format=self.format,
            batch_size=batch_size,
            hex_indices=self.hex_indices,
            num_hosts=max(1, spec.num_hosts),
            streaming=self.streaming or bool(getattr(spec, "stream", False)),
            window_batches=self.window_batches,
        )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        payload.update(asdict(self))
        return payload


@dataclass(frozen=True)
class DriftWorkload:
    """Popularity drift: the hot set rotates every ``period_batches``."""

    period_batches: int = 2
    hot_fraction: float = 0.05
    hot_probability: float = 0.8

    kind = "drift"

    @property
    def label(self) -> str:
        return f"drift:{self.period_batches}"

    def build(self, spec) -> SLSWorkload:
        batch_size, num_batches, pooling = _resolved(spec)
        config = WorkloadConfig(
            model=resolve_model(spec),
            batch_size=batch_size,
            pooling_factor=pooling,
            num_batches=num_batches,
            seed=spec.scale.seed,
        )
        return build_drifting_workload(
            config,
            period_batches=self.period_batches,
            hot_fraction=self.hot_fraction,
            hot_probability=self.hot_probability,
            num_hosts=max(1, spec.num_hosts),
        )

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {"kind": self.kind}
        payload.update(asdict(self))
        return payload


@dataclass(frozen=True)
class TenantSpec:
    """One tenant of a multi-tenant co-location scenario.

    ``model`` is a Table I name (scaled by the session's evaluation
    scale); ``hosts`` is how many dedicated hosts the tenant owns on the
    shared fabric.  ``batch_size``/``num_batches``/``pooling_factor``
    default to the session's values when ``None``.
    """

    name: str
    model: str = "RMC1"
    distribution: str = "meta"
    hosts: int = 1
    batch_size: Optional[int] = None
    num_batches: Optional[int] = None
    pooling_factor: Optional[int] = None

    def __post_init__(self) -> None:
        if self.hosts <= 0:
            raise ValueError("a tenant needs at least one host")
        if str(self.model).upper() not in MODEL_CONFIGS:
            known = ", ".join(sorted(MODEL_CONFIGS))
            raise ValueError(f"unknown tenant model {self.model!r}; expected one of: {known}")
        TraceDistribution.from_name(self.distribution)  # validate eagerly

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TenantSpec":
        return cls(**dict(data))


@dataclass(frozen=True)
class MultiTenantWorkload:
    """Co-locate heterogeneous tenants on one shared CXL fabric.

    Every tenant brings its own (scaled) model, trace distribution and
    host count; tenant ``i``'s tables occupy a disjoint table range of a
    combined address space sized for the largest tenant, and its requests
    are issued from its own host range.  Batches are interleaved
    round-robin across tenants (batch 0 of every tenant, then batch 1,
    ...) so the shared devices see genuinely mixed traffic.

    Tenants must share an embedding dimension — the fabric kernels carry
    one row size per session; heterogeneous *capacity* (rows, tables) is
    the supported axis, matching multi-model co-location on real pools.
    """

    tenants: Tuple[TenantSpec, ...]

    kind = "multi-tenant"

    def __post_init__(self) -> None:
        if len(self.tenants) < 2:
            raise ValueError("a multi-tenant workload needs at least two tenants")
        object.__setattr__(self, "tenants", tuple(self.tenants))

    @property
    def label(self) -> str:
        return "tenants:" + "+".join(t.name for t in self.tenants)

    @property
    def total_hosts(self) -> int:
        return sum(t.hosts for t in self.tenants)

    def combined_model(self, spec) -> ModelConfig:
        """The synthetic model spanning every tenant's tables."""
        scale = spec.scale
        models = [scale.model(t.model.upper()) for t in self.tenants]
        dims = {m.embedding_dim for m in models}
        if len(dims) > 1:
            raise ValueError(
                "tenants must share an embedding dimension (one row size per "
                f"fabric session); got {sorted(dims)}"
            )
        return ModelConfig(
            name="+".join(t.name for t in self.tenants),
            num_embeddings=max(m.num_embeddings for m in models),
            embedding_dim=models[0].embedding_dim,
            bottom_mlp=models[0].bottom_mlp,
            top_mlp=models[0].top_mlp,
            num_tables=sum(m.num_tables for m in models),
        )

    def build(self, spec) -> SLSWorkload:
        num_hosts = max(1, spec.num_hosts)
        if num_hosts != self.total_hosts:
            raise ValueError(
                f"multi-tenant workload owns {self.total_hosts} host(s) "
                f"({' + '.join(f'{t.name}:{t.hosts}' for t in self.tenants)}) but the "
                f"session is configured for {num_hosts}; set .hosts({self.total_hosts})"
            )
        scale = spec.scale
        batch_size, num_batches, pooling = _resolved(spec)
        combined = self.combined_model(spec)
        space = AddressSpace.for_model(combined)
        row_bytes = combined.embedding_row_bytes

        # Per-tenant batches, each from its own deterministic seed stream.
        tenant_models = [scale.model(t.model.upper()) for t in self.tenants]
        tenant_batches = []
        for index, tenant in enumerate(self.tenants):
            config = WorkloadConfig(
                model=tenant_models[index],
                batch_size=tenant.batch_size or batch_size,
                pooling_factor=tenant.pooling_factor or pooling,
                num_batches=tenant.num_batches or num_batches,
                distribution=tenant.distribution,
                seed=scale.seed + 1_000_003 * (index + 1),
            )
            tenant_batches.append(
                generate_meta_like_trace(
                    config, distribution=TraceDistribution.from_name(tenant.distribution)
                )
            )

        # Table and host ranges per tenant (disjoint, in tenant order).
        table_offsets: List[int] = []
        host_offsets: List[int] = []
        table_cursor = host_cursor = 0
        for index, tenant in enumerate(self.tenants):
            table_offsets.append(table_cursor)
            host_offsets.append(host_cursor)
            table_cursor += tenant_models[index].num_tables
            host_cursor += tenant.hosts

        # Tenants map samples to their own dedicated host range.
        def tenant_host_fn(index: int, tenant: TenantSpec):
            base, hosts = host_offsets[index], tenant.hosts

            def host_of_sample(sample: int) -> int:
                return base + (sample % hosts)

            return host_of_sample

        host_fns = [tenant_host_fn(i, t) for i, t in enumerate(self.tenants)]

        # Interleave by batch index so tenants contend from the first tick;
        # bag flattening is the shared path every workload source uses.
        requests: List[SLSRequest] = []
        request_id = 0
        rounds = max(len(batches) for batches in tenant_batches)
        for round_index in range(rounds):
            for index, tenant in enumerate(self.tenants):
                batches = tenant_batches[index]
                if round_index >= len(batches):
                    continue
                batch = batches[round_index]
                for table in range(batch.num_tables):
                    indices = batch.indices_per_table[table].astype(np.int64)
                    offsets = batch.offsets_per_table[table]
                    global_table = table_offsets[index] + table
                    table_addresses = space.row_addresses(global_table, indices)
                    request_id = flatten_table_bags(
                        requests, request_id, global_table, indices, offsets,
                        table_addresses, row_bytes, host_fns[index],
                    )
        return SLSWorkload(
            model=combined,
            address_space=space,
            requests=requests,
            batch_size=max(t.batch_size or batch_size for t in self.tenants),
            num_batches=rounds,
            distribution="multi-tenant",
            trace=None,
        )

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "tenants": [t.to_dict() for t in self.tenants]}


#: kind → class, the JSON round-trip dispatch table.
PROVIDER_KINDS: Dict[str, Type] = {
    cls.kind: cls for cls in (TraceFileWorkload, DriftWorkload, MultiTenantWorkload)
}


def provider_from_dict(data: Mapping[str, Any]):
    """Rebuild a workload provider from its ``to_dict`` payload."""
    payload = dict(data)
    kind = payload.pop("kind", None)
    cls = PROVIDER_KINDS.get(kind)
    if cls is None:
        known = ", ".join(sorted(PROVIDER_KINDS))
        raise ValueError(f"unknown workload provider kind {kind!r}; expected one of: {known}")
    if cls is MultiTenantWorkload:
        return cls(tenants=tuple(TenantSpec.from_dict(t) for t in payload["tenants"]))
    return cls(**payload)


__all__ = [
    "PROVIDER_KINDS",
    "DriftWorkload",
    "MultiTenantWorkload",
    "TenantSpec",
    "TraceFileWorkload",
    "provider_from_dict",
    "resolve_model",
]
