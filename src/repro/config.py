"""Central configuration objects for the PIFS-Rec reproduction.

Every simulator component receives its parameters through the dataclasses
defined here.  Default values follow Tables I and II of the paper:

* :class:`DRAMTimings` / :class:`DRAMConfig` mirror the "DRAM Configuration"
  block of Table II (DDR5-4800, 64 GB DIMMs, 4 channels, 2 ranks).
* :class:`CXLConfig` mirrors the "CXL Configuration" block (64 GB/s x16
  downstream ports, 0.91-4.19 ns switch buffer access, 100 ns CXL access
  penalty over DRAM).
* :class:`ModelConfig` and the ``RMC1``-``RMC4`` presets mirror Table I.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

# ---------------------------------------------------------------------------
# Units.  The global simulation clock is expressed in nanoseconds ("ticks"),
# matching the paper's "top-module clock tick period of one ns/clk".
# ---------------------------------------------------------------------------

NS_PER_TICK = 1.0
CACHE_LINE_BYTES = 64
PAGE_SIZE_BYTES = 4096
GIB = 1024 ** 3
MIB = 1024 ** 2
KIB = 1024


@dataclass(frozen=True)
class DRAMTimings:
    """DDR timing parameters in device clock cycles (Table II).

    ``tck_ps`` is the clock period in picoseconds; DDR5-4800 has a 2400 MHz
    I/O clock, i.e. 625 ps per cycle / 0.625 ns.
    """

    cl: int = 28
    trcd: int = 28
    trp: int = 28
    tras: int = 52
    trc: int = 79
    twr: int = 48
    trtp: int = 12
    tcwl: int = 22
    nrfc1: int = 30
    tck_ps: int = 625

    @property
    def tck_ns(self) -> float:
        """Clock period in nanoseconds."""
        return self.tck_ps / 1000.0

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a number of device cycles to nanoseconds."""
        return cycles * self.tck_ns

    @property
    def row_hit_cycles(self) -> int:
        """Cycles for a read that hits an open row (CAS latency)."""
        return self.cl

    @property
    def row_closed_cycles(self) -> int:
        """Cycles for a read to a precharged (closed) bank: ACT + CAS."""
        return self.trcd + self.cl

    @property
    def row_conflict_cycles(self) -> int:
        """Cycles for a read that conflicts with an open row: PRE + ACT + CAS."""
        return self.trp + self.trcd + self.cl


# DDR4 used on the CXL expander side (Table II footnote / §III: CXL memory is
# built from DDR4-3200 DIMMs with a lower refresh rate than DDR5).
DDR4_TIMINGS = DRAMTimings(
    cl=22,
    trcd=22,
    trp=22,
    tras=52,
    trc=74,
    twr=24,
    trtp=12,
    tcwl=16,
    nrfc1=40,
    tck_ps=1250,
)

DDR5_TIMINGS = DRAMTimings()


@dataclass(frozen=True)
class DRAMConfig:
    """Organization of a DRAM device (one memory node)."""

    timings: DRAMTimings = field(default_factory=lambda: DDR5_TIMINGS)
    channels: int = 4
    ranks_per_channel: int = 2
    banks_per_rank: int = 16
    row_size_bytes: int = 8192
    dimm_capacity_bytes: int = 64 * GIB
    dimms_per_channel: int = 1
    # Peak per-channel bandwidth in bytes/ns (GB/s).  DDR5-4800 x64: 38.4 GB/s,
    # DDR4-3200 x64: 25.6 GB/s.
    channel_bandwidth_gbps: float = 38.4

    @property
    def capacity_bytes(self) -> int:
        """Total capacity of the device in bytes."""
        return self.dimm_capacity_bytes * self.dimms_per_channel * self.channels

    @property
    def total_banks(self) -> int:
        """Total number of banks across all channels and ranks."""
        return self.channels * self.ranks_per_channel * self.banks_per_rank

    @property
    def peak_bandwidth_gbps(self) -> float:
        """Aggregate peak bandwidth of the device in GB/s."""
        return self.channel_bandwidth_gbps * self.channels


DDR5_LOCAL_CONFIG = DRAMConfig(
    timings=DDR5_TIMINGS,
    channels=12,
    dimm_capacity_bytes=64 * GIB,
    channel_bandwidth_gbps=38.4,
)

DDR4_CXL_CONFIG = DRAMConfig(
    timings=DDR4_TIMINGS,
    channels=4,
    dimm_capacity_bytes=64 * GIB,
    channel_bandwidth_gbps=25.6,
)


@dataclass(frozen=True)
class CXLConfig:
    """CXL fabric parameters (Table II, "CXL Configuration")."""

    # Downstream port: PCIe 5.0 x16 -> ~64 GB/s.
    downstream_port_bandwidth_gbps: float = 64.0
    downstream_ports: int = 16
    upstream_port_bandwidth_gbps: float = 64.0
    # Extra access latency of CXL memory over local DRAM (TPP / Pond report
    # ~100 ns; §VI-A uses 100 ns).
    access_penalty_ns: float = 100.0
    # Fabric-switch SRAM buffer read/write latency range in ns (Table II).
    buffer_read_ns: Tuple[float, float] = (0.91, 4.19)
    buffer_write_ns: Tuple[float, float] = (0.91, 4.17)
    # Round-trip overhead attributed to CXL I/O port transfers and retimers:
    # ~37% of a 270 ns pooled access (§IV-A4).
    io_port_overhead_ns: float = 100.0
    retimer_ns: float = 15.0
    # Latency added per inter-switch hop in a scaled-out fabric (§VI-C4).
    inter_switch_hop_ns: float = 100.0
    # Flit/slot size of the CXL protocol (16 byte slots, 64 byte flits).
    slot_bytes: int = 16
    flit_bytes: int = 64


@dataclass(frozen=True)
class MLPConfig:
    """A simple multi-layer perceptron description (layer widths)."""

    layers: Tuple[int, ...]

    @property
    def num_layers(self) -> int:
        return len(self.layers)


@dataclass(frozen=True)
class ModelConfig:
    """A DLRM model configuration (Table I)."""

    name: str
    num_embeddings: int
    embedding_dim: int
    bottom_mlp: Tuple[int, ...]
    top_mlp: Tuple[int, ...]
    num_tables: int = 8
    dense_features: int = 13

    @property
    def embedding_row_bytes(self) -> int:
        """Size of one embedding row in bytes (FP32 elements)."""
        return self.embedding_dim * 4

    @property
    def table_bytes(self) -> int:
        """Size of one embedding table in bytes."""
        return self.num_embeddings * self.embedding_row_bytes

    @property
    def total_embedding_bytes(self) -> int:
        """Size of all embedding tables in bytes."""
        return self.table_bytes * self.num_tables


RMC1 = ModelConfig(
    name="RMC1",
    num_embeddings=16384,
    embedding_dim=64,
    bottom_mlp=(256, 128, 128),
    top_mlp=(128, 64, 1),
)

RMC2 = ModelConfig(
    name="RMC2",
    num_embeddings=131072,
    embedding_dim=64,
    bottom_mlp=(1024, 512, 128),
    top_mlp=(384, 192, 1),
)

RMC3 = ModelConfig(
    name="RMC3",
    num_embeddings=1048576,
    embedding_dim=64,
    bottom_mlp=(2048, 1024, 256),
    top_mlp=(512, 256, 1),
)

RMC4 = ModelConfig(
    name="RMC4",
    num_embeddings=1048576,
    embedding_dim=128,
    bottom_mlp=(2048, 2048, 256),
    top_mlp=(768, 384, 1),
)

MODEL_CONFIGS: Dict[str, ModelConfig] = {
    "RMC1": RMC1,
    "RMC2": RMC2,
    "RMC3": RMC3,
    "RMC4": RMC4,
}


def scaled_model(base: ModelConfig, scale: float) -> ModelConfig:
    """Return a copy of ``base`` whose embedding count is scaled by ``scale``.

    Used by tests and examples to run the RMC shapes at laptop scale while
    keeping the relative footprint between models.
    """
    return replace(base, num_embeddings=max(1, int(base.num_embeddings * scale)))


@dataclass(frozen=True)
class BufferConfig:
    """On-switch buffer configuration (§IV-A4, Fig 15)."""

    capacity_bytes: int = 512 * KIB
    policy: str = "htr"  # one of "htr", "lru", "fifo", "none"
    hit_latency_ns: float = 2.0
    # HTR re-ranking interval, expressed in number of accesses.
    htr_interval: int = 2048


@dataclass(frozen=True)
class PageManagementConfig:
    """Software page-management parameters (§IV-B)."""

    enabled: bool = True
    page_size_bytes: int = PAGE_SIZE_BYTES
    # Fraction of the working set allocated to CXL under the 4:1 interleave
    # policy that the characterization study found optimal (§III).
    cxl_interleave_fraction: float = 0.20
    # "migrate threshold": a CXL node is considered warm when its access
    # count exceeds the average of the other nodes by (1 - threshold).
    migrate_threshold: float = 0.35
    # "cold age threshold": a private hot page is reclassified as public cold
    # when its access frequency falls behind by more than this fraction.
    cold_age_threshold: float = 0.16
    # Page swap threshold used for the default evaluation configuration
    # ("page swap threshold 12%", §VI-C).
    page_swap_threshold: float = 0.12
    # Migration mechanism: "page_block" (OS page granular, blocks the whole
    # page) or "cacheline_block" (PIFS migration controller, §IV-B4).
    migration_mode: str = "cacheline_block"
    migration_epoch_accesses: int = 4096


@dataclass(frozen=True)
class PIFSConfig:
    """Hardware feature flags and parameters of the PIFS switch (§IV-A)."""

    process_core: bool = True
    out_of_order: bool = True
    on_switch_buffer: BufferConfig = field(default_factory=BufferConfig)
    # Accumulate Configuration Register capacity (concurrent sumtags).
    acr_capacity: int = 64
    # Number of swap registers shared by the accumulate logic (§IV-A5).
    swap_registers: int = 8
    # Process-core clock in GHz (1 GHz synthesis clock, §VI-D).
    core_clock_ghz: float = 1.0
    # Cycles per decoded instruction / per accumulated element.
    decode_cycles: int = 2
    repack_cycles: int = 1
    accumulate_cycles_per_element: int = 1
    swap_cycles: int = 1
    sram_spill_cycles: int = 2
    # Pipeline-drain penalty an in-order accumulate engine pays when the next
    # arriving row belongs to a different accumulation (sumtag).
    inorder_stall_cycles: int = 8


@dataclass(frozen=True)
class SystemConfig:
    """Top-level description of the simulated machine."""

    local_dram: DRAMConfig = field(default_factory=lambda: DDR5_LOCAL_CONFIG)
    cxl_dram: DRAMConfig = field(default_factory=lambda: DDR4_CXL_CONFIG)
    cxl: CXLConfig = field(default_factory=CXLConfig)
    pifs: PIFSConfig = field(default_factory=PIFSConfig)
    page_mgmt: PageManagementConfig = field(default_factory=PageManagementConfig)
    # Local DRAM capacity dedicated to embeddings (baselines use 128 GB).
    local_dram_capacity_bytes: int = 128 * GIB
    num_cxl_devices: int = 4
    num_fabric_switches: int = 1
    num_hosts: int = 1
    host_threads: int = 16
    # Latency of a local DRAM load observed by the host (ns), before bank
    # timing adjustments.
    local_dram_base_latency_ns: float = 90.0
    # Latency of a remote-socket DRAM load over the inter-socket interconnect.
    remote_socket_latency_ns: float = 140.0
    remote_socket_bandwidth_gbps: float = 76.8


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of an SLS workload run."""

    model: ModelConfig = field(default_factory=lambda: RMC1)
    batch_size: int = 8
    pooling_factor: int = 8  # average bag size (lookups per sample per table)
    num_batches: int = 4
    distribution: str = "meta"  # meta | zipfian | normal | uniform | random
    zipf_alpha: float = 1.05
    seed: int = 2024


def replace_page_mgmt(config: SystemConfig, **fields) -> SystemConfig:
    """Copy ``config`` with fields of its page-management block replaced.

    Usable with :func:`functools.partial` as a picklable config transform
    for parameter sweeps: ``partial(replace_page_mgmt, migrate_threshold=0.2)``.
    """
    return replace(config, page_mgmt=replace(config.page_mgmt, **fields))


def replace_buffer(config: SystemConfig, **fields) -> SystemConfig:
    """Copy ``config`` with fields of the on-switch buffer replaced."""
    buffer_cfg = replace(config.pifs.on_switch_buffer, **fields)
    return replace(config, pifs=replace(config.pifs, on_switch_buffer=buffer_cfg))


DEFAULT_SYSTEM = SystemConfig()
DEFAULT_WORKLOAD = WorkloadConfig()

__all__ = [
    "NS_PER_TICK",
    "CACHE_LINE_BYTES",
    "PAGE_SIZE_BYTES",
    "GIB",
    "MIB",
    "KIB",
    "DRAMTimings",
    "DDR4_TIMINGS",
    "DDR5_TIMINGS",
    "DRAMConfig",
    "DDR5_LOCAL_CONFIG",
    "DDR4_CXL_CONFIG",
    "CXLConfig",
    "MLPConfig",
    "ModelConfig",
    "RMC1",
    "RMC2",
    "RMC3",
    "RMC4",
    "MODEL_CONFIGS",
    "scaled_model",
    "BufferConfig",
    "PageManagementConfig",
    "PIFSConfig",
    "SystemConfig",
    "WorkloadConfig",
    "replace_page_mgmt",
    "replace_buffer",
    "DEFAULT_SYSTEM",
    "DEFAULT_WORKLOAD",
]
