"""Aggregated packet-tier observations (``SimResult.net``).

:class:`NetStats` is the JSON-serializable digest of one packet-fidelity
session: per-port packet/drop/retry counters, backpressure stall time,
queue-depth maxima and time-weighted means, and (optionally downsampled)
queue-depth timelines.  It rides on :class:`~repro.sls.result.SimResult`
and therefore flows through serve metrics, sweeps and the CLI unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional


@dataclass
class PortStats:
    """Digest of one port queue's observations."""

    name: str
    packets: int = 0
    bytes: int = 0
    drops: int = 0
    retries: int = 0
    backpressure_ns: float = 0.0
    max_depth: int = 0
    #: Time-weighted mean occupancy over the port's busy interval.
    mean_depth: float = 0.0
    #: Priority-class name → flow digest (packets/bytes/stalled_ns/by_op).
    flows: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: ``[time_ns, depth]`` breakpoints, downsampled to the configured cap.
    timeline: List[List[float]] = field(default_factory=list)

    @property
    def congested(self) -> bool:
        return self.drops > 0 or self.retries > 0 or self.backpressure_ns > 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "packets": self.packets,
            "bytes": self.bytes,
            "drops": self.drops,
            "retries": self.retries,
            "backpressure_ns": self.backpressure_ns,
            "max_depth": self.max_depth,
            "mean_depth": self.mean_depth,
            "flows": {label: dict(flow) for label, flow in self.flows.items()},
            "timeline": [list(point) for point in self.timeline],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PortStats":
        return cls(
            name=str(data["name"]),
            packets=int(data.get("packets", 0)),
            bytes=int(data.get("bytes", 0)),
            drops=int(data.get("drops", 0)),
            retries=int(data.get("retries", 0)),
            backpressure_ns=float(data.get("backpressure_ns", 0.0)),
            max_depth=int(data.get("max_depth", 0)),
            mean_depth=float(data.get("mean_depth", 0.0)),
            flows={str(k): dict(v) for k, v in dict(data.get("flows") or {}).items()},
            timeline=[list(point) for point in data.get("timeline") or []],
        )


@dataclass
class NetStats:
    """Whole-fabric digest of one packet-fidelity session."""

    seed: int = 0
    packets: int = 0
    drops: int = 0
    retries: int = 0
    backpressure_ns: float = 0.0
    max_queue_depth: int = 0
    ports: Dict[str, PortStats] = field(default_factory=dict)

    @property
    def congested(self) -> bool:
        """Whether any queueing effect fired that the analytic tier lacks."""
        return self.drops > 0 or self.retries > 0 or self.backpressure_ns > 0.0

    def congested_ports(self) -> List[str]:
        return sorted(name for name, port in self.ports.items() if port.congested)

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "packets": self.packets,
            "drops": self.drops,
            "retries": self.retries,
            "backpressure_ns": self.backpressure_ns,
            "max_queue_depth": self.max_queue_depth,
            "ports": {name: port.to_dict() for name, port in self.ports.items()},
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "NetStats":
        ports_data = dict(data.get("ports") or {})
        return cls(
            seed=int(data.get("seed", 0)),
            packets=int(data.get("packets", 0)),
            drops=int(data.get("drops", 0)),
            retries=int(data.get("retries", 0)),
            backpressure_ns=float(data.get("backpressure_ns", 0.0)),
            max_queue_depth=int(data.get("max_queue_depth", 0)),
            ports={
                str(name): port if isinstance(port, PortStats) else PortStats.from_dict(port)
                for name, port in ports_data.items()
            },
        )


__all__ = ["NetStats", "PortStats"]
