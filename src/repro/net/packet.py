"""Packet and flow abstractions over the CXL protocol's transaction types.

Every :meth:`CXLLink.transfer <repro.cxl.link.CXLLink.transfer>` call is one
packet.  The call sites tag transfers with the :class:`~repro.cxl.protocol.MemOpcode`
they carry (command flits, PIFS instruction slots, data responses); the
packet tier maps opcodes onto four priority classes so port queues can
reserve credits for latency-critical traffic:

========== =====================================================
CONTROL    request command flits (``MEM_RD``/``MEM_WR``/``MEM_INV``)
INSTRUCTION PIFS configuration and fetch slots, NMP command slots
DATA       row payloads and responses (``MEM_RD_DATA``)
BULK       inter-switch sub-sum forwarding and other background bulk
========== =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Optional, Union

from repro.cxl.protocol import MemOpcode


class Priority(IntEnum):
    """Packet priority class; lower values are more latency-critical."""

    CONTROL = 0
    INSTRUCTION = 1
    DATA = 2
    BULK = 3


#: Opcode → priority class used when a transfer is tagged with its opcode.
PRIORITY_OF_OPCODE: Dict[MemOpcode, Priority] = {
    MemOpcode.MEM_RD: Priority.CONTROL,
    MemOpcode.MEM_WR: Priority.CONTROL,
    MemOpcode.MEM_INV: Priority.CONTROL,
    MemOpcode.PIFS_CONFIG: Priority.INSTRUCTION,
    MemOpcode.PIFS_DATA_FETCH: Priority.INSTRUCTION,
    MemOpcode.MEM_RD_DATA: Priority.DATA,
}


def priority_of_opcode(op: Optional[Union[MemOpcode, Priority]]) -> Priority:
    """The priority class of a transfer tagged ``op``.

    ``op`` may be a :class:`MemOpcode` (mapped through
    :data:`PRIORITY_OF_OPCODE`), an explicit :class:`Priority` (used where no
    single opcode applies, e.g. inter-switch sub-sum forwarding is ``BULK``),
    or ``None`` — untagged transfers default to ``DATA``.
    """
    if op is None:
        return Priority.DATA
    if isinstance(op, Priority):
        return op
    return PRIORITY_OF_OPCODE.get(MemOpcode(op), Priority.DATA)


def op_label(op: Optional[Union[MemOpcode, Priority]]) -> str:
    """Stable string label for a transfer tag (flow accounting keys)."""
    if op is None:
        return "untagged"
    if isinstance(op, Priority):
        return op.name
    return MemOpcode(op).name


#: Distinct transfer tags are few (a handful of opcodes + priorities); the
#: hot paths classify each packet through this cache instead of re-running
#: the enum machinery per transfer.
_TAG_CACHE: Dict[object, "tuple[Priority, str]"] = {}


def classify(op: Optional[Union[MemOpcode, Priority]]) -> "tuple[Priority, str]":
    """``(priority, label)`` of a transfer tag, cached per distinct tag."""
    try:
        return _TAG_CACHE[op]
    except KeyError:
        tag = (priority_of_opcode(op), op_label(op))
        _TAG_CACHE[op] = tag
        return tag


@dataclass(frozen=True)
class Packet:
    """One transfer as observed by the packet tier.

    ``issued_ns`` is when the producer asked for the transfer,
    ``admitted_ns`` is when the port queue granted a buffer credit
    (equal to ``issued_ns`` in the uncongested limit), and
    ``delivered_ns`` is when the payload cleared the link.
    """

    port: str
    op: Optional[MemOpcode]
    priority: Priority
    size_bytes: int
    issued_ns: float
    admitted_ns: float
    delivered_ns: float

    @property
    def stalled_ns(self) -> float:
        """Admission stall from backpressure or drop/retry."""
        return self.admitted_ns - self.issued_ns

    @property
    def latency_ns(self) -> float:
        return self.delivered_ns - self.issued_ns


@dataclass
class Flow:
    """Aggregate of all packets of one priority class through one port."""

    port: str
    priority: Priority
    packets: int = 0
    bytes: int = 0
    stalled_ns: float = 0.0
    by_op: Dict[str, int] = field(default_factory=dict)

    def record(self, packet_bytes: int, stalled_ns: float, op_key: str) -> None:
        self.packets += 1
        self.bytes += int(packet_bytes)
        self.stalled_ns += float(stalled_ns)
        self.by_op[op_key] = self.by_op.get(op_key, 0) + 1

    def to_dict(self) -> Dict[str, object]:
        return {
            "port": self.port,
            "priority": self.priority.name,
            "packets": self.packets,
            "bytes": self.bytes,
            "stalled_ns": self.stalled_ns,
            "by_op": dict(self.by_op),
        }


__all__ = [
    "Flow",
    "PRIORITY_OF_OPCODE",
    "Packet",
    "Priority",
    "classify",
    "op_label",
    "priority_of_opcode",
]
