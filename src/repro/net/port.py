"""Per-port packet queues with finite buffers and credit-based backpressure.

A :class:`PortQueue` sits in front of one fabric port (a ``CXLLink`` or the
inter-switch hop channel) and models its ingress buffer as a pool of
``capacity`` credits.  A packet holds a credit from admission until it is
delivered at the far end; when no credit is free the queue either stalls the
sender until one frees up (credit-based backpressure, the CXL default) or
drops the packet and retries after ``retry_ns`` (drop mode).

Crucially the queue never re-prices a transfer: it only perturbs the
*admission time*, and the analytic arithmetic in
:meth:`CXLLink.transfer <repro.cxl.link.CXLLink.transfer>` runs unchanged on
the admitted timestamp.  With ``capacity == 0`` (unbounded) admission is the
identity function, which is what makes the packet tier bit-identical to the
analytic tier in the uncongested limit — by construction, not by duplicated
arithmetic.

Two queueing policies:

* ``"fifo"`` — every priority class contends for the same credit pool.
* ``"priority"`` — credits are reserved for latency-critical classes:
  packets at or above :class:`~repro.net.packet.Priority.INSTRUCTION`
  urgency (CONTROL and INSTRUCTION) bypass the capacity check, so
  instruction streams never stall behind NMP data bursts.
"""

from __future__ import annotations

from bisect import bisect_right, insort
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.cxl.protocol import MemOpcode
from repro.net.packet import Flow, Packet, Priority, classify, priority_of_opcode

POLICIES = ("fifo", "priority")

#: Record layout: (issued_ns, admitted_ns, delivered_ns, bytes, op_tag)
_PacketRecord = Tuple[float, float, float, int, object]


class PortQueue:
    """Finite ingress buffer in front of one fabric port."""

    def __init__(
        self,
        name: str,
        *,
        capacity: int = 0,
        policy: str = "fifo",
        drop: bool = False,
        retry_ns: float = 500.0,
        max_retries: int = 64,
        reserve_priority: Priority = Priority.INSTRUCTION,
    ) -> None:
        if capacity < 0:
            raise ValueError("capacity must be >= 0 (0 means unbounded)")
        if policy not in POLICIES:
            raise ValueError(f"unknown queue policy {policy!r}; expected one of {POLICIES}")
        if retry_ns <= 0:
            raise ValueError("retry_ns must be positive")
        if max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        self.name = name
        self._capacity = int(capacity)
        self._policy = policy
        self._drop = bool(drop)
        self._retry_ns = float(retry_ns)
        self._max_retries = int(max_retries)
        self._reserve_priority = Priority(reserve_priority)
        #: Sorted delivery times of admitted packets (buffer-credit ledger).
        #: Only maintained when the buffer is finite — an unbounded queue
        #: never consults occupancy, keeping the uncongested hot path cheap.
        self._deliveries: List[float] = []
        self._records: List[_PacketRecord] = []
        self._drops = 0
        self._retries = 0
        self._backpressure_ns = 0.0
        #: Lazily aggregated from the records (invalidated by packet count)
        #: so the per-transfer hot path stays two list appends.
        self._flows_cache: Optional[Dict[Priority, Flow]] = None
        self._flows_count = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def policy(self) -> str:
        return self._policy

    @property
    def drop_mode(self) -> bool:
        return self._drop

    @property
    def packets(self) -> int:
        return len(self._records)

    @property
    def drops(self) -> int:
        return self._drops

    @property
    def retries(self) -> int:
        return self._retries

    @property
    def backpressure_ns(self) -> float:
        return self._backpressure_ns

    @property
    def flows(self) -> Dict[Priority, Flow]:
        """Per-priority-class aggregates, computed lazily from the records."""
        if self._flows_cache is None or self._flows_count != len(self._records):
            flows: Dict[Priority, Flow] = {}
            for issued, admitted, _delivered, size, op in self._records:
                priority, label = classify(op)
                flow = flows.get(priority)
                if flow is None:
                    flow = flows[priority] = Flow(port=self.name, priority=priority)
                flow.packets += 1
                flow.bytes += size
                stalled = admitted - issued
                if stalled > 0.0:
                    flow.stalled_ns += stalled
                flow.by_op[label] = flow.by_op.get(label, 0) + 1
            self._flows_cache = flows
            self._flows_count = len(self._records)
        return dict(self._flows_cache)

    def occupancy(self, time_ns: float) -> int:
        """Buffer credits held at ``time_ns`` (finite-capacity queues only)."""
        deliveries = self._deliveries
        return len(deliveries) - bisect_right(deliveries, time_ns)

    def iter_packets(self) -> Iterator[Packet]:
        """Materialize the observed packets (diagnostics and tests)."""
        for issued, admitted, delivered, size, op in self._records:
            yield Packet(
                port=self.name,
                op=op if isinstance(op, MemOpcode) else None,
                priority=priority_of_opcode(op),
                size_bytes=size,
                issued_ns=issued,
                admitted_ns=admitted,
                delivered_ns=delivered,
            )

    def events(self) -> Iterator[Tuple[float, int, int]]:
        """(time_ns, delta, key) occupancy events for the EventCore replay."""
        for key, (_issued, admitted, delivered, _size, _op) in enumerate(self._records):
            yield admitted, +1, 2 * key
            yield delivered, -1, 2 * key + 1

    # ------------------------------------------------------------------
    # Hot path: bracket one transfer
    # ------------------------------------------------------------------
    def admit(
        self,
        start_ns: float,
        op: Optional[Union[MemOpcode, Priority]] = None,
        priority: Optional[Priority] = None,
    ) -> float:
        """Grant a buffer credit; returns the admission timestamp.

        Identity when the buffer is unbounded or a credit is free at
        ``start_ns``.  Otherwise backpressure stalls the sender until the
        oldest in-flight packets deliver, or drop mode discards and retries
        every ``retry_ns`` (forcing admission after ``max_retries`` so
        sessions always make progress).
        """
        capacity = self._capacity
        if capacity <= 0:
            return start_ns
        if priority is None:
            priority = classify(op)[0]
        if self._policy == "priority" and priority <= self._reserve_priority:
            # Reserved credits: latency-critical classes never wait.
            return start_ns
        deliveries = self._deliveries
        held = len(deliveries) - bisect_right(deliveries, start_ns)
        if held < capacity:
            return start_ns
        if self._drop:
            admit_ns = start_ns
            for _attempt in range(self._max_retries):
                self._drops += 1
                self._retries += 1
                admit_ns += self._retry_ns
                if len(deliveries) - bisect_right(deliveries, admit_ns) < capacity:
                    break
            return admit_ns
        # Credit backpressure: the earliest time a slot frees up is the
        # delivery of the (capacity)-th newest in-flight packet.
        admit_ns = deliveries[len(deliveries) - capacity]
        return admit_ns if admit_ns > start_ns else start_ns

    def depart(
        self,
        issued_ns: float,
        admitted_ns: float,
        delivered_ns: float,
        size_bytes: int,
        op: Optional[Union[MemOpcode, Priority]] = None,
    ) -> None:
        """Record a completed transfer (credit returned at ``delivered_ns``)."""
        if self._capacity > 0:
            insort(self._deliveries, delivered_ns)
        self._records.append((issued_ns, admitted_ns, delivered_ns, int(size_bytes), op))
        stalled = admitted_ns - issued_ns
        if stalled > 0.0:
            self._backpressure_ns += stalled


__all__ = ["POLICIES", "PortQueue"]
