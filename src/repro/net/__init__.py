"""Packet-level congestion tier (``repro.net``).

The analytic tier prices every transfer with closed-form arithmetic on
:class:`~repro.cxl.link.CXLLink`; it can scale bandwidth but cannot show
queueing collapse, incast at the PIFS switch, or priority inversion between
instruction streams and NMP bursts.  This package adds the missing layer:

* :class:`EventCore` — a deterministic priority-queue event core with seeded
  tie-breaking, the global-time ordering authority for the tier.
* :class:`Packet` / :class:`Flow` / :class:`Priority` — per-transfer records
  carrying the CXL protocol's transaction opcodes and priority classes.
* :class:`PortQueue` — a finite packet buffer in front of one fabric port,
  with FIFO or priority-reserved credits, credit-based backpressure and an
  optional drop/retry mode.
* :class:`PacketFabric` — attaches queues to every link of a prepared
  system and folds their observations into :class:`NetStats`.

The tier is engaged with ``fidelity="packet"`` and is *bit-identical* to the
analytic tier in the uncongested limit: queues only perturb the admission
time of a transfer, and an unbounded queue admits every packet immediately,
leaving the analytic arithmetic untouched.
"""

from repro.net.core import Event, EventCore, seeded_rank
from repro.net.fabric import PacketConfig, PacketFabric
from repro.net.packet import Flow, Packet, Priority, priority_of_opcode
from repro.net.port import PortQueue
from repro.net.stats import NetStats, PortStats

__all__ = [
    "Event",
    "EventCore",
    "Flow",
    "NetStats",
    "Packet",
    "PacketConfig",
    "PacketFabric",
    "PortQueue",
    "PortStats",
    "Priority",
    "priority_of_opcode",
    "seeded_rank",
]
