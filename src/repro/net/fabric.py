"""Fabric-wide attachment of the packet tier.

:class:`PacketFabric` walks a prepared system's fabric — every host
upstream link, every device downstream link, and the inter-switch hop
channel when a multi-switch coordinator exists — and installs a
:class:`~repro.net.port.PortQueue` on each.  The queues observe (and, under
load, perturb) every transfer; :meth:`PacketFabric.finalize` replays their
admission/delivery events through one seeded :class:`~repro.net.core.EventCore`
to produce globally time-ordered queue-depth timelines and the
:class:`~repro.net.stats.NetStats` digest.

Attachment happens in ``begin_session`` *after* session mutators run, so
fault injection (``CXLLink.degrade``, ``FabricTopology.degrade_hops``)
composes with the packet tier: a degraded link serializes slower, holds
buffer credits longer, and therefore backs up its queue — the degradation
changes occupancy, not just the analytic price.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Mapping, Optional

from repro.net.core import EventCore
from repro.net.packet import Priority
from repro.net.port import POLICIES, PortQueue
from repro.net.stats import NetStats, PortStats
from repro.obs.log import warn_once


@dataclass(frozen=True)
class PacketConfig:
    """Knobs of the packet tier (JSON round-trippable, hashable).

    The default configuration — unbounded buffers — is the uncongested
    limit: every queue admits instantly and the tier is bit-identical to
    the analytic tier while still recording per-port timelines.
    """

    #: Buffer credits per port; 0 means unbounded (uncongested limit).
    capacity: int = 0
    #: ``"fifo"`` (all classes contend) or ``"priority"`` (credits reserved
    #: for CONTROL/INSTRUCTION traffic).
    policy: str = "fifo"
    #: Drop-and-retry instead of credit backpressure when the buffer is full.
    drop: bool = False
    #: Retry interval after a drop.
    retry_ns: float = 500.0
    #: Forced-admission bound so drop mode always makes progress.
    max_retries: int = 64
    #: Credits on the inter-switch hop channel; ``None`` inherits ``capacity``.
    hop_capacity: Optional[int] = None
    #: EventCore seed for tie-breaking simultaneous events.
    seed: int = 0
    #: Per-port queue-depth timeline cap (breakpoints); 0 disables timelines.
    timeline_points: int = 256

    def __post_init__(self) -> None:
        if self.capacity < 0:
            raise ValueError("capacity must be >= 0")
        if self.policy not in POLICIES:
            raise ValueError(f"unknown queue policy {self.policy!r}; expected one of {POLICIES}")
        if self.retry_ns <= 0:
            raise ValueError("retry_ns must be positive")
        if self.max_retries < 1:
            raise ValueError("max_retries must be >= 1")
        if self.hop_capacity is not None and self.hop_capacity < 0:
            raise ValueError("hop_capacity must be >= 0")
        if self.timeline_points < 0:
            raise ValueError("timeline_points must be >= 0")

    @property
    def effective_hop_capacity(self) -> int:
        return self.capacity if self.hop_capacity is None else self.hop_capacity

    def to_dict(self) -> Dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PacketConfig":
        known = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in data.items() if key in known})


class PacketFabric:
    """Port queues over every link of one prepared system."""

    #: Name of the inter-switch hop channel's queue.
    HOP_CHANNEL = "fabric.hop"

    def __init__(self, config: Optional[PacketConfig] = None) -> None:
        self._config = config or PacketConfig()
        self._queues: List[PortQueue] = []
        self._links: List[object] = []
        self._coordinator: Optional[object] = None

    @property
    def config(self) -> PacketConfig:
        return self._config

    @property
    def queues(self) -> List[PortQueue]:
        return list(self._queues)

    def queue(self, name: str) -> PortQueue:
        for q in self._queues:
            if q.name == name:
                return q
        raise KeyError(f"no port queue named {name!r}")

    def _make_queue(self, name: str, capacity: int) -> PortQueue:
        cfg = self._config
        return PortQueue(
            name,
            capacity=capacity,
            policy=cfg.policy,
            drop=cfg.drop,
            retry_ns=cfg.retry_ns,
            max_retries=cfg.max_retries,
        )

    def attach(self, system: object) -> None:
        """Install queues on every port of ``system``'s prepared fabric."""
        backends = getattr(system, "backends", None)
        if backends is None:
            raise RuntimeError(
                "PacketFabric.attach requires a prepared system "
                "(begin_session builds the fabric first)"
            )
        cfg = self._config
        if cfg.capacity > 0 or cfg.effective_hop_capacity > 0 or cfg.drop:
            warn_once(
                "packet.finite-buffers",
                "finite packet buffers (capacity=%s, hop_capacity=%s, drop=%s) "
                "perturb admission times; results will diverge from the "
                "analytic tier, so do not assert bit-identity against it",
                cfg.capacity, cfg.effective_hop_capacity, cfg.drop,
            )
        links = [port.link for port in backends.host_ports.values()]
        links.extend(device.link for device in backends.devices)
        for link in links:
            queue = self._make_queue(link.name, cfg.capacity)
            link.attach_port(queue)
            self._queues.append(queue)
            self._links.append(link)
        coordinator = getattr(system, "coordinator", None)
        if coordinator is not None and hasattr(coordinator, "attach_hop_port"):
            hop_queue = self._make_queue(self.HOP_CHANNEL, cfg.effective_hop_capacity)
            coordinator.attach_hop_port(
                hop_queue, bytes_hint=getattr(backends, "row_bytes", 0)
            )
            self._queues.append(hop_queue)
            self._coordinator = coordinator

    def detach(self) -> None:
        """Remove every installed queue (leaves observations intact)."""
        for link in self._links:
            link.attach_port(None)
        self._links = []
        if self._coordinator is not None:
            self._coordinator.attach_hop_port(None)
            self._coordinator = None

    # ------------------------------------------------------------------
    # Digest
    # ------------------------------------------------------------------
    def finalize(self) -> NetStats:
        """Fold every queue's observations into a :class:`NetStats`.

        Idempotent — the queues' records are replayed, not consumed.  The
        replay runs through one seeded :class:`EventCore` so simultaneous
        events across ports resolve in one deterministic global order
        (deliveries drain queues before same-nanosecond admissions refill
        them).
        """
        cfg = self._config
        stats = NetStats(seed=cfg.seed)
        core = EventCore(seed=cfg.seed)
        indexed = list(enumerate(self._queues))
        times: List[float] = []
        prios: List[int] = []
        keys: List[int] = []
        ports: List[int] = []
        deltas: List[int] = []
        key_base = 0
        for index, queue in indexed:
            for time_ns, delta, key in queue.events():
                times.append(time_ns)
                # Deliveries (delta < 0) outrank admissions at a tie.
                prios.append(0 if delta < 0 else 1)
                keys.append(key_base + key)
                ports.append(index)
                deltas.append(delta)
            key_base += 2 * queue.packets
        depths = [0] * len(self._queues)
        trails: List[List[List[float]]] = [[] for _ in self._queues]
        weighted = [0.0] * len(self._queues)
        last_time = [None] * len(self._queues)
        first_time = [None] * len(self._queues)
        maxima = [0] * len(self._queues)
        for position in core.ordered(times, prios, keys):
            index = ports[position]
            delta = deltas[position]
            time_ns = times[position]
            if last_time[index] is not None:
                weighted[index] += depths[index] * (time_ns - last_time[index])
            else:
                first_time[index] = time_ns
            last_time[index] = time_ns
            depths[index] += delta
            if depths[index] > maxima[index]:
                maxima[index] = depths[index]
            trail = trails[index]
            if trail and trail[-1][0] == time_ns:
                trail[-1][1] = depths[index]
            else:
                trail.append([time_ns, depths[index]])
        for index, queue in indexed:
            span = 0.0
            if first_time[index] is not None and last_time[index] is not None:
                span = last_time[index] - first_time[index]
            mean_depth = weighted[index] / span if span > 0.0 else 0.0
            port = PortStats(
                name=queue.name,
                packets=queue.packets,
                bytes=sum(flow.bytes for flow in queue.flows.values()),
                drops=queue.drops,
                retries=queue.retries,
                backpressure_ns=queue.backpressure_ns,
                max_depth=maxima[index],
                mean_depth=mean_depth,
                flows={
                    Priority(priority).name: flow.to_dict()
                    for priority, flow in sorted(queue.flows.items())
                },
                timeline=_downsample(trails[index], cfg.timeline_points),
            )
            stats.ports[port.name] = port
            stats.packets += port.packets
            stats.drops += port.drops
            stats.retries += port.retries
            stats.backpressure_ns += port.backpressure_ns
            if port.max_depth > stats.max_queue_depth:
                stats.max_queue_depth = port.max_depth
        return stats


def _downsample(trail: List[List[float]], cap: int) -> List[List[float]]:
    """Thin a breakpoint trail to at most ``cap`` points (keep endpoints)."""
    if cap <= 0:
        return []
    if len(trail) <= cap:
        return [list(point) for point in trail]
    stride = (len(trail) - 1) / (cap - 1)
    picked = [trail[round(i * stride)] for i in range(cap - 1)]
    picked.append(trail[-1])
    return [list(point) for point in picked]


__all__ = ["PacketConfig", "PacketFabric"]
