"""Deterministic priority-queue event core.

The packet tier needs one authority for "what happened first" when packets
touch the fabric at the same nanosecond — per-port queue-depth timelines are
replayed through it, and any future packet-level mechanism (retransmission
timers, credit returns) schedules here.  Determinism is non-negotiable: the
equivalence suite pins packet-tier results bit-identically against the
analytic tier, so event order must be a pure function of the schedule and
the seed, never of heap insertion order or hash randomization.

Ties at the same ``(time_ns, priority)`` are broken by a seeded avalanche
hash of the event key (:func:`seeded_rank`): two runs with the same seed
order simultaneous events identically regardless of how the schedule calls
interleave, while different seeds explore different-but-reproducible
orderings of genuinely concurrent events.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15


def seeded_rank(seed: int, key: int) -> int:
    """A 64-bit rank for ``key`` under ``seed`` (splitmix64 finalizer).

    Used to break ties between simultaneous events: the rank depends only on
    ``(seed, key)``, so the resulting order is stable across runs and across
    schedule-call interleavings, and changing the seed reshuffles *only*
    simultaneous events.
    """
    z = (int(key) + _GOLDEN * (int(seed) + 1)) & _MASK
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK
    return (z ^ (z >> 31)) & _MASK


@dataclass(frozen=True)
class Event:
    """One scheduled occurrence.

    ``priority`` orders events at the same timestamp *before* the seeded
    tie-break (lower first) — e.g. departures drain a queue before the
    arrivals of the same nanosecond refill it.  ``key`` identifies the event
    for seeded tie-breaking; keys should be unique among simultaneous events
    of the same priority (duplicates fall back to schedule order).
    """

    time_ns: float
    priority: int = 0
    key: int = 0
    payload: object = None


class EventCore:
    """A deterministic event queue with seeded tie-breaking."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._heap: List[Tuple[float, int, int, int, Event]] = []
        self._sequence = 0
        self._now = 0.0

    @property
    def seed(self) -> int:
        return self._seed

    @property
    def now(self) -> float:
        """Timestamp of the most recently popped event."""
        return self._now

    @property
    def pending(self) -> int:
        return len(self._heap)

    def schedule(
        self,
        time_ns: float,
        *,
        priority: int = 0,
        key: Optional[int] = None,
        payload: object = None,
    ) -> Event:
        """Schedule an event; returns the stored :class:`Event`."""
        time_ns = float(time_ns)
        if time_ns < self._now:
            raise ValueError(
                f"cannot schedule at {time_ns} ns: core time already at {self._now} ns"
            )
        if key is None:
            key = self._sequence
        event = Event(time_ns=time_ns, priority=int(priority), key=int(key), payload=payload)
        heapq.heappush(
            self._heap,
            (event.time_ns, event.priority, seeded_rank(self._seed, event.key), self._sequence, event),
        )
        self._sequence += 1
        return event

    def pop(self) -> Event:
        """Remove and return the next event; advances :attr:`now`."""
        if not self._heap:
            raise IndexError("pop from an empty EventCore")
        time_ns, _priority, _rank, _sequence, event = heapq.heappop(self._heap)
        self._now = time_ns
        return event

    def drain(self) -> Iterator[Event]:
        """Pop every pending event in deterministic order."""
        while self._heap:
            yield self.pop()

    def ordered(self, times, priorities, keys):
        """Bulk ordering: index array sorting ``(time, priority, rank, arrival)``.

        The vectorized twin of :meth:`schedule` + :meth:`drain` for replay
        paths that present tens of thousands of events at once (the packet
        fabric's finalize): the seeded ranks are computed with one numpy
        splitmix64 pass and the order comes from one stable ``lexsort``, so
        the result is exactly the order the heap would produce — arrival
        index breaks full ties because lexsort is stable, mirroring the
        heap's sequence number.
        """
        import numpy as np

        keys64 = np.asarray(keys, dtype=np.uint64)
        z = keys64 + np.uint64((_GOLDEN * (self._seed + 1)) & _MASK)
        z = (z ^ (z >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)
        z = (z ^ (z >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)
        ranks = z ^ (z >> np.uint64(31))
        return np.lexsort((
            ranks,
            np.asarray(priorities, dtype=np.int64),
            np.asarray(times, dtype=np.float64),
        ))


__all__ = ["Event", "EventCore", "seeded_rank"]
