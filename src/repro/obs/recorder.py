"""Recorders: the zero-overhead-when-off observability signal plane.

Every instrumented component holds a recorder (``SLSSystem.obs``, the serve
loop, the sweep engine) and emits through the same small surface:

* **spans** — named intervals on a track (``span``/``instant``), stamped in
  *simulated* nanoseconds (session, request, batch, maintenance pass,
  packet backpressure);
* **counters/gauges** — flat monotonic counters (``count``/``add``) plus
  time-series counter samples (``counter``) such as queue depths;
* **self-profiling** — *wall-clock* phases (``phase``) attributing real
  time to simulator stages (workload build, engine execute, serve
  bookkeeping), so BENCH regressions become diagnosable.

Two implementations share the surface:

* :class:`NullRecorder` — the default.  ``enabled`` is ``False`` and every
  method is a no-op, so hot paths pay exactly one attribute check
  (``if obs.enabled:``) and skip the call entirely.
* :class:`TraceRecorder` — buffers events in memory (bounded by
  ``max_events``; overflow is counted, never raised) and exports them as
  Chrome/Perfetto ``trace_event`` JSON (:meth:`TraceRecorder.to_chrome_trace`)
  and as flat metrics JSON/CSV.

Recording is strictly observational: recorders receive timestamps that the
simulation already computed, never produce any, so results are bit-identical
with recording off and on (pinned by ``tests/test_obs.py``).

The exported trace keeps the two time domains apart: simulated-time tracks
live under one Perfetto *process* ("simulated time"), wall-clock phases
under another ("wall clock"), and spans merged from sweep workers
(:meth:`TraceRecorder.merge`) each under a process named after their worker
— one timeline, unambiguous units.
"""

from __future__ import annotations

import csv
import json
import time
from typing import Any, Dict, Iterable, List, Mapping, Optional, Tuple


class _NullContext:
    """Reusable no-op context manager (what ``NullRecorder.phase`` returns)."""

    __slots__ = ()

    def __enter__(self) -> "_NullContext":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_CONTEXT = _NullContext()

#: Process keys of the two time domains (see module docstring).
SIM_DOMAIN = "sim"
WALL_DOMAIN = "wall"


class NullRecorder:
    """The default recorder: recording disabled, every method a no-op.

    Instrumented hot paths gate on ``obs.enabled`` — a single attribute
    check — and never call into the recorder when it is this class.  A
    process-wide singleton (:data:`NULL_RECORDER`) is shared by every
    un-observed system, so construction is free too.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, start_ns: float, end_ns: float, **kwargs: Any) -> None:
        """Ignore a simulated-time span."""

    def instant(self, name: str, ts_ns: float, **kwargs: Any) -> None:
        """Ignore an instant event."""

    def counter(self, name: str, ts_ns: float, value: float, **kwargs: Any) -> None:
        """Ignore a counter sample."""

    def count(self, name: str, delta: float = 1) -> None:
        """Ignore a flat-counter increment."""

    def add(self, name: str, value: float) -> None:
        """Alias of :meth:`count` with an explicit amount; ignored."""

    def phase(self, name: str) -> _NullContext:
        """Return a shared no-op context manager (no wall-clock reads)."""
        return _NULL_CONTEXT

    def merge(self, payload: Optional[Mapping[str, Any]], process: str = "worker") -> None:
        """Ignore a worker snapshot."""


#: Shared process-wide :class:`NullRecorder` (the ``SLSSystem.obs`` default).
NULL_RECORDER = NullRecorder()


class _Phase:
    """Context manager recording one wall-clock phase on a TraceRecorder."""

    __slots__ = ("_recorder", "_name", "_start")

    def __init__(self, recorder: "TraceRecorder", name: str) -> None:
        self._recorder = recorder
        self._name = name

    def __enter__(self) -> "_Phase":
        self._start = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        end = time.perf_counter_ns()
        self._recorder._record_phase(self._name, self._start, end)


class TraceRecorder:
    """In-memory trace/metrics recorder with Chrome ``trace_event`` export.

    Events are stored as flat tuples ``(process_key, ph, name, ts_ns,
    dur_or_value, track, cat)`` plus an optional args dict, capped at
    ``max_events`` (overflow increments :attr:`dropped` instead of growing
    without bound — a packet storm can emit one span per packet).  Flat
    counters live in a separate dict and are never capped.

    ``label`` names the trace (stored in the exported metadata);
    ``max_events`` bounds memory.
    """

    def __init__(self, label: str = "repro", max_events: int = 500_000) -> None:
        if max_events < 0:
            raise ValueError("max_events must be >= 0")
        self.label = label
        self.max_events = int(max_events)
        self.enabled = True
        self.dropped = 0
        self._events: List[Tuple[str, str, str, float, float, str, str, Optional[Dict[str, Any]]]] = []
        self._counters: Dict[str, float] = {}
        #: Wall-clock origin: phases are stored relative to recorder creation.
        self._wall_origin_ns = time.perf_counter_ns()

    # ------------------------------------------------------------------
    # Recording surface (shared with NullRecorder)
    # ------------------------------------------------------------------
    def _append(
        self,
        process: str,
        ph: str,
        name: str,
        ts_ns: float,
        dur_ns: float,
        track: str,
        cat: str,
        args: Optional[Dict[str, Any]],
    ) -> None:
        if len(self._events) >= self.max_events:
            self.dropped += 1
            return
        self._events.append((process, ph, name, ts_ns, dur_ns, track, cat, args))

    def span(
        self,
        name: str,
        start_ns: float,
        end_ns: float,
        *,
        track: str = "engine",
        cat: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a simulated-time interval ``[start_ns, end_ns]`` on ``track``."""
        self._append(SIM_DOMAIN, "X", name, start_ns, max(0.0, end_ns - start_ns), track, cat, args)

    def instant(
        self,
        name: str,
        ts_ns: float,
        *,
        track: str = "engine",
        cat: str = "sim",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        """Record a zero-duration marker at simulated time ``ts_ns``."""
        self._append(SIM_DOMAIN, "i", name, ts_ns, 0.0, track, cat, args)

    def counter(
        self,
        name: str,
        ts_ns: float,
        value: float,
        *,
        track: Optional[str] = None,
    ) -> None:
        """Record one sample of the time-series counter ``name`` (a gauge)."""
        self._append(SIM_DOMAIN, "C", name, ts_ns, float(value), track or name, "counter", None)

    def count(self, name: str, delta: float = 1) -> None:
        """Increment the flat counter ``name`` by ``delta``."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def add(self, name: str, value: float) -> None:
        """Alias of :meth:`count` with an explicit amount."""
        self._counters[name] = self._counters.get(name, 0) + value

    def phase(self, name: str) -> _Phase:
        """Context manager attributing the enclosed *wall-clock* time to ``name``."""
        return _Phase(self, name)

    def _record_phase(self, name: str, start_wall_ns: int, end_wall_ns: int) -> None:
        start = float(start_wall_ns - self._wall_origin_ns)
        end = float(end_wall_ns - self._wall_origin_ns)
        self._append(WALL_DOMAIN, "X", name, start, max(0.0, end - start), "phases", "phase", None)
        self.add(f"phase.{name}_ms", (end - start) / 1e6)

    # ------------------------------------------------------------------
    # Worker merging
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A picklable dump of this recorder (what sweep workers ship back)."""
        return {
            "label": self.label,
            "events": [list(event[:7]) + [event[7]] for event in self._events],
            "counters": dict(self._counters),
            "dropped": self.dropped,
        }

    def merge(self, payload: Optional[Mapping[str, Any]], process: str = "worker") -> None:
        """Fold a worker's :meth:`snapshot` into this recorder.

        Merged events keep their own timeline under a Perfetto process named
        ``process`` (the sweep engine passes ``worker-<pid>``), so parallel
        chunk execution reads as parallel tracks.  Flat counters are summed
        into this recorder's.
        """
        if not payload:
            return
        for event in payload.get("events", ()):
            domain, ph, name, ts_ns, dur_ns, track, cat = event[:7]
            args = event[7] if len(event) > 7 else None
            key = process if domain == WALL_DOMAIN else f"{process}:{SIM_DOMAIN}"
            self._append(key, ph, name, ts_ns, dur_ns, track, cat, args)
        for name, value in (payload.get("counters") or {}).items():
            self.add(name, value)
        self.dropped += int(payload.get("dropped", 0))

    # ------------------------------------------------------------------
    # Introspection / export
    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop every buffered event and counter (the label stays).

        Lets one recorder observe several sessions in turn — e.g. repeated
        timing runs — without the earlier session's events accumulating.
        """
        self.dropped = 0
        self._events.clear()
        self._counters.clear()
        self._wall_origin_ns = time.perf_counter_ns()

    def __len__(self) -> int:
        return len(self._events)

    def events(self) -> List[Tuple[str, str, str, float, float, str, str, Optional[Dict[str, Any]]]]:
        """The raw buffered events (tests and diagnostics)."""
        return list(self._events)

    def metrics(self) -> Dict[str, float]:
        """The flat counters, sorted by name."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    def report(self) -> Dict[str, Any]:
        """JSON-safe digest carried on ``RunResult.obs``: counts + metrics."""
        return {
            "label": self.label,
            "events": len(self._events),
            "dropped": self.dropped,
            "metrics": self.metrics(),
        }

    def to_chrome_trace(self) -> Dict[str, Any]:
        """Export every buffered event as Chrome/Perfetto ``trace_event`` JSON.

        Timestamps are microseconds (the format's unit): simulated
        nanoseconds and wall-clock nanoseconds both divide by 1e3, but they
        land in different *processes* so the units never mix on one track.
        Load the written file at https://ui.perfetto.dev or
        ``chrome://tracing``.
        """
        pids: Dict[str, int] = {}
        tids: Dict[Tuple[str, str], int] = {}
        trace_events: List[Dict[str, Any]] = []

        def pid_of(process: str) -> int:
            pid = pids.get(process)
            if pid is None:
                pid = pids[process] = len(pids) + 1
                display = {
                    SIM_DOMAIN: "simulated time",
                    WALL_DOMAIN: "wall clock",
                }.get(process, process)
                trace_events.append({
                    "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
                    "args": {"name": display},
                })
            return pid

        def tid_of(process: str, track: str) -> int:
            key = (process, track)
            tid = tids.get(key)
            if tid is None:
                tid = tids[key] = sum(1 for p, _ in tids if p == process) + 1
                trace_events.append({
                    "ph": "M", "pid": pid_of(process), "tid": tid,
                    "name": "thread_name", "args": {"name": track},
                })
            return tid

        for process, ph, name, ts_ns, dur_ns, track, cat, args in self._events:
            event: Dict[str, Any] = {
                "ph": ph,
                "name": name,
                "cat": cat,
                "pid": pid_of(process),
                "tid": tid_of(process, track),
                "ts": ts_ns / 1e3,
            }
            if ph == "X":
                event["dur"] = dur_ns / 1e3
                if args:
                    event["args"] = args
            elif ph == "C":
                event["args"] = {"value": dur_ns}
            else:  # instant
                event["s"] = "t"
                if args:
                    event["args"] = args
            trace_events.append(event)
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ns",
            "otherData": {
                "label": self.label,
                "dropped_events": self.dropped,
                "metrics": self.metrics(),
            },
        }

    def write_chrome_trace(self, path: str) -> str:
        """Write :meth:`to_chrome_trace` to ``path``; returns the path."""
        with open(path, "w") as handle:
            json.dump(self.to_chrome_trace(), handle)
        return path

    def write_metrics_json(self, path: str) -> str:
        """Write the flat metrics as a JSON object; returns the path."""
        with open(path, "w") as handle:
            json.dump({"label": self.label, "metrics": self.metrics()}, handle, indent=2)
        return path

    def write_metrics_csv(self, path: str) -> str:
        """Write the flat metrics as two-column CSV; returns the path."""
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            writer.writerow(["metric", "value"])
            for name, value in self.metrics().items():
                writer.writerow([name, value])
        return path


def validate_chrome_trace(trace: Mapping[str, Any]) -> List[str]:
    """Validate a ``trace_event`` payload; returns a list of problems.

    Checks the subset of the Chrome trace-event schema the viewers require:
    a ``traceEvents`` list whose entries carry ``ph``/``pid``/``tid``/
    ``name``, numeric ``ts`` on every non-metadata event, and a numeric
    ``dur`` on complete ('X') events.  The CI docs job runs this over every
    emitted smoke trace.
    """
    problems: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents is not a list"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for field in ("ph", "pid", "tid", "name"):
            if field not in event:
                problems.append(f"event {index} missing {field!r}")
        ph = event.get("ph")
        if ph != "M" and not isinstance(event.get("ts"), (int, float)):
            problems.append(f"event {index} ({ph}) has no numeric ts")
        if ph == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"event {index} (X) has no numeric dur")
    return problems


__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "TraceRecorder",
    "validate_chrome_trace",
]
