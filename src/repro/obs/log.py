"""``repro``-namespaced logging setup.

The library logs under the ``repro`` logger hierarchy and installs only a
:class:`logging.NullHandler` by default, so embedding applications stay
silent unless they (or the CLI's ``--log-level`` flag via
:func:`setup_logging`) opt in.

:func:`warn_once` deduplicates warnings that would otherwise fire once per
session — e.g. the finite-packet-buffer fidelity warning emitted every
``begin_session`` of a congested sweep.
"""

from __future__ import annotations

import logging
from typing import Set

#: Root logger of the library; all module loggers are children of it.
LOGGER = logging.getLogger("repro")
LOGGER.addHandler(logging.NullHandler())

_configured = False
_seen_warnings: Set[str] = set()


def get_logger(name: str = "") -> logging.Logger:
    """Return the ``repro`` logger, or the ``repro.<name>`` child logger."""
    return LOGGER.getChild(name) if name else LOGGER


def setup_logging(level: str = "warning") -> logging.Logger:
    """Attach a stderr handler to the ``repro`` logger at ``level``.

    Idempotent: repeated calls adjust the level instead of stacking
    handlers.  The CLI calls this from its ``--log-level`` flag; library
    users may call it directly.
    """
    global _configured
    numeric = getattr(logging, level.upper(), None)
    if not isinstance(numeric, int):
        raise ValueError(f"unknown log level: {level!r}")
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
        LOGGER.addHandler(handler)
        _configured = True
    LOGGER.setLevel(numeric)
    return LOGGER


def warn_once(key: str, message: str, *args: object) -> bool:
    """Emit ``message`` at WARNING level only the first time ``key`` is seen.

    Returns ``True`` if the warning was emitted, ``False`` if deduplicated.
    """
    if key in _seen_warnings:
        return False
    _seen_warnings.add(key)
    LOGGER.warning(message, *args)
    return True


def reset_warnings() -> None:
    """Clear the :func:`warn_once` dedup set (tests)."""
    _seen_warnings.clear()


__all__ = ["LOGGER", "get_logger", "setup_logging", "warn_once", "reset_warnings"]
