"""`repro.obs` — spans, counters, and self-profiling for every engine tier.

Public surface:

* :class:`~repro.obs.recorder.NullRecorder` / :data:`~repro.obs.recorder.NULL_RECORDER`
  — the zero-overhead default (hot paths pay one ``obs.enabled`` check);
* :class:`~repro.obs.recorder.TraceRecorder` — in-memory spans, counters and
  wall-clock phases with Chrome/Perfetto ``trace_event`` export and flat
  metrics JSON/CSV;
* :func:`~repro.obs.recorder.validate_chrome_trace` — the schema check CI
  runs over emitted traces;
* :func:`~repro.obs.bridge.bridge_net_events` — folds packet-tier port
  observations onto the recorder timeline at session end;
* :func:`~repro.obs.log.get_logger` / :func:`~repro.obs.log.setup_logging`
  / :func:`~repro.obs.log.warn_once` — the ``repro``-namespaced logging
  setup behind the CLI's ``--log-level`` flag.

See ``docs/OBSERVABILITY.md`` for the span taxonomy and a Perfetto
walkthrough.
"""

from repro.obs.bridge import bridge_net_events
from repro.obs.log import LOGGER, get_logger, reset_warnings, setup_logging, warn_once
from repro.obs.recorder import (
    NULL_RECORDER,
    NullRecorder,
    TraceRecorder,
    validate_chrome_trace,
)

__all__ = [
    "LOGGER",
    "NULL_RECORDER",
    "NullRecorder",
    "TraceRecorder",
    "bridge_net_events",
    "get_logger",
    "reset_warnings",
    "setup_logging",
    "validate_chrome_trace",
    "warn_once",
]
