"""Bridge packet-tier observations onto a recorder timeline.

The packet tier is observe-only by design: :class:`~repro.net.port.PortQueue`
records ``(issued, admitted, delivered)`` tuples on the hot path and the
digest is computed once at session end.  The bridge mirrors that economy —
it runs from ``SLSSystem.finish_session`` over the already-collected
records, so the per-transfer hot path pays nothing for tracing.

Per queue it emits:

* an ``xfer`` span ``admitted → delivered`` per packet (the link-kernel
  service time) on a ``net.<port>`` track;
* a ``backpressure`` span ``issued → admitted`` whenever admission stalled
  — ``args.mode`` says whether the stall was credit backpressure
  (``"credit"``) or drop/retry cycles (``"drop"``, with the retry count);
* ``qdepth.<port>`` counter samples from the finalized
  :class:`~repro.net.stats.NetStats` timelines (already event-ordered and
  downsampled by :meth:`PacketFabric.finalize`);
* flat metrics: per-fabric packet/drop/retry totals and backpressure ns.
"""

from __future__ import annotations


def bridge_net_events(recorder, fabric, net) -> None:
    """Emit ``fabric``'s packet observations into ``recorder``.

    ``fabric`` is a :class:`~repro.net.fabric.PacketFabric`; ``net`` is the
    finalized :class:`~repro.net.stats.NetStats` digest (source of the
    queue-depth timelines) — pass the value ``finish_session`` already
    computed to avoid a second replay.  Duck-typed on purpose: importing
    ``repro.net`` here would cycle back through the ``repro.obs`` package.
    """
    if not getattr(recorder, "enabled", False):
        return
    for queue in fabric.queues:
        track = f"net.{queue.name}"
        drop_mode = queue.drop_mode
        retry_ns = getattr(queue, "_retry_ns", 0.0)
        for issued, admitted, delivered, size, op in getattr(queue, "_records", ()):
            op_name = getattr(op, "name", str(op)) if op is not None else None
            recorder.span(
                "xfer", admitted, delivered, track=track, cat="kernel",
                args={"bytes": size, "op": op_name},
            )
            if admitted > issued:
                if drop_mode and retry_ns > 0.0:
                    retries = int(round((admitted - issued) / retry_ns))
                    recorder.span(
                        "backpressure", issued, admitted, track=track, cat="net",
                        args={"mode": "drop", "retries": retries, "op": op_name},
                    )
                else:
                    recorder.span(
                        "backpressure", issued, admitted, track=track, cat="net",
                        args={"mode": "credit", "op": op_name},
                    )
        recorder.add(f"net.{queue.name}.packets", queue.packets)
        if queue.drops:
            recorder.add(f"net.{queue.name}.drops", queue.drops)
        if queue.retries:
            recorder.add(f"net.{queue.name}.retries", queue.retries)
        if queue.backpressure_ns > 0.0:
            recorder.add(f"net.{queue.name}.backpressure_ns", queue.backpressure_ns)
    if net is not None:
        for name, port in net.ports.items():
            for time_ns, depth in port.timeline:
                recorder.counter(f"qdepth.{name}", time_ns, depth)
        recorder.add("net.packets", net.packets)
        recorder.add("net.drops", net.drops)
        recorder.add("net.retries", net.retries)
        recorder.add("net.backpressure_ns", net.backpressure_ns)


__all__ = ["bridge_net_events"]
