"""Pond + PM: Pond hardware with the paper's software page management."""

from __future__ import annotations

from dataclasses import replace

from repro.api.registry import register_system
from repro.config import SystemConfig
from repro.memsys.tiered import TieredMemorySystem
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pagemgmt.spreading import SpreadingPolicy
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSRequest, SLSWorkload


@register_system("pond+pm")
class PondPMSystem(SLSSystem):
    """Pond plus the software optimizations of §IV-B, without PIFS hardware.

    The page-management policies run on the OS path, so migrations use
    page-block semantics (the whole page is inaccessible while it moves) and
    their cost stalls query processing.  Data still moves to the host for
    every row, which is why the improvement over Pond is limited (§VI-C2).
    """

    name = "Pond+PM"
    supports_vector_engine = True

    def __init__(self, system: SystemConfig) -> None:
        # The OS has no migration controller: force page-block migration.
        system = replace(system, page_mgmt=replace(system.page_mgmt, migration_mode="page_block"))
        super().__init__(system, use_pifs_switch=False)
        self.hotness_policy = GlobalHotnessPolicy(
            cold_age_threshold=system.page_mgmt.cold_age_threshold
        )
        self.spreading_policy = SpreadingPolicy(
            migrate_threshold=system.page_mgmt.migrate_threshold
        )

    def build_placement(self, workload: SLSWorkload) -> TieredMemorySystem:
        return self.place_capacity_order(workload)

    def process_request(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        return self.host_accumulate_bag(request.addresses, start_ns, host_id)

    def process_request_vector(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        return self.host_accumulate_bag_vector(request, start_ns, host_id)

    def maintenance(self, now_ns: float) -> float:
        row_bytes = self.backends.row_bytes
        swap = self.hotness_policy.run_epoch(self.tiered, row_bytes=row_bytes)
        balance = self.spreading_policy.rebalance(self.tiered, row_bytes=row_bytes)
        cost = swap.cost_ns + balance.cost_ns
        self.add_migration_cost(cost)
        self.tiered.decay_hotness(0.5)
        # OS page-granular migration blocks the queries touching the page for
        # a sizeable fraction of the copy time.
        return cost * 0.25


__all__ = ["PondPMSystem"]
