"""BEACON-S: in-switch near-data processing without PIFS-Rec's optimizations."""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List

from repro.api.registry import register_system
from repro.config import BufferConfig, SystemConfig
from repro.memsys.tiered import TieredMemorySystem
from repro.pifs.switch import PIFSSwitch, RowFetch
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSRequest, SLSWorkload


@register_system("beacon")
class BeaconSystem(SLSSystem):
    """BEACON adapted to SLS (the paper's "BEACON-S").

    BEACON places the whole working set in CXL memory (no DRAM/CXL
    interleaving), relies on custom DIMM-style instructions that require an
    additional address-translation step inside the switch, has no on-switch
    row buffer, processes accumulations in order, and supports only a single
    fabric switch.
    """

    name = "BEACON"
    supports_vector_engine = True

    #: Latency of the extra memory-translation logic BEACON needs per row.
    ADDRESS_TRANSLATION_NS = 20.0

    def __init__(self, system: SystemConfig) -> None:
        # Disable the PIFS-specific switch features.
        pifs = replace(
            system.pifs,
            out_of_order=False,
            on_switch_buffer=BufferConfig(policy="none", capacity_bytes=0),
        )
        system = replace(system, pifs=pifs, num_fabric_switches=1)
        super().__init__(system, use_pifs_switch=True)

    def build_placement(self, workload: SLSWorkload) -> TieredMemorySystem:
        return self.place_cxl_only(workload)

    def process_request(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        rows: List[RowFetch] = []
        for address in request.addresses:
            address = int(address)
            self.tiered.record_access(address, start_ns)
            rows.append(RowFetch(address=address, device_id=self.device_of_address(address)))
        self._counters["cxl_rows"] += len(rows)

        switch = self.backends.switches[0]
        assert isinstance(switch, PIFSSwitch)
        port = self.backends.host_port(host_id, switch.switch_id)
        outcome = switch.accumulate(
            rows,
            host_port=port,
            issue_ns=start_ns,
            result_address=(1 << 41) | (request.request_id << 8),
            per_row_overhead_ns=self.ADDRESS_TRANSLATION_NS,
        )
        # The host still pays a small cost to pick up the result.
        return outcome.host_notified_ns + self.HOST_CXL_OVERHEAD_NS

    def process_request_vector(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        """The in-switch accumulation flow on pre-resolved batches."""
        ctx = self._vector
        begin, end = ctx.bounds[request.request_id]
        # CXL-only placement: the precomputed split is the whole bag.
        _, remote_ks, remote_devs, _ = ctx.split(begin, end)
        page_slice = ctx.page[begin:end]
        # Every row is recorded at issue time: bulk-update the buffered
        # counters in C instead of three dict operations per row.
        ctx.pending_pages.extend(page_slice)
        ctx.page_last.update(dict.fromkeys(page_slice, start_ns))
        self._counters["cxl_rows"] += len(remote_ks)

        _, notified = ctx.switch_kernels[0].accumulate(
            ctx.port_transfer[host_id][0],
            ctx.port_stream[host_id][0],
            remote_ks,
            remote_devs,
            ctx.addr,
            ctx.cch,
            ctx.cfb,
            ctx.crow,
            ctx.dev_access_switch,
            start_ns,
            per_row_overhead_ns=self.ADDRESS_TRANSLATION_NS,
            notify_host=True,
        )
        return notified + self.HOST_CXL_OVERHEAD_NS


__all__ = ["BeaconSystem"]
