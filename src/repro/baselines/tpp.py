"""TPP-style transparent page placement baseline (Fig 13 d)."""

from __future__ import annotations

from dataclasses import replace

from repro.api.registry import register_system
from repro.config import SystemConfig
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pifs.system import PIFSRecSystem


@register_system("tpp")
class TPPSystem(PIFSRecSystem):
    """TPP's eager promotion policy running on the same hardware as PIFS-Rec.

    Fig 13 (d) compares the paper's page-swapping strategy (cold-age
    threshold sweep) against TPP.  TPP promotes pages to the local tier as
    soon as they are re-accessed, which translates here to a near-zero
    promotion threshold and OS page-block migration — more migrations and a
    higher migration cost than the tuned PIFS-Rec policy.
    """

    name = "TPP"

    #: TPP promotes on the second access: effectively no hotness margin.
    TPP_PROMOTION_THRESHOLD = 0.02

    def __init__(self, system: SystemConfig) -> None:
        system = replace(
            system, page_mgmt=replace(system.page_mgmt, migration_mode="page_block")
        )
        super().__init__(
            system,
            page_management=True,
            hotness_policy=GlobalHotnessPolicy(
                cold_age_threshold=self.TPP_PROMOTION_THRESHOLD, max_swaps_per_epoch=16
            ),
        )


__all__ = ["TPPSystem"]
