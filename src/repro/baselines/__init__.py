"""Baseline systems the paper compares against (§VI-B).

* :class:`~repro.baselines.pond.PondSystem` — standard CXL memory pooling,
  host-centric SLS, capacity-ordered placement.
* :class:`~repro.baselines.pond_pm.PondPMSystem` — Pond plus the paper's
  software page management (OS page-block migration).
* :class:`~repro.baselines.beacon.BeaconSystem` — BEACON-S: in-switch
  compute, CXL-only placement, address translation overhead, in-order
  accumulation, no on-switch buffer.
* :class:`~repro.baselines.recnmp.RecNMPSystem` — DIMM-side near-memory
  processing with a rank cache and bank-level parallelism for local rows.
* :class:`~repro.baselines.tpp.TPPSystem` — TPP-style tiered page placement
  on PIFS hardware (used as the page-swapping baseline of Fig 13 d).
* :class:`~repro.baselines.gpu_ps.GPUParameterServer` — the GPU
  parameter-server roofline used by the TCO/throughput analysis (Fig 16/17).
"""

from repro.baselines.beacon import BeaconSystem
from repro.baselines.gpu_ps import GPUParameterServer
from repro.baselines.pond import PondSystem
from repro.baselines.pond_pm import PondPMSystem
from repro.baselines.recnmp import RecNMPSystem
from repro.baselines.registry import (
    SYSTEM_FACTORIES,
    UnknownSystemError,
    available_systems,
    create_system,
    register_system,
)
from repro.baselines.tpp import TPPSystem

__all__ = [
    "BeaconSystem",
    "GPUParameterServer",
    "PondSystem",
    "PondPMSystem",
    "RecNMPSystem",
    "TPPSystem",
    "SYSTEM_FACTORIES",
    "UnknownSystemError",
    "available_systems",
    "create_system",
    "register_system",
]
