"""Pond: CXL memory pooling with host-centric SLS (§VI-B baseline)."""

from __future__ import annotations

from repro.api.registry import register_system
from repro.config import SystemConfig
from repro.memsys.tiered import TieredMemorySystem
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSRequest, SLSWorkload


@register_system("pond")
class PondSystem(SLSSystem):
    """Pond-style CXL memory pooling.

    The embedding tables fill local DRAM in address order and spill to the
    CXL pool.  Every row is fetched to the host through the fabric switch and
    accumulated by the CPU; no page management, no in-switch computation.
    """

    name = "Pond"
    supports_vector_engine = True

    def __init__(self, system: SystemConfig) -> None:
        super().__init__(system, use_pifs_switch=False)

    def build_placement(self, workload: SLSWorkload) -> TieredMemorySystem:
        return self.place_capacity_order(workload)

    def process_request(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        return self.host_accumulate_bag(request.addresses, start_ns, host_id)

    def process_request_vector(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        return self.host_accumulate_bag_vector(request, start_ns, host_id)


__all__ = ["PondSystem"]
