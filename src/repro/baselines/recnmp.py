"""RecNMP: DIMM-side near-memory processing for SLS (§VI-B baseline)."""

from __future__ import annotations

from typing import List

from repro.api.registry import register_system
from repro.config import KIB, BufferConfig, SystemConfig
from repro.memsys.tiered import TieredMemorySystem
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pagemgmt.spreading import SpreadingPolicy
from repro.pifs.onswitch_buffer import OnSwitchBuffer
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSRequest, SLSWorkload


@register_system("recnmp")
class RecNMPSystem(SLSSystem):
    """RecNMP with the paper's memory setting.

    Rows resident in local DRAM are accumulated by the near-memory units on
    the DIMMs: lookups proceed with bank-level parallelism, a rank-level
    cache (RankCache) absorbs reused rows, and only the pooled result crosses
    the memory channel.  Rows that spill to the CXL pool are likewise served
    by NMP-capable DIMMs inside the Type 3 expanders ("their computational
    hardware configuration with our memory setting", §VI-B): the host issues
    per-row commands through the fabric switch, the DIMM-side units fetch and
    accumulate with bank-level parallelism, and one partial sum per device
    returns to the host.  What RecNMP lacks relative to PIFS-Rec is the
    switch-level view: no on-switch buffer shared across devices, no
    instruction repacking, and per-device partial results that the host must
    combine.
    """

    name = "RecNMP"
    supports_vector_engine = True

    #: Per-row latency of the DIMM-side accumulate unit.
    NMP_ACCUMULATE_NS = 1.0
    #: Command latency for the host to issue one NMP-SLS macro instruction.
    NMP_COMMAND_NS = 15.0
    #: Latency to return the pooled result over the channel.
    NMP_RESULT_NS = 10.0
    #: RankCache capacity (128 KB per rank, 8 ranks as in RecNMP-base x8).
    RANKCACHE_BYTES = 8 * 128 * KIB

    def __init__(self, system: SystemConfig, page_management: bool = True) -> None:
        super().__init__(system, use_pifs_switch=False)
        self.page_management = page_management
        self.hotness_policy = GlobalHotnessPolicy(
            cold_age_threshold=system.page_mgmt.cold_age_threshold
        )
        self.spreading_policy = SpreadingPolicy(
            migrate_threshold=system.page_mgmt.migrate_threshold
        )
        self._rank_cache: OnSwitchBuffer | None = None

    def build_placement(self, workload: SLSWorkload) -> TieredMemorySystem:
        # RecNMP profiles hot embeddings and keeps them on the NMP-capable
        # DIMMs (its RankCache design assumes this allocation), so the local
        # tier starts from the hotness-ordered placement.
        return self.place_hotness_order(workload)

    def prepare(self, workload: SLSWorkload) -> None:
        cache_config = BufferConfig(
            capacity_bytes=self.RANKCACHE_BYTES, policy="lru", hit_latency_ns=5.0
        )
        self._rank_cache = OnSwitchBuffer(cache_config, workload.model.embedding_row_bytes)

    # ------------------------------------------------------------------
    def _nmp_accumulate(self, addresses: List[int], start_ns: float) -> float:
        """Near-memory accumulation of locally resident rows."""
        if not addresses:
            return start_ns
        issue = start_ns + self.NMP_COMMAND_NS
        last_row = issue
        for address in addresses:
            self.tiered.record_access(address, start_ns)
            self._counters["local_rows"] += 1
            if self._rank_cache.lookup(address):
                self._counters["buffer_hits"] += 1
                ready = issue + self._rank_cache.hit_latency_ns()
            else:
                self._counters["buffer_misses"] += 1
                ready = self.backends.local_dram.access(
                    address, issue, bytes_requested=self.backends.row_bytes
                )
                self._rank_cache.insert(address)
            last_row = max(last_row, ready + self.NMP_ACCUMULATE_NS)
        return last_row + self.NMP_RESULT_NS

    def _nmp_cxl_accumulate(self, addresses: List[int], start_ns: float, host_id: int) -> float:
        """Near-memory accumulation inside the CXL expanders' NMP DIMMs."""
        if not addresses:
            return start_ns
        by_device: dict[int, List[int]] = {}
        for address in addresses:
            by_device.setdefault(self.device_of_address(address), []).append(address)

        controller_penalty = self.system.cxl.access_penalty_ns / 2.0
        finishes: List[float] = []
        for device_id, device_addresses in by_device.items():
            device = self.backends.devices[device_id]
            switch = self.backends.switch_of_device(device_id)
            port = self.backends.host_port(host_id, switch.switch_id)
            last_row = start_ns
            for address in device_addresses:
                self.tiered.record_access(address, start_ns)
                self._counters["cxl_rows"] += 1
                command_at_switch = (
                    port.link.transfer(self.system.cxl.slot_bytes, start_ns)
                    + switch.FORWARD_LATENCY_NS
                )
                command_at_dimm = (
                    device.link.transfer(self.system.cxl.slot_bytes, command_at_switch)
                    + controller_penalty
                )
                if self._rank_cache.lookup(address):
                    self._counters["buffer_hits"] += 1
                    ready = command_at_dimm + self._rank_cache.hit_latency_ns()
                else:
                    self._counters["buffer_misses"] += 1
                    ready = device.dram.access(
                        address, command_at_dimm, bytes_requested=self.backends.row_bytes
                    )
                    self._rank_cache.insert(address)
                last_row = max(last_row, ready + self.NMP_ACCUMULATE_NS)
            # One partial sum per device crosses both links back to the host.
            result_at_switch = device.link.transfer(self.backends.row_bytes, last_row)
            result_at_host = port.link.transfer(self.backends.row_bytes, result_at_switch)
            finishes.append(result_at_host + self.HOST_CXL_OVERHEAD_NS)
        # The host combines the per-device partial sums.
        return max(finishes) + len(by_device) * self.HOST_ACCUMULATE_NS_PER_ROW

    def process_request(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        local: List[int] = []
        remote: List[int] = []
        for address in request.addresses:
            address = int(address)
            if self.is_local(address):
                local.append(address)
            else:
                remote.append(address)
        local_done = self._nmp_accumulate(local, start_ns)
        remote_done = self._nmp_cxl_accumulate(remote, start_ns, host_id)
        return max(local_done, remote_done)

    # ------------------------------------------------------------------
    # Vector-engine twin
    # ------------------------------------------------------------------
    def prepare_vector(self, ctx) -> None:
        self._rank_cache_kernel = self._rank_cache.batch_kernel()
        ctx.extra_kernels.append(self._rank_cache_kernel)

    def process_request_vector(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        """The NMP request flow on pre-resolved batches (same arithmetic)."""
        ctx = self._vector
        begin, end = ctx.bounds[request.request_id]
        node, node_offset = ctx.nodes_window(begin, end)
        node_is_local = ctx.node_is_local
        node_device = ctx.node_device
        page_slice = ctx.page[begin:end]
        addr = ctx.addr
        counters = self._counters
        # Every row is recorded at the request issue time: bulk-update the
        # buffered counters in C instead of per-row dict arithmetic.
        ctx.page_counts.update(page_slice)
        ctx.page_last.update(dict.fromkeys(page_slice, start_ns))
        cache = self._rank_cache_kernel
        lookup = cache.lookup
        insert = cache.insert
        hit_ns = self._rank_cache.hit_latency_ns()
        accumulate_ns = self.NMP_ACCUMULATE_NS
        hits = 0
        misses = 0

        local_ks: List[int] = []
        local_append = local_ks.append
        by_device: dict = {}
        for k in range(begin, end):
            node_id = node[k - node_offset]
            if node_is_local[node_id]:
                local_append(k)
            else:
                device_id = node_device[node_id]
                bucket = by_device.get(device_id)
                if bucket is None:
                    by_device[device_id] = [k]
                else:
                    bucket.append(k)

        # Local rows: DIMM-side NMP with the RankCache, all issued together.
        local_done = start_ns
        if local_ks:
            lch, lfb, lrow = ctx.lch, ctx.lfb, ctx.lrow
            dram_access = ctx.local_access[0]  # the scalar path uses host 0's DIMMs
            issue = start_ns + self.NMP_COMMAND_NS
            last_row = issue
            for k in local_ks:
                if lookup(addr[k]):
                    hits += 1
                    ready = issue + hit_ns
                else:
                    misses += 1
                    ready = dram_access(lch[k], lfb[k], lrow[k], issue)
                    insert(addr[k])
                done = ready + accumulate_ns
                if done > last_row:
                    last_row = done
            counters["local_rows"] += len(local_ks)
            local_done = last_row + self.NMP_RESULT_NS

        # Remote rows: NMP inside the CXL expanders, one partial per device.
        remote_done = start_ns
        if by_device:
            cch, cfb, crow = ctx.cch, ctx.cfb, ctx.crow
            controller_penalty = self.system.cxl.access_penalty_ns / 2.0
            slot_bytes = self.system.cxl.slot_bytes
            row_bytes = ctx.row_bytes
            cxl_overhead = self.HOST_CXL_OVERHEAD_NS
            remote_rows = 0
            best = None
            for device_id, ks in by_device.items():
                device_kernel = ctx.device_kernels[device_id]
                link_transfer = device_kernel.link_transfer
                dram_access = device_kernel.dram.access
                switch_id = ctx.device_switch[device_id]
                port_transfer = ctx.port_transfer[host_id][switch_id]
                forward_ns = ctx.forward_ns[switch_id]
                last_row = start_ns
                remote_rows += len(ks)
                for k in ks:
                    command_at_switch = port_transfer(slot_bytes, start_ns) + forward_ns
                    command_at_dimm = link_transfer(slot_bytes, command_at_switch) + controller_penalty
                    if lookup(addr[k]):
                        hits += 1
                        ready = command_at_dimm + hit_ns
                    else:
                        misses += 1
                        ready = dram_access(cch[k], cfb[k], crow[k], command_at_dimm)
                        insert(addr[k])
                    done = ready + accumulate_ns
                    if done > last_row:
                        last_row = done
                result_at_switch = link_transfer(row_bytes, last_row)
                result_at_host = port_transfer(row_bytes, result_at_switch)
                finish = result_at_host + cxl_overhead
                if best is None or finish > best:
                    best = finish
            counters["cxl_rows"] += remote_rows
            remote_done = best + len(by_device) * self.HOST_ACCUMULATE_NS_PER_ROW

        counters["buffer_hits"] += hits
        counters["buffer_misses"] += misses
        return local_done if local_done > remote_done else remote_done

    def maintenance(self, now_ns: float) -> float:
        if not self.page_management:
            return 0.0
        row_bytes = self.backends.row_bytes
        swap = self.hotness_policy.run_epoch(self.tiered, row_bytes=row_bytes)
        balance = self.spreading_policy.rebalance(self.tiered, row_bytes=row_bytes)
        cost = swap.cost_ns + balance.cost_ns
        self.add_migration_cost(cost)
        self.tiered.decay_hotness(0.5)
        return cost * 0.25


__all__ = ["RecNMPSystem"]
