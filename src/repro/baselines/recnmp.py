"""RecNMP: DIMM-side near-memory processing for SLS (§VI-B baseline)."""

from __future__ import annotations

from typing import List

from repro.api.registry import register_system
from repro.config import KIB, BufferConfig, SystemConfig
from repro.cxl.protocol import MemOpcode
from repro.memsys.tiered import TieredMemorySystem
from repro.net.packet import Priority
from repro.pagemgmt.global_hotness import GlobalHotnessPolicy
from repro.pagemgmt.spreading import SpreadingPolicy
from repro.pifs.onswitch_buffer import OnSwitchBuffer
from repro.sls.engine import SLSSystem
from repro.traces.workload import SLSRequest, SLSWorkload


@register_system("recnmp")
class RecNMPSystem(SLSSystem):
    """RecNMP with the paper's memory setting.

    Rows resident in local DRAM are accumulated by the near-memory units on
    the DIMMs: lookups proceed with bank-level parallelism, a rank-level
    cache (RankCache) absorbs reused rows, and only the pooled result crosses
    the memory channel.  Rows that spill to the CXL pool are likewise served
    by NMP-capable DIMMs inside the Type 3 expanders ("their computational
    hardware configuration with our memory setting", §VI-B): the host issues
    per-row commands through the fabric switch, the DIMM-side units fetch and
    accumulate with bank-level parallelism, and one partial sum per device
    returns to the host.  What RecNMP lacks relative to PIFS-Rec is the
    switch-level view: no on-switch buffer shared across devices, no
    instruction repacking, and per-device partial results that the host must
    combine.
    """

    name = "RecNMP"
    supports_vector_engine = True

    #: Per-row latency of the DIMM-side accumulate unit.
    NMP_ACCUMULATE_NS = 1.0
    #: Command latency for the host to issue one NMP-SLS macro instruction.
    NMP_COMMAND_NS = 15.0
    #: Latency to return the pooled result over the channel.
    NMP_RESULT_NS = 10.0
    #: RankCache capacity (128 KB per rank, 8 ranks as in RecNMP-base x8).
    RANKCACHE_BYTES = 8 * 128 * KIB

    def __init__(self, system: SystemConfig, page_management: bool = True) -> None:
        super().__init__(system, use_pifs_switch=False)
        self.page_management = page_management
        self.hotness_policy = GlobalHotnessPolicy(
            cold_age_threshold=system.page_mgmt.cold_age_threshold
        )
        self.spreading_policy = SpreadingPolicy(
            migrate_threshold=system.page_mgmt.migrate_threshold
        )
        self._rank_cache: OnSwitchBuffer | None = None

    def build_placement(self, workload: SLSWorkload) -> TieredMemorySystem:
        # RecNMP profiles hot embeddings and keeps them on the NMP-capable
        # DIMMs (its RankCache design assumes this allocation), so the local
        # tier starts from the hotness-ordered placement.
        return self.place_hotness_order(workload)

    def prepare(self, workload: SLSWorkload) -> None:
        cache_config = BufferConfig(
            capacity_bytes=self.RANKCACHE_BYTES, policy="lru", hit_latency_ns=5.0
        )
        self._rank_cache = OnSwitchBuffer(cache_config, workload.model.embedding_row_bytes)

    # ------------------------------------------------------------------
    def _nmp_accumulate(self, addresses: List[int], start_ns: float) -> float:
        """Near-memory accumulation of locally resident rows."""
        if not addresses:
            return start_ns
        issue = start_ns + self.NMP_COMMAND_NS
        last_row = issue
        for address in addresses:
            self.tiered.record_access(address, start_ns)
            self._counters["local_rows"] += 1
            if self._rank_cache.lookup(address):
                self._counters["buffer_hits"] += 1
                ready = issue + self._rank_cache.hit_latency_ns()
            else:
                self._counters["buffer_misses"] += 1
                ready = self.backends.local_dram.access(
                    address, issue, bytes_requested=self.backends.row_bytes
                )
                self._rank_cache.insert(address)
            last_row = max(last_row, ready + self.NMP_ACCUMULATE_NS)
        return last_row + self.NMP_RESULT_NS

    def _nmp_cxl_accumulate(self, addresses: List[int], start_ns: float, host_id: int) -> float:
        """Near-memory accumulation inside the CXL expanders' NMP DIMMs."""
        if not addresses:
            return start_ns
        by_device: dict[int, List[int]] = {}
        for address in addresses:
            by_device.setdefault(self.device_of_address(address), []).append(address)

        controller_penalty = self.system.cxl.access_penalty_ns / 2.0
        finishes: List[float] = []
        for device_id, device_addresses in by_device.items():
            device = self.backends.devices[device_id]
            switch = self.backends.switch_of_device(device_id)
            port = self.backends.host_port(host_id, switch.switch_id)
            last_row = start_ns
            for address in device_addresses:
                self.tiered.record_access(address, start_ns)
                self._counters["cxl_rows"] += 1
                command_at_switch = (
                    port.link.transfer(
                        self.system.cxl.slot_bytes, start_ns, op=Priority.INSTRUCTION
                    )
                    + switch.FORWARD_LATENCY_NS
                )
                command_at_dimm = (
                    device.link.transfer(
                        self.system.cxl.slot_bytes, command_at_switch, op=Priority.INSTRUCTION
                    )
                    + controller_penalty
                )
                if self._rank_cache.lookup(address):
                    self._counters["buffer_hits"] += 1
                    ready = command_at_dimm + self._rank_cache.hit_latency_ns()
                else:
                    self._counters["buffer_misses"] += 1
                    ready = device.dram.access(
                        address, command_at_dimm, bytes_requested=self.backends.row_bytes
                    )
                    self._rank_cache.insert(address)
                last_row = max(last_row, ready + self.NMP_ACCUMULATE_NS)
            # One partial sum per device crosses both links back to the host.
            result_at_switch = device.link.transfer(
                self.backends.row_bytes, last_row, op=MemOpcode.MEM_RD_DATA
            )
            result_at_host = port.link.transfer(
                self.backends.row_bytes, result_at_switch, op=MemOpcode.MEM_RD_DATA
            )
            finishes.append(result_at_host + self.HOST_CXL_OVERHEAD_NS)
        # The host combines the per-device partial sums.
        return max(finishes) + len(by_device) * self.HOST_ACCUMULATE_NS_PER_ROW

    def process_request(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        local: List[int] = []
        remote: List[int] = []
        for address in request.addresses:
            address = int(address)
            if self.is_local(address):
                local.append(address)
            else:
                remote.append(address)
        local_done = self._nmp_accumulate(local, start_ns)
        remote_done = self._nmp_cxl_accumulate(remote, start_ns, host_id)
        return max(local_done, remote_done)

    # ------------------------------------------------------------------
    # Vector-engine twin
    # ------------------------------------------------------------------
    def prepare_vector(self, ctx) -> None:
        self._rank_cache_kernel = self._rank_cache.batch_kernel()
        ctx.extra_kernels.append(self._rank_cache_kernel)
        # Route table, built once per session: for every (host, device) the
        # bound closures a remote NMP burst needs — device link, device
        # DRAM, the host's upstream port on the device's switch — plus the
        # switch forwarding latency.  Closures stay live until the session's
        # final sync, so the request loop pays one list index per bucket.
        self._nmp_routes = [
            [
                (
                    kernel.link_transfer,
                    kernel.link_transfer_seq,
                    kernel.dram.access,
                    ctx.port_transfer[host_id][switch_id],
                    ctx.port_stream[host_id][switch_id],
                    ctx.forward_ns[switch_id],
                )
                for kernel, switch_id in zip(ctx.device_kernels, ctx.device_switch)
            ]
            for host_id in range(ctx.num_hosts)
        ]

    def process_request_vector(self, request: SLSRequest, start_ns: float, host_id: int) -> float:
        """The NMP request flow on pre-resolved batches (same arithmetic)."""
        ctx = self._vector
        begin, end = ctx.bounds[request.request_id]
        local_ks, remote_ks, remote_devs, _ = ctx.split(begin, end)
        page_slice = ctx.page[begin:end]
        addr = ctx.addr
        counters = self._counters
        # Every row is recorded at the request issue time: bulk-update the
        # buffered counters in C instead of per-row dict arithmetic.
        ctx.pending_pages.extend(page_slice)
        ctx.page_last.update(dict.fromkeys(page_slice, start_ns))
        cache = self._rank_cache_kernel
        # The RankCache is LRU: the profiler feed is bulk-recorded once per
        # bag (every row is probed exactly once) and the per-row probe skips
        # it — bit-identical buffer and profiler state, ~half the dict work.
        probe = cache.probe
        insert = cache.insert
        cache.record(addr[begin:end])
        hit_ns = self._rank_cache.hit_latency_ns()
        accumulate_ns = self.NMP_ACCUMULATE_NS
        hits = 0
        misses = 0

        by_device: dict = {}
        for j, k in enumerate(remote_ks):
            bucket = by_device.get(remote_devs[j])
            if bucket is None:
                by_device[remote_devs[j]] = [k]
            else:
                bucket.append(k)

        # Local rows: DIMM-side NMP with the RankCache, all issued together.
        local_done = start_ns
        if local_ks:
            lch, lfb, lrow = ctx.lch, ctx.lfb, ctx.lrow
            dram_access = ctx.local_access[0]  # the scalar path uses host 0's DIMMs
            issue = start_ns + self.NMP_COMMAND_NS
            last_row = issue
            # Hits all finish at the same issue-anchored time — fold their
            # timing in once; per hit row only the cache probe runs.
            any_hit = False
            for k in local_ks:
                if probe(addr[k]):
                    any_hit = True
                else:
                    misses += 1
                    ready = dram_access(lch[k], lfb[k], lrow[k], issue)
                    insert(addr[k])
                    done = ready + accumulate_ns
                    if done > last_row:
                        last_row = done
            if any_hit:
                hits += len(local_ks) - misses
                done = (issue + hit_ns) + accumulate_ns
                if done > last_row:
                    last_row = done
            counters["local_rows"] += len(local_ks)
            local_done = last_row + self.NMP_RESULT_NS

        # Remote rows: NMP inside the CXL expanders, one partial per device.
        remote_done = start_ns
        if by_device:
            cch, cfb, crow = ctx.cch, ctx.cfb, ctx.crow
            controller_penalty = self.system.cxl.access_penalty_ns / 2.0
            slot_bytes = self.system.cxl.slot_bytes
            row_bytes = ctx.row_bytes
            cxl_overhead = self.HOST_CXL_OVERHEAD_NS
            remote_rows = 0
            best = None
            routes = self._nmp_routes[host_id]
            for device_id, ks in by_device.items():
                link_transfer, link_seq, dram_access, port_transfer, port_stream, forward_ns = routes[
                    device_id
                ]
                count = len(ks)
                remote_rows += count
                # The per-row NMP commands are all issued at start_ns: one
                # stream call crosses the upstream port, one sequenced call
                # the device link — the same serialization chains as the
                # per-row transfers (the port and device links never
                # interleave within one device's burst).
                commands_at_dimm = link_seq(
                    slot_bytes, port_stream(slot_bytes, start_ns, count), forward_ns
                )
                last_row = start_ns
                # Cache hits finish in command order (the device-link chain
                # is non-decreasing): the last hit stands in for all of
                # them, so per hit row only the probe runs.
                last_hit = -1
                bucket_misses = 0
                for i in range(count):
                    k = ks[i]
                    if probe(addr[k]):
                        last_hit = i
                    else:
                        bucket_misses += 1
                        ready = dram_access(
                            cch[k], cfb[k], crow[k], commands_at_dimm[i] + controller_penalty
                        )
                        insert(addr[k])
                        done = ready + accumulate_ns
                        if done > last_row:
                            last_row = done
                if last_hit >= 0:
                    done = ((commands_at_dimm[last_hit] + controller_penalty) + hit_ns) + accumulate_ns
                    if done > last_row:
                        last_row = done
                hits += count - bucket_misses
                misses += bucket_misses
                result_at_switch = link_transfer(row_bytes, last_row)
                result_at_host = port_transfer(row_bytes, result_at_switch)
                finish = result_at_host + cxl_overhead
                if best is None or finish > best:
                    best = finish
            counters["cxl_rows"] += remote_rows
            remote_done = best + len(by_device) * self.HOST_ACCUMULATE_NS_PER_ROW

        counters["buffer_hits"] += hits
        counters["buffer_misses"] += misses
        return local_done if local_done > remote_done else remote_done

    def maintenance(self, now_ns: float) -> float:
        if not self.page_management:
            return 0.0
        row_bytes = self.backends.row_bytes
        swap = self.hotness_policy.run_epoch(self.tiered, row_bytes=row_bytes)
        balance = self.spreading_policy.rebalance(self.tiered, row_bytes=row_bytes)
        cost = swap.cost_ns + balance.cost_ns
        self.add_migration_cost(cost)
        self.tiered.decay_hotness(0.5)
        return cost * 0.25


__all__ = ["RecNMPSystem"]
