"""Name-based construction of the evaluated systems."""

from __future__ import annotations

from typing import Callable, Dict

from repro.baselines.beacon import BeaconSystem
from repro.baselines.pond import PondSystem
from repro.baselines.pond_pm import PondPMSystem
from repro.baselines.recnmp import RecNMPSystem
from repro.baselines.tpp import TPPSystem
from repro.config import SystemConfig
from repro.pifs.system import PIFSRecNoPM, PIFSRecSystem
from repro.sls.engine import SLSSystem

SYSTEM_FACTORIES: Dict[str, Callable[[SystemConfig], SLSSystem]] = {
    "pond": PondSystem,
    "pond+pm": PondPMSystem,
    "beacon": BeaconSystem,
    "recnmp": RecNMPSystem,
    "tpp": TPPSystem,
    "pifs-rec": PIFSRecSystem,
    "pifs-rec-nopm": PIFSRecNoPM,
}


def create_system(name: str, system_config: SystemConfig) -> SLSSystem:
    """Instantiate a system by (case-insensitive) name."""
    key = name.lower()
    if key not in SYSTEM_FACTORIES:
        valid = ", ".join(sorted(SYSTEM_FACTORIES))
        raise KeyError(f"unknown system {name!r}; expected one of: {valid}")
    return SYSTEM_FACTORIES[key](system_config)


__all__ = ["SYSTEM_FACTORIES", "create_system"]
