"""Deprecated shim: the system registry moved to :mod:`repro.api.registry`.

Systems now self-register with the :func:`repro.api.register_system`
decorator instead of being listed in a hard-coded dict here.  This module
re-exports the new surface so existing imports keep working:

* :func:`create_system` — the old entry point (now raising
  :class:`~repro.api.registry.UnknownSystemError`, a :class:`KeyError`
  subclass, for unknown names);
* ``SYSTEM_FACTORIES`` — a live read-only mapping view of the registry.
"""

from __future__ import annotations

from repro.api.registry import (
    SYSTEM_FACTORIES,
    UnknownSystemError,
    available_systems,
    create_system,
    register_system,
    system_factory,
)

__all__ = [
    "SYSTEM_FACTORIES",
    "UnknownSystemError",
    "available_systems",
    "create_system",
    "register_system",
    "system_factory",
]
