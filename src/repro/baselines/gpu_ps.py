"""GPU parameter-server roofline model used by the cost analysis (Fig 16/17).

The paper compares PIFS-Rec against a conventional parameter-server
deployment in which one CPU server plus up to four A100 GPUs serve DLRM
inference.  Embedding shards that fit in aggregate HBM are served at HBM
bandwidth; the overflow lives in host memory and must cross PCIe for every
lookup, which is what makes GPU throughput collapse for large models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.config import GIB, ModelConfig

#: Deployment-scale embedding footprints used for the cost/throughput study
#: (the evaluation models are sharded replicas of Table I at industrial table
#: counts; §VI-E sizes the RMC4 deployment at ~2 TB).
DEPLOYMENT_FOOTPRINT_BYTES: Dict[str, int] = {
    "RMC1": 128 * GIB,
    "RMC2": 512 * GIB,
    "RMC3": 1024 * GIB,
    "RMC4": 2048 * GIB,
}


@dataclass(frozen=True)
class GPUSpec:
    """A100 80 GB PCIe (Table III)."""

    hbm_bytes: int = 80 * GIB
    hbm_bandwidth_gbps: float = 1935.0
    #: Effective PCIe bandwidth for scattered embedding-row gathers (random
    #: 64-512 B transfers achieve a small fraction of the x16 peak).
    pcie_bandwidth_gbps: float = 16.0
    tdp_watts: float = 300.0
    price_usd: float = 18900.0


class GPUParameterServer:
    """Bandwidth-roofline throughput model of a GPU parameter server."""

    def __init__(self, num_gpus: int, model: ModelConfig, gpu: GPUSpec = GPUSpec()) -> None:
        if num_gpus <= 0:
            raise ValueError("num_gpus must be positive")
        self.num_gpus = num_gpus
        self.model = model
        self.gpu = gpu

    @property
    def footprint_bytes(self) -> int:
        return DEPLOYMENT_FOOTPRINT_BYTES.get(self.model.name, self.model.total_embedding_bytes)

    @property
    def hbm_resident_fraction(self) -> float:
        """Fraction of the embedding footprint resident in aggregate HBM."""
        total_hbm = self.num_gpus * self.gpu.hbm_bytes
        return min(1.0, total_hbm / self.footprint_bytes)

    def bytes_per_query(self, pooling_factor: int = 8, tables_per_query: int = 8) -> int:
        return pooling_factor * tables_per_query * self.model.embedding_row_bytes

    def throughput_queries_per_us(
        self, pooling_factor: int = 8, tables_per_query: int = 8
    ) -> float:
        """Sustained SLS query throughput (queries per microsecond).

        Lookups hitting HBM are served at aggregate HBM bandwidth; the
        overflow fraction is bottlenecked by PCIe transfers from host memory.
        The effective throughput is the harmonic combination of the two.
        """
        per_query = self.bytes_per_query(pooling_factor, tables_per_query)
        resident = self.hbm_resident_fraction
        hbm_bw = self.num_gpus * self.gpu.hbm_bandwidth_gbps  # bytes per ns
        pcie_bw = self.num_gpus * self.gpu.pcie_bandwidth_gbps
        # Time (ns) to serve one query's bytes from each source.
        time_hbm = (per_query * resident) / hbm_bw
        time_pcie = (per_query * (1.0 - resident)) / pcie_bw
        total_time_ns = time_hbm + time_pcie
        if total_time_ns <= 0:
            return 0.0
        return (1.0 / total_time_ns) * 1000.0

    def power_watts(self, cpu_tdp_watts: float = 360.0) -> float:
        """Power envelope of the parameter server (CPU host + GPUs)."""
        return cpu_tdp_watts + self.num_gpus * self.gpu.tdp_watts

    def performance_per_watt(self, pooling_factor: int = 8, tables_per_query: int = 8) -> float:
        power = self.power_watts()
        if power <= 0:
            return 0.0
        return self.throughput_queries_per_us(pooling_factor, tables_per_query) / power


__all__ = ["GPUParameterServer", "GPUSpec", "DEPLOYMENT_FOOTPRINT_BYTES"]
