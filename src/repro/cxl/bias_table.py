"""The CXL asymmetric-coherence bias table (§II-B1).

CXL memory pooling manages coherence with a per-region bias: in *host bias*
a device access to the region must consult the host (extra control traffic),
in *device bias* the region is locked for the device and accesses proceed
without host involvement.  PIFS-Rec designates the embedding-table region as
device-biased so that in-switch accumulation never pays the host round trip.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict

from repro.config import PAGE_SIZE_BYTES


class BiasMode(Enum):
    HOST = "host"
    DEVICE = "device"


class BiasTable:
    """Tracks bias state at a fixed granularity (default: one 4 KB page)."""

    #: Extra latency a device pays when touching a host-biased region (ns):
    #: one ownership-request round trip over the link.
    HOST_BIAS_PENALTY_NS = 80.0

    def __init__(self, granularity_bytes: int = PAGE_SIZE_BYTES, default: BiasMode = BiasMode.HOST) -> None:
        if granularity_bytes <= 0:
            raise ValueError("granularity must be positive")
        self._granularity = granularity_bytes
        self._default = default
        self._entries: Dict[int, BiasMode] = {}
        self._flips = 0

    @property
    def granularity_bytes(self) -> int:
        return self._granularity

    @property
    def flips(self) -> int:
        """Number of bias transitions performed."""
        return self._flips

    def _region(self, address: int) -> int:
        return address // self._granularity

    def mode(self, address: int) -> BiasMode:
        """Return the bias mode governing ``address``."""
        return self._entries.get(self._region(address), self._default)

    def set_mode(self, address: int, mode: BiasMode, length_bytes: int = 0) -> None:
        """Set the bias of the region(s) covering ``[address, address+length)``."""
        first = self._region(address)
        last = self._region(address + max(0, length_bytes - 1))
        for region in range(first, last + 1):
            previous = self._entries.get(region, self._default)
            if previous is not mode:
                self._flips += 1
            self._entries[region] = mode

    def device_access_penalty_ns(self, address: int) -> float:
        """Latency penalty a device access to ``address`` pays for coherence."""
        if self.mode(address) is BiasMode.DEVICE:
            return 0.0
        return self.HOST_BIAS_PENALTY_NS


__all__ = ["BiasMode", "BiasTable"]
