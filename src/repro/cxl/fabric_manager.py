"""Fabric manager: binds devices/hosts to switch ports and assigns cache IDs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional


@dataclass(frozen=True)
class PortBinding:
    """One virtual PPB binding managed by the fabric manager."""

    port_id: int
    endpoint_name: str
    endpoint_kind: str  # "host" | "type3" | "switch"
    cache_id: int


class FabricManager:
    """Tracks the bindings of a fabric switch's ports.

    Each device recognized by the FM endpoint receives a ``cacheID``
    (§II-B2); hosts and peer switches are registered the same way so that
    routing decisions can be made purely on port bindings.
    """

    def __init__(self) -> None:
        self._bindings: Dict[int, PortBinding] = {}
        self._by_name: Dict[str, PortBinding] = {}
        self._next_cache_id = 0

    def bind(self, port_id: int, endpoint_name: str, endpoint_kind: str) -> PortBinding:
        """Bind ``endpoint_name`` of ``endpoint_kind`` to ``port_id``."""
        if endpoint_kind not in ("host", "type3", "switch"):
            raise ValueError(f"unknown endpoint kind: {endpoint_kind}")
        if port_id in self._bindings:
            raise ValueError(f"port {port_id} is already bound")
        if endpoint_name in self._by_name:
            raise ValueError(f"endpoint {endpoint_name!r} is already bound")
        binding = PortBinding(
            port_id=port_id,
            endpoint_name=endpoint_name,
            endpoint_kind=endpoint_kind,
            cache_id=self._next_cache_id,
        )
        self._next_cache_id += 1
        self._bindings[port_id] = binding
        self._by_name[endpoint_name] = binding
        return binding

    def unbind(self, port_id: int) -> None:
        binding = self._bindings.pop(port_id, None)
        if binding is None:
            raise KeyError(f"port {port_id} is not bound")
        del self._by_name[binding.endpoint_name]

    def binding_for_port(self, port_id: int) -> Optional[PortBinding]:
        return self._bindings.get(port_id)

    def binding_for_endpoint(self, endpoint_name: str) -> Optional[PortBinding]:
        return self._by_name.get(endpoint_name)

    def bindings(self) -> List[PortBinding]:
        return sorted(self._bindings.values(), key=lambda b: b.port_id)

    def devices(self) -> List[PortBinding]:
        """All bound Type 3 devices."""
        return [b for b in self.bindings() if b.endpoint_kind == "type3"]

    def hosts(self) -> List[PortBinding]:
        """All bound hosts."""
        return [b for b in self.bindings() if b.endpoint_kind == "host"]


__all__ = ["FabricManager", "PortBinding"]
