"""FlexBus / CXL link model.

A link is characterized by a peak bandwidth (GB/s == bytes per ns), a
propagation latency (I/O port + retimer), and a busy-until timestamp that
serializes transfers, which is how flex-bus congestion under heavy memory
traffic (§III "limitations") manifests in the simulator.
"""

from __future__ import annotations


class CXLLink:
    """A unidirectional CXL/FlexBus link."""

    def __init__(
        self,
        bandwidth_gbps: float,
        propagation_ns: float = 15.0,
        name: str = "link",
    ) -> None:
        if bandwidth_gbps <= 0:
            raise ValueError("bandwidth must be positive")
        self._bandwidth = bandwidth_gbps
        self._propagation_ns = propagation_ns
        self._name = name
        #: Optional packet-tier port queue (``fidelity="packet"``); when
        #: attached it brackets every transfer — admission before the
        #: analytic arithmetic, observation after.
        self._port = None
        self._busy_until_ns = 0.0
        self._bytes_transferred = 0
        self._transfers = 0
        self._queued_ns = 0.0

    @property
    def name(self) -> str:
        return self._name

    @property
    def bandwidth_gbps(self) -> float:
        return self._bandwidth

    @property
    def propagation_ns(self) -> float:
        return self._propagation_ns

    @property
    def bytes_transferred(self) -> int:
        return self._bytes_transferred

    @property
    def transfers(self) -> int:
        return self._transfers

    @property
    def busy_until_ns(self) -> float:
        return self._busy_until_ns

    @property
    def total_queue_delay_ns(self) -> float:
        """Total time transfers spent waiting for the link to free up."""
        return self._queued_ns

    def degrade(
        self, bandwidth_scale: float = 1.0, extra_propagation_ns: float = 0.0
    ) -> None:
        """Degrade the link in place: scale bandwidth, add propagation delay.

        Models a FlexBus link renegotiated to a narrower width / lower rate
        or a marginal retimer adding latency.  Must be applied while no
        flattened kernel holds the link's state (the engine applies session
        mutators before the vector kernels are built), because kernels
        snapshot ``bandwidth_gbps``/``propagation_ns`` at construction.
        """
        if bandwidth_scale <= 0:
            raise ValueError("bandwidth_scale must be positive")
        if extra_propagation_ns < 0:
            raise ValueError("extra_propagation_ns must be non-negative")
        self._bandwidth = self._bandwidth * bandwidth_scale
        self._propagation_ns = self._propagation_ns + extra_propagation_ns

    def attach_port(self, port) -> None:
        """Install (or remove, with ``None``) a packet-tier port queue.

        The queue brackets :meth:`transfer`: it may delay the admission time
        (credit backpressure / drop-retry) and observes every completed
        transfer.  It never re-prices the transfer itself — the analytic
        arithmetic below stays the single source of truth, which is what
        keeps the packet tier bit-identical in the uncongested limit.
        """
        self._port = port

    @property
    def port(self):
        """The attached packet-tier port queue, if any."""
        return self._port

    def transfer(self, bytes_count: int, start_ns: float, op=None) -> float:
        """Transfer ``bytes_count`` bytes beginning no earlier than ``start_ns``.

        Returns the time at which the last byte arrives at the far end.
        ``op`` optionally tags the transfer with the protocol opcode it
        carries (a :class:`~repro.cxl.protocol.MemOpcode`) — ignored by the
        analytic arithmetic, consumed by the packet tier for priority
        queueing and flow accounting.
        """
        if bytes_count < 0:
            raise ValueError("bytes_count must be non-negative")
        port = self._port
        admitted = start_ns if port is None else port.admit(start_ns, op)
        serialization = bytes_count / self._bandwidth
        begin = max(admitted, self._busy_until_ns)
        self._queued_ns += begin - admitted
        finish_serialization = begin + serialization
        self._busy_until_ns = finish_serialization
        self._bytes_transferred += bytes_count
        self._transfers += 1
        delivered = finish_serialization + self._propagation_ns
        if port is not None:
            port.depart(start_ns, admitted, delivered, bytes_count, op)
        return delivered

    def utilization(self, elapsed_ns: float) -> float:
        """Link utilization over ``elapsed_ns``."""
        if elapsed_ns <= 0:
            return 0.0
        return min(1.0, (self._bytes_transferred / self._bandwidth) / elapsed_ns)

    def batch_kernel(self) -> "LinkKernel":
        """A flattened transfer kernel over this link's state (batch engine)."""
        return LinkKernel(self)

    def reset(self) -> None:
        self._busy_until_ns = 0.0
        self._bytes_transferred = 0
        self._transfers = 0
        self._queued_ns = 0.0


class LinkKernel:
    """Flattened busy-until state of one :class:`CXLLink`.

    ``transfer(bytes_count, start_ns)`` is a closure over plain local state
    performing exactly the scalar :meth:`CXLLink.transfer` arithmetic;
    :meth:`sync` folds the evolved state and counters back into the link.
    The kernel owns the link state until then — do not interleave scalar
    transfers before syncing.

    This is the reference batch implementation of the transfer arithmetic.
    ``SwitchPortKernel`` and ``CXLDeviceKernel`` inline the same block (they
    must share closure state with their fused read paths) — keep all three
    in sync; the engine equivalence suite pins each against the scalar
    oracle.  The same applies to the sequenced loop: :meth:`transfer_seq`
    here is the reference for ``SwitchPortKernel.transfer_stream`` (fixed
    start) and ``CXLDeviceKernel.link_transfer_seq`` (offset starts).
    """

    def __init__(self, link: CXLLink) -> None:
        self._link = link
        self.transfer, self.transfer_seq, self._snapshot = self._build()

    def _build(self):
        link = self._link
        bandwidth = link.bandwidth_gbps
        propagation = link.propagation_ns
        busy_until = link.busy_until_ns
        queued = 0.0
        nbytes = 0
        transfers = 0

        def transfer(bytes_count: int, start_ns: float) -> float:
            nonlocal busy_until, queued, nbytes, transfers
            serialization = bytes_count / bandwidth
            begin = start_ns if start_ns > busy_until else busy_until
            queued += begin - start_ns
            busy_until = begin + serialization
            nbytes += bytes_count
            transfers += 1
            return busy_until + propagation

        def transfer_seq(bytes_count: int, starts, offset_ns: float = 0.0) -> list:
            """One equal-size transfer per ``starts[i] + offset_ns``, in order.

            Batch counterpart of calling ``transfer`` once per start time;
            the loop body is the exact ``transfer`` arithmetic, so arrival
            times and link state are bit-identical.
            """
            nonlocal busy_until, queued, nbytes, transfers
            serialization = bytes_count / bandwidth
            arrivals = []
            append = arrivals.append
            busy = busy_until
            wait = queued
            for arrival in starts:
                start_ns = arrival + offset_ns
                begin = start_ns if start_ns > busy else busy
                wait += begin - start_ns
                busy = begin + serialization
                append(busy + propagation)
            busy_until = busy
            queued = wait
            nbytes += bytes_count * len(starts)
            transfers += len(starts)
            return arrivals

        def snapshot():
            return busy_until, queued, nbytes, transfers

        return transfer, transfer_seq, snapshot

    def sync(self) -> None:
        """Write the kernel's state and counters back into the link."""
        busy_until, queued, nbytes, transfers = self._snapshot()
        link = self._link
        link._busy_until_ns = busy_until
        link._queued_ns += queued
        link._bytes_transferred += nbytes
        link._transfers += transfers
        self.transfer, self.transfer_seq, self._snapshot = self._build()


__all__ = ["CXLLink", "LinkKernel"]
